// Log-bucketed latency histogram. The paper reports means; a mean hides
// exactly the pathology this paper is about (lock convoys put the tail
// orders of magnitude above the median), so the benches can optionally
// report percentiles too.
//
// Buckets are half-octaves (1, 1.5, 2, 3, 4, 6, 8, ...): percentiles are
// reported as the bucket's lower edge, i.e. under-reported by at most
// ~33%. 128 buckets cover [1, 2^64). Recording is O(1) with no
// allocation; merging is element-wise.
#pragma once

#include <array>
#include <string>

#include "common/types.hpp"

namespace fpq {

class LatencyHistogram {
 public:
  static constexpr u32 kBuckets = 128;

  void record(Cycles v) {
    ++counts_[bucket_of(v)];
    ++n_;
    sum_ += v;
    if (v > max_) max_ = v;
  }

  void merge(const LatencyHistogram& o) {
    for (u32 i = 0; i < kBuckets; ++i) counts_[i] += o.counts_[i];
    n_ += o.n_;
    sum_ += o.sum_;
    if (o.max_ > max_) max_ = o.max_;
  }

  u64 count() const { return n_; }
  Cycles max() const { return max_; }
  double mean() const { return n_ ? static_cast<double>(sum_) / static_cast<double>(n_) : 0.0; }

  /// Value at quantile q in [0,1]: nearest-rank percentile, reported as the
  /// lower edge of the bucket holding that sample.
  Cycles percentile(double q) const {
    if (n_ == 0) return 0;
    const double exact = q * static_cast<double>(n_);
    u64 rank = exact <= 1.0 ? 0 : static_cast<u64>(exact + 0.999999) - 1;
    if (rank >= n_) rank = n_ - 1;
    u64 seen = 0;
    for (u32 i = 0; i < kBuckets; ++i) {
      seen += counts_[i];
      if (seen > rank) return lower_edge(i);
    }
    return max_;
  }

  /// "p50=1.2k p95=8.4k p99=31k max=88k"
  std::string summary() const;

  static u32 bucket_of(Cycles v) {
    if (v <= 1) return 0;
    const u32 lg = 63 - static_cast<u32>(__builtin_clzll(v));
    // Upper half of each octave ([1.5*2^lg, 2^(lg+1))) gets the odd bucket.
    const Cycles mid = (1ull << lg) + (1ull << lg) / 2;
    const u32 b = 2 * lg + (v >= mid ? 1u : 0u);
    return b < kBuckets ? b : kBuckets - 1;
  }

  static Cycles lower_edge(u32 bucket) {
    const u32 lg = bucket / 2;
    const Cycles base = 1ull << lg;
    return bucket % 2 == 0 ? base : base + base / 2;
  }

 private:
  std::array<u64, kBuckets> counts_{};
  u64 n_ = 0;
  u64 sum_ = 0;
  Cycles max_ = 0;
};

} // namespace fpq
