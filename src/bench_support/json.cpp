#include "bench_support/json.hpp"

#include <cmath>
#include <cstdio>

namespace fpq {

void JsonWriter::newline_indent() {
  os_ << '\n';
  for (std::size_t i = 0; i < stack_.size(); ++i) os_ << "  ";
}

void JsonWriter::pre_value() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!stack_.empty()) {
    if (stack_.back().has_value) os_ << ',';
    newline_indent();
  }
  if (!stack_.empty()) stack_.back().has_value = true;
}

JsonWriter& JsonWriter::begin_object() {
  pre_value();
  os_ << '{';
  stack_.push_back({false, false});
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  const bool had = stack_.back().has_value;
  stack_.pop_back();
  if (had) newline_indent();
  os_ << '}';
  if (stack_.empty()) os_ << '\n';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  pre_value();
  os_ << '[';
  stack_.push_back({false, true});
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  const bool had = stack_.back().has_value;
  stack_.pop_back();
  if (had) newline_indent();
  os_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  if (stack_.back().has_value) os_ << ',';
  newline_indent();
  stack_.back().has_value = true;
  os_ << '"';
  for (char c : k) {
    if (c == '"' || c == '\\') os_ << '\\';
    os_ << c;
  }
  os_ << "\": ";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  pre_value();
  os_ << '"';
  for (char c : v) {
    switch (c) {
      case '"': os_ << "\\\""; break;
      case '\\': os_ << "\\\\"; break;
      case '\n': os_ << "\\n"; break;
      case '\t': os_ << "\\t"; break;
      default: os_ << c;
    }
  }
  os_ << '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  pre_value();
  if (!std::isfinite(v)) {
    os_ << "null"; // JSON has no NaN/Inf
    return *this;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  os_ << buf;
  return *this;
}

JsonWriter& JsonWriter::value(u64 v) {
  pre_value();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(i64 v) {
  pre_value();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  pre_value();
  os_ << (v ? "true" : "false");
  return *this;
}

} // namespace fpq
