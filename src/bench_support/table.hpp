// Column-aligned text tables for the benchmark binaries: each figure bench
// prints the same series the paper plots, one row per x value, one column
// per algorithm.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace fpq {

struct Series {
  std::string name;
  std::vector<std::string> values; // one per x
};

void print_table(std::ostream& os, const std::string& title, const std::string& x_name,
                 const std::vector<std::string>& xs, const std::vector<Series>& series);

} // namespace fpq
