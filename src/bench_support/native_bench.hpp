// Shared harness for the native-backend benchmark binaries (bench/native_pq,
// bench/native_components). Replaces the earlier google-benchmark harness
// with one that
//   * sweeps an explicit thread-count list (CSV flag, oversubscription
//     allowed — the spin escalation paths are part of what is measured),
//   * re-creates the fixture for every repetition (no cross-rep warmth),
//   * reports ops/sec and ns/op with 95% confidence intervals over
//     repetitions (bench_support/stats.hpp), and
//   * writes the stable `fpq.native-bench.v3` JSON schema consumed by CI
//     and by perf-tracking diffs (see README "Native benchmarks").
//
// Schema (one document per binary invocation):
//   {
//     "schema": "fpq.native-bench.v3",
//     "suite": "native_pq" | "native_components" | "native_batched",
//     "build": { "force_seq_cst": bool, "compiler": str,
//                "hardware_concurrency": int, "sanitizer": str },
//     "config": { "ops_per_thread": int, "reps": int, "pin": bool,
//                 "quick": bool, "oversubscribed": bool },
//     "results": [ { "bench": str, "algo": str, "threads": int,
//                    "batch": int (present only for batched cells),
//                    "shards": int (present only for sharded-composite
//                                   cells),
//                    "reps": int, "total_ops": int,
//                    "ops_per_sec": { "mean": num, "sd": num,
//                                     "ci95_lo": num, "ci95_hi": num,
//                                     "n": int },
//                    "ns_per_op":   { same shape },
//                    "rank_error":  { "mean": num, "p99": num, "max": int }
//                                   (present only when the cell measured
//                                    delete-min quality — the relaxed
//                                    composite's rank-error probe) }, ... ]
//   }
// config.oversubscribed is true when the sweep's largest thread count
// exceeds the machine's hardware_concurrency — throughput numbers from
// such a run measure scheduler multiplexing, not parallel speedup.
// Both metrics are nonnegative, so both CI bounds of both summaries are
// clamped at 0 (summarize_nonnegative) — v1 clamped only ops_per_sec's
// lower bound, which let the latency columns of the table output print
// negative intervals. ns_per_op is aggregate per-operation wall latency
// (wall seconds * 1e9 / total ops), the native analogue of the sim
// benches' cycles/op.
// Additive changes bump the minor suffix (v3 -> v4); consumers must
// ignore unknown fields. v3 added the optional "shards" and "rank_error"
// fields for the sharded relaxed composite's quality-vs-throughput rows.
#pragma once

#include <chrono>
#include <functional>
#include <string>
#include <vector>

#include "bench_support/stats.hpp"
#include "common/types.hpp"
#include "platform/native.hpp"

namespace fpq {

struct NativeBenchOptions {
  std::vector<u32> threads{1, 2, 4, 8};
  u32 reps = 5;
  u64 ops = 100000; // per thread per repetition
  bool pin = false;
  bool quick = false;
  std::string out = "BENCH_native.json";
  std::vector<std::string> algos; // empty = everything the suite offers

  /// Parse --threads/--reps/--ops/--algos/--out/--pin/--quick. Returns
  /// false (after printing usage to stderr) on a malformed flag. --quick
  /// is applied last: ops is divided by 10 (floor 1000) and reps capped
  /// at 3, regardless of flag order.
  bool parse(int argc, char** argv);
};

/// Optional delete-min quality annotation of a cell (verify/rank_error):
/// measured by a separate untimed probe pass, carried alongside the
/// throughput summaries. Emitted as the "rank_error" JSON object.
struct RankErrorAnnotation {
  bool present = false;
  double mean = 0.0;
  double p99 = 0.0;
  u64 max = 0;
};

/// One (bench, algo, thread-count[, batch][, shards]) cell.
struct NativeBenchResult {
  std::string bench;
  std::string algo;
  u32 threads = 0;
  u32 batch = 0;         // 0 = point-op cell (no "batch" JSON field)
  u32 shards = 0;        // 0 = unsharded cell (no "shards" JSON field)
  u64 total_ops = 0;     // per repetition
  Summary ops_per_sec;   // over repetitions
  Summary ns_per_op;     // aggregate wall latency per op, over repetitions
  RankErrorAnnotation rank_error;
};

/// Time a NativePlatform::run section; returns wall seconds.
template <class Fn>
double timed_parallel(u32 nthreads, Fn&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  NativePlatform::run(nthreads, std::forward<Fn>(fn));
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// What one repetition measured: wall seconds for `ops` operations, plus
/// optional cell annotations (shard count, rank-error probe) that the
/// suite copies onto the result row — the last measured repetition wins.
struct RepMeasurement {
  double seconds = 0;
  u64 ops = 0;
  u32 shards = 0;
  RankErrorAnnotation rank_error;
};

class NativeBenchSuite {
 public:
  /// Applies opt.pin to the platform on construction.
  NativeBenchSuite(std::string suite, const NativeBenchOptions& opt);

  /// True if `name` is selected by --algos (or no filter was given).
  bool selected(const std::string& name) const;

  /// Run one cell across the thread sweep: for each thread count, one
  /// untimed warmup repetition then opt.reps measured ones. `rep` must
  /// build a fresh fixture, execute ops_per_thread operations per thread
  /// and report what it measured (construction time excluded by timing
  /// inside `rep` via timed_parallel).
  void run_case(const std::string& bench, const std::string& algo,
                const std::function<RepMeasurement(u32 nthreads, u64 ops_per_thread)>& rep);

  /// run_case for a batched cell: `batch` is recorded in the result (and
  /// emitted as the "batch" JSON field) but interpreting it is up to the
  /// caller's rep function.
  void run_batched_case(
      const std::string& bench, const std::string& algo, u32 batch,
      const std::function<RepMeasurement(u32 nthreads, u64 ops_per_thread)>& rep);

  /// Print the human table and write opt.out; returns a process exit code.
  int finish();

 private:
  std::string suite_;
  NativeBenchOptions opt_;
  std::vector<NativeBenchResult> results_;
};

} // namespace fpq
