// One-call measurement used by the figure benchmarks: build a fresh queue
// for `algo` on the simulated machine, run the paper's workload, return the
// merged stats.
#pragma once

#include "bench_support/workload.hpp"
#include "core/registry.hpp"
#include "platform/sim.hpp"
#include "sim/params.hpp"

namespace fpq {

struct MeasureConfig {
  Algorithm algo = Algorithm::kFunnelTree;
  u32 nprocs = 8;
  u32 npriorities = 16;
  u32 ops_per_proc = 200;
  Cycles local_work = 200;
  u32 insert_pct = 50;
  u32 bin_capacity = 1u << 14;
  u64 seed = 42;
  FunnelOptions funnel{};
  sim::MachineParams machine{};
};

inline OpStats measure_sim(const MeasureConfig& cfg) {
  PqParams params;
  params.npriorities = cfg.npriorities;
  params.maxprocs = cfg.nprocs;
  params.bin_capacity = cfg.bin_capacity;
  params.heap_capacity = 1u << 16;
  params.seed = cfg.seed;
  FunnelOptions fo = cfg.funnel;
  if (!fo.params) fo.params = FunnelParams::for_procs(cfg.nprocs);
  auto pq = make_priority_queue<SimPlatform>(cfg.algo, params, fo);
  WorkloadParams w;
  w.nprocs = cfg.nprocs;
  w.ops_per_proc = cfg.ops_per_proc;
  w.local_work = cfg.local_work;
  w.insert_pct = cfg.insert_pct;
  w.seed = cfg.seed;
  std::vector<Padded<OpStats>> per_proc(w.nprocs);
  sim::Engine engine(w.nprocs, cfg.machine, w.seed);
  engine.run(pq_workload_body<SimPlatform>(*pq, w, per_proc));
  OpStats total;
  for (const auto& s : per_proc) total += *s;
  return total;
}

/// Benchmarks honor --quick (fewer ops; used in CI) and --ops=N.
inline u32 bench_ops_per_proc(int argc, char** argv, u32 dflt) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view a = argv[i];
    if (a == "--quick") return dflt / 4 > 10 ? dflt / 4 : 10;
    if (a.rfind("--ops=", 0) == 0) return static_cast<u32>(std::stoul(std::string(a.substr(6))));
  }
  return dflt;
}

} // namespace fpq
