// The paper's benchmark workload (§4): each processor alternates between a
// small constant amount of local work and an access to the priority queue;
// the access is an insert of a random value or a delete-min, chosen by an
// unbiased coin flip (the mix is parameterizable for Fig. 5's sweeps). The
// queue starts empty. Latency is the time of the access itself.
#pragma once

#include <functional>
#include <vector>

#include "common/assert.hpp"
#include "common/padded.hpp"
#include "common/types.hpp"
#include "bench_support/histogram.hpp"
#include "bench_support/stats.hpp"
#include "pq/pq.hpp"

namespace fpq {

struct WorkloadParams {
  u32 nprocs = 8;
  u32 ops_per_proc = 200;
  /// Local work between accesses ("kept at a small constant", §4).
  Cycles local_work = 200;
  /// Percentage of accesses that are inserts (50 = the paper's coin flip).
  u32 insert_pct = 50;
  u64 seed = 42;
};

/// The per-processor loop of the paper's workload, writing into
/// `per_proc[id]`. Exposed so callers can run it on a custom simulator
/// engine (see bench_support/measure.hpp).
template <Platform P>
std::function<void(ProcId)> pq_workload_body(IPriorityQueue<P>& pq,
                                             const WorkloadParams& w,
                                             std::vector<Padded<OpStats>>& per_proc) {
  FPQ_ASSERT(w.insert_pct <= 100);
  FPQ_ASSERT(per_proc.size() >= w.nprocs);
  const u32 npri = pq.npriorities();
  return [&pq, w, npri, &per_proc](ProcId id) {
    OpStats& r = *per_proc[id];
    for (u32 i = 0; i < w.ops_per_proc; ++i) {
      P::delay(w.local_work);
      const bool is_insert = P::rnd(100) < w.insert_pct;
      if (is_insert) {
        const Prio prio = static_cast<Prio>(P::rnd(npri));
        const Item item = (static_cast<u64>(id) << 24) | i;
        const Cycles t0 = P::now();
        const bool ok = pq.insert(prio, item);
        r.insert_cycles += P::now() - t0;
        ++r.inserts;
        FPQ_ASSERT_MSG(ok, "queue capacity exhausted; enlarge bin_capacity");
      } else {
        const Cycles t0 = P::now();
        const auto e = pq.delete_min();
        r.delete_cycles += P::now() - t0;
        ++r.deletes;
        if (!e) ++r.empty_deletes;
      }
    }
  };
}

/// Drives `pq` with the paper's workload on P and returns merged stats.
template <Platform P>
OpStats run_pq_workload(IPriorityQueue<P>& pq, const WorkloadParams& w) {
  std::vector<Padded<OpStats>> per_proc(w.nprocs);
  P::run(w.nprocs, pq_workload_body<P>(pq, w, per_proc), w.seed);
  OpStats total;
  for (const auto& s : per_proc) total += *s;
  return total;
}

/// Per-operation latency distributions for one workload run (means hide
/// the convoys this paper is about, so the tail benches use these).
struct DetailedStats {
  OpStats ops;
  LatencyHistogram all;
  LatencyHistogram insert;
  LatencyHistogram del;

  DetailedStats& operator+=(const DetailedStats& o) {
    ops += o.ops;
    all.merge(o.all);
    insert.merge(o.insert);
    del.merge(o.del);
    return *this;
  }
};

/// run_pq_workload, but also collecting per-op latency histograms.
template <Platform P>
DetailedStats run_pq_workload_detailed(IPriorityQueue<P>& pq, const WorkloadParams& w) {
  FPQ_ASSERT(w.insert_pct <= 100);
  std::vector<Padded<DetailedStats>> per_proc(w.nprocs);
  const u32 npri = pq.npriorities();
  P::run(
      w.nprocs,
      [&](ProcId id) {
        DetailedStats& r = *per_proc[id];
        for (u32 i = 0; i < w.ops_per_proc; ++i) {
          P::delay(w.local_work);
          const bool is_insert = P::rnd(100) < w.insert_pct;
          const Cycles t0 = P::now();
          if (is_insert) {
            const bool ok =
                pq.insert(static_cast<Prio>(P::rnd(npri)), (static_cast<u64>(id) << 24) | i);
            FPQ_ASSERT_MSG(ok, "queue capacity exhausted; enlarge bin_capacity");
            const Cycles dt = P::now() - t0;
            ++r.ops.inserts;
            r.ops.insert_cycles += dt;
            r.insert.record(dt);
            r.all.record(dt);
          } else {
            const auto e = pq.delete_min();
            const Cycles dt = P::now() - t0;
            ++r.ops.deletes;
            r.ops.delete_cycles += dt;
            if (!e) ++r.ops.empty_deletes;
            r.del.record(dt);
            r.all.record(dt);
          }
        }
      },
      w.seed);
  DetailedStats total;
  for (const auto& s : per_proc) total += *s;
  return total;
}

/// Counter workload for Fig. 5: `op(is_increment)` performs one counter
/// operation; the mix and cadence match the queue workload.
template <Platform P>
OpStats run_counter_workload(const std::function<void(bool)>& op, u32 nprocs,
                             u32 ops_per_proc, u32 increment_pct, Cycles local_work,
                             u64 seed) {
  std::vector<Padded<OpStats>> per_proc(nprocs);
  P::run(
      nprocs,
      [&](ProcId id) {
        OpStats& r = *per_proc[id];
        for (u32 i = 0; i < ops_per_proc; ++i) {
          P::delay(local_work);
          const bool inc = P::rnd(100) < increment_pct;
          const Cycles t0 = P::now();
          op(inc);
          const Cycles dt = P::now() - t0;
          if (inc) {
            ++r.inserts;
            r.insert_cycles += dt;
          } else {
            ++r.deletes;
            r.delete_cycles += dt;
          }
        }
      },
      seed);
  OpStats total;
  for (const auto& s : per_proc) total += *s;
  return total;
}

} // namespace fpq
