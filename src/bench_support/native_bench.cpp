#include "bench_support/native_bench.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>

#include "bench_support/json.hpp"

namespace fpq {

namespace {

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ','))
    if (!item.empty()) out.push_back(item);
  return out;
}

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "  --threads=1,2,4,8   thread counts to sweep (oversubscription ok)\n"
      << "  --algos=A,B,...     restrict to these benches (default: all)\n"
      << "  --reps=N            measured repetitions per cell (default 5)\n"
      << "  --ops=N             operations per thread per repetition\n"
      << "  --out=PATH          JSON output (default BENCH_native.json; '' = none)\n"
      << "  --pin               pin worker threads round-robin to CPUs\n"
      << "  --quick             smoke mode: ops/10 (floor 1000), reps<=3\n";
  return 2;
}

} // namespace

bool NativeBenchOptions::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--threads=", 0) == 0) {
      threads.clear();
      for (const auto& t : split_csv(arg.substr(10)))
        threads.push_back(static_cast<u32>(std::stoul(t)));
      if (threads.empty()) return usage(argv[0]), false;
    } else if (arg.rfind("--algos=", 0) == 0) {
      algos = split_csv(arg.substr(8));
    } else if (arg.rfind("--reps=", 0) == 0) {
      reps = static_cast<u32>(std::stoul(arg.substr(7)));
    } else if (arg.rfind("--ops=", 0) == 0) {
      ops = std::stoull(arg.substr(6));
    } else if (arg.rfind("--out=", 0) == 0) {
      out = arg.substr(6);
    } else if (arg == "--pin") {
      pin = true;
    } else if (arg == "--quick") {
      quick = true;
    } else {
      return usage(argv[0]), false;
    }
  }
  if (reps == 0 || ops == 0) return usage(argv[0]), false;
  if (quick) {
    ops = std::max<u64>(ops / 10, 1000);
    reps = std::min<u32>(reps, 3);
  }
  return true;
}

namespace {

bool sweep_oversubscribed(const std::vector<u32>& threads) {
  const u32 hc = std::thread::hardware_concurrency();
  if (hc == 0) return false; // unknown topology: don't guess
  return std::any_of(threads.begin(), threads.end(), [hc](u32 t) { return t > hc; });
}

} // namespace

NativeBenchSuite::NativeBenchSuite(std::string suite, const NativeBenchOptions& opt)
    : suite_(std::move(suite)), opt_(opt) {
  NativePlatform::set_pin_threads(opt_.pin);
  // Once per run, not per suite/sweep row: a binary that builds several
  // suites (or re-enters after a filter pass) must not repeat the banner.
  static bool warned_oversubscribed = false;
  if (sweep_oversubscribed(opt_.threads) && !warned_oversubscribed) {
    warned_oversubscribed = true;
    std::fprintf(stderr,
                 "warning: thread sweep exceeds hardware_concurrency=%u — "
                 "throughput will measure scheduler multiplexing, not parallel "
                 "speedup (results flagged \"oversubscribed\")\n",
                 std::thread::hardware_concurrency());
  }
}

bool NativeBenchSuite::selected(const std::string& name) const {
  if (opt_.algos.empty()) return true;
  return std::find(opt_.algos.begin(), opt_.algos.end(), name) != opt_.algos.end();
}

void NativeBenchSuite::run_case(
    const std::string& bench, const std::string& algo,
    const std::function<RepMeasurement(u32, u64)>& rep) {
  run_batched_case(bench, algo, 0, rep);
}

void NativeBenchSuite::run_batched_case(
    const std::string& bench, const std::string& algo, u32 batch,
    const std::function<RepMeasurement(u32, u64)>& rep) {
  for (u32 nt : opt_.threads) {
    rep(nt, std::max<u64>(opt_.ops / 4, 1)); // warmup, discarded
    std::vector<double> ops_per_sec;
    std::vector<double> ns_per_op;
    u64 total_ops = 0;
    u32 shards = 0;
    RankErrorAnnotation rank_error;
    for (u32 r = 0; r < opt_.reps; ++r) {
      const RepMeasurement m = rep(nt, opt_.ops);
      total_ops = m.ops;
      shards = m.shards;
      if (m.rank_error.present) rank_error = m.rank_error;
      ops_per_sec.push_back(m.seconds > 0 ? double(m.ops) / m.seconds : 0.0);
      ns_per_op.push_back(m.ops > 0 ? m.seconds * 1e9 / double(m.ops) : 0.0);
    }
    NativeBenchResult res;
    res.bench = bench;
    res.algo = algo;
    res.threads = nt;
    res.batch = batch;
    res.shards = shards;
    res.rank_error = rank_error;
    res.total_ops = total_ops;
    res.ops_per_sec = summarize_nonnegative(ops_per_sec);
    res.ns_per_op = summarize_nonnegative(ns_per_op);
    results_.push_back(res);
    std::fprintf(stderr,
                 "  %-16s %-14s t=%-3u  %12.0f ops/s  [%0.f, %0.f]  %8.1f ns/op\n",
                 bench.c_str(), algo.c_str(), nt, res.ops_per_sec.mean,
                 res.ops_per_sec.ci95_lo, res.ops_per_sec.ci95_hi,
                 res.ns_per_op.mean);
  }
}

int NativeBenchSuite::finish() {
  // Human table on stdout.
  std::printf("%-16s %-14s %8s %14s %14s %14s %10s %10s %10s %5s\n", "bench",
              "algo", "threads", "ops/sec", "ci95_lo", "ci95_hi", "ns/op",
              "ns_lo", "ns_hi", "reps");
  for (const auto& r : results_)
    std::printf("%-16s %-14s %8u %14.0f %14.0f %14.0f %10.1f %10.1f %10.1f %5u\n",
                r.bench.c_str(), r.algo.c_str(), r.threads, r.ops_per_sec.mean,
                r.ops_per_sec.ci95_lo, r.ops_per_sec.ci95_hi, r.ns_per_op.mean,
                r.ns_per_op.ci95_lo, r.ns_per_op.ci95_hi, r.ops_per_sec.n);

  if (opt_.out.empty()) return 0;
  std::ofstream f(opt_.out);
  if (!f) {
    std::cerr << "cannot write " << opt_.out << "\n";
    return 1;
  }
  JsonWriter w(f);
  w.begin_object();
  w.field("schema", "fpq.native-bench.v3");
  w.field("suite", suite_);
  w.key("build").begin_object();
#ifdef FPQ_FORCE_SEQ_CST
  w.field("force_seq_cst", true);
#else
  w.field("force_seq_cst", false);
#endif
  w.field("compiler", __VERSION__);
  w.field("hardware_concurrency",
          static_cast<u64>(std::thread::hardware_concurrency()));
#if defined(__SANITIZE_THREAD__)
  w.field("sanitizer", "thread");
#elif defined(__SANITIZE_ADDRESS__)
  w.field("sanitizer", "address");
#else
  w.field("sanitizer", "none");
#endif
  w.end_object();
  w.key("config").begin_object();
  w.field("ops_per_thread", opt_.ops);
  w.field("reps", opt_.reps);
  w.field("pin", opt_.pin);
  w.field("quick", opt_.quick);
  w.field("oversubscribed", sweep_oversubscribed(opt_.threads));
  w.end_object();
  w.key("results").begin_array();
  for (const auto& r : results_) {
    w.begin_object();
    w.field("bench", r.bench);
    w.field("algo", r.algo);
    w.field("threads", r.threads);
    if (r.batch > 0) w.field("batch", r.batch);
    if (r.shards > 0) w.field("shards", r.shards);
    w.field("reps", r.ops_per_sec.n);
    w.field("total_ops", r.total_ops);
    w.key("ops_per_sec").begin_object();
    w.field("mean", r.ops_per_sec.mean);
    w.field("sd", r.ops_per_sec.sd);
    w.field("ci95_lo", r.ops_per_sec.ci95_lo);
    w.field("ci95_hi", r.ops_per_sec.ci95_hi);
    w.field("n", r.ops_per_sec.n);
    w.end_object();
    w.key("ns_per_op").begin_object();
    w.field("mean", r.ns_per_op.mean);
    w.field("sd", r.ns_per_op.sd);
    w.field("ci95_lo", r.ns_per_op.ci95_lo);
    w.field("ci95_hi", r.ns_per_op.ci95_hi);
    w.field("n", r.ns_per_op.n);
    w.end_object();
    if (r.rank_error.present) {
      w.key("rank_error").begin_object();
      w.field("mean", r.rank_error.mean);
      w.field("p99", r.rank_error.p99);
      w.field("max", r.rank_error.max);
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  std::fprintf(stderr, "wrote %s (%zu results)\n", opt_.out.c_str(), results_.size());
  return 0;
}

} // namespace fpq
