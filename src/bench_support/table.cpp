#include "bench_support/table.hpp"

#include <algorithm>
#include <ostream>

#include "common/assert.hpp"

namespace fpq {

void print_table(std::ostream& os, const std::string& title, const std::string& x_name,
                 const std::vector<std::string>& xs, const std::vector<Series>& series) {
  os << "\n== " << title << " ==\n";
  std::vector<std::size_t> widths;
  widths.push_back(x_name.size());
  for (const auto& x : xs) widths[0] = std::max(widths[0], x.size());
  for (const auto& s : series) {
    FPQ_ASSERT_MSG(s.values.size() == xs.size(), "series length mismatch");
    std::size_t w = s.name.size();
    for (const auto& v : s.values) w = std::max(w, v.size());
    widths.push_back(w);
  }
  auto pad = [&os](const std::string& s, std::size_t w) {
    os << s;
    for (std::size_t i = s.size(); i < w + 2; ++i) os << ' ';
  };
  pad(x_name, widths[0]);
  for (std::size_t c = 0; c < series.size(); ++c) pad(series[c].name, widths[c + 1]);
  os << '\n';
  for (std::size_t r = 0; r < xs.size(); ++r) {
    pad(xs[r], widths[0]);
    for (std::size_t c = 0; c < series.size(); ++c) pad(series[c].values[r], widths[c + 1]);
    os << '\n';
  }
  os.flush();
}

} // namespace fpq
