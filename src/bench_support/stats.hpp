// Latency accounting for the benchmark harnesses. Latencies are summed
// per-processor (padded slots, no sharing) and merged after the run, as in
// the paper's methodology: "we measured latency, the amount of time (in
// cycles) it takes for an average access to the object" (§4).
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace fpq {

struct OpStats {
  u64 inserts = 0;
  u64 deletes = 0;
  u64 empty_deletes = 0; // delete_min() that returned nullopt
  u64 insert_cycles = 0;
  u64 delete_cycles = 0;

  u64 ops() const { return inserts + deletes; }
  u64 cycles() const { return insert_cycles + delete_cycles; }
  double mean_all() const { return ops() ? double(cycles()) / double(ops()) : 0.0; }
  double mean_insert() const {
    return inserts ? double(insert_cycles) / double(inserts) : 0.0;
  }
  double mean_delete() const {
    return deletes ? double(delete_cycles) / double(deletes) : 0.0;
  }

  OpStats& operator+=(const OpStats& o);
};

/// "12.7" style thousands-of-cycles formatting used by the paper's Fig. 8.
std::string fmt_kcycles(double cycles);

/// Plain cycles with no decimals.
std::string fmt_cycles(double cycles);

} // namespace fpq
