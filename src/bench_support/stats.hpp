// Latency accounting for the benchmark harnesses. Latencies are summed
// per-processor (padded slots, no sharing) and merged after the run, as in
// the paper's methodology: "we measured latency, the amount of time (in
// cycles) it takes for an average access to the object" (§4).
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace fpq {

struct OpStats {
  u64 inserts = 0;
  u64 deletes = 0;
  u64 empty_deletes = 0; // delete_min() that returned nullopt
  u64 insert_cycles = 0;
  u64 delete_cycles = 0;

  u64 ops() const { return inserts + deletes; }
  u64 cycles() const { return insert_cycles + delete_cycles; }
  double mean_all() const { return ops() ? double(cycles()) / double(ops()) : 0.0; }
  double mean_insert() const {
    return inserts ? double(insert_cycles) / double(inserts) : 0.0;
  }
  double mean_delete() const {
    return deletes ? double(delete_cycles) / double(deletes) : 0.0;
  }

  OpStats& operator+=(const OpStats& o);
};

/// Summary statistics over benchmark repetitions: sample mean, sample
/// standard deviation and a 95% confidence interval for the mean
/// (Student's t for small n, since bench reps are typically 3..10).
struct Summary {
  double mean = 0.0;
  double sd = 0.0;
  double ci95_lo = 0.0;
  double ci95_hi = 0.0;
  u32 n = 0;
};

/// Summarize a set of repetition measurements. n == 0 returns all zeros;
/// n == 1 returns a degenerate interval [x, x].
Summary summarize(const std::vector<double>& xs);

/// summarize() for metrics that cannot be negative (throughput, latency):
/// clamps BOTH ci95_lo and ci95_hi at 0, since Student's t intervals on
/// tiny high-variance samples otherwise dip below the metric's domain.
/// For nonnegative inputs only the lower bound can go negative; clamping
/// the upper bound as well keeps the interval well-formed (lo <= hi) even
/// for timer-skew latency deltas whose samples dip below zero. mean/sd are
/// reported unclamped — they describe the sample, the interval describes
/// the metric.
Summary summarize_nonnegative(const std::vector<double>& xs);

/// "12.7" style thousands-of-cycles formatting used by the paper's Fig. 8.
std::string fmt_kcycles(double cycles);

/// Plain cycles with no decimals.
std::string fmt_cycles(double cycles);

} // namespace fpq
