#include "bench_support/stats.hpp"

#include <cmath>
#include <cstdio>

namespace fpq {

namespace {

// Two-sided 95% Student's t critical values by degrees of freedom; reps
// beyond 30 are close enough to the normal quantile.
double t95(u32 df) {
  static constexpr double kTable[] = {
      0,     12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
      2.228, 2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093,
      2.086, 2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045,
      2.042};
  if (df == 0) return 0.0;
  if (df < sizeof(kTable) / sizeof(kTable[0])) return kTable[df];
  return 1.960;
}

} // namespace

Summary summarize(const std::vector<double>& xs) {
  Summary s;
  s.n = static_cast<u32>(xs.size());
  if (s.n == 0) return s;
  double sum = 0;
  for (double x : xs) sum += x;
  s.mean = sum / s.n;
  if (s.n == 1) {
    s.ci95_lo = s.ci95_hi = s.mean;
    return s;
  }
  double ss = 0;
  for (double x : xs) ss += (x - s.mean) * (x - s.mean);
  s.sd = std::sqrt(ss / (s.n - 1));
  const double half = t95(s.n - 1) * s.sd / std::sqrt(static_cast<double>(s.n));
  s.ci95_lo = s.mean - half;
  s.ci95_hi = s.mean + half;
  return s;
}

Summary summarize_nonnegative(const std::vector<double>& xs) {
  Summary s = summarize(xs);
  if (s.ci95_lo < 0.0) s.ci95_lo = 0.0;
  // Clamp the upper bound too: latency deltas derived from coarse timers
  // can go (slightly) negative rep-to-rep, and a sample that is mostly
  // negative noise would otherwise print a fully negative interval in the
  // bench tables while the lower bound reads 0 — worse than inconsistent,
  // it inverts the interval (hi < lo). Both bounds live in the metric's
  // domain; the invariant is ci95_lo <= max(mean, 0) and ci95_lo <= ci95_hi.
  if (s.ci95_hi < 0.0) s.ci95_hi = 0.0;
  return s;
}

OpStats& OpStats::operator+=(const OpStats& o) {
  inserts += o.inserts;
  deletes += o.deletes;
  empty_deletes += o.empty_deletes;
  insert_cycles += o.insert_cycles;
  delete_cycles += o.delete_cycles;
  return *this;
}

std::string fmt_kcycles(double cycles) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", cycles / 1000.0);
  return buf;
}

std::string fmt_cycles(double cycles) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.0f", cycles);
  return buf;
}

} // namespace fpq
