#include "bench_support/stats.hpp"

#include <cstdio>

namespace fpq {

OpStats& OpStats::operator+=(const OpStats& o) {
  inserts += o.inserts;
  deletes += o.deletes;
  empty_deletes += o.empty_deletes;
  insert_cycles += o.insert_cycles;
  delete_cycles += o.delete_cycles;
  return *this;
}

std::string fmt_kcycles(double cycles) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", cycles / 1000.0);
  return buf;
}

std::string fmt_cycles(double cycles) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.0f", cycles);
  return buf;
}

} // namespace fpq
