// Minimal streaming JSON writer for the benchmark output files. Scope is
// deliberately tiny — objects, arrays, string/number/bool fields, correct
// comma placement and string escaping, two-space indentation — enough for
// the stable `fpq.native-bench.v1` schema without pulling in a JSON
// library dependency.
#pragma once

#include <ostream>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace fpq {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Write `"key":` — must be followed by a value or begin_*.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(u64 v);
  JsonWriter& value(u32 v) { return value(static_cast<u64>(v)); }
  JsonWriter& value(i64 v);
  JsonWriter& value(bool v);

  template <class T>
  JsonWriter& field(std::string_view k, T v) {
    key(k);
    return value(v);
  }

 private:
  void pre_value();
  void newline_indent();

  std::ostream& os_;
  // One frame per open object/array: whether a value was already emitted
  // (controls the comma) and whether we sit right after a key.
  struct Frame {
    bool has_value = false;
    bool in_array = false;
  };
  std::vector<Frame> stack_;
  bool after_key_ = false;
};

} // namespace fpq
