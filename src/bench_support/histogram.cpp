#include "bench_support/histogram.hpp"

#include <cstdio>

namespace fpq {

namespace {
std::string fmt_short(Cycles v) {
  char buf[32];
  if (v >= 10'000'000)
    std::snprintf(buf, sizeof(buf), "%.0fM", static_cast<double>(v) / 1e6);
  else if (v >= 10'000)
    std::snprintf(buf, sizeof(buf), "%.1fk", static_cast<double>(v) / 1e3);
  else
    std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return buf;
}
} // namespace

std::string LatencyHistogram::summary() const {
  std::string s = "p50=" + fmt_short(percentile(0.50));
  s += " p95=" + fmt_short(percentile(0.95));
  s += " p99=" + fmt_short(percentile(0.99));
  s += " max=" + fmt_short(max_);
  return s;
}

} // namespace fpq
