// Small bit-arithmetic helpers shared by the tree-shaped structures.
#pragma once

#include "common/types.hpp"

namespace fpq {

inline constexpr u32 round_up_pow2(u32 v) {
  u32 p = 1;
  while (p < v) p <<= 1;
  return p;
}

inline constexpr u32 floor_log2(u32 v) {
  u32 l = 0;
  while ((v >> 1) != 0) {
    v >>= 1;
    ++l;
  }
  return l;
}

} // namespace fpq
