// Internal invariant checking. FPQ_ASSERT is active in all build types:
// the algorithms in this library are subtle enough that silent invariant
// corruption costs far more than the branch. Failure messages carry the
// expression and location so a simulator run (which is deterministic) can
// be replayed to the exact faulting access.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace fpq::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "funnelpq assertion failed: %s\n  at %s:%d\n  %s\n", expr, file,
               line, msg ? msg : "");
  std::abort();
}

} // namespace fpq::detail

#define FPQ_ASSERT(expr)                                                        \
  do {                                                                          \
    if (!(expr)) ::fpq::detail::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define FPQ_ASSERT_MSG(expr, msg)                                            \
  do {                                                                       \
    if (!(expr)) ::fpq::detail::assert_fail(#expr, __FILE__, __LINE__, msg); \
  } while (0)
