// Cache-line padding wrapper. Per-processor slots inside shared arrays
// (funnel layer cells, MCS queue nodes, latency counters) are padded so the
// native backend doesn't suffer false sharing that the simulated machine
// (word-granularity coherence) wouldn't model.
#pragma once

#include "common/types.hpp"

namespace fpq {

template <class T>
struct alignas(kCacheLineBytes) Padded {
  T value{};

  T* operator->() { return &value; }
  const T* operator->() const { return &value; }
  T& operator*() { return value; }
  const T& operator*() const { return value; }
};

} // namespace fpq
