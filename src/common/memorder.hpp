// Memory-order annotation vocabulary shared by every Platform backend and
// by the simulator's happens-before race detector. Mirrors std::memory_order;
// kept as our own enum (below the platform layer) so the simulator can
// reason about declared orderings without depending on <atomic>.
#pragma once

#include <string_view>

#include "common/types.hpp"

namespace fpq {

enum class MemOrder : u8 {
  kRelaxed,
  kAcquire,
  kRelease,
  kAcqRel,
  kSeqCst,
};

constexpr std::string_view to_string(MemOrder o) {
  switch (o) {
    case MemOrder::kRelaxed: return "relaxed";
    case MemOrder::kAcquire: return "acquire";
    case MemOrder::kRelease: return "release";
    case MemOrder::kAcqRel: return "acq_rel";
    case MemOrder::kSeqCst: return "seq_cst";
  }
  return "?";
}

/// True when the order has an acquire side (joins the publisher's clock).
constexpr bool acquires(MemOrder o) {
  return o == MemOrder::kAcquire || o == MemOrder::kAcqRel || o == MemOrder::kSeqCst;
}

/// True when the order has a release side (publishes the accessor's clock).
constexpr bool releases(MemOrder o) {
  return o == MemOrder::kRelease || o == MemOrder::kAcqRel || o == MemOrder::kSeqCst;
}

} // namespace fpq
