// A priority-queue entry packed into one 64-bit word: 16 bits of priority,
// 48 bits of item payload. Packing lets heap slots, bins and stack cells be
// single shared words, so every algorithm manipulates them with the
// platform's single-word primitives exactly as the paper's machines did
// with register-to-memory-swap and compare-and-swap.
#pragma once

#include "common/assert.hpp"
#include "common/types.hpp"

namespace fpq {

struct Entry {
  Prio prio = 0;
  Item item = 0;

  friend bool operator==(const Entry&, const Entry&) = default;
};

inline constexpr u32 kMaxPackablePrio = 0xFFFF;
inline constexpr u64 kMaxPackableItem = (1ull << 48) - 1;

inline u64 pack_entry(Entry e) {
  FPQ_ASSERT_MSG(e.prio < kMaxPackablePrio, "priority exceeds 16 bits - 1 (top value reserved)");
  FPQ_ASSERT_MSG(e.item <= kMaxPackableItem, "item exceeds 48 bits");
  return (static_cast<u64>(e.prio) << 48) | e.item;
}

inline Entry unpack_entry(u64 w) {
  return Entry{static_cast<Prio>(w >> 48), w & kMaxPackableItem};
}

/// Sentinel meaning "no entry": priority 0xFFFF with an all-ones payload is
/// never produced by pack_entry for a legal entry because we reserve the
/// top priority value.
inline constexpr u64 kNoEntry = ~0ull;

} // namespace fpq
