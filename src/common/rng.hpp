// Small deterministic PRNG used by every processor context. xorshift128+ is
// fast, has no shared state, and produces identical streams across the
// native and simulated backends, which keeps workloads comparable and test
// failures replayable.
#pragma once

#include "common/assert.hpp"
#include "common/types.hpp"

namespace fpq {

class Xorshift {
 public:
  /// Seeds are mixed through splitmix64 so that consecutive seeds (e.g. one
  /// per processor id) yield uncorrelated streams.
  explicit Xorshift(u64 seed = 0x9e3779b97f4a7c15ull) {
    auto mix = [](u64& z) {
      z += 0x9e3779b97f4a7c15ull;
      u64 x = z;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
      return x ^ (x >> 31);
    };
    u64 z = seed;
    s0_ = mix(z);
    s1_ = mix(z);
    if (s0_ == 0 && s1_ == 0) s1_ = 1; // the all-zero state is absorbing
  }

  u64 next() {
    u64 x = s0_;
    const u64 y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform in [0, bound). bound == 0 is a caller bug.
  u64 below(u64 bound) {
    FPQ_ASSERT(bound > 0);
    // Multiply-shift rejection-free mapping; bias is negligible for the
    // bounds used here (layer widths, priority ranges).
    return static_cast<u64>((static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Unbiased coin flip, used by the paper's workload (§4).
  bool flip() { return (next() & 1) != 0; }

 private:
  u64 s0_;
  u64 s1_;
};

} // namespace fpq
