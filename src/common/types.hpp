// Fundamental fixed-width aliases and small value types shared by every
// module of the library.
#pragma once

#include <cstdint>
#include <cstddef>

namespace fpq {

using u8  = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/// Identifier of a (simulated or native) processor. Processors are numbered
/// densely from 0 to nprocs-1 for the lifetime of one workload run.
using ProcId = u32;

/// Priorities are a bounded range [0, npriorities). Smaller is "better":
/// delete-min removes an item with the smallest priority (paper Appendix B).
using Prio = u32;

/// Opaque item payload carried through a priority queue. 48 bits survive a
/// packed Entry (see entry.hpp); the full 64 bits survive everywhere else.
using Item = u64;

/// Simulated cycles, or nanoseconds in the native backend. Latency numbers
/// reported by benchmarks are differences of these.
using Cycles = u64;

inline constexpr u32 kCacheLineBytes = 64;

} // namespace fpq
