#include "platform/native.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include "common/assert.hpp"

namespace fpq {

namespace {

struct NativeCtx {
  ProcId id = ~0u;
  u32 nprocs = 0;
  Xorshift rng{0};
  u32 pause_streak = 0;
};

thread_local NativeCtx g_ctx;

NativePlatform::SpinConfig g_spin_config{};
bool g_pin_threads = false;

#if defined(__linux__)
void pin_to_cpu(std::thread& t, u32 cpu) {
  const unsigned ncpus = std::thread::hardware_concurrency();
  if (ncpus == 0) return; // topology unknown; pinning is best-effort
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu % ncpus, &set);
  const int rc = pthread_setaffinity_np(t.native_handle(), sizeof(set), &set);
  if (rc != 0) {
    // Common in cgroup-restricted containers where the target cpu is not
    // in our cpuset; the run is still correct, just unpinned, so warn
    // (once) instead of failing the benchmark.
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true))
      std::fprintf(stderr,
                   "fpq: pinning worker to cpu %u failed (error %d); "
                   "continuing unpinned\n",
                   cpu % ncpus, rc);
  }
}
#endif

} // namespace

void NativePlatform::set_spin_config(const SpinConfig& cfg) { g_spin_config = cfg; }

const NativePlatform::SpinConfig& NativePlatform::spin_config() { return g_spin_config; }

void NativePlatform::set_pin_threads(bool pin) { g_pin_threads = pin; }

void NativePlatform::escalate() {
  if (g_spin_config.escalation == SpinEscalation::kSleep)
    std::this_thread::sleep_for(std::chrono::nanoseconds(g_spin_config.sleep_ns));
  else
    std::this_thread::yield();
}

void NativePlatform::pause() {
  if (++g_ctx.pause_streak <= g_spin_config.relax_spins) {
    relax();
    return;
  }
  g_ctx.pause_streak = 0;
  escalate();
}

void NativePlatform::run(u32 nprocs, const std::function<void(ProcId)>& fn, u64 seed) {
  FPQ_ASSERT(nprocs >= 1);
  std::atomic<u32> ready{0};
  std::atomic<bool> go{false};
  std::exception_ptr first_error;
  std::mutex error_mu;

  auto worker = [&](ProcId id) {
    g_ctx.id = id;
    g_ctx.nprocs = nprocs;
    g_ctx.rng = Xorshift(seed * 0x100000001b3ull + id);
    g_ctx.pause_streak = 0;
    ready.fetch_add(1, std::memory_order_acq_rel);
    while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
    try {
      fn(id);
    } catch (...) {
      std::lock_guard<std::mutex> lk(error_mu);
      if (!first_error) first_error = std::current_exception();
    }
    g_ctx.id = ~0u;
  };

  std::vector<std::thread> threads;
  threads.reserve(nprocs);
  for (u32 i = 0; i < nprocs; ++i) {
    threads.emplace_back(worker, i);
#if defined(__linux__)
    if (g_pin_threads) pin_to_cpu(threads.back(), i);
#endif
  }
  while (ready.load(std::memory_order_acquire) != nprocs) std::this_thread::yield();
  go.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

ProcId NativePlatform::self() {
  FPQ_ASSERT_MSG(g_ctx.id != ~0u, "NativePlatform used outside run()");
  return g_ctx.id;
}

u32 NativePlatform::nprocs() { return g_ctx.nprocs; }

Cycles NativePlatform::now() {
  return static_cast<Cycles>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void NativePlatform::delay(Cycles c) {
  // Abstract work units: opaque arithmetic the optimizer can't elide.
  volatile u64 sink = 0;
  for (Cycles i = 0; i < c; ++i) sink = sink + i;
}

void NativePlatform::adopt(ProcId id, u32 nprocs, u64 seed) {
  g_ctx.id = id;
  g_ctx.nprocs = nprocs;
  g_ctx.rng = Xorshift(seed * 0x100000001b3ull + id);
  g_ctx.pause_streak = 0;
}

void NativePlatform::release() { g_ctx.id = ~0u; }

u64 NativePlatform::rnd(u64 bound) { return g_ctx.rng.below(bound); }

bool NativePlatform::flip() { return g_ctx.rng.flip(); }

} // namespace fpq
