// The Platform policy: the contract every concurrent algorithm in this
// library is written against. Two implementations exist —
//
//   * SimPlatform    (platform/sim.hpp)    — the paper's evaluation vehicle:
//     a simulated Alewife-like ccNUMA; latencies are modeled cycles.
//   * NativePlatform (platform/native.hpp) — std::atomic + std::thread;
//     latencies are steady_clock nanoseconds.
//
// A Platform P provides:
//
//   P::Shared<T>   — a single shared word (T trivially copyable, <= 8 bytes,
//                    equality comparable) with the explicitly-ordered API
//                    below.
//   P::run(nprocs, fn, seed)  — execute fn(ProcId) on nprocs processors.
//   P::self() / P::nprocs()   — processor identity within a run.
//   P::now()                  — monotone per-processor clock.
//   P::delay(cycles)          — local work, no memory traffic.
//   P::relax()                — one spin-loop iteration's politeness hint
//                               (cpu pause instruction; never yields).
//   P::pause()                — spin-loop hint that may escalate: after a
//                               processor has paused many times in a row the
//                               native backend yields the OS thread.
//   P::spin_until(word, pred) — repeatedly read `word` (acquire) until
//                               pred(value); the simulator parks the fiber
//                               until the word is written, like spinning on
//                               a cached line; the native backend relaxes,
//                               then escalates per its spin policy.
//   P::rnd(bound) / P::flip() — deterministic per-processor randomness.
//   P::kSimulated             — constexpr bool.
//   P::try_alloc(bytes)       — raw storage for a structure node, or
//                               nullptr on exhaustion. Algorithms that
//                               allocate on their hot paths must go through
//                               this (placement-new into it) and unwind
//                               cleanly on nullptr — the simulator injects
//                               failures here (sim/faults.hpp kAllocFail)
//                               and counts outstanding blocks, which is how
//                               the leak/double-free checks in the fault
//                               battery see every allocation.
//   P::dealloc(p, bytes)      — returns try_alloc storage (after destroying
//                               the object placed in it). nullptr is a
//                               no-op; `bytes` must match the allocation.
//   P::heartbeat()            — liveness pulse, called by harnesses between
//                               queue operations. Native: no-op. Sim: feeds
//                               the fault plan's per-processor watchdog, so
//                               a fiber stuck *inside* one operation
//                               (behind a crashed lock holder) is detected
//                               as wedged instead of hanging the run.
//   P::note_lock_acquire(lock, trylock) / P::note_lock_release(lock)
//                             — lock-lifecycle hints emitted by the sync
//                               layer (mcs_lock, ttas_lock). The native
//                               backend ignores them; the simulator feeds
//                               them to the lock-order deadlock checker
//                               when race detection is on (DESIGN.md §10).
//                               `trylock` marks non-blocking acquisitions,
//                               which join the held set but add no
//                               lock-order edges (a trylock cannot block,
//                               so it cannot close a deadlock cycle).
//
// ## Memory-ordering contract
//
// Shared data may only be reached through P::Shared<T>; everything else an
// algorithm touches must be processor-local or immutable after
// construction (Core Guidelines CP.2/CP.3).
//
// Shared<T> exposes C++ memory orders explicitly; the unsuffixed
// operations remain sequentially consistent, so un-annotated code keeps
// its pre-contract meaning:
//
//   T    load()                    — seq_cst
//   T    load_acquire()
//   T    load_relaxed()
//   void store(T)                  — seq_cst
//   void store_release(T)
//   void store_relaxed(T)
//   T    exchange(T, MemOrder = kSeqCst)
//   bool compare_exchange(T& expected, T desired)          — seq_cst
//   bool compare_exchange(T& expected, T desired,
//                         MemOrder success, MemOrder failure)
//   T    fetch_add(T, MemOrder = kSeqCst)   (integral T only)
//   T    fetch_sub(T, MemOrder = kSeqCst)   (integral T only)
//
// The orders are *annotations of intent with teeth on both backends*: the
// native backend maps them 1:1 onto std::atomic orders (unless built with
// -DFPQ_FORCE_SEQ_CST, the before/after measurement escape hatch), while
// the simulator executes every access sequentially consistently — its
// fibers interleave at access granularity under a global clock, so relaxed
// annotations cannot weaken it. An algorithm is therefore correct iff it
// is correct on the *native* mapping. Three checks enforce that: the TSan
// gate (`ctest -L native` on a -DFPQ_SANITIZE=thread build) and
// tests/test_memory_order.cpp validate the native mapping, and the
// simulator's happens-before race detector (src/sim/race_detector.hpp,
// `ctest -L race`) checks that the *declared* orders alone establish the
// happens-before edges each protocol needs — it derives HB only from the
// annotations, so a relaxed store whose visibility silently leans on the
// simulator's sequential consistency is reported as a race. DESIGN.md §8
// records the per-primitive contract; §10 the detector's HB model.
#pragma once

#include <concepts>
#include <cstddef>
#include <type_traits>

#include "common/memorder.hpp"
#include "common/types.hpp"

namespace fpq {

template <class T>
concept SharedWord = std::is_trivially_copyable_v<T> && sizeof(T) <= 8 &&
                     std::equality_comparable<T>;

template <class P>
concept Platform = requires(typename P::template Shared<u64>& w, u64& e) {
  { P::kSimulated } -> std::convertible_to<bool>;
  { w.load() } -> std::same_as<u64>;
  { w.load_acquire() } -> std::same_as<u64>;
  { w.load_relaxed() } -> std::same_as<u64>;
  w.store(u64{});
  w.store_release(u64{});
  w.store_relaxed(u64{});
  { w.exchange(u64{}, MemOrder::kAcqRel) } -> std::same_as<u64>;
  { w.compare_exchange(e, u64{}) } -> std::same_as<bool>;
  { w.compare_exchange(e, u64{}, MemOrder::kAcqRel, MemOrder::kRelaxed) } -> std::same_as<bool>;
  { w.fetch_add(u64{}, MemOrder::kAcqRel) } -> std::same_as<u64>;
  { w.fetch_sub(u64{}, MemOrder::kAcqRel) } -> std::same_as<u64>;
  P::note_lock_acquire(static_cast<const void*>(nullptr), bool{});
  P::note_lock_release(static_cast<const void*>(nullptr));
  { P::try_alloc(std::size_t{}) } -> std::same_as<void*>;
  P::dealloc(static_cast<void*>(nullptr), std::size_t{});
  P::heartbeat();
};

} // namespace fpq
