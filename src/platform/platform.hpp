// The Platform policy: the contract every concurrent algorithm in this
// library is written against. Two implementations exist —
//
//   * SimPlatform    (platform/sim.hpp)    — the paper's evaluation vehicle:
//     a simulated Alewife-like ccNUMA; latencies are modeled cycles.
//   * NativePlatform (platform/native.hpp) — std::atomic + std::thread;
//     latencies are steady_clock nanoseconds.
//
// A Platform P provides:
//
//   P::Shared<T>   — a single shared word (T trivially copyable, <= 8 bytes,
//                    equality comparable) with:
//                      T    load() const;
//                      void store(T);
//                      T    exchange(T);
//                      bool compare_exchange(T& expected, T desired);
//                      T    fetch_add(T)      (integral T only)
//   P::run(nprocs, fn, seed)  — execute fn(ProcId) on nprocs processors.
//   P::self() / P::nprocs()   — processor identity within a run.
//   P::now()                  — monotone per-processor clock.
//   P::delay(cycles)          — local work, no memory traffic.
//   P::pause()                — spin-loop politeness hint.
//   P::spin_until(word, pred) — repeatedly read `word` until pred(value);
//                               the simulator parks the fiber until the
//                               word is written, like spinning on a cached
//                               line; native backends spin-and-pause.
//   P::rnd(bound) / P::flip() — deterministic per-processor randomness.
//   P::kSimulated             — constexpr bool.
//
// Shared data may only be reached through P::Shared<T>; everything else an
// algorithm touches must be processor-local or immutable after
// construction (Core Guidelines CP.2/CP.3). All Shared operations are
// sequentially consistent.
#pragma once

#include <concepts>
#include <type_traits>

#include "common/types.hpp"

namespace fpq {

template <class T>
concept SharedWord = std::is_trivially_copyable_v<T> && sizeof(T) <= 8 &&
                     std::equality_comparable<T>;

template <class P>
concept Platform = requires {
  { P::kSimulated } -> std::convertible_to<bool>;
  typename P::template Shared<u64>;
};

} // namespace fpq
