// NativePlatform: the Platform policy over std::atomic and std::thread.
// Used for correctness testing under real concurrency and for the native
// benchmarks (bench/native_pq, bench/native_components); the paper-scale
// experiments use SimPlatform.
//
// This backend gives the memory-ordering contract its teeth: MemOrder
// annotations map 1:1 onto std::atomic orders. Building with
// -DFPQ_FORCE_SEQ_CST collapses every annotation back to seq_cst — the
// escape hatch the benchmarks use to measure what the explicit orders buy
// (and a bisection aid if a relaxation is ever suspect).
#pragma once

#include <atomic>
#include <functional>
#include <new>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "platform/platform.hpp"

namespace fpq {

/// MemOrder -> std::memory_order. With FPQ_FORCE_SEQ_CST everything is
/// sequentially consistent, annotations included.
constexpr std::memory_order to_std_order(MemOrder o) {
#ifdef FPQ_FORCE_SEQ_CST
  (void)o;
  return std::memory_order_seq_cst;
#else
  switch (o) {
    case MemOrder::kRelaxed: return std::memory_order_relaxed;
    case MemOrder::kAcquire: return std::memory_order_acquire;
    case MemOrder::kRelease: return std::memory_order_release;
    case MemOrder::kAcqRel: return std::memory_order_acq_rel;
    case MemOrder::kSeqCst: return std::memory_order_seq_cst;
  }
  return std::memory_order_seq_cst;
#endif
}

/// CAS failure orders may not be release-flavored; clamp to the legal load
/// order so callers can pass the success order's natural weakening.
constexpr std::memory_order to_std_failure_order(MemOrder o) {
#ifdef FPQ_FORCE_SEQ_CST
  (void)o;
  return std::memory_order_seq_cst;
#else
  switch (o) {
    case MemOrder::kRelease: return std::memory_order_relaxed;
    case MemOrder::kAcqRel: return std::memory_order_acquire;
    default: return to_std_order(o);
  }
#endif
}

template <SharedWord T>
class NativeShared {
 public:
  NativeShared() : v_{} {}
  explicit NativeShared(T v) : v_(v) {}
  NativeShared(const NativeShared&) = delete;
  NativeShared& operator=(const NativeShared&) = delete;

  T load() const { return v_.load(std::memory_order_seq_cst); }
  T load_acquire() const { return v_.load(to_std_order(MemOrder::kAcquire)); }
  T load_relaxed() const { return v_.load(to_std_order(MemOrder::kRelaxed)); }

  void store(T v) { v_.store(v, std::memory_order_seq_cst); }
  void store_release(T v) { v_.store(v, to_std_order(MemOrder::kRelease)); }
  void store_relaxed(T v) { v_.store(v, to_std_order(MemOrder::kRelaxed)); }

  T exchange(T nv, MemOrder o = MemOrder::kSeqCst) { return v_.exchange(nv, to_std_order(o)); }

  bool compare_exchange(T& expected, T desired) {
    return v_.compare_exchange_strong(expected, desired, std::memory_order_seq_cst);
  }
  bool compare_exchange(T& expected, T desired, MemOrder success, MemOrder failure) {
    return v_.compare_exchange_strong(expected, desired, to_std_order(success),
                                      to_std_failure_order(failure));
  }

  T fetch_add(T d, MemOrder o = MemOrder::kSeqCst)
    requires std::integral<T>
  {
    return v_.fetch_add(d, to_std_order(o));
  }
  T fetch_sub(T d, MemOrder o = MemOrder::kSeqCst)
    requires std::integral<T>
  {
    return v_.fetch_sub(d, to_std_order(o));
  }

 private:
  std::atomic<T> v_;
};

struct NativePlatform {
  template <class T>
  using Shared = NativeShared<T>;

  static constexpr bool kSimulated = false;

  /// Contention policy for spin loops (pause/spin_until). A spinner relaxes
  /// the core for `relax_spins` consecutive iterations, then escalates —
  /// yielding the OS thread (the right call on oversubscribed machines,
  /// where the lock holder needs the core) or briefly sleeping ("park", the
  /// polite choice when threads <= cores and latency matters less than
  /// power). Process-wide; set before starting a run.
  enum class SpinEscalation : u8 { kYield, kSleep };
  struct SpinConfig {
    u32 relax_spins = 64;
    SpinEscalation escalation = SpinEscalation::kYield;
    /// Park length for kSleep, nanoseconds.
    u64 sleep_ns = 50 * 1000;
  };
  static void set_spin_config(const SpinConfig& cfg);
  static const SpinConfig& spin_config();

  /// Runs fn(ProcId) on `nprocs` OS threads, started together behind a
  /// barrier. Rethrows the first exception a worker threw. When
  /// set_pin_threads(true) was called, worker i is pinned to hardware CPU
  /// (i mod hardware_concurrency) — stabilizes benchmark numbers on
  /// multi-socket boxes; pointless (but harmless) on one core.
  static void run(u32 nprocs, const std::function<void(ProcId)>& fn, u64 seed = 1);
  static void set_pin_threads(bool pin);

  static ProcId self();
  static u32 nprocs();
  /// steady_clock nanoseconds; the unit benchmarks report for this backend.
  static Cycles now();
  /// Local work: an abstract-work spin of `c` iterations.
  static void delay(Cycles c);

  /// One polite spin iteration: the cpu's pause/yield instruction. Never
  /// gives up the OS thread.
  static void relax() {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield" ::: "memory");
#else
    std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
  }

  /// Spin hint with escalation: cpu-relax for the first relax_spins calls
  /// in a row, then yield/park once and start over. Spin loops that know
  /// their own iteration count should prefer spin_until.
  static void pause();

  static u64 rnd(u64 bound);
  static bool flip();

  /// Lock-lifecycle hints exist for the simulator's lock-order checker;
  /// native execution has nothing to record (TSan sees the real locks).
  static void note_lock_acquire(const void*, bool) {}
  static void note_lock_release(const void*) {}

  /// Node storage (platform.hpp contract). Plain nothrow heap: the sanitizer
  /// builds are the native leak/double-free oracle, so no counting here.
  static void* try_alloc(std::size_t bytes) { return ::operator new(bytes, std::nothrow); }
  static void dealloc(void* p, std::size_t) {
    ::operator delete(p); // contract-lint: allow(naked-reclaim) platform allocator
  }

  /// Liveness pulse: the fault watchdog is a simulator concept.
  static void heartbeat() {}

  /// Binds the calling thread to a processor id without run() — for
  /// embedding in external thread pools. Pair with release().
  static void adopt(ProcId id, u32 nprocs, u64 seed = 1);
  static void release();

  /// Acquire-spins on `w` until pred holds. Relaxes for the configured
  /// budget, then escalates (yield/park) between probes.
  template <SharedWord T, class Pred>
  static T spin_until(const Shared<T>& w, Pred pred) {
    const SpinConfig& cfg = spin_config();
    u32 spins = 0;
    for (;;) {
      T v = w.load_acquire();
      if (pred(v)) return v;
      if (++spins <= cfg.relax_spins)
        relax();
      else
        escalate();
    }
  }

 private:
  /// Give up the core once, per the configured escalation.
  static void escalate();
};

static_assert(Platform<NativePlatform>);

} // namespace fpq
