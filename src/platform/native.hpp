// NativePlatform: the Platform policy over std::atomic and std::thread.
// Used for correctness testing under real concurrency and for the native
// component benchmarks; the paper-scale experiments use SimPlatform.
#pragma once

#include <atomic>
#include <functional>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "platform/platform.hpp"

namespace fpq {

template <SharedWord T>
class NativeShared {
 public:
  NativeShared() : v_{} {}
  explicit NativeShared(T v) : v_(v) {}
  NativeShared(const NativeShared&) = delete;
  NativeShared& operator=(const NativeShared&) = delete;

  T load() const { return v_.load(std::memory_order_seq_cst); }
  void store(T v) { v_.store(v, std::memory_order_seq_cst); }
  T exchange(T nv) { return v_.exchange(nv, std::memory_order_seq_cst); }
  bool compare_exchange(T& expected, T desired) {
    return v_.compare_exchange_strong(expected, desired, std::memory_order_seq_cst);
  }
  T fetch_add(T d)
    requires std::integral<T>
  {
    return v_.fetch_add(d, std::memory_order_seq_cst);
  }

 private:
  std::atomic<T> v_;
};

struct NativePlatform {
  template <class T>
  using Shared = NativeShared<T>;

  static constexpr bool kSimulated = false;

  /// Runs fn(ProcId) on `nprocs` OS threads, started together behind a
  /// barrier. Rethrows the first exception a worker threw.
  static void run(u32 nprocs, const std::function<void(ProcId)>& fn, u64 seed = 1);

  static ProcId self();
  static u32 nprocs();
  /// steady_clock nanoseconds; the unit benchmarks report for this backend.
  static Cycles now();
  /// Local work: an abstract-work spin of `c` iterations.
  static void delay(Cycles c);
  /// Spin hint. On oversubscribed machines forward progress of the lock
  /// holder matters more than latency, so this yields the OS thread.
  static void pause();
  static u64 rnd(u64 bound);
  static bool flip();

  /// Binds the calling thread to a processor id without run() — for
  /// embedding in external thread pools (e.g. google-benchmark's
  /// ->Threads(n) workers). Pair with release().
  static void adopt(ProcId id, u32 nprocs, u64 seed = 1);
  static void release();

  template <SharedWord T, class Pred>
  static T spin_until(const Shared<T>& w, Pred pred) {
    for (;;) {
      T v = w.load();
      if (pred(v)) return v;
      pause();
    }
  }
};

static_assert(Platform<NativePlatform>);

} // namespace fpq
