// SimPlatform: the Platform policy backed by the discrete-event ccNUMA
// simulator (src/sim). All operations are free function calls into the
// engine owned by the enclosing SimPlatform::run / sim::Engine::run; when
// invoked outside a simulated processor (setup, teardown, verification)
// the data effect still happens but no time is charged.
#pragma once

#include <functional>
#include <new>
#include <unordered_set>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "platform/platform.hpp"
#include "sim/engine.hpp"

namespace fpq {

// The simulator executes every Shared access sequentially consistently:
// fibers interleave at access granularity under a single global clock, so
// there is nothing to reorder and the MemOrder annotations never change a
// run's outcome. They are not ignored, though: every access forwards its
// *declared* order to the engine, where the race detector
// (MachineParams::race_detect, DESIGN.md §10) rebuilds happens-before from
// the declarations alone and reports reorderings the native std::atomic
// mapping would be free to perform. Timing is identical either way.
template <SharedWord T>
class SimShared {
 public:
  SimShared() : v_{} {}
  explicit SimShared(T v) : v_(v) {}
  SimShared(const SimShared&) = delete;
  SimShared& operator=(const SimShared&) = delete;

  T load() const {
    T v = v_;
    touch(sim::AccessKind::Read, MemOrder::kSeqCst);
    return v;
  }
  T load_acquire() const {
    T v = v_;
    touch(sim::AccessKind::Read, MemOrder::kAcquire);
    return v;
  }
  T load_relaxed() const {
    T v = v_;
    touch(sim::AccessKind::Read, MemOrder::kRelaxed);
    return v;
  }

  void store(T v) {
    v_ = v;
    touch(sim::AccessKind::Write, MemOrder::kSeqCst);
  }
  void store_release(T v) {
    v_ = v;
    touch(sim::AccessKind::Write, MemOrder::kRelease);
  }
  void store_relaxed(T v) {
    v_ = v;
    touch(sim::AccessKind::Write, MemOrder::kRelaxed);
  }

  T exchange(T nv, MemOrder order = MemOrder::kSeqCst) {
    T old = v_;
    v_ = nv;
    touch(sim::AccessKind::Rmw, order);
    return old;
  }

  bool compare_exchange(T& expected, T desired) {
    return compare_exchange(expected, desired, MemOrder::kSeqCst, MemOrder::kSeqCst);
  }
  bool compare_exchange(T& expected, T desired, MemOrder success, MemOrder failure) {
    // Fault injection (sim/faults.hpp kCasFail): a spuriously failed CAS,
    // decided *before* the data effect. It behaves exactly like a real
    // failure — expected is refreshed, the access is charged as a read at
    // the failure order — so callers written for weak CAS retry correctly.
    if (sim::Engine* e = sim::Engine::current(); e && e->inject_cas_failure()) {
      expected = v_;
      touch(sim::AccessKind::Rmw, failure, false);
      return false;
    }
    const bool ok = (v_ == expected);
    if (ok)
      v_ = desired;
    else
      expected = v_;
    // A failed CAS still costs a round trip for exclusive ownership, but
    // HB-wise it is a read at the failure order.
    touch(sim::AccessKind::Rmw, ok ? success : failure, ok);
    return ok;
  }

  T fetch_add(T d, MemOrder order = MemOrder::kSeqCst)
    requires std::integral<T>
  {
    T old = v_;
    v_ = static_cast<T>(old + d);
    touch(sim::AccessKind::Rmw, order);
    return old;
  }

  T fetch_sub(T d, MemOrder order = MemOrder::kSeqCst)
    requires std::integral<T>
  {
    T old = v_;
    v_ = static_cast<T>(old - d);
    touch(sim::AccessKind::Rmw, order);
    return old;
  }

 private:
  friend struct SimPlatform;

  void touch(sim::AccessKind k, MemOrder order, bool rmw_applied = true) const {
    if (sim::Engine* e = sim::Engine::current()) e->on_access(&v_, k, order, rmw_applied);
  }
  const void* word_addr() const { return &v_; }

  T v_;
};

struct SimPlatform {
  template <class T>
  using Shared = SimShared<T>;

  static constexpr bool kSimulated = true;

  /// Runs fn(ProcId) on `nprocs` simulated processors of a fresh machine.
  static void run(u32 nprocs, const std::function<void(ProcId)>& fn, u64 seed = 1,
                  sim::MachineParams params = {}) {
    sim::Engine engine(nprocs, params, seed);
    engine.run(fn);
  }

  static sim::Engine& engine() {
    sim::Engine* e = sim::Engine::current();
    FPQ_ASSERT_MSG(e != nullptr, "SimPlatform used outside a simulation");
    return *e;
  }

  static ProcId self() { return engine().self(); }
  static u32 nprocs() { return engine().nprocs(); }
  static Cycles now() { return engine().now(); }
  static void delay(Cycles c) { engine().delay(c); }
  static void pause() { engine().pause(); }
  /// One spin iteration of local work; a simulated processor cannot yield
  /// the (simulated) core, so relax == a cycle of delay.
  static void relax() { engine().delay(1); }
  static u64 rnd(u64 bound) { return engine().rng().below(bound); }
  static bool flip() { return engine().rng().flip(); }

  /// Allocation bookkeeping for the fault battery's leak/double-free
  /// checks: the sim runs on one host thread, so plain counters suffice.
  /// Snapshot before/after a scenario; outstanding() must return to the
  /// snapshot value and `double_frees` must stay 0.
  struct AllocCounters {
    u64 allocs = 0;
    u64 frees = 0;
    u64 bytes_allocated = 0;
    u64 bytes_freed = 0;
    u64 failed = 0;      // injected (or real) nullptr returns
    u64 double_frees = 0; // dealloc of a pointer not currently live
    u64 outstanding() const { return allocs - frees; }
  };
  static AllocCounters& alloc_counters() {
    static AllocCounters c;
    return c;
  }
  static std::unordered_set<const void*>& live_allocs() {
    static std::unordered_set<const void*> s;
    return s;
  }

  /// Node storage with fault injection (sim/faults.hpp kAllocFail) and
  /// leak/double-free accounting. See platform.hpp for the contract.
  static void* try_alloc(std::size_t bytes) {
    AllocCounters& c = alloc_counters();
    if (sim::Engine* e = sim::Engine::current(); e && e->inject_alloc_failure()) {
      ++c.failed;
      return nullptr;
    }
    void* p = ::operator new(bytes, std::nothrow);
    if (p == nullptr) {
      ++c.failed;
      return nullptr;
    }
    ++c.allocs;
    c.bytes_allocated += bytes;
    live_allocs().insert(p);
    return p;
  }
  static void dealloc(void* p, std::size_t bytes) {
    if (p == nullptr) return;
    AllocCounters& c = alloc_counters();
    if (live_allocs().erase(p) == 0) {
      ++c.double_frees;
      return; // refuse the free: keeps the canary visible, not a crash
    }
    ++c.frees;
    c.bytes_freed += bytes;
    ::operator delete(p); // contract-lint: allow(naked-reclaim) platform allocator
  }

  /// Liveness pulse for the fault watchdog (no time charged; no-op outside
  /// a simulation or without a plan).
  static void heartbeat() {
    if (sim::Engine* e = sim::Engine::current()) e->heartbeat();
  }

  /// Lock-lifecycle hints (see platform.hpp): feed the engine's lock-order
  /// checker. No time is charged; outside a simulation they are no-ops.
  static void note_lock_acquire(const void* lock, bool trylock) {
    if (sim::Engine* e = sim::Engine::current()) e->note_lock_acquire(lock, trylock);
  }
  static void note_lock_release(const void* lock) {
    if (sim::Engine* e = sim::Engine::current()) e->note_lock_release(lock);
  }

  /// Spin on a shared word until pred(value). The fiber is parked on the
  /// word's directory line between checks; a version counter closes the
  /// check-then-park race (see Engine::wait_on).
  template <SharedWord T, class Pred>
  static T spin_until(const Shared<T>& w, Pred pred) {
    sim::Engine& e = engine();
    for (;;) {
      const u64 ver = e.line_version(w.word_addr());
      // Acquire, matching the native backend: the satisfying value is a
      // release-published flag and the caller reads data behind it.
      T v = w.load_acquire();
      if (pred(v)) return v;
      e.wait_on(w.word_addr(), ver);
    }
  }
};

static_assert(Platform<SimPlatform>);

} // namespace fpq
