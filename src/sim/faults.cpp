#include "sim/faults.hpp"

#include <charconv>
#include <stdexcept>

namespace fpq::sim {

namespace {

u64 window(const FaultEvent& e) { return e.count == 0 ? 1 : e.count; }

[[noreturn]] void bad(std::string_view s, const char* why) {
  throw std::invalid_argument("fault plan \"" + std::string(s) + "\": " + why);
}

u64 parse_u64(std::string_view s, std::string_view& rest, std::string_view whole) {
  u64 v = 0;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [p, ec] = std::from_chars(first, last, v);
  if (ec != std::errc{} || p == first) bad(whole, "expected a number");
  rest = std::string_view(p, static_cast<std::size_t>(last - p));
  return v;
}

FaultEvent parse_event(std::string_view tok, std::string_view whole) {
  FaultEvent e;
  bool known = false;
  for (FaultKind k : {FaultKind::kCrash, FaultKind::kStall, FaultKind::kCasFail,
                      FaultKind::kAllocFail}) {
    const std::string_view name = to_string(k);
    if (tok.size() > name.size() && tok.substr(0, name.size()) == name &&
        tok[name.size()] == '@') {
      e.kind = k;
      tok.remove_prefix(name.size() + 1);
      known = true;
      break;
    }
  }
  if (!known) bad(whole, "unknown fault kind (want crash/stall/casfail/allocfail)");
  if (tok.empty() || tok[0] != 'p') bad(whole, "expected p<proc>");
  tok.remove_prefix(1);
  e.proc = static_cast<ProcId>(parse_u64(tok, tok, whole));
  if (tok.empty() || tok[0] != 'a') bad(whole, "expected a<ordinal>");
  tok.remove_prefix(1);
  e.at = parse_u64(tok, tok, whole);
  if (!tok.empty()) {
    if (tok[0] != 'n') bad(whole, "expected n<count> or end of event");
    tok.remove_prefix(1);
    e.count = parse_u64(tok, tok, whole);
    if (!tok.empty()) bad(whole, "trailing junk after n<count>");
  }
  return e;
}

} // namespace

std::string to_string(const FaultPlan& plan) {
  if (plan.events.empty()) return "none";
  std::string out;
  for (const FaultEvent& e : plan.events) {
    if (!out.empty()) out += ',';
    out += to_string(e.kind);
    out += "@p";
    out += std::to_string(e.proc);
    out += 'a';
    out += std::to_string(e.at);
    if (e.count != 0) {
      out += 'n';
      out += std::to_string(e.count);
    }
  }
  return out;
}

FaultPlan fault_plan_from_string(std::string_view s) {
  FaultPlan plan;
  if (s.empty() || s == "none") return plan;
  while (!s.empty()) {
    const std::size_t comma = s.find(',');
    const std::string_view tok = s.substr(0, comma);
    if (tok.empty()) bad(s, "empty event");
    plan.events.push_back(parse_event(tok, s));
    if (comma == std::string_view::npos) {
      s = {};
    } else {
      s = s.substr(comma + 1);
      if (s.empty()) bad(tok, "trailing comma");
    }
  }
  return plan;
}

FaultEngine::Decision FaultEngine::on_access(ProcId p, u64 ordinal) const {
  Decision d;
  for (const FaultEvent& e : plan_.events) {
    if (e.proc != p) continue;
    switch (e.kind) {
      case FaultKind::kCrash:
        if (ordinal >= e.at) return {Action::kCrash, 0};
        break;
      case FaultKind::kStall:
        if (e.count == 0) {
          if (ordinal >= e.at) return {Action::kStallForever, 0};
        } else if (ordinal == e.at) {
          d.stall += e.count;
        }
        break;
      case FaultKind::kCasFail:
      case FaultKind::kAllocFail: break; // handled on their own paths
    }
  }
  return d;
}

// Crash/stall-forever match at `ordinal >= at`, not `==`: when a victim
// resumes in a later Engine::run() its stream continues above `at`, and a
// plan pinned to an exact ordinal would silently never fire — firing at
// the first opportunity keeps "kill proc 1 somewhere around access N"
// plans honest under sweeps that vary N past the victim's access count.

bool FaultEngine::fail_cas(ProcId p, u64 ordinal) const {
  for (const FaultEvent& e : plan_.events) {
    if (e.kind == FaultKind::kCasFail && e.proc == p && ordinal >= e.at &&
        ordinal < e.at + window(e))
      return true;
  }
  return false;
}

bool FaultEngine::fail_alloc(ProcId p) {
  if (alloc_ordinal_.size() <= p) alloc_ordinal_.resize(p + 1, 0);
  const u64 ordinal = alloc_ordinal_[p]++;
  for (const FaultEvent& e : plan_.events) {
    if (e.kind == FaultKind::kAllocFail && e.proc == p && ordinal >= e.at &&
        ordinal < e.at + window(e))
      return true;
  }
  return false;
}

} // namespace fpq::sim
