// Cooperative user-level contexts for the simulator. Each simulated
// processor executes the *real* algorithm code on its own fiber; the engine
// interleaves fibers at shared-memory access boundaries, which is the same
// direct-execution technique Proteus used.
#pragma once

#include <ucontext.h>

#include <exception>
#include <functional>
#include <memory>

namespace fpq::sim {

class Fiber {
 public:
  Fiber() = default;
  ~Fiber() = default;
  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Prepares the fiber to run `fn` on its own stack. Must be called exactly
  /// once before the first switch_in().
  void start(std::function<void()> fn, std::size_t stack_bytes);

  /// Transfers control from the scheduler into the fiber. Returns when the
  /// fiber yields or finishes. `from` receives the scheduler's context.
  void switch_in(ucontext_t* from);

  /// Transfers control from inside the fiber back to whoever switched it in.
  void yield_out();

  bool done() const { return done_; }

  /// Exception thrown by the fiber body, if any (rethrown by the engine
  /// after the run completes so test assertions surface normally).
  std::exception_ptr error() const { return error_; }

 private:
  static void trampoline(unsigned hi, unsigned lo);
  void body();

  ucontext_t ctx_{};
  ucontext_t* return_ctx_ = nullptr;
  std::unique_ptr<char[]> stack_;
  std::function<void()> fn_;
  bool started_ = false;
  bool done_ = false;
  std::exception_ptr error_;
};

} // namespace fpq::sim
