#include "sim/fiber.hpp"

#include "common/assert.hpp"
#include "common/types.hpp"

namespace fpq::sim {

void Fiber::start(std::function<void()> fn, std::size_t stack_bytes) {
  FPQ_ASSERT_MSG(!started_, "Fiber::start called twice");
  fn_ = std::move(fn);
  stack_ = std::make_unique<char[]>(stack_bytes);
  FPQ_ASSERT(getcontext(&ctx_) == 0);
  ctx_.uc_stack.ss_sp = stack_.get();
  ctx_.uc_stack.ss_size = stack_bytes;
  ctx_.uc_link = nullptr; // fibers never fall off the end; body() yields out
  // makecontext only passes ints; smuggle `this` through two 32-bit halves.
  auto self = reinterpret_cast<std::uintptr_t>(this);
  makecontext(&ctx_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 2,
              static_cast<unsigned>(self >> 32),
              static_cast<unsigned>(self & 0xffffffffu));
  started_ = true;
}

void Fiber::trampoline(unsigned hi, unsigned lo) {
  auto self = reinterpret_cast<Fiber*>((static_cast<std::uintptr_t>(hi) << 32) |
                                       static_cast<std::uintptr_t>(lo));
  self->body();
}

void Fiber::body() {
  try {
    fn_();
  } catch (...) {
    error_ = std::current_exception();
  }
  done_ = true;
  yield_out();
  FPQ_ASSERT_MSG(false, "finished fiber resumed");
}

void Fiber::switch_in(ucontext_t* from) {
  FPQ_ASSERT_MSG(started_ && !done_, "switching into an unstarted or finished fiber");
  return_ctx_ = from;
  FPQ_ASSERT(swapcontext(from, &ctx_) == 0);
}

void Fiber::yield_out() {
  FPQ_ASSERT(return_ctx_ != nullptr);
  FPQ_ASSERT(swapcontext(&ctx_, return_ctx_) == 0);
}

} // namespace fpq::sim
