// Timing and topology parameters of the simulated multiprocessor.
//
// The machine modeled is a distributed-shared-memory ccNUMA in the style of
// the MIT Alewife, which the paper targeted through the Proteus simulator:
// processor/memory nodes on a 2-D mesh, a directory-based invalidation
// protocol, and memory modules that serve one request at a time (the
// serialization that produces hot spots, Pfister & Norton '85).
//
// Absolute constants are calibration knobs, not claims: the reproduction
// compares curve *shapes* against the paper, and the tests pin down the
// qualitative properties (hits are cheap, hot modules queue, invalidations
// scale with sharers) rather than specific cycle counts.
#pragma once

#include <string_view>

#include "common/types.hpp"

namespace fpq::sim {

/// How the engine picks the next fiber to run (see Engine). The default
/// reproduces the paper's measurement conditions; the other policies
/// deliberately distort time to reach interleavings the smallest-clock
/// order can never produce (schedule exploration, src/verify/stress.hpp).
enum class SchedulePolicy : u8 {
  /// Run the runnable fiber with the smallest local clock (measurement
  /// mode; shared effects apply in nondecreasing simulated time).
  kSmallestClock,
  /// Smallest-clock order, but any scheduling decision may instead push
  /// the chosen fiber back by a random delay. Uniform perturbation: every
  /// fiber is a candidate for preemption at every scheduling point.
  kRandomPreempt,
  /// Adversarial: the *leader* (the unique smallest-clock fiber) is
  /// probabilistically held back behind the second-place fiber, keeping
  /// operations maximally overlapped — the "delay the front-runner"
  /// heuristic that concentrates rare reorderings.
  kDelayLeader,
  /// Systematic: the schedule is dictated by a sim::Explorer
  /// (sim/explore.hpp) that re-executes the scenario under every
  /// DPOR-non-redundant interleaving. Unlike the randomized policies above
  /// this is not a perturbation of smallest-clock order — the engine hands
  /// every scheduling decision to the explorer (Engine::set_explorer).
  kExhaustive,
};

constexpr std::string_view to_string(SchedulePolicy p) {
  switch (p) {
    case SchedulePolicy::kSmallestClock: return "smallest-clock";
    case SchedulePolicy::kRandomPreempt: return "random-preempt";
    case SchedulePolicy::kDelayLeader: return "delay-leader";
    case SchedulePolicy::kExhaustive: return "exhaustive";
  }
  return "?";
}

/// Schedule-exploration knobs; inert at the defaults (policy =
/// kSmallestClock, access_jitter = 0), so existing tests and benchmarks
/// are untouched. Perturbations draw from a dedicated scheduler RNG, so
/// enabling them never shifts the per-processor workload RNG streams.
struct SchedParams {
  SchedulePolicy policy = SchedulePolicy::kSmallestClock;
  /// Probability (per 1000) that a perturbing policy acts on a decision.
  u32 perturb_permille = 250;
  /// Injected scheduling delays are uniform in [1, max_delay].
  Cycles max_delay = 256;
  /// When nonzero, every shared-memory access is charged an extra uniform
  /// [0, access_jitter) cycles before it issues — randomizes arrival order
  /// at the memory modules independently of the policy.
  Cycles access_jitter = 0;
};

struct MachineParams {
  /// Cost of a load/store that hits in the processor's cache.
  Cycles t_hit = 2;
  /// Memory-module service time for a clean miss.
  Cycles t_mem = 30;
  /// Module occupancy: the module is busy this long per request; concurrent
  /// requests to one module queue behind each other. This is the hot-spot
  /// mechanism. Calibrated so the reference algorithms reproduce the
  /// paper's qualitative curves (see EXPERIMENTS.md, "Calibration").
  Cycles t_occ = 25;
  /// Fixed network cost of entering/leaving the interconnect (one way).
  Cycles t_net_base = 4;
  /// Per-mesh-hop network cost (one way).
  Cycles t_hop = 1;
  /// Extra service time when the line is dirty in another processor's cache
  /// (three-hop fetch).
  Cycles t_dirty_fetch = 30;
  /// Fixed cost of issuing invalidations from the directory.
  Cycles t_inv_base = 8;
  /// Additional cost per invalidated sharer.
  Cycles t_inv_per_sharer = 2;
  /// Cost of a processor-local pause (spin-loop hint).
  Cycles t_pause = 4;

  /// Stack size for each simulated processor's fiber.
  std::size_t fiber_stack_bytes = 128 * 1024;

  /// Schedule-exploration settings (default: plain smallest-clock order).
  SchedParams sched;

  /// Attach the happens-before race detector + lock-order checker
  /// (sim/race_detector.hpp) to the run. Off by default: detection tracks a
  /// vector clock per fiber and epochs per word, which costs memory and
  /// time the measurement runs must not pay. Timing is unaffected either
  /// way — the detector observes accesses, it never delays them.
  bool race_detect = false;
};

/// Hard cap baked into the inline sharer bitsets.
inline constexpr u32 kMaxSimProcs = 1024;

} // namespace fpq::sim
