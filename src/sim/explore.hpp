// Stateless model checking for the simulator: dynamic partial-order
// reduction (DPOR) with sleep sets and an optional preemption bound.
//
// The checker is *stateless* in the Godefroid sense: it never snapshots
// machine state. Each explored execution rebuilds the scenario from scratch
// (fresh queue, fresh Engine with the same seed — so every processor's
// workload RNG stream is identical across executions) and the Explorer
// replays a recorded choice prefix deterministically before diverging at
// the deepest choice point with an untried backtrack candidate. This is
// Flanagan & Godefroid's DPOR (POPL 2005) driven by the engine's
// instrumented access path: every Shared access is a scheduling point.
//
// What counts as happens-before here is deliberately NOT the race
// detector's relation. The detector derives HB from *declared* memory
// orders — including a global seq_cst clock that orders accesses to
// different words. That is exactly right for finding under-annotations and
// exactly wrong for pruning schedules: a cross-word seq_cst edge would let
// DPOR skip reorderings that are observably different. The Explorer reuses
// the detector's VectorClock container but builds its own relation from
// dependence only: program order, plus write->access / access->write edges
// on the *same word*. That relation is sound for pruning on this
// sequentially consistent simulator regardless of annotations (DESIGN.md
// §15).
#pragma once

#include <functional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "sim/memory.hpp"
#include "sim/params.hpp"
#include "sim/race_detector.hpp" // VectorClock, Epoch

namespace fpq::sim {

class Engine;

struct ExploreParams {
  /// Maximum number of preemptions (scheduling a different processor while
  /// the previous one is still enabled) per execution; 0 = unbounded, i.e.
  /// full DPOR. With a bound, absence of violations is qualified (see
  /// ExploreStats::preempt_bound_hit).
  u32 preempt_bound = 0;
  /// Stop after this many executions; 0 = unbounded.
  u64 max_execs = u64{1} << 20;
  /// Per-execution scheduling-point budget; 0 = unbounded. Exceeding it
  /// switches the execution to free-running completion and ends the
  /// exploration (a scenario that long is out of litmus scope).
  u64 max_steps = u64{1} << 20;
};

/// Honest coverage accounting: a "clean" exploration is only a proof when
/// complete() — no budget tripped and no bound pruned a candidate.
struct ExploreStats {
  u64 executions = 0;    // executions run to completion
  u64 sleep_pruned = 0;  // backtrack candidates killed by sleep sets
  u64 sleep_blocked = 0; // executions that went sleep-redundant mid-run
  u64 bound_skipped = 0; // backtrack candidates skipped by the bound
  u64 steps = 0;         // total scheduling decisions across executions
  u64 max_depth = 0;     // deepest execution, in scheduling decisions
  bool preempt_bound_hit = false;
  bool exec_budget_hit = false;
  bool step_budget_hit = false;
  bool deadlock = false; // some execution deadlocked (a counterexample)

  /// True when every non-redundant schedule was actually explored.
  bool complete() const {
    return !preempt_bound_hit && !exec_budget_hit && !step_budget_hit;
  }
};

std::string to_string(const ExploreStats& s);

/// The DPOR core. Drives one scenario through every non-redundant schedule:
///
///   Explorer ex(nprocs, params);
///   while (!ex.finished()) {
///     ex.begin_execution();
///     ... build fresh state, run it under an Engine with set_explorer(&ex),
///     ... evaluate oracles
///     ex.end_execution();
///   }
///
/// The scenario must be schedule-deterministic: the only allowed source of
/// divergence between executions is the schedule itself (fixed seed, no
/// fault plans, no wall-clock reads). The Explorer asserts this by
/// checking the enabled set at every replayed choice point.
class Explorer {
 public:
  explicit Explorer(u32 nprocs, ExploreParams params = {});

  /// True once the whole reduced schedule space (or a budget) is exhausted.
  bool finished() const { return finished_; }
  void begin_execution();
  void end_execution();
  const ExploreStats& stats() const { return stats_; }

  /// Did the current (just-finished) execution deadlock?
  bool deadlocked() const { return deadlock_this_exec_; }
  /// 0-based index of the execution in progress (valid between begin/end).
  u64 execution_index() const { return stats_.executions; }

  // ---- Engine-facing interface (called from Engine::run / on_access).

  /// Picks the next processor to run from the enabled set. Replays the
  /// recorded prefix, then extends the stack with new choice points.
  ProcId pick(const std::vector<ProcId>& enabled);
  /// Reports the Shared access the picked processor performed: the visible
  /// event of the current choice point. Slices that park or terminate
  /// without an access report nothing (invisible transitions commute with
  /// everything, so they never create backtrack points).
  void on_event(ProcId p, u64 word, AccessKind kind, bool rmw_applied);
  /// The engine found live-but-blocked fibers with nothing enabled.
  void note_deadlock();

 private:
  /// The visible event of a transition: which word, and whether it may
  /// write. RMWs count as writes even when the CAS failed — the
  /// conservative choice keeps event identity stable across sibling
  /// branches (a CAS that failed in one schedule may succeed in another),
  /// which the sleep-set soundness argument requires.
  struct Event {
    u64 word = 0;
    bool write = false;
    bool valid = false;
  };
  static bool dependent(const Event& a, const Event& b) {
    return a.valid && b.valid && a.word == b.word && (a.write || b.write);
  }

  using SleepEntry = std::pair<ProcId, Event>;

  /// One scheduling decision on the search stack.
  struct Node {
    std::vector<ProcId> enabled;
    ProcId chosen = kNoProc;
    Event ev; // chosen's visible event (once reported)
    std::vector<ProcId> backtrack; // candidates that must be tried here
    std::vector<ProcId> done;      // candidates tried or in progress
    std::vector<SleepEntry> sleep_entry; // sleep set on entry to this node
    /// Explored siblings with their first visible event: feeds the sleep
    /// sets of later siblings (a proc whose recorded move commutes with
    /// everything executed since would only reproduce an explored prefix).
    std::vector<SleepEntry> tried;
  };

  /// Last write / reads-since-last-write per word, with full vector clocks
  /// (exact read->write edges; litmus scale makes the O(P) copies cheap).
  struct ReadRec {
    ProcId proc = kNoProc;
    Epoch epoch;
    u64 node = 0;
    VectorClock clock;
  };
  struct WordState {
    bool has_write = false;
    ProcId writer = kNoProc;
    Epoch wepoch;
    u64 wnode = 0;
    VectorClock wclock;
    std::vector<ReadRec> reads;
  };

  ProcId default_pick(const std::vector<ProcId>& enabled, bool avoid_sleep);
  void note_pick(ProcId p);
  bool sleeping(ProcId p) const;
  /// Preemption count of the prefix 0..j-1 plus the flip of node j to c.
  u64 flip_preemptions(std::size_t j, ProcId c) const;

  u32 nprocs_;
  ExploreParams params_;
  ExploreStats stats_;
  bool finished_ = false;

  std::vector<Node> stack_;
  std::size_t cursor_ = 0; // index of the node receiving the next pick

  // Per-execution state, reset by begin_execution().
  std::vector<VectorClock> clocks_;
  std::unordered_map<u64, WordState> words_;
  std::vector<SleepEntry> live_sleep_;
  ProcId last_pick_ = kNoProc;
  u64 consecutive_ = 0; // scheduling decisions last_pick_ has held in a row
  u64 steps_this_exec_ = 0;
  bool free_running_ = false;
  bool sleep_blocked_this_exec_ = false;
  bool deadlock_this_exec_ = false;
};

/// Outcome of driving a scenario through every non-redundant schedule.
struct ExploreOutcome {
  ExploreStats stats;
  bool violation = false;
  u64 violating_exec = 0; // 0-based index of the failing execution
  std::string diagnostic;
};

/// Scenario body for explore_all: build fresh state, run it on the engine
/// (one or more Engine::run calls), evaluate oracles. Return true when
/// every oracle passed; otherwise fill `diag`. Check
/// `engine.explorer()->deadlocked()` after each run and bail out (the
/// deadlock itself is reported as a violation by the driver).
using ExploreScenario = std::function<bool(Engine& engine, std::string& diag)>;

/// Convenience driver shared by the litmus tests and the stress harness:
/// runs `scenario` once per non-redundant schedule, stopping at the first
/// violation.
ExploreOutcome explore_all(u32 nprocs, const MachineParams& machine, u64 seed,
                           const ExploreParams& params, const ExploreScenario& scenario);

} // namespace fpq::sim
