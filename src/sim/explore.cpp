#include "sim/explore.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/assert.hpp"
#include "sim/engine.hpp"

namespace fpq::sim {

namespace {

bool contains(const std::vector<ProcId>& v, ProcId p) {
  return std::find(v.begin(), v.end(), p) != v.end();
}

void add_unique(std::vector<ProcId>& v, ProcId p) {
  if (!contains(v, p)) v.push_back(p);
}

/// Scheduling decisions one processor may take in a row while others are
/// enabled before the default pick rotates (see Explorer::default_pick).
constexpr u64 kFairSlice = 64;

} // namespace

std::string to_string(const ExploreStats& s) {
  std::ostringstream os;
  os << "executions=" << s.executions << " sleep_pruned=" << s.sleep_pruned
     << " sleep_redundant=" << s.sleep_blocked << " bound_skipped=" << s.bound_skipped
     << " steps=" << s.steps << " max_depth=" << s.max_depth;
  if (s.deadlock) os << " deadlock=1";
  if (s.complete()) {
    os << " complete=yes";
  } else {
    os << " complete=no(";
    const char* sep = "";
    if (s.preempt_bound_hit) {
      os << sep << "preempt-bound";
      sep = ",";
    }
    if (s.exec_budget_hit) {
      os << sep << "exec-budget";
      sep = ",";
    }
    if (s.step_budget_hit) os << sep << "step-budget";
    os << ")";
  }
  return os.str();
}

Explorer::Explorer(u32 nprocs, ExploreParams params)
    : nprocs_(nprocs), params_(params), clocks_(nprocs, VectorClock(nprocs)) {
  FPQ_ASSERT_MSG(nprocs >= 1, "explorer needs at least one processor");
}

void Explorer::begin_execution() {
  FPQ_ASSERT_MSG(!finished_, "begin_execution after exploration finished");
  cursor_ = 0;
  for (auto& c : clocks_) c = VectorClock(nprocs_);
  words_.clear();
  live_sleep_.clear();
  last_pick_ = kNoProc;
  consecutive_ = 0;
  steps_this_exec_ = 0;
  free_running_ = false;
  sleep_blocked_this_exec_ = false;
  deadlock_this_exec_ = false;
}

bool Explorer::sleeping(ProcId p) const {
  for (const auto& s : live_sleep_)
    if (s.first == p) return true;
  return false;
}

ProcId Explorer::default_pick(const std::vector<ProcId>& enabled, bool avoid_sleep) {
  // Continuing the previous slice's processor never introduces a
  // preemption, so it is the cheapest default under a preemption bound and
  // keeps executions short (fewer context-switch points to flip later).
  // But only up to a fairness slice: a naked spin loop (a retry that
  // yields at each access without ever parking — e.g. waiting out a
  // TRANSITION mode) never blocks, and an unconditional prev-runner
  // preference would re-pick the spinner forever. After kFairSlice
  // consecutive picks the default rotates to another enabled processor,
  // which is all a livelock-free-under-fairness scenario needs to finish.
  const bool keep = last_pick_ != kNoProc && contains(enabled, last_pick_) &&
                    (consecutive_ < kFairSlice || enabled.size() == 1);
  if (avoid_sleep) {
    if (keep && !sleeping(last_pick_)) return last_pick_;
    for (ProcId p : enabled)
      if (p != last_pick_ && !sleeping(p)) return p;
    for (ProcId p : enabled)
      if (!sleeping(p)) return p;
  }
  if (keep) return last_pick_;
  for (ProcId p : enabled)
    if (p != last_pick_) return p;
  return enabled.front();
}

void Explorer::note_pick(ProcId p) {
  consecutive_ = p == last_pick_ ? consecutive_ + 1 : 1;
  last_pick_ = p;
}

ProcId Explorer::pick(const std::vector<ProcId>& enabled) {
  FPQ_ASSERT_MSG(!enabled.empty(), "pick from empty enabled set");
  ++steps_this_exec_;
  ++stats_.steps;
  if (!free_running_ && params_.max_steps != 0 && steps_this_exec_ > params_.max_steps) {
    // Never unwind a fiber from here (RAII release paths perform Shared
    // accesses of their own): switch to free-running default scheduling so
    // the execution completes naturally, then end the exploration.
    free_running_ = true;
    stats_.step_budget_hit = true;
  }
  if (free_running_) {
    note_pick(default_pick(enabled, /*avoid_sleep=*/false));
    return last_pick_;
  }

  if (cursor_ < stack_.size()) {
    // Replaying the recorded prefix toward the flip point.
    Node& n = stack_[cursor_];
    FPQ_ASSERT_MSG(n.enabled == enabled,
                   "exhaustive replay diverged: scenario is not schedule-deterministic");
    live_sleep_ = n.sleep_entry;
    for (const auto& t : n.tried)
      if (t.first != n.chosen) live_sleep_.push_back(t);
    ++cursor_;
    note_pick(n.chosen);
    return n.chosen;
  }

  Node n;
  n.enabled = enabled;
  n.sleep_entry = live_sleep_;
  n.chosen = default_pick(enabled, /*avoid_sleep=*/true);
  if (sleeping(n.chosen)) {
    // Every enabled processor is asleep: this execution only reproduces an
    // explored prefix. Run it to completion anyway (abandoning mid-run
    // would leave live fibers) and record the redundancy honestly.
    sleep_blocked_this_exec_ = true;
  }
  n.backtrack.push_back(n.chosen);
  n.done.push_back(n.chosen);
  stack_.push_back(std::move(n));
  ++cursor_;
  note_pick(stack_.back().chosen);
  return last_pick_;
}

void Explorer::on_event(ProcId p, u64 word, AccessKind kind, bool rmw_applied) {
  if (free_running_) return;
  FPQ_ASSERT_MSG(cursor_ > 0, "access event before any pick");
  Node& n = stack_[cursor_ - 1];
  FPQ_ASSERT_MSG(n.chosen == p, "access event from a processor that was not scheduled");

  const Event e{word, kind != AccessKind::Read, true};
  // Debug aid: FPQ_DPOR_TRACE=1 dumps every scheduled event (execution
  // index, choice-point depth, proc, R/W, word ordinal) to stderr — the
  // fastest way to read a counterexample schedule.
  static const bool trace = std::getenv("FPQ_DPOR_TRACE") != nullptr;
  if (trace)
    std::fprintf(stderr, "[exec %llu] #%llu p%u %s w%llu\n",
                 (unsigned long long)stats_.executions, (unsigned long long)(cursor_ - 1),
                 p, e.write ? "W" : "R", (unsigned long long)word);
  if (n.ev.valid) {
    FPQ_ASSERT_MSG(n.ev.word == e.word && n.ev.write == e.write,
                   "exhaustive replay diverged: different event at a replayed choice point");
  }
  n.ev = e;
  bool tried_known = false;
  for (const auto& t : n.tried)
    if (t.first == p) tried_known = true;
  if (!tried_known) n.tried.push_back({p, e});

  // Backtrack-set computation (Flanagan & Godefroid): for every earlier
  // dependent access this one is not already ordered after, the *earlier*
  // access's choice point must also try running p first.
  VectorClock& clk = clocks_[p];
  WordState& w = words_[word];
  const u64 here = cursor_ - 1;
  auto consider = [&](ProcId q, const Epoch& qe, u64 jnode) {
    if (q == p) return;
    if (clk.includes(qe)) return; // already ordered; reversal is impossible
    Node& nj = stack_[jnode];
    if (contains(nj.enabled, p)) {
      add_unique(nj.backtrack, p);
    } else {
      for (ProcId r : nj.enabled) add_unique(nj.backtrack, r);
    }
  };
  if (e.write) {
    if (w.has_write) consider(w.writer, w.wepoch, w.wnode);
    for (const auto& r : w.reads) consider(r.proc, r.epoch, r.node);
  } else {
    if (w.has_write) consider(w.writer, w.wepoch, w.wnode);
  }

  // Dependence-order update. Only *real* dependencies add edges (joining
  // anything more would be unsound pruning): every access reads-from or
  // overwrites the last write; only an applied write orders after the
  // reads it invalidates. A failed CAS is conservatively a write for the
  // conflict analysis above, but it observably only read the word.
  const bool applies_write = e.write && rmw_applied;
  if (w.has_write) clk.join(w.wclock);
  if (applies_write)
    for (const auto& r : w.reads) clk.join(r.clock);
  clk.tick(p);
  if (applies_write) {
    w.has_write = true;
    w.writer = p;
    w.wepoch = clk.epoch_of(p);
    w.wnode = here;
    w.wclock = clk;
    w.reads.clear();
  } else {
    w.reads.push_back({p, clk.epoch_of(p), here, clk});
  }

  // Sleep-set wake rule: an executed event wakes every sleeper whose
  // recorded move is dependent with it (their orders no longer commute).
  live_sleep_.erase(std::remove_if(live_sleep_.begin(), live_sleep_.end(),
                                   [&](const SleepEntry& s) {
                                     return s.first == p || dependent(s.second, e);
                                   }),
                    live_sleep_.end());
}

void Explorer::note_deadlock() {
  deadlock_this_exec_ = true;
}

u64 Explorer::flip_preemptions(std::size_t j, ProcId c) const {
  u64 n = 0;
  for (std::size_t i = 1; i <= j; ++i) {
    const ProcId cur = i == j ? c : stack_[i].chosen;
    const ProcId prev = stack_[i - 1].chosen;
    if (cur != prev && contains(stack_[i].enabled, prev)) ++n;
  }
  return n;
}

void Explorer::end_execution() {
  ++stats_.executions;
  if (stack_.size() > stats_.max_depth) stats_.max_depth = stack_.size();
  if (sleep_blocked_this_exec_) ++stats_.sleep_blocked;
  if (deadlock_this_exec_) stats_.deadlock = true;
  if (stats_.step_budget_hit) {
    finished_ = true;
    return;
  }

  // Backtrack: flip the deepest node with an untried candidate that is
  // neither asleep on entry nor over the preemption bound; pop exhausted
  // nodes behind it.
  while (!stack_.empty()) {
    Node& n = stack_.back();
    const std::size_t j = stack_.size() - 1;
    ProcId cand = kNoProc;
    for (ProcId c : n.backtrack) {
      if (contains(n.done, c)) continue;
      bool asleep = false;
      for (const auto& s : n.sleep_entry)
        if (s.first == c) asleep = true;
      if (asleep) {
        ++stats_.sleep_pruned;
        n.done.push_back(c);
        continue;
      }
      if (params_.preempt_bound != 0 && flip_preemptions(j, c) > params_.preempt_bound) {
        ++stats_.bound_skipped;
        stats_.preempt_bound_hit = true;
        n.done.push_back(c);
        continue;
      }
      cand = c;
      break;
    }
    if (cand != kNoProc) {
      if (params_.max_execs != 0 && stats_.executions >= params_.max_execs) {
        stats_.exec_budget_hit = true;
        finished_ = true;
        return;
      }
      n.chosen = cand;
      n.done.push_back(cand);
      n.ev = Event{};
      return;
    }
    stack_.pop_back();
  }
  finished_ = true;
}

ExploreOutcome explore_all(u32 nprocs, const MachineParams& machine, u64 seed,
                           const ExploreParams& params, const ExploreScenario& scenario) {
  Explorer ex(nprocs, params);
  ExploreOutcome out;
  while (!ex.finished()) {
    ex.begin_execution();
    Engine engine(nprocs, machine, seed);
    engine.set_explorer(&ex);
    std::string diag;
    bool ok = scenario(engine, diag);
    if (ex.deadlocked()) {
      ok = false;
      if (diag.empty()) diag = "deadlock: live fibers with nothing enabled";
    }
    const u64 index = ex.execution_index();
    ex.end_execution();
    if (!ok) {
      out.violation = true;
      out.violating_exec = index;
      out.diagnostic = diag;
      break;
    }
  }
  out.stats = ex.stats();
  return out;
}

} // namespace fpq::sim
