#include "sim/race_detector.hpp"

#include <sstream>

namespace fpq::sim {

namespace {

std::string site_str(const AccessSite& s) {
  std::ostringstream os;
  if (s.failed_rmw)
    os << "failed-cas read";
  else if (s.kind == AccessKind::Rmw)
    os << "rmw";
  else if (s.kind == AccessKind::Write)
    os << "write";
  else
    os << "read";
  os << "(" << to_string(s.order) << ") by proc " << s.fiber << " @" << s.time;
  return os.str();
}

} // namespace

std::string to_string(const RaceReport& r) {
  std::ostringstream os;
  os << "race on word#" << r.word << ": " << site_str(r.prev) << " unordered-with "
     << site_str(r.cur) << " [seed " << r.seed << "]";
  return os.str();
}

std::string to_string(const LockOrderReport& r) {
  std::ostringstream os;
  os << "lock-order inversion closed by proc " << r.fiber << " @" << r.time << ": ";
  for (std::size_t i = 0; i < r.cycle.size(); ++i) {
    if (i > 0) os << " -> ";
    os << "lock#" << r.cycle[i];
  }
  os << " [seed " << r.seed << "]";
  return os.str();
}

RaceDetector::RaceDetector(u32 nprocs, u64 seed)
    : nprocs_(nprocs), seed_(seed), fibers_(nprocs, VectorClock(nprocs)), sc_(nprocs),
      held_(nprocs) {
  // Every fiber starts at epoch 1 of its own component: a fresh fiber's
  // clock must not cover another fiber's first epoch.
  for (u32 t = 0; t < nprocs; ++t) fibers_[t].tick(t);
}

void RaceDetector::report_race(u64 word, const AccessSite& prev, const AccessSite& cur) {
  ++race_count_;
  auto [it, first] = reported_words_.emplace(word, true);
  (void)it;
  if (!first || races_.size() >= kMaxReports) return; // one report per word
  races_.push_back(RaceReport{word, prev, cur, seed_});
}

void RaceDetector::on_access(ProcId t, u64 word, AccessKind kind, MemOrder order,
                             bool rmw_applied, Cycles now) {
  FPQ_ASSERT(t < nprocs_);
  VectorClock& C = fibers_[t];
  WordHb& w = words_[word];

  const bool is_write =
      kind == AccessKind::Write || (kind == AccessKind::Rmw && rmw_applied);
  const AccessSite site{t, now, kind, order, kind == AccessKind::Rmw && !rmw_applied};

  // Acquire side first: a synchronized access must absorb the publisher's
  // clock *before* the race checks, or the very edge that orders it would
  // be reported as the race.
  if (acquires(order) && w.sync) C.join(*w.sync);
  if (order == MemOrder::kSeqCst) C.join(sc_);

  // Race checks. The reportable defect is a relaxed *write* unordered with
  // any other access: relaxed reads of released writes are legitimate
  // probes (TTAS test loop, bin::empty), but a relaxed write whose
  // observers are not behind a declared HB edge leans on the simulator's
  // sequential consistency — which the native mapping does not provide.
  if (w.write.fiber != t && !C.includes(w.write)) {
    const bool relaxed_write =
        w.write_site.order == MemOrder::kRelaxed ||
        (is_write && order == MemOrder::kRelaxed);
    if (relaxed_write) report_race(word, w.write_site, site);
  }
  if (is_write && order == MemOrder::kRelaxed) {
    if (w.reads) {
      for (ProcId u = 0; u < nprocs_; ++u) {
        if (u == t || w.reads->vc.get(u) <= C.get(u)) continue;
        const ReadMeta& m = w.reads->meta[u];
        report_race(word, AccessSite{u, m.time, m.kind, m.order, m.failed_rmw}, site);
        break; // one representative racing reader is enough
      }
    } else if (w.read.fiber != t && !C.includes(w.read)) {
      report_race(word, w.read_site, site);
    }
  }

  // Update the word's last-access state (FastTrack adaptive representation:
  // epochs while ordered, a read vector only once reads run concurrently).
  if (is_write) {
    w.write = C.epoch_of(t);
    w.write_site = site;
  } else {
    if (w.reads) {
      w.reads->vc.set(t, C.get(t));
      w.reads->meta[t] = ReadMeta{now, kind, order, site.failed_rmw};
    } else if (w.read.fiber == kNoProc || w.read.fiber == t || C.includes(w.read)) {
      w.read = C.epoch_of(t);
      w.read_site = site;
    } else {
      w.reads = std::make_unique<SharedReads>(nprocs_);
      w.reads->vc.set(w.read.fiber, w.read.clock);
      w.reads->meta[w.read.fiber] = ReadMeta{w.read_site.time, w.read_site.kind,
                                             w.read_site.order, w.read_site.failed_rmw};
      w.reads->vc.set(t, C.get(t));
      w.reads->meta[t] = ReadMeta{now, kind, order, site.failed_rmw};
    }
  }

  // Release side: publish our clock where later acquirers will find it. A
  // failed CAS never writes, so it never releases into the word (its
  // seq_cst flavor still orders it within the global S chain).
  const bool release_write = releases(order) && is_write;
  if (release_write) {
    if (!w.sync) w.sync = std::make_unique<VectorClock>(nprocs_);
    w.sync->join(C);
  }
  if (order == MemOrder::kSeqCst) sc_.join(C);
  if (release_write || order == MemOrder::kSeqCst) C.tick(t);
}

u32 RaceDetector::lock_ordinal(const void* lock) {
  auto [it, inserted] = lock_ids_.try_emplace(lock, static_cast<u32>(lock_ids_.size()));
  if (inserted) {
    lock_edges_.emplace_back();
    cycle_reported_.push_back(false);
  }
  return it->second;
}

bool RaceDetector::find_path(u32 from, u32 to, std::vector<u32>& path) const {
  if (from == to) {
    path.push_back(from);
    return true;
  }
  path.push_back(from);
  for (const auto& [succ, _] : lock_edges_[from]) {
    // The graph only grows, so depth is bounded by the lock count; guard
    // against revisits to keep the probe linear.
    bool seen = false;
    for (u32 p : path)
      if (p == succ) { seen = true; break; }
    if (seen) continue;
    if (find_path(succ, to, path)) return true;
  }
  path.pop_back();
  return false;
}

void RaceDetector::on_lock_acquire(ProcId t, const void* lock, bool trylock, Cycles now) {
  FPQ_ASSERT(t < nprocs_);
  const u32 id = lock_ordinal(lock);
  if (!trylock) {
    for (u32 h : held_[t]) {
      if (h == id) continue;
      auto [it, inserted] = lock_edges_[h].emplace(id, true);
      (void)it;
      if (!inserted) continue; // edge known; any cycle was probed before
      std::vector<u32> path;
      if (!cycle_reported_[id] && find_path(id, h, path)) {
        ++inversion_count_;
        for (u32 l : path) cycle_reported_[l] = true;
        cycle_reported_[h] = true;
        if (inversions_.size() < kMaxReports) {
          LockOrderReport rep;
          rep.fiber = t;
          rep.time = now;
          rep.seed = seed_;
          rep.cycle.push_back(h);
          rep.cycle.insert(rep.cycle.end(), path.begin(), path.end());
          inversions_.push_back(std::move(rep));
        }
      }
    }
  }
  held_[t].push_back(id);
}

void RaceDetector::on_lock_release(ProcId t, const void* lock) {
  FPQ_ASSERT(t < nprocs_);
  auto it = lock_ids_.find(lock);
  if (it == lock_ids_.end()) return; // released a lock acquired before setup? ignore
  std::vector<u32>& held = held_[t];
  for (std::size_t i = held.size(); i-- > 0;) {
    if (held[i] == it->second) {
      held.erase(held.begin() + static_cast<std::ptrdiff_t>(i));
      return;
    }
  }
}

void RaceDetector::on_barrier() {
  VectorClock all(nprocs_);
  for (const VectorClock& f : fibers_) all.join(f);
  all.join(sc_);
  sc_ = all;
  for (u32 t = 0; t < nprocs_; ++t) {
    fibers_[t] = all;
    fibers_[t].tick(t);
  }
  // A run boundary joins every fiber, so nothing stays held across it.
  for (auto& h : held_) h.clear();
}

} // namespace fpq::sim
