// Schedule-driven fault injection for the simulator.
//
// A FaultPlan is a small list of events, each pinned to a victim processor
// and an *ordinal* on that processor — the index of a shared-memory access
// (crash / stall / spurious-CAS-failure) or of a Platform::try_alloc call
// (allocation failure). Ordinals count from 0 over the engine's lifetime,
// exactly mirroring ProcStats::accesses, so for a fixed (program, machine
// params, seed) a plan names the same machine state in every process: fault
// runs replay through the same one-line specs as the stress harness
// (verify/stress.hpp `faults=`, verify/liveness.hpp).
//
// Fault semantics (see DESIGN.md §12):
//   * crash   — the access's data effect commits, then the fiber dies: it
//               is never scheduled again, across run() calls too. No stack
//               unwinding happens, so locks stay held and limbo lists stay
//               populated — the fail-stop model, not an exception.
//   * stall   — the access commits, then the fiber's local clock jumps by
//               `count` cycles (every other fiber runs meanwhile); count 0
//               stalls it forever (crash, minus the connotation).
//   * casfail — the next `count` compare_exchange calls that would land on
//               the given ordinal fail spuriously: the data effect is
//               suppressed, `expected` is refreshed, and the access is
//               charged at its failure order. Models weak-CAS spurious
//               failure, which the sim's strong CAS otherwise never shows.
//   * allocfail — the victim's try_alloc calls numbered [at, at+count)
//               return nullptr.
//
// The plan also carries the liveness watchdog budget: a processor that
// performs that many shared accesses without calling Engine::heartbeat()
// is declared wedged and parked, which is what turns "a lock-based queue
// hangs behind a dead lock holder" into a reported outcome instead of a
// hung test (the heartbeat is the harness's per-operation pulse).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace fpq::sim {

enum class FaultKind : u8 { kCrash, kStall, kCasFail, kAllocFail };

constexpr std::string_view to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kCrash: return "crash";
    case FaultKind::kStall: return "stall";
    case FaultKind::kCasFail: return "casfail";
    case FaultKind::kAllocFail: return "allocfail";
  }
  return "?";
}

struct FaultEvent {
  FaultKind kind = FaultKind::kCrash;
  ProcId proc = 0;
  /// Victim-processor ordinal the event fires at: a shared-access index
  /// (crash/stall/casfail) or a try_alloc call index (allocfail).
  u64 at = 0;
  /// stall: cycles, 0 = forever. casfail/allocfail: how many consecutive
  /// ordinals starting at `at` fail (0 behaves as 1). crash: ignored.
  u64 count = 0;
};

struct FaultPlan {
  std::vector<FaultEvent> events;
  /// Shared accesses a processor may perform without Engine::heartbeat()
  /// before being declared wedged; 0 disables the watchdog.
  u64 watchdog_budget = 0;

  bool empty() const { return events.empty() && watchdog_budget == 0; }
};

/// One-line replay form: events joined by ',', each
/// `<kind>@p<proc>a<at>[n<count>]`, e.g. "crash@p1a120,stall@p2a50n400".
/// The watchdog budget travels as a separate spec key, not in this string.
/// An empty plan prints as "none".
std::string to_string(const FaultPlan& plan);
/// Inverse of to_string; throws std::invalid_argument on malformed input.
FaultPlan fault_plan_from_string(std::string_view s);

/// What became of each simulated processor once a faulted run drained.
enum class ProcOutcome : u8 {
  kCompleted,      // body returned normally
  kCrashed,        // killed by a crash event
  kStalledForever, // stall event with count 0
  kWedged,         // exceeded the watchdog budget without a heartbeat
  kBlocked,        // still parked in spin_until when the run ended
};

constexpr std::string_view to_string(ProcOutcome o) {
  switch (o) {
    case ProcOutcome::kCompleted: return "completed";
    case ProcOutcome::kCrashed: return "crashed";
    case ProcOutcome::kStalledForever: return "stalled";
    case ProcOutcome::kWedged: return "wedged";
    case ProcOutcome::kBlocked: return "blocked";
  }
  return "?";
}

struct FaultReport {
  std::vector<ProcOutcome> outcomes; // indexed by ProcId
  u32 count(ProcOutcome o) const {
    u32 n = 0;
    for (ProcOutcome x : outcomes) n += (x == o) ? 1u : 0u;
    return n;
  }
  /// Processors taken out by the plan itself (not by waiting on them).
  u32 faulted() const {
    return count(ProcOutcome::kCrashed) + count(ProcOutcome::kStalledForever);
  }
};

/// Decision core consulted by the engine on every shared access / CAS /
/// allocation. Pure bookkeeping: all scheduling effects live in Engine.
class FaultEngine {
 public:
  enum class Action : u8 { kNone, kCrash, kStallForever };
  struct Decision {
    Action action = Action::kNone;
    Cycles stall = 0; // nonzero: finite stall (action == kNone)
  };

  explicit FaultEngine(FaultPlan plan) : plan_(std::move(plan)) {}

  /// Consulted once per shared access, with the index that access got.
  Decision on_access(ProcId p, u64 ordinal) const;
  /// Consulted by SimShared::compare_exchange *before* the data effect.
  bool fail_cas(ProcId p, u64 ordinal) const;
  /// Consulted per try_alloc call; per-proc call ordinals tracked here.
  bool fail_alloc(ProcId p);

  const FaultPlan& plan() const { return plan_; }

 private:
  FaultPlan plan_;
  std::vector<u64> alloc_ordinal_; // grown on demand, indexed by ProcId
};

} // namespace fpq::sim
