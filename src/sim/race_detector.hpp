// Happens-before race detection and lock-order checking for the simulator.
//
// The simulator executes sequentially consistently, so nothing can actually
// go wrong *in the sim* — but every Shared access arrives here with the
// memory order the algorithm *declared* (DESIGN.md §8), and the detector
// derives happens-before exclusively from those declarations:
//
//   * program order within a fiber;
//   * release -> acquire pairs on the same word (the word carries a sync
//     clock that release-flavored writes join and acquire-flavored reads
//     absorb; RMWs do both sides per their order);
//   * the seq_cst total order, modeled as one global clock every seq_cst
//     access joins and republishes (conservative for cross-word seq_cst
//     pairs, exact for the store-buffering shapes §8.2 reserves it for);
//   * the all-fibers barrier between Engine::run invocations.
//
// Two accesses to the same word that are not ordered by those edges, where
// at least one is a *relaxed write*, are reported: the algorithm relied on
// an ordering it never declared, which the native std::atomic mapping is
// free to violate. This is FastTrack (Flanagan & Freund, PLDI 2009) with
// the roles shifted one level up: instead of "unsynchronized access to
// plain memory", the defect is "undeclared synchronization between atomic
// accesses". Last writes are epochs, last reads adaptively inflate from an
// epoch to a full vector clock only when reads are genuinely concurrent
// (the FastTrack representation), so the common word costs O(1) per access.
//
// The same layer runs the lock-order deadlock checker: each fiber's held
// locks form edges in a global acquisition-order graph, and a cycle means
// two code paths nest the same locks in opposite orders — a deadlock the
// explored schedules may simply not have hit yet. Trylocks join the held
// set but add no edges (a trylock cannot block, so it cannot close a
// cycle).
//
// Reports carry fiber ids, cycle timestamps, access kinds and declared
// orders, plus replay-stable word/lock ordinals (first-touch numbering,
// like sim/memory.hpp) — a report from a stress scenario is reproduced
// bit-identically by replaying the scenario's spec line.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/assert.hpp"
#include "common/memorder.hpp"
#include "common/types.hpp"
#include "sim/memory.hpp"

namespace fpq::sim {

/// One fiber's scalar clock at one point in time: FastTrack's compressed
/// "last access" representation. `fiber == kNoProc` means "never accessed"
/// and is ordered before everything.
struct Epoch {
  ProcId fiber = kNoProc;
  u64 clock = 0;
};

/// Dense vector clock over the run's fibers.
class VectorClock {
 public:
  VectorClock() = default;
  explicit VectorClock(u32 nprocs) : c_(nprocs, 0) {}

  u64 get(ProcId p) const { return c_[p]; }
  void set(ProcId p, u64 v) { c_[p] = v; }
  void tick(ProcId p) { ++c_[p]; }
  void join(const VectorClock& o) {
    FPQ_ASSERT(o.c_.size() == c_.size());
    for (std::size_t i = 0; i < c_.size(); ++i)
      if (o.c_[i] > c_[i]) c_[i] = o.c_[i];
  }
  /// Happens-before test: does this clock cover the epoch?
  bool includes(const Epoch& e) const {
    return e.fiber == kNoProc || e.clock <= c_[e.fiber];
  }
  Epoch epoch_of(ProcId p) const { return {p, c_[p]}; }
  u32 size() const { return static_cast<u32>(c_.size()); }

 private:
  std::vector<u64> c_;
};

/// One side of a reported race.
struct AccessSite {
  ProcId fiber = kNoProc;
  Cycles time = 0;
  AccessKind kind = AccessKind::Read;
  MemOrder order = MemOrder::kSeqCst;
  /// A failed CAS: timing-wise an RMW, HB-wise a read at its failure order.
  bool failed_rmw = false;
  bool is_write() const { return kind != AccessKind::Read && !failed_rmw; }
};

struct RaceReport {
  /// First-touch ordinal of the word (replay-stable; host addresses are
  /// not). Matches sim::MemoryModel::word_key for the same scenario.
  u64 word = 0;
  AccessSite prev;
  AccessSite cur;
  /// Seed of the run, so the report alone names the replayable schedule.
  u64 seed = 0;
};

struct LockOrderReport {
  /// Fiber whose acquisition closed the cycle, and when.
  ProcId fiber = kNoProc;
  Cycles time = 0;
  /// The cycle as first-acquisition ordinals of the locks, starting and
  /// ending with the same lock: l0 -> l1 -> ... -> l0, where "a -> b" means
  /// some fiber blocked acquiring b while holding a.
  std::vector<u32> cycle;
  u64 seed = 0;
};

std::string to_string(const RaceReport& r);
std::string to_string(const LockOrderReport& r);

class RaceDetector {
 public:
  /// Reports beyond this are counted but not stored (one racy word in a
  /// loop should not drown the run in duplicates).
  static constexpr std::size_t kMaxReports = 64;

  RaceDetector(u32 nprocs, u64 seed);

  /// Observes one Shared access by fiber `t` at completion time `now`.
  /// `word` is a stable identifier (the memory model's first-touch
  /// ordinal); `rmw_applied` is false for a failed CAS, which reads (at its
  /// failure order) but does not write.
  void on_access(ProcId t, u64 word, AccessKind kind, MemOrder order, bool rmw_applied,
                 Cycles now);

  /// Lock-lifecycle events from the sync layer (Platform::note_lock_*).
  void on_lock_acquire(ProcId t, const void* lock, bool trylock, Cycles now);
  void on_lock_release(ProcId t, const void* lock);

  /// All fibers joined and restarted (Engine::run boundary): every fiber's
  /// clock absorbs every other's, like the join edges of a barrier.
  void on_barrier();

  const std::vector<RaceReport>& races() const { return races_; }
  const std::vector<LockOrderReport>& lock_inversions() const { return inversions_; }
  /// Total findings including those dropped past kMaxReports.
  u64 race_count() const { return race_count_; }
  u64 inversion_count() const { return inversion_count_; }

  /// Introspection for unit tests.
  const VectorClock& clock_of(ProcId t) const { return fibers_[t]; }

 private:
  /// Per-fiber metadata of the last read in shared (vector) mode.
  struct ReadMeta {
    Cycles time = 0;
    AccessKind kind = AccessKind::Read;
    MemOrder order = MemOrder::kSeqCst;
    bool failed_rmw = false;
  };
  struct SharedReads {
    explicit SharedReads(u32 nprocs) : vc(nprocs), meta(nprocs) {}
    VectorClock vc;
    std::vector<ReadMeta> meta;
  };
  /// FastTrack word state: epochs while accesses stay ordered, inflated
  /// structures only where concurrency actually happened.
  struct WordHb {
    Epoch write;
    AccessSite write_site;
    Epoch read; // valid while reads_ == nullptr
    AccessSite read_site;
    std::unique_ptr<SharedReads> reads;   // engaged on concurrent reads
    std::unique_ptr<VectorClock> sync;    // engaged on first release write
  };

  void report_race(u64 word, const AccessSite& prev, const AccessSite& cur);
  /// Interns a lock pointer to a first-acquisition ordinal.
  u32 lock_ordinal(const void* lock);
  /// DFS over the order graph: path from `from` back to `to` (cycle probe).
  bool find_path(u32 from, u32 to, std::vector<u32>& path) const;

  u32 nprocs_;
  u64 seed_;
  std::vector<VectorClock> fibers_;
  VectorClock sc_; // the seq_cst total order's clock
  std::unordered_map<u64, WordHb> words_;

  std::unordered_map<const void*, u32> lock_ids_;
  std::vector<std::vector<u32>> held_;           // per fiber, acquisition order
  std::vector<std::unordered_map<u32, bool>> lock_edges_; // a -> set of b
  std::vector<bool> cycle_reported_;             // per lock: already in a report

  std::vector<RaceReport> races_;
  std::vector<LockOrderReport> inversions_;
  u64 race_count_ = 0;
  u64 inversion_count_ = 0;
  std::unordered_map<u64, bool> reported_words_;
};

} // namespace fpq::sim
