// The simulation engine: P simulated processors (fibers) scheduled in
// global-time order over the MemoryModel. Algorithms never talk to the
// engine directly — they go through SimPlatform (src/platform/sim.hpp),
// whose Shared<T> words report each access here.
//
// Execution model
//   * The runnable fiber with the smallest local clock runs next, so shared
//     effects are applied in nondecreasing simulated time and runs are
//     deterministic for a fixed seed. MachineParams::sched selects an
//     alternative SchedulePolicy (random preemption, delay-the-leader,
//     per-access jitter) that deliberately distorts time to explore
//     interleavings the smallest-clock order never reaches; perturbed runs
//     stay deterministic per seed because the perturbation stream is its
//     own seeded RNG.
//   * A data operation linearizes at issue: the fiber performs the host
//     memory operation, then calls on_access(), which charges the modeled
//     latency (possibly including module queueing) and yields if the access
//     was not a cache hit.
//   * spin_until parks the fiber on the word's directory line; any write or
//     RMW to the word wakes it. A per-line version counter closes the race
//     between observing a stale value and registering as a waiter.
#pragma once

#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/memorder.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "sim/faults.hpp"
#include "sim/fiber.hpp"
#include "sim/memory.hpp"
#include "sim/params.hpp"
#include "sim/race_detector.hpp"

namespace fpq::sim {

class Explorer;

struct ProcStats {
  Cycles clock = 0; // final local time
  u64 accesses = 0;
};

class Engine {
 public:
  Engine(u32 nprocs, MachineParams params = {}, u64 seed = 1);
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Runs `body(proc_id)` on every simulated processor to completion.
  /// Rethrows the first exception thrown inside a fiber. May be called
  /// multiple times; clocks continue from where the previous run left off.
  void run(const std::function<void(ProcId)>& body);

  /// The engine currently executing a fiber on this host thread, or nullptr
  /// when called from setup/teardown code.
  static Engine* current();

  /// True when the calling code is executing inside a simulated processor.
  bool in_fiber() const { return running_ != kNoProc; }

  // ---- Called from inside fibers (and tolerated outside for setup code).
  ProcId self() const;
  u32 nprocs() const { return static_cast<u32>(procs_.size()); }
  Cycles now() const;
  Xorshift& rng();
  /// `order` is the access's *declared* memory order — timing ignores it,
  /// but the race detector (MachineParams::race_detect) derives the
  /// happens-before graph from it. `rmw_applied` is false for a failed
  /// CAS, which reads at its failure order but writes nothing.
  void on_access(const void* addr, AccessKind kind,
                 MemOrder order = MemOrder::kSeqCst, bool rmw_applied = true);
  void delay(Cycles c);
  void pause();
  u64 line_version(const void* addr) { return memory_.line_version(addr); }
  /// Blocks the calling fiber until a write touches `addr`, unless the
  /// line's version already moved past `observed_version`.
  void wait_on(const void* addr, u64 observed_version);

  const MemStats& mem_stats() const { return memory_.stats(); }
  MemoryModel& memory() { return memory_; }
  const std::vector<ProcStats>& proc_stats() const { return stats_; }
  const MachineParams& params() const { return memory_.params(); }

  /// The attached race detector, or nullptr when MachineParams::race_detect
  /// is off. Lives as long as the engine; query after run() returns.
  RaceDetector* race_detector() { return detector_.get(); }

  /// Hands every scheduling decision to a DPOR explorer (sim/explore.hpp):
  /// the runq/perturbation machinery is bypassed, every Shared access
  /// yields (hit elision off — each access is a choice point), access
  /// jitter is ignored, and delay() advances the clock without yielding
  /// (timing is not a schedule under systematic exploration). Must be
  /// called between runs; mutually exclusive with fault plans. The
  /// explorer must outlive every run; pass nullptr to detach.
  void set_explorer(Explorer* ex);
  Explorer* explorer() const { return explorer_; }

  /// Lock-lifecycle hints from the sync layer (via Platform::note_lock_*);
  /// no-ops unless the race detector is attached and a fiber is running.
  void note_lock_acquire(const void* lock, bool trylock);
  void note_lock_release(const void* lock);

  // ---- Fault injection (sim/faults.hpp).

  /// Installs (or, with an empty plan, removes) a fault plan. Resets all
  /// fault state: processors killed by a previous plan come back to life.
  /// Must be called between runs. With a plan active, a run that ends with
  /// processors parked forever *returns* (outcomes in fault_report())
  /// instead of tripping the deadlock assertion.
  void set_fault_plan(FaultPlan plan);
  bool fault_plan_active() const { return faults_ != nullptr; }
  /// Per-processor outcome of the most recent run(); meaningful only while
  /// a plan is active.
  const FaultReport& fault_report() const { return fault_report_; }
  /// Liveness pulse: resets the calling processor's watchdog counter. The
  /// harness calls this between queue operations; a processor that spends
  /// FaultPlan::watchdog_budget accesses inside one operation is wedged.
  void heartbeat();
  /// Consulted by SimShared::compare_exchange before the data effect; true
  /// means this CAS must fail spuriously (see FaultKind::kCasFail).
  bool inject_cas_failure();
  /// Consulted by SimPlatform::try_alloc; true means return nullptr.
  bool inject_alloc_failure();

 private:
  struct Proc {
    Cycles clock = 0;
    Fiber fiber;
    Xorshift rng{0};
    bool blocked = false;
    const void* wait_addr = nullptr; // diagnostic: word waited on
  };

  void schedule(ProcId p);
  void yield_running();
  /// Applies the configured SchedulePolicy to the fiber about to run.
  /// Returns true when the fiber was delayed and requeued instead (the
  /// scheduler must pick again).
  bool perturb(ProcId p);

  MemoryModel memory_;
  std::vector<Proc> procs_;
  std::vector<ProcStats> stats_;
  ProcId running_ = kNoProc;
  ucontext_t sched_ctx_{};
  u64 seq_ = 0; // tie-breaker for equal clocks (keeps ordering deterministic)
  using QEntry = std::tuple<Cycles, u64, ProcId>;
  std::priority_queue<QEntry, std::vector<QEntry>, std::greater<>> runq_;
  MachineParams params_;
  bool running_run_ = false;
  /// Dedicated stream for schedule perturbation so the policies never
  /// shift the per-processor workload RNGs: a run under kSmallestClock is
  /// byte-identical to one built before policies existed.
  Xorshift sched_rng_{0};
  /// Happens-before race detector (params.race_detect); observes accesses
  /// without perturbing their timing.
  std::unique_ptr<RaceDetector> detector_;
  /// DPOR schedule explorer (set_explorer); null = normal scheduling.
  Explorer* explorer_ = nullptr;
  /// Fault-injection decision core (set_fault_plan); null = no plan.
  std::unique_ptr<FaultEngine> faults_;
  /// Per-proc outcome, persistent across runs while a plan is active:
  /// kCrashed/kStalledForever/kWedged processors are never restarted.
  std::vector<ProcOutcome> outcomes_;
  std::vector<u64> since_heartbeat_;
  FaultReport fault_report_;
  /// True while a plan is active: this processor must never run again.
  bool perm_down(ProcId p) const {
    const ProcOutcome o = outcomes_[p];
    return o == ProcOutcome::kCrashed || o == ProcOutcome::kStalledForever ||
           o == ProcOutcome::kWedged;
  }
  /// Parks the running fiber forever with the given outcome (never returns
  /// control to the caller's fiber within this run).
  void take_down(ProcOutcome o);
};

} // namespace fpq::sim
