#include "sim/engine.hpp"

#include <cstdio>

#include "sim/explore.hpp"

namespace fpq::sim {

namespace {
thread_local Engine* g_current = nullptr;
}

Engine* Engine::current() { return g_current; }

Engine::Engine(u32 nprocs, MachineParams params, u64 seed)
    : memory_(nprocs, params), procs_(nprocs), stats_(nprocs), params_(params),
      sched_rng_(seed ^ 0xa5a5a5a5a5a5a5a5ull) {
  for (u32 i = 0; i < nprocs; ++i) procs_[i].rng = Xorshift(seed * 0x100000001b3ull + i);
  if (params.race_detect) detector_ = std::make_unique<RaceDetector>(nprocs, seed);
}

Engine::~Engine() {
  if (g_current == this) g_current = nullptr;
}

ProcId Engine::self() const {
  FPQ_ASSERT_MSG(running_ != kNoProc, "self() called outside a simulated processor");
  return running_;
}

Cycles Engine::now() const {
  return running_ == kNoProc ? 0 : procs_[running_].clock;
}

Xorshift& Engine::rng() { return procs_[self()].rng; }

void Engine::schedule(ProcId p) {
  if (explorer_ != nullptr) return; // the explorer's run loop scans enabledness
  runq_.emplace(procs_[p].clock, seq_++, p);
}

void Engine::yield_running() {
  FPQ_ASSERT(running_ != kNoProc);
  procs_[running_].fiber.yield_out();
}

bool Engine::perturb(ProcId pid) {
  const SchedParams& s = params_.sched;
  if (s.policy == SchedulePolicy::kSmallestClock) return false;
  if (runq_.empty()) return false; // sole runnable fiber: delaying it is a no-op
  // Clamped below certainty: a policy that perturbs *every* decision would
  // requeue forever without running anything.
  const u64 permille = s.perturb_permille < 1000 ? s.perturb_permille : 999;
  if (sched_rng_.below(1000) >= permille) return false;
  Proc& p = procs_[pid];
  switch (s.policy) {
    case SchedulePolicy::kRandomPreempt:
      p.clock += 1 + sched_rng_.below(s.max_delay);
      break;
    case SchedulePolicy::kDelayLeader: {
      // Hold the front-runner behind the second-place fiber so their
      // operations overlap instead of the leader racing ahead.
      const Cycles runner_up = std::get<0>(runq_.top());
      p.clock = runner_up + 1 + sched_rng_.below(s.max_delay);
      break;
    }
    case SchedulePolicy::kSmallestClock: return false; // unreachable
    case SchedulePolicy::kExhaustive: return false;    // explorer runs its own loop
  }
  schedule(pid);
  return true;
}

void Engine::on_access(const void* addr, AccessKind kind, MemOrder order,
                       bool rmw_applied) {
  if (g_current != this || running_ == kNoProc) return; // setup/teardown code
  Proc& p = procs_[running_];
  // Schedule exploration: jitter the issue time of every shared access so
  // arrival order at the modules (and thus RMW winners) is randomized.
  // Systematic exploration owns the schedule outright, so jitter is off.
  if (params_.sched.access_jitter > 0 && explorer_ == nullptr)
    p.clock += sched_rng_.below(params_.sched.access_jitter);
  AccessResult r = memory_.access(running_, addr, kind, p.clock);
  p.clock = r.completion;
  ++stats_[running_].accesses;
  if (detector_)
    detector_->on_access(running_, memory_.word_key(addr), kind, order, rmw_applied,
                         p.clock);
  for (ProcId w : r.woken) {
    Proc& wp = procs_[w];
    FPQ_ASSERT(wp.blocked);
    wp.blocked = false;
    wp.clock = std::max(wp.clock, r.completion);
    schedule(w);
  }
  if (explorer_ != nullptr) {
    // Every access is a choice point: report the visible event and yield
    // unconditionally (hit elision would hide schedule points).
    explorer_->on_event(running_, memory_.word_key(addr), kind, rmw_applied);
    yield_running();
    return;
  }
  // Fault consultation happens on *every* access, hits included — the
  // hit-elision below never runs for a faulted access, so a victim spinning
  // on a cached line still reaches its crash/stall/wedge ordinal.
  if (faults_) {
    const u64 ordinal = stats_[running_].accesses - 1; // index this access got
    if (faults_->plan().watchdog_budget != 0 &&
        ++since_heartbeat_[running_] > faults_->plan().watchdog_budget) {
      take_down(ProcOutcome::kWedged);
      return;
    }
    const FaultEngine::Decision d = faults_->on_access(running_, ordinal);
    if (d.action == FaultEngine::Action::kCrash) {
      take_down(ProcOutcome::kCrashed);
      return;
    }
    if (d.action == FaultEngine::Action::kStallForever) {
      take_down(ProcOutcome::kStalledForever);
      return;
    }
    if (d.stall > 0) {
      p.clock += d.stall;
      yield_running(); // requeued at the post-stall clock; resumes here
      return;
    }
  }
  // Hits are cheap and invisible to other processors; skipping the yield on
  // them keeps host time proportional to *misses*, which is what the model
  // charges for anyway.
  if (!r.hit) yield_running();
}

void Engine::take_down(ProcOutcome o) {
  FPQ_ASSERT(running_ != kNoProc);
  outcomes_[running_] = o;
  // Parked with no waiter registration: nothing ever wakes it, the run loop
  // drops its queue entries, and run() skips restarting it while the plan
  // stays active. The fiber's stack is reclaimed un-unwound at the next
  // run (fail-stop: destructors do not run, locks stay held).
  procs_[running_].blocked = true;
  yield_running();
  FPQ_ASSERT_MSG(false, "a downed fiber was rescheduled");
}

void Engine::set_explorer(Explorer* ex) {
  FPQ_ASSERT_MSG(!running_run_, "set_explorer during a run");
  FPQ_ASSERT_MSG(ex == nullptr || faults_ == nullptr,
                 "exhaustive exploration is incompatible with fault plans");
  explorer_ = ex;
}

void Engine::set_fault_plan(FaultPlan plan) {
  FPQ_ASSERT_MSG(!running_run_, "set_fault_plan during a run");
  FPQ_ASSERT_MSG(plan.empty() || explorer_ == nullptr,
                 "fault plans are incompatible with exhaustive exploration");
  if (plan.empty()) {
    faults_.reset();
    outcomes_.clear();
    since_heartbeat_.clear();
    fault_report_.outcomes.clear();
    return;
  }
  faults_ = std::make_unique<FaultEngine>(std::move(plan));
  outcomes_.assign(nprocs(), ProcOutcome::kCompleted);
  since_heartbeat_.assign(nprocs(), 0);
  fault_report_.outcomes.clear();
}

void Engine::heartbeat() {
  if (faults_ && running_ != kNoProc) since_heartbeat_[running_] = 0;
}

bool Engine::inject_cas_failure() {
  if (!faults_ || running_ == kNoProc) return false;
  // Pre-increment: the index this access is *about to* get in on_access.
  return faults_->fail_cas(running_, stats_[running_].accesses);
}

bool Engine::inject_alloc_failure() {
  if (!faults_ || running_ == kNoProc) return false;
  return faults_->fail_alloc(running_);
}

void Engine::note_lock_acquire(const void* lock, bool trylock) {
  if (detector_ && running_ != kNoProc)
    detector_->on_lock_acquire(running_, lock, trylock, procs_[running_].clock);
}

void Engine::note_lock_release(const void* lock) {
  if (detector_ && running_ != kNoProc) detector_->on_lock_release(running_, lock);
}

void Engine::delay(Cycles c) {
  if (g_current != this || running_ == kNoProc) return;
  procs_[running_].clock += c;
  // Under systematic exploration a pure delay is not a visible event: a
  // yield here would create eventless choice points (state-space blowup
  // with zero discriminating power). Every spin loop in the codebase
  // re-reads shared state, so slices stay bounded without it.
  if (explorer_ == nullptr) yield_running();
}

void Engine::pause() { delay(params_.t_pause); }

void Engine::wait_on(const void* addr, u64 observed_version) {
  FPQ_ASSERT_MSG(running_ != kNoProc, "wait_on outside a simulated processor");
  if (memory_.line_version(addr) != observed_version) {
    // A write landed between the caller's read and this call; don't block,
    // let the caller re-check.
    return;
  }
  Proc& p = procs_[running_];
  memory_.add_waiter(addr, running_);
  p.blocked = true;
  p.wait_addr = addr;
  yield_running();
  p.wait_addr = nullptr;
  FPQ_ASSERT(!p.blocked);
}

void Engine::run(const std::function<void(ProcId)>& body) {
  FPQ_ASSERT_MSG(!running_run_, "Engine::run is not reentrant");
  running_run_ = true;
  // Successive runs are separated by a real host-thread join: an all-fiber
  // HB barrier, or the drain phase would race against the mixed phase.
  if (detector_) detector_->on_barrier();
  Engine* prev = g_current;
  g_current = this;

  const u32 n = nprocs();
  // Fresh fibers each run; clocks persist across runs so a second run sees
  // contention-consistent timestamps.
  std::vector<Proc> fresh(n);
  for (u32 i = 0; i < n; ++i) {
    fresh[i].clock = procs_[i].clock;
    fresh[i].rng = procs_[i].rng;
  }
  procs_ = std::move(fresh);

  u32 live = 0;
  for (u32 i = 0; i < n; ++i) {
    if (faults_ && perm_down(i)) continue; // a downed processor stays down
    if (faults_) outcomes_[i] = ProcOutcome::kCompleted;
    procs_[i].fiber.start([this, &body, i] { body(i); }, params_.fiber_stack_bytes);
    schedule(i);
    ++live;
  }
  std::exception_ptr first_error;
  if (explorer_ != nullptr) {
    // Systematic mode: the explorer dictates every decision. The clock
    // order is irrelevant (and deliberately violated); what matters is the
    // exact enabled set at every choice point.
    std::vector<ProcId> enabled;
    for (;;) {
      enabled.clear();
      for (u32 i = 0; i < n; ++i)
        if (!procs_[i].fiber.done() && !procs_[i].blocked) enabled.push_back(i);
      if (enabled.empty()) break;
      const ProcId pid = explorer_->pick(enabled);
      FPQ_ASSERT_MSG(pid < n && !procs_[pid].fiber.done() && !procs_[pid].blocked,
                     "explorer picked a processor that is not enabled");
      Proc& p = procs_[pid];
      running_ = pid;
      p.fiber.switch_in(&sched_ctx_);
      running_ = kNoProc;
      if (p.fiber.done()) {
        --live;
        if (p.fiber.error() && !first_error) first_error = p.fiber.error();
        stats_[pid].clock = p.clock;
      }
    }
  } else {
    while (!runq_.empty()) {
      auto [clk, sq, pid] = runq_.top();
      runq_.pop();
      Proc& p = procs_[pid];
      if (p.fiber.done() || p.blocked) continue; // defensively drop stale entries
      // Every clock change is immediately followed by a fresh queue entry
      // and blocked processors have no entry, so entries are never stale.
      FPQ_ASSERT_MSG(clk == p.clock, "scheduler entry out of date");
      (void)sq;
      if (perturb(pid)) continue; // policy delayed the fiber; pick again
      running_ = pid;
      p.fiber.switch_in(&sched_ctx_);
      running_ = kNoProc;
      if (p.fiber.done()) {
        --live;
        if (p.fiber.error() && !first_error) first_error = p.fiber.error();
        stats_[pid].clock = p.clock;
      } else if (!p.blocked) {
        schedule(pid);
      }
    }
  }
  running_run_ = false;
  g_current = prev;

  if (explorer_ != nullptr && live > 0 && !first_error) {
    // Nothing enabled with fibers still parked: a real deadlock schedule.
    // Record it as a counterexample instead of aborting — the harness
    // reports it like any other oracle violation. Stale spin-waiter
    // registrations must not leak into a subsequent run.
    explorer_->note_deadlock();
    memory_.clear_waiters();
  }
  if (live > 0 && !first_error && !faults_ && explorer_ == nullptr) {
    std::fprintf(stderr, "funnelpq sim: deadlock — %u processor(s) blocked forever\n",
                 live);
    for (u32 i = 0; i < n; ++i) {
      if (!procs_[i].fiber.done())
        std::fprintf(stderr, "  proc %u blocked=%d clock=%llu wait_addr=%p\n", i,
                     procs_[i].blocked ? 1 : 0,
                     static_cast<unsigned long long>(procs_[i].clock),
                     procs_[i].wait_addr);
    }
    FPQ_ASSERT_MSG(false, "simulated deadlock: all runnable fibers exhausted");
  }
  if (faults_) {
    // A faulted run ending with parked fibers is a *result*, not a bug:
    // classify the stragglers and report instead of asserting. Processors
    // the plan took down already carry their outcome; anything else still
    // parked was waiting on one of them.
    for (u32 i = 0; i < n; ++i) {
      if (!procs_[i].fiber.done() && outcomes_[i] == ProcOutcome::kCompleted)
        outcomes_[i] = ProcOutcome::kBlocked;
    }
    fault_report_.outcomes = outcomes_;
    // Drop stale spin-waiter registrations: a later run's write to the same
    // word must not "wake" a fiber that no longer exists.
    memory_.clear_waiters();
  }
  for (u32 i = 0; i < n; ++i) stats_[i].clock = procs_[i].clock;
  if (first_error) std::rethrow_exception(first_error);
}

} // namespace fpq::sim
