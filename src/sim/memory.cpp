#include "sim/memory.hpp"

#include <cmath>

namespace fpq::sim {

Mesh::Mesh(u32 nodes) {
  FPQ_ASSERT(nodes >= 1);
  side = 1;
  while (side * side < nodes) ++side;
}

u32 Mesh::hops(u32 a, u32 b) const {
  const u32 ax = a % side, ay = a / side;
  const u32 bx = b % side, by = b / side;
  const u32 dx = ax > bx ? ax - bx : bx - ax;
  const u32 dy = ay > by ? ay - by : by - ay;
  return dx + dy;
}

MemoryModel::MemoryModel(u32 nprocs, const MachineParams& params)
    : nprocs_(nprocs), params_(params), mesh_(nprocs), module_free_(nprocs, 0) {
  FPQ_ASSERT_MSG(nprocs >= 1 && nprocs <= kMaxSimProcs, "processor count out of range");
}

AccessResult MemoryModel::access(ProcId proc, const void* addr, AccessKind kind,
                                 Cycles now) {
  Line& L = line(addr);
  AccessResult r;

  switch (kind) {
    case AccessKind::Read: ++stats_.reads; break;
    case AccessKind::Write: ++stats_.writes; break;
    case AccessKind::Rmw: ++stats_.rmws; break;
  }

  const bool read = (kind == AccessKind::Read);
  const bool have_m = (L.state == Line::State::Modified && L.owner == proc);
  const bool have_s = (L.state == Line::State::SharedClean && L.sharers.test(proc));

  if (read ? (have_m || have_s) : have_m) {
    // Cache hit; no directory traffic.
    ++stats_.hits;
    r.completion = now + params_.t_hit;
    r.hit = true;
  } else {
    ++stats_.misses;
    const u32 m = home(key(addr));
    const Cycles to_home = one_way(proc, m);
    const Cycles arrive = now + to_home;
    const Cycles start = std::max(arrive, module_free_[m]);
    stats_.module_wait_cycles += start - arrive;

    Cycles service = params_.t_mem;
    if (L.state == Line::State::Modified && L.owner != proc)
      service += params_.t_dirty_fetch;

    if (!read) {
      // Invalidate every other cached copy.
      u32 victims = L.sharers.count_excluding(proc);
      if (L.state == Line::State::Modified && L.owner != proc && !L.sharers.test(L.owner))
        ++victims; // defensive: owner should be in sharers, but count it once
      if (victims > 0) {
        service += params_.t_inv_base + params_.t_inv_per_sharer * victims;
        stats_.invalidations += victims;
      }
    }

    module_free_[m] = start + params_.t_occ;
    const Cycles back = one_way(m, proc);
    stats_.network_cycles += to_home + back;
    r.completion = start + service + back;
    r.hit = false;
  }

  // Directory state transition (applied at issue; see DESIGN.md).
  if (read) {
    if (!r.hit) {
      if (L.state == Line::State::Modified) {
        // Owner is downgraded to a sharer.
        L.state = Line::State::SharedClean;
        L.sharers.clear();
        L.sharers.set(L.owner);
        L.owner = kNoProc;
      } else if (L.state == Line::State::Idle) {
        L.state = Line::State::SharedClean;
      }
      L.sharers.set(proc);
    }
  } else {
    L.state = Line::State::Modified;
    L.owner = proc;
    L.sharers.clear();
    L.sharers.set(proc);
    ++L.version;
    if (!L.waiters.empty()) r.woken = std::move(L.waiters);
  }
  return r;
}

} // namespace fpq::sim
