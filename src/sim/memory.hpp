// Shared-memory timing model: word-granularity directory MSI coherence over
// a 2-D mesh of processor/memory nodes, with per-module occupancy queueing.
//
// The model is intentionally word-granular (8-byte "lines"): the paper's
// structures are padded anyway, and word granularity means host-allocator
// layout cannot introduce accidental false sharing into the measurements.
#pragma once

#include <array>
#include <unordered_map>
#include <vector>

#include "common/assert.hpp"
#include "common/types.hpp"
#include "sim/params.hpp"

namespace fpq::sim {

inline constexpr ProcId kNoProc = ~0u;

enum class AccessKind : u8 { Read, Write, Rmw };

/// Inline bitset of sharer processor ids, sized for kMaxSimProcs.
class SharerSet {
 public:
  void set(ProcId p) { w_[p >> 6] |= 1ull << (p & 63); }
  void reset(ProcId p) { w_[p >> 6] &= ~(1ull << (p & 63)); }
  bool test(ProcId p) const { return (w_[p >> 6] >> (p & 63)) & 1; }
  void clear() { w_.fill(0); }
  u32 count() const {
    u32 n = 0;
    for (u64 w : w_) n += static_cast<u32>(__builtin_popcountll(w));
    return n;
  }
  /// Number of sharers other than `p`.
  u32 count_excluding(ProcId p) const { return count() - (test(p) ? 1u : 0u); }

 private:
  std::array<u64, kMaxSimProcs / 64> w_{};
};

/// Directory state for one shared word.
struct Line {
  enum class State : u8 { Idle, SharedClean, Modified };
  State state = State::Idle;
  ProcId owner = kNoProc; // valid when Modified
  SharerSet sharers;
  /// Bumped on every write/RMW; used by the engine's spin-wait protocol to
  /// close the race between "value observed stale" and "waiter registered".
  u64 version = 0;
  /// Processors parked in Platform::spin_until on this word.
  std::vector<ProcId> waiters;
};

struct AccessResult {
  Cycles completion = 0;
  bool hit = false;
  /// Non-null when the access was a write/RMW and waiters were parked on the
  /// line; the engine must wake them at `completion` and then the list is
  /// already cleared.
  std::vector<ProcId> woken;
};

struct MemStats {
  u64 reads = 0;
  u64 writes = 0;
  u64 rmws = 0;
  u64 hits = 0;
  u64 misses = 0;
  u64 invalidations = 0;
  /// Total cycles requests spent queued behind busy modules. This is the
  /// direct measure of hot-spot contention.
  u64 module_wait_cycles = 0;
  /// Total cycles of network transit.
  u64 network_cycles = 0;
};

/// 2-D mesh geometry helpers, exposed for tests.
struct Mesh {
  explicit Mesh(u32 nodes);
  u32 side = 1;
  u32 hops(u32 a, u32 b) const;
};

class MemoryModel {
 public:
  MemoryModel(u32 nprocs, const MachineParams& params);

  /// Performs the timing + directory effects of one access issued by `proc`
  /// at local time `now`. The *data* effect is applied by the caller at
  /// issue time; this routine only accounts for time and coherence state.
  AccessResult access(ProcId proc, const void* addr, AccessKind kind, Cycles now);

  /// Version counter of the word's line (created Idle on first touch).
  u64 line_version(const void* addr) { return line(addr).version; }

  /// Parks `proc` as a spin-waiter on the word.
  void add_waiter(const void* addr, ProcId proc) { line(addr).waiters.push_back(proc); }

  /// Drops every parked spin-waiter registration. Fault-plan teardown only:
  /// a faulted run may end with fibers parked forever, and their stale
  /// registrations must not be "woken" by a later run's writes.
  void clear_waiters() {
    for (auto& [k, l] : lines_) l.waiters.clear();
  }

  const MemStats& stats() const { return stats_; }
  const MachineParams& params() const { return params_; }

  /// Replay-stable identifier of a word: its first-touch ordinal (see
  /// key()). The race detector stamps reports with this, so a report from
  /// a replayed scenario names the same word in every process.
  u64 word_key(const void* addr) const { return key(addr); }

  /// Directory introspection for tests.
  Line::State state_of(const void* addr) { return line(addr).state; }
  u32 sharer_count(const void* addr) { return line(addr).sharers.count(); }
  ProcId owner_of(const void* addr) { return line(addr).owner; }
  u32 home_of(const void* addr) const { return home(key(addr)); }

 private:
  // Word keys are *first-touch ordinals*, not raw addresses: the i-th
  // distinct word a run touches gets key i. Execution thus depends only on
  // (program, machine params, seed) — never on host allocator layout or
  // ASLR — which is what makes a stress counterexample spec replayable in
  // a fresh process (see verify/stress.hpp).
  u64 key(const void* addr) const {
    const u64 raw = reinterpret_cast<std::uintptr_t>(addr) >> 3;
    return ids_.try_emplace(raw, ids_.size()).first->second;
  }
  u32 home(u64 k) const {
    // Fibonacci mixing so consecutive words interleave across modules.
    return static_cast<u32>((k * 0x9e3779b97f4a7c15ull) >> 40) % nprocs_;
  }
  Line& line(const void* addr) { return lines_[key(addr)]; }
  Cycles one_way(u32 a, u32 b) const {
    return params_.t_net_base + params_.t_hop * mesh_.hops(a, b);
  }

  u32 nprocs_;
  MachineParams params_;
  Mesh mesh_;
  std::vector<Cycles> module_free_; // per-module: time the module is next idle
  mutable std::unordered_map<u64, u64> ids_; // raw word -> first-touch ordinal
  std::unordered_map<u64, Line> lines_;
  MemStats stats_;
};

} // namespace fpq::sim
