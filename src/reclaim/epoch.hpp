// Epoch-based reclamation (Fraser 2004): a reader pins the global epoch
// for the duration of its critical section; a retired node is freed only
// once the global epoch has advanced twice past its retirement epoch, at
// which point every reader that could have held a reference has unpinned.
//
// Grace argument: a pinned reader at epoch e blocks the advance e -> e+1,
// so while it is active the global epoch is at most e+1. A node retired at
// epoch r is freed only when the global epoch reaches r+2; any reader that
// could hold a reference was pinned at some e <= r (pins never exceed the
// global epoch and the node was unlinked before retirement), and e+1 < r+2
// means that reader has since unpinned.
//
// ## Why pin / advance are seq_cst (DESIGN.md §8.2)
//
// Pin and advance race in a store-buffering shape: the reader stores its
// local epoch word then re-loads the global epoch, while the advancer
// CASes the global epoch then scans the local words. Seq_cst guarantees
// the reader observes the new epoch (and re-pins) or the advancer observes
// the pin (and refuses to advance); with weaker orders both can miss and a
// node is freed under a still-pinned reader.
#pragma once

#include <algorithm>
#include <vector>

#include "common/assert.hpp"
#include "common/padded.hpp"
#include "common/types.hpp"
#include "platform/platform.hpp"

namespace fpq::reclaim {

template <Platform P>
class EpochDomain {
  template <class T>
  using Shared = typename P::template Shared<T>;

 public:
  EpochDomain(u32 maxprocs, u32 scan_threshold)
      : maxprocs_(maxprocs),
        scan_threshold_(std::max(1u, scan_threshold)),
        locals_(maxprocs),
        procs_(maxprocs) {
    FPQ_ASSERT_MSG(maxprocs >= 1, "epoch domain sizing");
    global_.value.store_relaxed(kFirstEpoch); // pre-publication: no readers yet
  }

  ~EpochDomain() {
    flush();
    FPQ_ASSERT_MSG(in_limbo() == 0,
                   "epoch domain destroyed with pinned readers still blocking limbo "
                   "(a Guard outlived its Domain?)");
  }

  void pin(ProcId self) {
    Shared<u64>& local = local_ref(self);
    u64 e = global_.value.load(); // seq_cst: store-buffering handshake with advance
    // contract-lint: allow(naked-spin) lock-free retry: a failed validate
    // means the global epoch advanced (another processor progressed).
    for (;;) {
      local.store((e << 1) | 1); // seq_cst publish of the pin
      const u64 e2 = global_.value.load(); // seq_cst re-validate
      if (e2 == e) return;
      e = e2;
    }
  }

  void unpin(ProcId self) { local_ref(self).store_release(0); }

  void retire(ProcId self, void* p, void (*deleter)(void*)) {
    Proc& pr = procs_[self].value;
    pr.limbo.push_back({p, deleter, global_.value.load()});
    ++pr.retired;
    if (pr.limbo.size() >= scan_threshold_) {
      try_advance();
      reclaim(pr);
    }
  }

  /// Quiescent-only: with no pins active, two advances make every limbo
  /// entry eligible; a third covers an entry retired mid-flush by a
  /// deleter (none today — defensive).
  void flush() {
    for (int i = 0; i < 3; ++i) try_advance();
    for (auto& pp : procs_) reclaim(pp.value);
  }

  /// Fault path (DESIGN.md §12): processor `dead` fail-stopped. Its pin
  /// word is forced to zero — safe because a fail-stopped fiber never
  /// dereferences again, and necessary because a pin frozen at an old
  /// epoch blocks try_advance forever, wedging reclamation for *every*
  /// processor. Its limbo then moves to `adopter` and two advances make
  /// the freshest entries eligible. The destructor's empty-limbo assert is
  /// kept; this is what lets faulted runs satisfy it. Caller guarantees
  /// `dead` is permanently stopped and serializes adoptions.
  void adopt_orphans(ProcId dead, ProcId adopter) {
    FPQ_ASSERT_MSG(dead < maxprocs_ && adopter < maxprocs_ && dead != adopter,
                   "orphan adoption needs a distinct in-range survivor");
    local_ref(dead).store(0); // seq_cst: the advance scan must see the unpin
    Proc& from = procs_[dead].value;
    Proc& to = procs_[adopter].value;
    to.limbo.insert(to.limbo.end(), from.limbo.begin(), from.limbo.end());
    from.limbo.clear();
    try_advance();
    try_advance();
    reclaim(to);
  }

  u64 retired() const { return sum(&Proc::retired); }
  u64 reclaimed() const { return sum(&Proc::reclaimed); }
  u64 in_limbo() const {
    u64 n = 0;
    for (const auto& pp : procs_) n += pp.value.limbo.size();
    return n;
  }

 private:
  // Starting above 0 keeps `epoch + 2 <= global` free of underflow edges.
  static constexpr u64 kFirstEpoch = 2;

  struct Retired {
    void* p;
    void (*deleter)(void*);
    u64 epoch;
  };
  struct Proc {
    std::vector<Retired> limbo;
    u64 retired = 0;
    u64 reclaimed = 0;
  };

  Shared<u64>& local_ref(ProcId self) {
    FPQ_ASSERT_MSG(self < maxprocs_, "processor outside the epoch domain");
    return locals_[self].value;
  }

  void try_advance() {
    const u64 e = global_.value.load();
    for (u32 i = 0; i < maxprocs_; ++i) {
      const u64 l = locals_[i].value.load(); // seq_cst: the scan side
      if ((l & 1) != 0 && (l >> 1) != e) return; // pinned in an older epoch
    }
    u64 expect = e;
    global_.value.compare_exchange(expect, e + 1); // seq_cst; failure = someone advanced
  }

  void reclaim(Proc& pr) {
    if (pr.limbo.empty()) return;
    const u64 e = global_.value.load();
    std::vector<Retired> keep;
    for (const Retired& r : pr.limbo) {
      if (r.epoch + 2 <= e) {
        r.deleter(r.p);
        ++pr.reclaimed;
      } else {
        keep.push_back(r);
      }
    }
    pr.limbo.swap(keep);
  }

  u64 sum(u64 Proc::* field) const {
    u64 n = 0;
    for (const auto& pp : procs_) n += pp.value.*field;
    return n;
  }

  u32 maxprocs_;
  u32 scan_threshold_;
  Padded<Shared<u64>> global_; // padded: every pin/advance hits this word
  std::vector<Padded<Shared<u64>>> locals_;
  std::vector<Padded<Proc>> procs_;
};

} // namespace fpq::reclaim
