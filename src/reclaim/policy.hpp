// Reclamation policy selector, split from reclaim.hpp so lightweight
// headers (pq/pq.hpp's PqParams) can name a policy without pulling in the
// domain machinery.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "common/types.hpp"

namespace fpq::reclaim {

/// The two interchangeable reclamation schemes behind reclaim::Domain
/// (DESIGN.md §11): hazard pointers protect individual nodes and bound
/// unreclaimed garbage per retirement scan; epochs protect whole critical
/// sections and make reads cheaper at the cost of garbage bounded only by
/// grace-period progress.
enum class Policy : u8 {
  kHazardPointer,
  kEpoch,
};

inline std::string_view to_string(Policy p) {
  switch (p) {
    case Policy::kHazardPointer: return "hp";
    case Policy::kEpoch: return "ebr";
  }
  return "?";
}

inline Policy policy_from_string(std::string_view name) {
  if (name == "hp") return Policy::kHazardPointer;
  if (name == "ebr") return Policy::kEpoch;
  throw std::invalid_argument("unknown reclaim policy: " + std::string(name));
}

} // namespace fpq::reclaim
