// Safe memory reclamation for lock-free structures (DESIGN.md §11).
//
// One API, two interchangeable policies:
//
//   reclaim::Domain<P>  — owns the reclamation state for one structure:
//                         hazard slots or epoch words, per-processor limbo
//                         lists, and the retire/scan machinery.
//   reclaim::Guard<P>   — RAII critical section. Under hazard pointers it
//                         manages the caller's slots (peek/promote/clear);
//                         under epochs it pins the epoch for its lifetime.
//                         retire() hands a node to the domain; its deleter
//                         runs once no reader can hold a reference.
//
// Protocol contract (both policies): a node must be unreachable from the
// structure's shared words *before* retire() is called; readers must reach
// nodes only through Guard::protect / protect_value hand-over-hand chains
// (HP), or entirely within one Guard's lifetime (EBR). The policies are
// runtime-selected so test batteries and benchmarks sweep both over the
// same structure; the hot-path dispatch is one predictable branch.
//
// Everything is templated on Platform, so the same code runs natively and
// under the simulator with its declared memory orders visible to the race
// detector (DESIGN.md §10); the seq_cst handshakes live in hazard.hpp /
// epoch.hpp and are argued there and in the §8.2 table.
#pragma once

#include <optional>

#include "common/assert.hpp"
#include "common/types.hpp"
#include "platform/platform.hpp"
#include "reclaim/epoch.hpp"
#include "reclaim/hazard.hpp"
#include "reclaim/policy.hpp"

namespace fpq::reclaim {

struct DomainOptions {
  Policy policy = Policy::kHazardPointer;
  /// Hazard slots per processor (HP only). Structures size this to their
  /// deepest hand-over-hand chain; unused slots cost one cache line each.
  u32 slots_per_proc = 8;
  /// Retirements per processor between reclamation scans.
  u32 scan_threshold = 64;
  /// Low pointer bits used as tags by the client structure; protect()
  /// strips them before publishing a hazard.
  u64 tag_mask = 0;
};

struct DomainStats {
  u64 retired = 0;
  u64 reclaimed = 0;
  u64 in_limbo = 0;
};

template <Platform P>
class Domain {
  template <class T>
  using Shared = typename P::template Shared<T>;

 public:
  Domain(u32 maxprocs, DomainOptions opt = {}) : opt_(opt) {
    if (opt.policy == Policy::kHazardPointer)
      hp_.emplace(maxprocs, opt.slots_per_proc, opt.scan_threshold, opt.tag_mask);
    else
      ebr_.emplace(maxprocs, opt.scan_threshold);
  }

  Policy policy() const { return opt_.policy; }

  void retire(ProcId self, void* p, void (*deleter)(void*)) {
    if (hp_)
      hp_->retire(self, p, deleter);
    else
      ebr_->retire(self, p, deleter);
  }

  /// Quiescent-only: drain limbo as far as safety allows (fully, once no
  /// Guard is live). The destructor flushes too and asserts limbo empties.
  void flush() {
    if (hp_)
      hp_->flush();
    else
      ebr_->flush();
  }

  /// Fault path (DESIGN.md §12): adopt the reclamation state of the
  /// fail-stopped processor `dead` onto the surviving `adopter` — clear
  /// stale hazard slots / force-unpin the dead epoch, splice limbo over,
  /// and scan. Must run before the Domain is destroyed when a fault plan
  /// crashed or wedged a processor mid-guard; the destructor's empty-limbo
  /// assert stays in force either way.
  void adopt_orphans(ProcId dead, ProcId adopter) {
    if (hp_)
      hp_->adopt_orphans(dead, adopter);
    else
      ebr_->adopt_orphans(dead, adopter);
  }

  DomainStats stats() const {
    DomainStats s;
    s.retired = hp_ ? hp_->retired() : ebr_->retired();
    s.reclaimed = hp_ ? hp_->reclaimed() : ebr_->reclaimed();
    s.in_limbo = hp_ ? hp_->in_limbo() : ebr_->in_limbo();
    return s;
  }

  bool hp_is_active() const { return hp_.has_value(); }
  HazardDomain<P>& hp() { return *hp_; }
  EpochDomain<P>& ebr() { return *ebr_; }

 private:
  DomainOptions opt_;
  std::optional<HazardDomain<P>> hp_;
  std::optional<EpochDomain<P>> ebr_;
};

/// RAII reader section. Construct inside a P::run (uses P::self()); one
/// live Guard per processor per domain at a time.
template <Platform P>
class Guard {
  template <class T>
  using Shared = typename P::template Shared<T>;

 public:
  explicit Guard(Domain<P>& d) : d_(d), self_(P::self()) {
    if (!d_.hp_is_active()) d_.ebr().pin(self_);
  }
  ~Guard() {
    if (d_.hp_is_active()) {
      for (u32 s = 0; used_ >> s; ++s)
        if ((used_ >> s) & 1) d_.hp().clear(self_, s);
    } else {
      d_.ebr().unpin(self_);
    }
  }
  Guard(const Guard&) = delete;
  Guard& operator=(const Guard&) = delete;

  /// Peek `src` and protect the pointer it holds via `slot`; returns the
  /// validated word (tag bits included). Under EBR the pin already covers
  /// every node reachable during the guard, so this is a plain acquire.
  u64 protect(u32 slot, const Shared<u64>& src) {
    if (d_.hp_is_active()) {
      used_ |= u64{1} << slot;
      return d_.hp().protect(self_, slot, src);
    }
    return src.load_acquire();
  }

  /// Promote an already-protected word into `slot` (no validation).
  void protect_value(u32 slot, u64 w) {
    if (d_.hp_is_active()) {
      used_ |= u64{1} << slot;
      d_.hp().protect_value(self_, slot, w);
    }
  }

  void clear(u32 slot) {
    if (d_.hp_is_active()) {
      used_ &= ~(u64{1} << slot);
      d_.hp().clear(self_, slot);
    }
  }

  void retire(void* p, void (*deleter)(void*)) { d_.retire(self_, p, deleter); }
  template <class T>
  void retire(T* p) {
    retire(p, [](void* q) { delete static_cast<T*>(q); });
  }

 private:
  Domain<P>& d_;
  ProcId self_;
  u64 used_ = 0; // HP slots touched by this guard, cleared on exit
};

} // namespace fpq::reclaim
