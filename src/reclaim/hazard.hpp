// Hazard-pointer reclamation (Michael 2004), shaped after the peek /
// promote idiom of jonatanlinden/prioq (SNIPPETS.md Snippet 3): a reader
// *peeks* a candidate pointer, publishes it to one of its hazard slots,
// then re-validates the source word; a validated candidate may later be
// *promoted* (copied) into another slot without re-validation, which is
// what makes hand-over-hand traversals cheap.
//
// ## Why the handshake is seq_cst (DESIGN.md §8.2)
//
// Protect and retire race in a store-buffering shape that release/acquire
// cannot close: the reader stores its hazard slot then re-loads the source
// word, while the reclaimer unlinks/poisons the node (a store) then scans
// the hazard slots (loads). With all four accesses seq_cst, either the
// reader's validating load observes the unlink (it restarts and never
// touches the node) or the reclaimer's scan observes the hazard (it defers
// the free). With anything weaker both can miss, and the reader holds a
// pointer the scan is about to free — exactly the use-after-reclaim the
// torture tests inject (tests/test_reclaim.cpp) and the deliberately
// under-annotated fixture demonstrates to the race detector.
#pragma once

#include <algorithm>
#include <vector>

#include "common/assert.hpp"
#include "common/padded.hpp"
#include "common/types.hpp"
#include "platform/platform.hpp"

namespace fpq::reclaim {

template <Platform P>
class HazardDomain {
  template <class T>
  using Shared = typename P::template Shared<T>;

 public:
  HazardDomain(u32 maxprocs, u32 slots_per_proc, u32 scan_threshold, u64 tag_mask)
      : maxprocs_(maxprocs),
        slots_per_proc_(slots_per_proc),
        scan_threshold_(std::max(1u, scan_threshold)),
        tag_mask_(tag_mask),
        slots_(static_cast<std::size_t>(maxprocs) * slots_per_proc),
        procs_(maxprocs) {
    FPQ_ASSERT_MSG(maxprocs >= 1 && slots_per_proc >= 1 && slots_per_proc <= 64,
                   "hazard domain sizing (Guard tracks slots in a 64-bit mask)");
  }

  ~HazardDomain() {
    flush();
    FPQ_ASSERT_MSG(in_limbo() == 0,
                   "hazard domain destroyed with protected nodes still in limbo "
                   "(a Guard outlived its Domain?)");
  }

  /// Peek: read `src`, announce the (tag-stripped) pointer, and re-read
  /// until the announcement provably preceded any retirement scan. Returns
  /// the validated word, tag bits included.
  u64 protect(ProcId self, u32 slot, const Shared<u64>& src) {
    Shared<u64>& h = slot_ref(self, slot);
#ifdef FPQ_SEEDED_BUG_HP_RELAXED
    // Seeded-bug corpus (negative control, tests/test_dpor_corpus.cpp):
    // the PR 6 under-annotation reintroduced. A relaxed publish can stay
    // invisible to a concurrent scan() while the relaxed validate still
    // sees the pre-retirement pointer — the scan misses the hazard and
    // frees a node this processor believes is protected.
    u64 w = src.load_relaxed();
    // contract-lint: allow(naked-spin) lock-free retry: a failed validate
    // means the source word changed (a writer progressed).
    for (;;) {
      h.store_relaxed(w & ~tag_mask_);
      const u64 w2 = src.load_relaxed();
      if (w2 == w) return w;
      w = w2;
    }
#else
    u64 w = src.load(); // seq_cst: store-buffering handshake with scan()
    // contract-lint: allow(naked-spin) lock-free retry: a failed validate
    // means the source word changed (a writer progressed).
    for (;;) {
      h.store(w & ~tag_mask_); // seq_cst publish
      const u64 w2 = src.load(); // seq_cst validate
      if (w2 == w) return w;
      w = w2;
    }
#endif
  }

  /// Promote: publish a word whose pointer is already protected (by
  /// another slot, or by ownership). No validation needed — the pointer
  /// cannot be freed while the existing protection overlaps this store.
  void protect_value(ProcId self, u32 slot, u64 w) {
    slot_ref(self, slot).store(w & ~tag_mask_); // seq_cst publish
  }

  void clear(ProcId self, u32 slot) { slot_ref(self, slot).store_release(0); }

  void retire(ProcId self, void* p, void (*deleter)(void*)) {
    Proc& pr = procs_[self].value;
    pr.limbo.push_back({p, deleter});
    ++pr.retired;
    if (pr.limbo.size() >= scan_threshold_) scan(pr);
  }

  /// Quiescent-only: scan every processor's limbo list once. Anything
  /// still protected stays (the destructor asserts nothing is).
  void flush() {
    for (auto& pp : procs_) scan(pp.value);
  }

  /// Fault path (DESIGN.md §12): processor `dead` fail-stopped. Its hazard
  /// slots are cleared — the dead fiber can never again dereference what
  /// they protect — and its limbo list moves to `adopter`, whose next scan
  /// frees whatever no *live* processor protects. Without this, a crashed
  /// reader's stale hazards pin its own and every other processor's limbo
  /// entries forever, and the destructor's empty-limbo assert (kept — it
  /// still guards the no-fault protocol) would fire. The caller guarantees
  /// `dead` is permanently stopped and serializes adoptions.
  void adopt_orphans(ProcId dead, ProcId adopter) {
    FPQ_ASSERT_MSG(dead < maxprocs_ && adopter < maxprocs_ && dead != adopter,
                   "orphan adoption needs a distinct in-range survivor");
    for (u32 s = 0; s < slots_per_proc_; ++s) slot_ref(dead, s).store(0); // seq_cst vs scans
    Proc& from = procs_[dead].value;
    Proc& to = procs_[adopter].value;
    to.limbo.insert(to.limbo.end(), from.limbo.begin(), from.limbo.end());
    from.limbo.clear();
    scan(to);
  }

  u64 retired() const { return sum(&Proc::retired); }
  u64 reclaimed() const { return sum(&Proc::reclaimed); }
  u64 in_limbo() const {
    u64 n = 0;
    for (const auto& pp : procs_) n += pp.value.limbo.size();
    return n;
  }

 private:
  struct Retired {
    void* p;
    void (*deleter)(void*);
  };
  struct Proc {
    std::vector<Retired> limbo;
    u64 retired = 0;
    u64 reclaimed = 0;
  };

  Shared<u64>& slot_ref(ProcId self, u32 slot) {
    FPQ_ASSERT_MSG(self < maxprocs_ && slot < slots_per_proc_,
                   "hazard slot outside the domain");
    return slots_[static_cast<std::size_t>(self) * slots_per_proc_ + slot].value;
  }

  void scan(Proc& pr) {
    if (pr.limbo.empty()) return;
    std::vector<u64> hazards;
    hazards.reserve(slots_.size());
    for (auto& s : slots_) {
      const u64 v = s.value.load(); // seq_cst: the scan side of the handshake
      if (v != 0) hazards.push_back(v);
    }
    std::vector<Retired> keep;
    for (const Retired& r : pr.limbo) {
      const u64 addr = reinterpret_cast<u64>(r.p);
      if (std::find(hazards.begin(), hazards.end(), addr) != hazards.end()) {
        keep.push_back(r);
      } else {
        r.deleter(r.p);
        ++pr.reclaimed;
      }
    }
    pr.limbo.swap(keep);
  }

  u64 sum(u64 Proc::* field) const {
    u64 n = 0;
    for (const auto& pp : procs_) n += pp.value.*field;
    return n;
  }

  u32 maxprocs_;
  u32 slots_per_proc_;
  u32 scan_threshold_;
  u64 tag_mask_;
  std::vector<Padded<Shared<u64>>> slots_;
  std::vector<Padded<Proc>> procs_;
};

} // namespace fpq::reclaim
