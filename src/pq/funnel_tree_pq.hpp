// FunnelTree (paper §3.2) — the paper's headline algorithm. SimpleTree's
// skeleton with the hot spots replaced:
//
//   * internal counters in the top `tree_cutoff` levels (where all the
//     traffic concentrates) are combining-funnel bounded counters, so
//     descending BFaDs combine/eliminate with climbing FaIs instead of
//     serializing;
//   * deeper counters see exponentially less traffic and use MCS-locked
//     counters (the paper measured ~5% cost for this cut-off vs letting
//     adaptive funnels shrink on their own — bench/ablation_funnel_cutoff
//     reproduces that comparison);
//   * leaf bins are combining-funnel stacks.
//
// Quiescently consistent: delete_min may return nullopt when overlapping
// inserts have not finished publishing counts (see simple_tree_pq.hpp).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "common/bits.hpp"
#include "container/counters.hpp"
#include "funnel/counter.hpp"
#include "funnel/params.hpp"
#include "funnel/stack.hpp"
#include "pq/linear_funnels_pq.hpp" // FunnelOptions
#include "pq/pq.hpp"

namespace fpq {

template <Platform P>
class FunnelTreePq {
 public:
  explicit FunnelTreePq(const PqParams& params, const FunnelOptions& opts = {})
      : npriorities_(params.npriorities),
        nleaves_(round_up_pow2(params.npriorities)) {
    params.validate();
    const FunnelParams fp = opts.params ? *opts.params
                                        : FunnelParams::for_procs(params.maxprocs);
    const typename FunnelCounter<P>::Config ctr_cfg{/*bounded=*/true,
                                                    opts.eliminate, /*floor=*/0};
    funnel_counters_.resize(nleaves_);
    mcs_counters_.resize(nleaves_);
    for (u32 n = 1; n < nleaves_; ++n) {
      if (floor_log2(n) < opts.tree_cutoff)
        funnel_counters_[n] =
            std::make_unique<FunnelCounter<P>>(params.maxprocs, fp, ctr_cfg, 0);
      else
        mcs_counters_[n] = std::make_unique<McsCounter<P>>(params.maxprocs, 0);
    }
    stacks_.reserve(npriorities_);
    for (u32 i = 0; i < npriorities_; ++i)
      stacks_.push_back(std::make_unique<FunnelStack<P>>(
          params.maxprocs, fp, params.bin_capacity, opts.eliminate, opts.bin_order));
  }

  bool insert(Prio prio, Item item) {
    FPQ_ASSERT_MSG(prio < npriorities_, "priority outside the bounded range");
    if (!stacks_[prio]->push(item)) return false;
    for (u32 n = nleaves_ + prio; n > 1; n >>= 1) {
      if ((n & 1) == 0) fai(n >> 1);
    }
    return true;
  }

  std::optional<Entry> delete_min() {
    u32 n = 1;
    while (n < nleaves_) {
      const i64 before = bfad(n);
      n = (n << 1) | (before > 0 ? 0u : 1u);
    }
    const u32 prio = n - nleaves_;
    if (prio >= npriorities_) return std::nullopt; // padding leaf
    if (auto e = stacks_[prio]->pop()) return Entry{prio, *e};
    return std::nullopt;
  }

  u32 npriorities() const { return npriorities_; }
  u32 nleaves() const { return nleaves_; }

  /// Test hook: counter value at heap node `n` (quiescent use only).
  i64 counter_value(u32 n) const {
    return funnel_counters_[n] ? funnel_counters_[n]->read() : mcs_counters_[n]->read();
  }

 private:
  void fai(u32 n) {
    if (funnel_counters_[n])
      funnel_counters_[n]->fai();
    else
      mcs_counters_[n]->fai();
  }

  i64 bfad(u32 n) {
    return funnel_counters_[n] ? funnel_counters_[n]->bfad(0) : mcs_counters_[n]->bfad(0);
  }

  u32 npriorities_;
  u32 nleaves_;
  std::vector<std::unique_ptr<FunnelCounter<P>>> funnel_counters_;
  std::vector<std::unique_ptr<McsCounter<P>>> mcs_counters_;
  std::vector<std::unique_ptr<FunnelStack<P>>> stacks_;
};

} // namespace fpq
