// FunnelTree (paper §3.2) — the paper's headline algorithm. SimpleTree's
// skeleton with the hot spots replaced:
//
//   * internal counters in the top `tree_cutoff` levels (where all the
//     traffic concentrates) are combining-funnel bounded counters, so
//     descending BFaDs combine/eliminate with climbing FaIs instead of
//     serializing;
//   * deeper counters see exponentially less traffic and use MCS-locked
//     counters (the paper measured ~5% cost for this cut-off vs letting
//     adaptive funnels shrink on their own — bench/ablation_funnel_cutoff
//     reproduces that comparison);
//   * leaf bins are combining-funnel stacks.
//
// Quiescently consistent: delete_min may return nullopt when overlapping
// inserts have not finished publishing counts (see simple_tree_pq.hpp).
//
// Batch entry points: insert_batch groups same-priority entries so each
// group rides one stack traversal and one size-k FaI per tree node on the
// climb (FunnelCounter::fai_batch). delete_min_batch descends once with a
// size-k BFaD at the root and splits the batch across the two subtrees by
// the count the counter actually surrendered — the left child receives the
// decrements the counter satisfied (items provably below it), the right
// child the remainder. Left subtrees are resolved first so the out array
// is filled in nondecreasing priority order. An optional PQ-level
// elimination array (FunnelOptions::pq_elimination) fronts the point ops.
#pragma once

#include <algorithm>
#include <memory>
#include <optional>
#include <vector>

#include "common/bits.hpp"
#include "container/counters.hpp"
#include "funnel/counter.hpp"
#include "funnel/params.hpp"
#include "funnel/stack.hpp"
#include "pq/elim_layer.hpp"
#include "pq/linear_funnels_pq.hpp" // FunnelOptions, kMaxBatchChunk, funnel_params_for
#include "pq/pq.hpp"

namespace fpq {

template <Platform P>
class FunnelTreePq {
 public:
  explicit FunnelTreePq(const PqParams& params, const FunnelOptions& opts = {})
      : npriorities_(params.npriorities),
        nleaves_(round_up_pow2(params.npriorities)),
        chunk_(std::min(params.max_batch, kMaxBatchChunk)),
        elim_spin_(opts.elim_spin),
        elim_(opts.pq_elimination ? opts.elim_slots : 0) {
    params.validate();
    const FunnelParams fp = funnel_params_for(params, opts);
    const typename FunnelCounter<P>::Config ctr_cfg{/*bounded=*/true,
                                                    opts.eliminate, /*floor=*/0};
    funnel_counters_.resize(nleaves_);
    mcs_counters_.resize(nleaves_);
    for (u32 n = 1; n < nleaves_; ++n) {
      if (floor_log2(n) < opts.tree_cutoff)
        funnel_counters_[n] =
            std::make_unique<FunnelCounter<P>>(params.maxprocs, fp, ctr_cfg, 0);
      else
        mcs_counters_[n] = std::make_unique<McsCounter<P>>(params.maxprocs, 0);
    }
    stacks_.reserve(npriorities_);
    for (u32 i = 0; i < npriorities_; ++i)
      stacks_.push_back(std::make_unique<FunnelStack<P>>(
          params.maxprocs, fp, params.bin_capacity, opts.eliminate, opts.bin_order));
  }

  bool insert(Prio prio, Item item) {
    FPQ_ASSERT_MSG(prio < npriorities_, "priority outside the bounded range");
    if (elim_.enabled() && elim_.try_hand_off(prio, item)) return true;
    if (!stacks_[prio]->push(item)) return false;
    for (u32 n = nleaves_ + prio; n > 1; n >>= 1) {
      if ((n & 1) == 0) fai(n >> 1);
    }
    return true;
  }

  std::optional<Entry> delete_min() {
    u32 n = 1;
    while (n < nleaves_) {
      const i64 before = bfad(n);
      n = (n << 1) | (before > 0 ? 0u : 1u);
    }
    const u32 prio = n - nleaves_;
    if (prio < npriorities_) { // otherwise a padding leaf: quiescently empty
      if (auto e = stacks_[prio]->pop()) return Entry{prio, *e};
    }
    if (elim_.enabled()) return elim_.park(elim_spin_);
    return std::nullopt;
  }

  // Bounded-wait variants (DESIGN.md §12). The budget governs everything up
  // to the operation's point of no return — the leaf push for insert, the
  // root BFaD for delete_min; kTimeout / kEmpty consumed and inserted
  // nothing. Once committed, the remainder (count climb / descent + leaf
  // pop) rolls *forward* unbudgeted: abandoning a half-climbed count would
  // strand the pushed item and tear every ancestor's invariant. Forward work
  // is bounded at log2(nleaves) counter ops, but each may block on that
  // counter's lock — the documented residual blocking of this queue's try_*.
  // Funnel layer and elimination array are bypassed (partner-dependent).
  PqStatus try_insert(Prio prio, Item item, const TryBudget& budget) {
    FPQ_ASSERT_MSG(prio < npriorities_, "priority outside the bounded range");
    TryClock<P> clock(budget);
    for (;;) {
      const auto r = stacks_[prio]->try_push(item, clock);
      if (r == FunnelStack<P>::TryOutcome::kOk) break;
      if (r == FunnelStack<P>::TryOutcome::kTimeout) return PqStatus::kTimeout;
      // Refused: capacity exhaustion, transient under concurrent deletes.
      if (!clock.tick_backoff()) return PqStatus::kTimeout;
    }
    for (u32 n = nleaves_ + prio; n > 1; n >>= 1) { // committed: roll forward
      if ((n & 1) == 0) fai(n >> 1);
    }
    return PqStatus::kOk;
  }

  PqStatus try_delete_min(Entry& out, const TryBudget& budget) {
    TryClock<P> clock(budget);
    u32 n = 1;
    if (nleaves_ > 1) {
      // Bounded root BFaD — the point of no return. A zero root count is
      // the queue's quiescently-empty answer (every committed insert has
      // published its root count), and claims nothing.
      const std::optional<i64> before = try_bfad(1, clock);
      if (!before) return PqStatus::kTimeout;
      if (*before <= 0) return PqStatus::kEmpty;
      n = 2; // claimed a count: the minimum lies in the left subtree first
      while (n < nleaves_) {
        const i64 b = bfad(n); // roll forward: blocking below the root
        n = (n << 1) | (b > 0 ? 0u : 1u);
      }
      const u32 prio = n - nleaves_;
      if (prio < npriorities_) {
        if (auto e = stacks_[prio]->pop()) {
          out = Entry{prio, *e};
          return PqStatus::kOk;
        }
      }
      return PqStatus::kEmpty; // racing shortfall, same as delete_min's nullopt
    }
    // Single-leaf tree: no counters, the pop itself is the commit point.
    Item v;
    switch (stacks_[0]->try_pop(v, clock)) {
      case FunnelStack<P>::TryOutcome::kOk: out = Entry{0, v}; return PqStatus::kOk;
      case FunnelStack<P>::TryOutcome::kTimeout: return PqStatus::kTimeout;
      case FunnelStack<P>::TryOutcome::kRefused: break;
    }
    return PqStatus::kEmpty;
  }

  /// Aggregated insert: same-priority groups share one stack push_batch and
  /// one fai_batch per tree node on the climb. Returns the number accepted
  /// (refusals are stack-capacity exhaustion; refused items get no counts).
  u32 insert_batch(const Entry* entries, u32 n) {
    u32 accepted = 0;
    Item tmp[kMaxBatchChunk];
    for (u32 base = 0; base < n; base += chunk_) {
      const u32 c = std::min(chunk_, n - base);
      const Entry* es = entries + base;
      for (u32 i = 0; i < c; ++i) {
        const Prio p = es[i].prio;
        FPQ_ASSERT_MSG(p < npriorities_, "priority outside the bounded range");
        bool grouped = false;
        for (u32 j = 0; j < i; ++j)
          if (es[j].prio == p) {
            grouped = true;
            break;
          }
        if (grouped) continue;
        u32 g = 0;
        for (u32 j = i; j < c; ++j)
          if (es[j].prio == p) tmp[g++] = es[j].item;
        const u32 a = stacks_[p]->push_batch(tmp, g);
        if (a > 0) {
          for (u32 node = nleaves_ + p; node > 1; node >>= 1)
            if ((node & 1) == 0) fai_batch(node >> 1, a);
        }
        accepted += a;
      }
    }
    return accepted;
  }

  /// Aggregated delete-min: one descent per chunk. The root BFaD claims up
  /// to `k` counts at once; at every internal node the batch splits — the
  /// counts the node surrendered continue left, the rest go right. Leaves
  /// drain their share with one pop_batch. Entries land in nondecreasing
  /// priority order because left subtrees are resolved first.
  u32 delete_min_batch(Entry* out, u32 k) {
    u32 got = 0;
    while (got < k) {
      const u32 want = std::min(k - got, chunk_);
      const u32 m = delete_chunk(out + got, want);
      got += m;
      if (m < want) break; // counts ran out: the queue is (quiescently) empty
    }
    return got;
  }

  u32 npriorities() const { return npriorities_; }
  u32 nleaves() const { return nleaves_; }

  /// Test hook: counter value at heap node `n` (quiescent use only).
  i64 counter_value(u32 n) const {
    return funnel_counters_[n] ? funnel_counters_[n]->read() : mcs_counters_[n]->read();
  }

 private:
  void fai(u32 n) {
    if (funnel_counters_[n])
      funnel_counters_[n]->fai();
    else
      mcs_counters_[n]->fai();
  }

  i64 bfad(u32 n) {
    return funnel_counters_[n] ? funnel_counters_[n]->bfad(0) : mcs_counters_[n]->bfad(0);
  }

  /// Budget-bounded BFaD at node `n`; nullopt = budget exhausted with the
  /// counter untouched. Direct CAS on funnel counters, try_acquire on MCS.
  std::optional<i64> try_bfad(u32 n, TryClock<P>& clock) {
    return funnel_counters_[n] ? funnel_counters_[n]->try_bfad(0, clock)
                               : mcs_counters_[n]->try_bfad(0, clock);
  }

  void fai_batch(u32 n, u32 k) {
    if (funnel_counters_[n])
      funnel_counters_[n]->fai_batch(k);
    else
      mcs_counters_[n]->fai_batch(k);
  }

  /// Size-k BFaD at node `n`: returns how many of the k decrements found
  /// the counter above its floor (= how many claimed items lie below n).
  u32 bfad_batch(u32 n, u32 k) {
    const u64 s = funnel_counters_[n] ? funnel_counters_[n]->bfad_batch(0, k)
                                      : mcs_counters_[n]->bfad_batch(0, k);
    return static_cast<u32>(s);
  }

  /// One batched descent. Iterative DFS over (node, count) demands; the
  /// right child is pushed before the left so the left — smaller
  /// priorities — pops first and fills `out` in order.
  u32 delete_chunk(Entry* out, u32 want) {
    struct Pending {
      u32 node;
      u32 cnt;
    };
    // Depth ≤ log2(nleaves_) ≤ 31; each level adds at most one extra frame.
    Pending stack[40];
    u32 top = 0;
    stack[top++] = {1u, want};
    u32 got = 0;
    Item tmp[kMaxBatchChunk];
    while (top > 0) {
      const Pending cur = stack[--top];
      if (cur.cnt == 0) continue;
      if (cur.node >= nleaves_) {
        const u32 prio = cur.node - nleaves_;
        if (prio >= npriorities_) continue; // padding leaf: counts absorbed
        const u32 m = stacks_[prio]->pop_batch(tmp, cur.cnt);
        for (u32 i = 0; i < m; ++i) out[got++] = Entry{prio, tmp[i]};
        continue;
      }
      const u32 s = bfad_batch(cur.node, cur.cnt);
      stack[top++] = {(cur.node << 1) | 1u, cur.cnt - s}; // right: leftovers
      stack[top++] = {cur.node << 1, s};                  // left: popped first
    }
    return got;
  }

  u32 npriorities_;
  u32 nleaves_;
  u32 chunk_;
  u32 elim_spin_;
  ElimLayer<P> elim_;
  std::vector<std::unique_ptr<FunnelCounter<P>>> funnel_counters_;
  std::vector<std::unique_ptr<McsCounter<P>>> mcs_counters_;
  std::vector<std::unique_ptr<FunnelStack<P>>> stacks_;
};

} // namespace fpq
