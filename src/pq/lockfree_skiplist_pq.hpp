// Lock-free skiplist priority queue in the style of Lindén & Jonsson
// (OPODIS 2013): delete_min marks (logically deletes) nodes with a single
// CAS on the predecessor's bottom-level pointer and defers all physical
// unlinking; marked nodes accumulate as a *deleted prefix* at the front of
// the bottom-level list, and one restructuring pass per ~bound deletions
// swings the list head past the whole prefix at once — the "logically-
// deleted prefix batching" that removes the delete-min unlink storm from
// the hot path. Nodes leave memory through reclaim::Domain (hazard
// pointers or epochs, runtime-selected via PqParams::reclaim_policy).
//
// ## Word format
//
// Every next[] word packs a node pointer with two low tag bits:
//
//   kMarkBit   (on u->next[0]) — the node u->next[0] POINTS TO is
//              logically deleted. Marks are claimed by the deleting CAS
//              (w -> w|kMarkBit) and, because inserts always CAS against
//              an unmarked expected word and claims always target the
//              first live node, marked words form a contiguous prefix of
//              the bottom-level chain.
//   kPoisonBit (all levels) — the word's OWNER is being retired by the
//              restructurer; any traversal that reads a poisoned word
//              backs off (P::pause) and restarts from the head. The
//              restart is bounded: the restructurer unlinks the poisoned
//              node from every level in a constant number of its own
//              steps, after which no fresh traversal can reach it. The
//              pause is load-bearing, not a nicety — a poisoned word
//              never changes again, so a pause-less restart loop re-reads
//              only cache-hit words and (under the simulator's hit-elision
//              scheduling, engine.cpp) would never yield the processor
//              that must run the restructurer. Same doctrine as the
//              contention-aware spinning contract in DESIGN.md §8.
//
// ## Safety of the deferred unlink (the part the reclaim battery tortures)
//
// Traversals run hand-over-hand under a reclaim::Guard: each hop validates
// the predecessor's word while publishing protection for the successor.
// The restructurer processes its unlinked prefix in chain order — for each
// node u: wait out any in-flight insert (Node::state), then retire each
// upper level with a two-phase, Harris-style handshake:
//
//   phase 1 (poison_preserving) — CAS the poison bit into u's OWN level
//   word while PRESERVING the successor pointer. From this point every
//   splice CAS that uses u as a predecessor fails (expected words are
//   clean), so no new pointer can be installed *out of* u; splices that
//   still hold u as the expected *successor* remain possible and benign.
//
//   phase 2 (unlink_upper) — identity-walk from the head to u's current
//   predecessor and CAS u out, installing u's preserved successor. The
//   successor is re-read after the poison point, so a splice that landed
//   just before phase 1 is carried over, and a splice that lands on the
//   predecessor concurrently simply makes the walk retry against the new
//   predecessor. Without phase 1 an insert could splice onto u in the
//   unlink-to-retire window and orphan the new node on a freed tower.
//
// Only after every upper level is unlinked does the bottom word get
// poisoned (seq_cst) and the node retired. Under hazard pointers this
// gives the store-buffering argument (DESIGN.md §8.2): a reader's
// validating load either observes the poison (it restarts) or precedes it
// in the SC order — and since poisoning a node precedes retiring every
// LATER chain node, the reader's already-published hazard is visible to
// any scan that could free its successor. Under epochs the guard's pin
// makes every node retired during the traversal ineligible for
// reclamation until the guard exits.
//
// Insert raises the tower level by level after the bottom splice; a node
// deleted mid-insert can meet the restructurer, which must not retire it
// while splices are still landing — Node::state (0 = raising, 1 = fully
// linked) is the wait flag. The restructurer never blocks the inserter
// (inserts never wait on the restructure flag), so the wait is bounded.
//
// Semantics: linearizable delete_min (the claiming CAS is the
// linearization point; it always claims the first live node) and exact
// per-operation minimality in the quiescent sense of Appendix B. The
// quiescent phase-rank checks apply in full (unlike SkipListPq's
// delete-bin scheme).
//
// ## Fault tolerance (DESIGN.md §12)
//
// The queue is classified lock-free: a fail-stopped processor must not
// prevent survivors from completing inserts and delete_mins. Three spots
// carry that guarantee:
//
//   * search never *adopts* a node whose level word is poisoned as a pred
//     (skip-before rule, see search()); if a restructurer dies between
//     poisoning a level and unlinking it, the poisoned node just stays in
//     that level's list forever — traversals step around it instead of
//     restarting into it unboundedly. Bottom-level poison still restarts,
//     which stays bounded because bottom poison is only ever applied to
//     nodes already unlinked from every list.
//   * restructure's wait for an in-flight inserter (Node::state) is a
//     bounded probe, not a park: a crashed inserter abandons the rest of
//     the prefix (those nodes leak — they are unreachable — rather than
//     hang the survivor's delete_min). A crashed *restructurer* leaves the
//     restructuring_ flag set, which only stops future physical cleanup;
//     logical operation continues (the prefix merely stops shrinking).
//   * node memory comes from P::try_alloc: an injected allocation failure
//     makes insert return false / try_insert return kNoMemory with the
//     structure untouched and the node freed — no leak, no torn tower.
//
// After a crash, a survivor (or the harness) must call adopt_orphans() so
// the dead processor's hazard slots / epoch pin and limbo are taken over;
// see reclaim.hpp.
#pragma once

#include <array>
#include <new>
#include <optional>
#include <vector>

#include "common/assert.hpp"
#include "common/entry.hpp"
#include "common/padded.hpp"
#include "common/types.hpp"
#include "platform/platform.hpp"
#include "pq/pq.hpp"
#include "reclaim/reclaim.hpp"
#include "sync/backoff.hpp"

namespace fpq {

template <Platform P>
class LockfreeSkipListPq {
  template <class T>
  using Shared = typename P::template Shared<T>;

 public:
  static constexpr u32 kMaxHeight = 12;

  explicit LockfreeSkipListPq(const PqParams& params)
      : npriorities_(params.npriorities),
        // Small under the simulator so schedule exploration and the
        // sequential suites exercise restructuring constantly; sized to
        // amortize the flag + level walks natively.
        restructure_bound_(P::kSimulated ? 4 : 16 + 4 * params.maxprocs),
        domain_(params.maxprocs, domain_options(params)) {
    params.validate();
    head_ = alloc_node(0, 0, kMaxHeight);
    tail_ = alloc_node(npriorities_, 0, kMaxHeight);
    FPQ_ASSERT_MSG(head_ != nullptr && tail_ != nullptr, "sentinel allocation failed");
    head_->state.store_relaxed(1); // sentinels are never "being inserted"
    tail_->state.store_relaxed(1);
    for (u32 l = 0; l < kMaxHeight; ++l) head_->next[l].store_relaxed(pack(tail_));
  }

  ~LockfreeSkipListPq() {
    // Quiescent teardown: everything still linked at the bottom level (live
    // nodes plus the not-yet-restructured deleted prefix) is owned by the
    // list; retired nodes were unlinked first, so the sets are disjoint and
    // the domain's destructor frees the latter.
    Node* cur = ptr(head_->next[0].load_acquire());
    while (cur != tail_) {
      Node* nxt = ptr(cur->next[0].load_acquire());
      free_node(cur); // quiescent owner teardown
      cur = nxt;
    }
    free_node(head_);
    free_node(tail_);
  }

  LockfreeSkipListPq(const LockfreeSkipListPq&) = delete;
  LockfreeSkipListPq& operator=(const LockfreeSkipListPq&) = delete;

  bool insert(Prio prio, Item item) {
    FPQ_ASSERT_MSG(prio < npriorities_, "priority outside the bounded range");
    u32 h = 1;
    while (h < kMaxHeight && P::flip()) ++h;
    Node* n = alloc_node(prio, item, h);
    if (n == nullptr) return false; // allocation failure: structure untouched
    reclaim::Guard<P> g(domain_);
    Node* preds[kMaxHeight];
    u64 succs[kMaxHeight];
    // contract-lint: allow(naked-spin) lock-free retry: the splice CAS
    // fails only when a concurrent splice/claim/poison committed.
    for (;;) {
      search(g, prio, preds, succs);
      // Pre-publication store; the splice CAS below releases it.
      n->next[0].store_relaxed(succs[0]);
      u64 expect = succs[0]; // search guarantees an unmarked, unpoisoned word
      if (preds[0]->next[0].compare_exchange(expect, pack(n), MemOrder::kRelease,
                                             MemOrder::kRelaxed)) {
        break;
      }
    }
    // Raise the tower. A poisoned or moved pred word simply fails the CAS
    // (expected is clean) and we re-search; correctness never depends on a
    // node being present above level 0, so lost upper splices are benign.
    for (u32 l = 1; l < h; ++l) {
      // contract-lint: allow(naked-spin) lock-free retry (see above)
      for (;;) {
        n->next[l].store_release(succs[l]);
        u64 expect = succs[l];
        if (preds[l]->next[l].compare_exchange(expect, pack(n), MemOrder::kRelease,
                                               MemOrder::kRelaxed)) {
          break;
        }
        search(g, prio, preds, succs);
      }
    }
    n->state.store_release(1); // the restructurer may now unlink/retire n
    return true;
  }

  std::optional<Entry> delete_min() {
    reclaim::Guard<P> g(domain_);
  restart:
    Node* pred = head_;
    g.protect_value(kSlotPred, pack(head_));
    u64 w = g.protect(kSlotCur, pred->next[0]);
    u32 offset = 0;
    for (;;) {
      if (poisoned(w)) {
        P::pause(); // see the kPoisonBit comment: backoff keeps this bounded
        goto restart;
      }
      Node* x = ptr(w);
      if (x == tail_) return std::nullopt; // no live node (prefix is deleted)
      if (marked(w)) {
        // Hop over the deleted prefix, hand-over-hand.
        ++offset;
        g.protect_value(kSlotPred, pack(x));
        pred = x;
        w = g.protect(kSlotCur, pred->next[0]);
        continue;
      }
      u64 expect = w;
      if (pred->next[0].compare_exchange(expect, w | kMarkBit, MemOrder::kAcqRel,
                                         MemOrder::kRelaxed)) {
        // Claimed the first live node: the linearization point.
        ++offset;
        const Entry e{static_cast<Prio>(x->key), x->item};
        if (offset > restructure_bound_) restructure(g, x);
        return e;
      }
      if (poisoned(expect)) {
        P::pause();
        goto restart;
      }
      // Lost to an insert in front of us or to another claim; re-protect
      // the new successor and retry from the same pred.
      w = g.protect(kSlotCur, pred->next[0]);
    }
  }

  // Bounded-wait variants (DESIGN.md §12). The structure is lock-free, so
  // the budget is charged only on contention — CAS losses and poison
  // restarts — never on parking; both ops are pre-commit (kTimeout /
  // kEmpty / kNoMemory consumed and inserted nothing). try_insert's commit
  // point is the bottom splice; a budget that runs out during the tower
  // raise abandons the remaining levels, which is benign (correctness
  // never depends on presence above level 0).
  PqStatus try_insert(Prio prio, Item item, const TryBudget& budget) {
    FPQ_ASSERT_MSG(prio < npriorities_, "priority outside the bounded range");
    TryClock<P> clock(budget);
    u32 h = 1;
    while (h < kMaxHeight && P::flip()) ++h;
    Node* n = alloc_node(prio, item, h);
    if (n == nullptr) return PqStatus::kNoMemory; // untorn: nothing published
    reclaim::Guard<P> g(domain_);
    Node* preds[kMaxHeight];
    u64 succs[kMaxHeight];
    for (;;) {
      search(g, prio, preds, succs);
      n->next[0].store_relaxed(succs[0]);
      u64 expect = succs[0];
      if (preds[0]->next[0].compare_exchange(expect, pack(n), MemOrder::kRelease,
                                             MemOrder::kRelaxed)) {
        break;
      }
      if (!clock.tick_backoff()) {
        free_node(n); // never published: direct free, no retire needed
        return PqStatus::kTimeout;
      }
    }
    for (u32 l = 1; l < h; ++l) {
      for (;;) {
        n->next[l].store_release(succs[l]);
        u64 expect = succs[l];
        if (preds[l]->next[l].compare_exchange(expect, pack(n), MemOrder::kRelease,
                                               MemOrder::kRelaxed)) {
          break;
        }
        if (!clock.tick_backoff()) {
          l = h; // committed at the bottom; abandon the remaining levels
          break;
        }
        search(g, prio, preds, succs);
      }
    }
    n->state.store_release(1);
    return PqStatus::kOk;
  }

  PqStatus try_delete_min(Entry& out, const TryBudget& budget) {
    TryClock<P> clock(budget);
    reclaim::Guard<P> g(domain_);
  restart:
    Node* pred = head_;
    g.protect_value(kSlotPred, pack(head_));
    u64 w = g.protect(kSlotCur, pred->next[0]);
    u32 offset = 0;
    for (;;) {
      if (poisoned(w)) {
        if (!clock.tick_backoff()) return PqStatus::kTimeout;
        goto restart;
      }
      Node* x = ptr(w);
      if (x == tail_) return PqStatus::kEmpty;
      if (marked(w)) {
        // Prefix hops are plain walk progress (bounded by the prefix
        // length), not contention; they are not charged to the budget.
        ++offset;
        g.protect_value(kSlotPred, pack(x));
        pred = x;
        w = g.protect(kSlotCur, pred->next[0]);
        continue;
      }
      u64 expect = w;
      if (pred->next[0].compare_exchange(expect, w | kMarkBit, MemOrder::kAcqRel,
                                         MemOrder::kRelaxed)) {
        ++offset;
        out = Entry{static_cast<Prio>(x->key), x->item};
        if (offset > restructure_bound_) restructure(g, x); // post-commit
        return PqStatus::kOk;
      }
      if (!clock.tick_backoff()) return PqStatus::kTimeout;
      if (poisoned(expect)) goto restart;
      w = g.protect(kSlotCur, pred->next[0]);
    }
  }

  /// Fault-battery hook: after processor `dead` fail-stopped, a survivor
  /// (or the teardown path) takes over its reclamation state — stale
  /// hazards / epoch pin and limbo — so reclamation unwedges and the
  /// domain can be destroyed cleanly. See reclaim::Domain::adopt_orphans.
  void adopt_orphans(ProcId dead, ProcId adopter) { domain_.adopt_orphans(dead, adopter); }

  u32 npriorities() const { return npriorities_; }

  /// Reclamation accounting, surfaced for the torture tests.
  reclaim::DomainStats reclaim_stats() const { return domain_.stats(); }

 private:
  static constexpr u64 kMarkBit = 1;
  static constexpr u64 kPoisonBit = 2;
  static constexpr u64 kTagMask = kMarkBit | kPoisonBit;
  /// Backoff probes the restructurer grants a still-raising insert before
  /// concluding the inserter is dead and abandoning the prefix. Each probe
  /// backs off exponentially, so the fault-free protocol (whose raise is a
  /// handful of CASes) never comes close to the bound.
  static constexpr u32 kStateWaitBound = 4096;

  // Hazard slots: one per level for the search's preds, plus the traversal
  // cursor pair (pred, cur) for hand-over-hand hops.
  static constexpr u32 kSlotPred = kMaxHeight;
  static constexpr u32 kSlotCur = kMaxHeight + 1;
  static constexpr u32 kSlots = kMaxHeight + 2;

  struct Node {
    const u64 key;
    const u64 item;
    const u32 height;
    /// 0 while the insert is still raising the tower; 1 once fully linked.
    Shared<u32> state;
    // One tower is traversed as a unit by a single hop; padding it would
    // multiply the node size by the height.
    // contract-lint: allow(unpadded-shared) tower is a unit, see above
    std::array<Shared<u64>, kMaxHeight> next;
    Node(u64 k, u64 it, u32 h) : key(k), item(it), height(h) {}
  };

  static Node* ptr(u64 w) { return reinterpret_cast<Node*>(w & ~kTagMask); }
  static u64 pack(Node* n) { return reinterpret_cast<u64>(n); }
  static bool marked(u64 w) { return (w & kMarkBit) != 0; }
  static bool poisoned(u64 w) { return (w & kPoisonBit) != 0; }

  // Node memory goes through the platform allocator so the fault engine
  // can inject allocation failure and the counting allocator can audit the
  // queue for leaks/double-frees (sim backend, DESIGN.md §12).
  static Node* alloc_node(u64 k, u64 it, u32 h) {
    void* mem = P::try_alloc(sizeof(Node));
    if (mem == nullptr) return nullptr;
    return new (mem) Node(k, it, h);
  }

  static void free_node(Node* n) {
    n->~Node();
    P::dealloc(n, sizeof(Node));
  }

  static void retire_node(reclaim::Guard<P>& g, Node* n) {
    g.retire(n, [](void* q) { free_node(static_cast<Node*>(q)); });
  }

  static reclaim::DomainOptions domain_options(const PqParams& p) {
    reclaim::DomainOptions o;
    o.policy = p.reclaim_policy;
    o.slots_per_proc = kSlots;
    o.tag_mask = kTagMask;
    return o;
  }

  /// Find, per level, the last node with key <= `key` among live nodes
  /// (the bottom level additionally skips the whole deleted prefix, whose
  /// keys are no longer ordered relative to the live suffix). On return
  /// preds[l] is protected by slot l and succs[l] is the clean word that
  /// followed it; succs[0] is always unmarked and unpoisoned, so it is a
  /// valid CAS-expected value for a splice.
  void search(reclaim::Guard<P>& g, u64 key, Node** preds, u64* succs) {
  restart:
    Node* pred = head_;
    g.protect_value(kSlotPred, pack(head_));
    for (i32 l = kMaxHeight - 1; l >= 0; --l) {
      const u32 ul = static_cast<u32>(l);
      u64 w = g.protect(kSlotCur, pred->next[ul]);
      for (;;) {
        if (poisoned(w)) {
          // `pred`'s own level-l word is poisoned: pred is mid-retirement.
          // Bottom level: restart the search — bottom poison is applied
          // only to nodes already unlinked from every list, so a fresh
          // walk cannot re-reach them and the restart is bounded even if
          // the poisoner crashed. Upper level: the poison may be permanent
          // (a dead restructurer never reaches phase 2), so restarting
          // would livelock; instead re-scan just this level from the head,
          // where the skip-before rule below steps around poisoned nodes.
          // The pause is load-bearing under the simulator's hit-elision
          // scheduling (see the kPoisonBit file comment).
          if (l == 0) {
            P::pause();
            goto restart;
          }
          pred = head_;
          g.protect_value(kSlotPred, pack(head_));
          w = g.protect(kSlotCur, pred->next[ul]);
          continue;
        }
        Node* cur = ptr(w);
        const bool advance = cur != tail_ && (marked(w) || cur->key <= key);
        if (!advance) break;
        if (l > 0 && poisoned(cur->next[ul].load_acquire())) {
          // Skip-before rule (upper levels): `cur` is being retired here.
          // Its word still names the preserved successor, so the list
          // stays navigable, but no CAS against it can ever succeed — so
          // never adopt it as a pred. Stop the level early instead:
          // preds[l] only needs a clean word and key <= target; level 0 is
          // authoritative for position, and if the early stop makes this
          // level locally unsorted that costs a longer lower-level walk,
          // not correctness. The load is advisory — poison landing after
          // it is caught by the poisoned(w) arm above on the next read.
          break;
        }
        g.protect_value(kSlotPred, pack(cur));
        pred = cur;
        w = g.protect(kSlotCur, pred->next[ul]);
      }
      preds[l] = pred;
      succs[l] = w;
      g.protect_value(ul, pack(pred));
    }
  }

  /// Physically remove the deleted prefix strictly before `boundary` (the
  /// node the calling delete_min just claimed, which becomes the new front
  /// dummy). Serialized by restructuring_; only the flag holder retires
  /// nodes, so its own walks need no per-hop hazards.
  void restructure(reclaim::Guard<P>& g, Node* boundary) {
    u32 expect_flag = 0;
    if (!restructuring_.value.compare_exchange(expect_flag, 1, MemOrder::kAcqRel,
                                               MemOrder::kRelaxed))
      return;
    // Collect the prefix. If an earlier restructure already swung the head
    // past `boundary`, the walk ends on an unmarked word without finding
    // it and we do nothing.
    std::vector<Node*> prefix;
    bool found = false;
    const u64 first_w = head_->next[0].load_acquire();
    u64 w = first_w;
    while (marked(w)) {
      Node* u = ptr(w);
      if (u == boundary) {
        found = true;
        break;
      }
      prefix.push_back(u);
      w = u->next[0].load_acquire();
    }
    if (found && !prefix.empty()) {
      // Swing the head past the prefix. The head's bottom word is stable
      // while the prefix is nonempty — inserts and claims need an unmarked
      // expected value and other restructurers are excluded by the flag —
      // so this CAS cannot lose.
      u64 expect_w = first_w;
      const bool swung = head_->next[0].compare_exchange(
          expect_w, pack(boundary) | kMarkBit, MemOrder::kAcqRel, MemOrder::kRelaxed);
      FPQ_ASSERT_MSG(swung, "head word moved while the restructure flag was held");
      for (Node* u : prefix) {
        // Wait out an in-flight insert still raising u's tower. In the
        // fault-free protocol this wait is bounded (inserters never wait
        // on the restructure flag), but a crashed inserter leaves state==0
        // forever, and parking here would hang the survivor's delete_min —
        // so probe with backoff up to a generous bound and, on timeout,
        // abandon the rest of the prefix. The abandoned nodes are already
        // unreachable from the head (the swing above), so they leak —
        // bounded by the prefix length, crash runs only — instead of
        // being retired under a still-raising tower.
        bool linked = u->state.load_acquire() == 1;
        if (!linked) {
          Backoff<P> bo;
          for (u32 i = 0; i < kStateWaitBound && !linked; ++i) {
            bo.spin();
            linked = u->state.load_acquire() == 1;
          }
        }
        if (!linked) break;
        // Two-phase per-level retirement; see the file comment.
        for (u32 l = 1; l < u->height; ++l) {
          poison_preserving(u, l);
          unlink_upper(u, l);
        }
        // Bottom level: the head swing already unlinked the whole prefix,
        // and the mark bit makes the word un-CAS-able for inserts and
        // claims, so a plain poison (seq_cst, §8.2) is enough here.
        u->next[0].store(kPoisonBit);
        retire_node(g, u);
      }
    }
    restructuring_.value.store_release(0);
  }

  /// Phase 1 of the two-phase level retirement: set the poison bit on
  /// u's own level-l word while keeping the successor pointer intact.
  /// seq_cst CAS: this is the store whose visibility the hazard-pointer
  /// validating load races against (DESIGN.md §8.2).
  void poison_preserving(Node* u, u32 l) {
    u64 w = u->next[l].load();
    // contract-lint: allow(naked-spin) lock-free retry: the CAS fails only
    // when a concurrent insert spliced a successor after u.
    for (;;) {
      FPQ_ASSERT_MSG(!poisoned(w), "level poisoned twice");
      u64 expect = w;
      if (u->next[l].compare_exchange(expect, w | kPoisonBit)) return;
      w = expect; // an insert spliced a successor after u; re-poison over it
    }
  }

  /// Phase 2: remove `u` from level l's list by identity walk from the
  /// head. The deleted prefix is unordered relative to the live suffix,
  /// so a key-guided walk could stop early; levels are short (geometric),
  /// and this runs once per restructured node per level.
  void unlink_upper(Node* u, u32 l) {
    // contract-lint: allow(naked-spin) lock-free retry: each rewalk follows
    // a failed CAS, which means another unlink or splice committed.
    for (;;) {
      Node* pred = head_;
      u64 w = pred->next[l].load_acquire();
      while (ptr(w) != u) {
        if (ptr(w) == tail_ || poisoned(w)) return; // never spliced, or gone
        pred = ptr(w);
        w = pred->next[l].load_acquire();
      }
      // u's word is already poisoned (phase 1); install the pointer part,
      // re-read after the poison so a just-landed splice is carried over.
      const u64 s = pack(ptr(u->next[l].load_acquire()));
      u64 expect = w;
      if (pred->next[l].compare_exchange(expect, s, MemOrder::kRelease,
                                         MemOrder::kRelaxed)) {
        return;
      }
      // Lost to an insert splicing at pred; rewalk against the new pred.
    }
  }

  u32 npriorities_;
  u32 restructure_bound_;
  reclaim::Domain<P> domain_;
  Node* head_;
  Node* tail_;
  Padded<Shared<u32>> restructuring_;
};

} // namespace fpq
