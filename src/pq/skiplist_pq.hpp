// SkipList (paper Fig. 12): Pugh's skip list specialized for a fixed
// priority range. One link per priority is pre-allocated; each link carries
// a bin of items and is threaded into the list only while it (logically)
// holds items. Deletions follow Johnson's delete-bin idea: a shared pointer
// to the most recently unlinked minimal bin; deleters drain it and the
// first to find it empty unlinks the next minimal link (under a try-lock,
// so the rest keep draining instead of convoying).
//
// Structural changes use Pugh-style per-level locks plus one structure lock
// per link serializing thread/unthread of that link:
//   * thread   — bottom-up splice; each level locks the predecessor,
//     validates, links. The `threaded` flag is published as soon as the
//     level-0 splice lands (the link is logically present once reachable at
//     the bottom level; upper levels are accelerators), which keeps
//     concurrent threaders from convoying behind half-threaded
//     predecessors.
//   * unthread — top-down unsplice; each level locks predecessor *and*
//     victim, so an in-flight splice after the victim cannot be lost.
// Locks are always taken in ascending key order (predecessor first) and at
// most two level locks are held at once, so the protocol is deadlock-free.
//
// Fidelity note: as in the paper's pseudo-code, delete-min prefers the
// delete bin even when a smaller-priority link has been threaded since the
// bin was unlinked, so a delete overlapping such inserts can return a
// non-minimal item. The paper inherits this from Johnson's scheme; tests
// therefore check conservation and quiescent drain order rather than
// per-operation minimality for this algorithm.
#pragma once

#include <array>
#include <memory>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "container/bin.hpp"
#include "pq/pq.hpp"
#include "sync/backoff.hpp"
#include "sync/ttas_lock.hpp"

namespace fpq {

template <Platform P>
class SkipListPq {
 public:
  static constexpr u32 kMaxLevel = 12;

  explicit SkipListPq(const PqParams& params) : npriorities_(params.npriorities) {
    params.validate();
    Xorshift rng(params.seed);
    head_ = std::make_unique<Link>(-1, kMaxLevel);
    tail_ = std::make_unique<Link>(static_cast<i64>(npriorities_), kMaxLevel);
    head_->threaded.store_relaxed(1);
    tail_->threaded.store_relaxed(1);
    for (u32 l = 0; l < kMaxLevel; ++l) head_->next[l].store_relaxed(tail_.get());
    links_.reserve(npriorities_);
    for (u32 p = 0; p < npriorities_; ++p) {
      u32 level = 1;
      while (level < kMaxLevel && rng.flip()) ++level;
      auto link = std::make_unique<Link>(static_cast<i64>(p), level);
      link->bin =
          std::make_unique<LockedBin<P>>(params.maxprocs, params.bin_capacity);
      links_.push_back(std::move(link));
    }
  }

  bool insert(Prio prio, Item item) {
    FPQ_ASSERT_MSG(prio < npriorities_, "priority outside the bounded range");
    Link* link = links_[prio].get();
    if (!link->bin->insert(item)) return false;
    // Check *after* inserting (as the paper does). This flag check races
    // with delete_min's unthread + rescue of the outgoing delete bin — a
    // store-buffering shape (we write the bin then read `threaded`; the
    // rescuer writes `threaded` then reads the bin) that release/acquire
    // alone cannot close. The bin's lock is the arbiter: the rescuer
    // re-checks emptiness with empty_locked(), so either our bin-insert's
    // critical section precedes that probe (the rescuer sees our item and
    // re-threads) or follows it — and then the lock hand-off publishes the
    // rescuer-side threaded==0 store to this load, so *we* re-thread.
    if (link->threaded.load_acquire() == 0) thread_link(link);
    return true;
  }

  std::optional<Entry> delete_min() {
    Backoff<P> backoff;
    for (;;) {
      Link* d = del_link_.load_acquire();
      if (d != nullptr) {
        if (auto e = d->bin->remove()) return Entry{static_cast<Prio>(d->key), *e};
      }
      if (del_lock_.try_acquire()) {
        Link* first = head_->next[0].load_acquire();
        if (first == tail_.get()) {
          del_lock_.release();
          // Close the window where an insert landed in the delete bin while
          // we were looking at an empty list.
          Link* d2 = del_link_.load_acquire();
          if (d2 != nullptr) {
            if (auto e = d2->bin->remove())
              return Entry{static_cast<Prio>(d2->key), *e};
          }
          return std::nullopt;
        }
        unthread(first);
        Link* old = del_link_.load_relaxed(); // only this del_lock_ holder writes it
        del_link_.store_release(first);
        del_lock_.release();
        // Rescue the outgoing delete bin. An insert that raced with the old
        // link's unthread may have read threaded==1 and skipped re-threading.
        // The emptiness probe must therefore be decisive, and a lock-free
        // acquire read is not (store-buffering with the inserter's
        // post-insert flag check). empty_locked() arbitrates via the bin
        // lock's critical-section order: either the racing bin-insert
        // precedes our probe's section (we see the item and re-thread) or it
        // follows it, in which case the lock hand-off publishes the old
        // link's threaded==0 (which happened-before this probe via the
        // del_lock_ chain) to the inserter, who re-threads in insert().
        // (The paper's Fig. 12 pseudo-code loses these items.)
        if (old != nullptr && old->threaded.load_acquire() == 0 &&
            !old->bin->empty_locked())
          thread_link(old);
      } else {
        // Another deleter is advancing the bin; try again shortly.
        backoff.spin();
      }
    }
  }

  u32 npriorities() const { return npriorities_; }

  /// Test hooks.
  bool is_threaded(Prio p) const { return links_[p]->threaded.load_acquire() == 1; }
  u32 level_of(Prio p) const { return links_[p]->level; }
  Prio first_threaded() const {
    Link* f = head_->next[0].load_acquire();
    return static_cast<Prio>(f->key); // == npriorities() when list empty
  }

 private:
  // Ordering contract: next[] pointers and the threaded flag are written
  // under their level locks / slock but read lock-free by find_pred and
  // insert, so every splice that must be visible to a lock-free reader is
  // a release store (pred->next, threaded) paired with the readers'
  // acquire loads; accesses that only ever race with holders of the same
  // lock are relaxed. del_link_ is written only by the del_lock_ holder
  // (release) and read lock-free (acquire).
  struct Link {
    Link(i64 k, u32 lv) : key(k), level(lv) {
      for (auto& n : next) n.store_relaxed(nullptr);
    }
    const i64 key;
    const u32 level;
    typename P::template Shared<u32> threaded{0};
    TtasLock<P> slock; // serializes thread/unthread of this link
    std::array<TtasLock<P>, kMaxLevel> level_locks;
    // A traversal reads one link's levels top-down in quick succession;
    // keeping them on one line is a locality win, not false sharing.
    // contract-lint: allow(unpadded-shared)
    std::array<typename P::template Shared<Link*>, kMaxLevel> next;
    std::unique_ptr<LockedBin<P>> bin; // null for sentinels
  };

  /// Last link with key < `key` at level `lv` (search without locks; callers
  /// validate under locks and retry).
  Link* find_pred(u32 lv, i64 key) const {
    Link* cur = head_.get();
    for (i32 l = kMaxLevel - 1; l >= static_cast<i32>(lv); --l) {
      // contract-lint: allow(naked-spin) bounded traversal: cur strictly
      // advances along a finite level or the loop breaks.
      for (;;) {
        Link* nxt = cur->next[l].load_acquire();
        if (nxt != nullptr && nxt->key < key)
          cur = nxt;
        else
          break;
      }
    }
    return cur;
  }

  void thread_link(Link* x) {
    TtasGuard<P> sg(x->slock);
    if (x->threaded.load_relaxed() == 1) return; // slock orders this; someone beat us
    Backoff<P> backoff;
    for (u32 lv = 0; lv < x->level; ++lv) {
      for (;;) {
        Link* pred = find_pred(lv, x->key);
        pred->level_locks[lv].acquire();
        Link* succ = pred->next[lv].load_relaxed(); // writers hold this same level lock
        // A predecessor found by the search is spliced at this level; the
        // flag check only excludes one being unthreaded right now.
        const bool pred_live = (pred == head_.get() || pred->threaded.load_acquire() == 1);
        if (pred_live && succ != nullptr && succ->key > x->key) {
          // Release, not relaxed: when x is *re*-threaded, a lock-free
          // traversal may still be parked on x from its previous tenure and
          // acquire-read this word directly — the pred->next release below
          // only covers readers that enter through the fresh splice.
          x->next[lv].store_release(succ);
          pred->next[lv].store_release(x); // publishes x->next[lv] to lock-free readers
          pred->level_locks[lv].release();
          break;
        }
        pred->level_locks[lv].release();
        backoff.spin();
      }
      if (lv == 0) x->threaded.store_release(1); // publishes the level-0 splice
      backoff.reset();
    }
  }

  /// Caller must hold del_lock_ (single unthreader at a time).
  void unthread(Link* x) {
    TtasGuard<P> sg(x->slock); // waits out an in-flight thread of x
    FPQ_ASSERT_MSG(x->threaded.load_relaxed() == 1, "unthreading an unthreaded link");
    x->threaded.store_release(0); // threaders using x as predecessor now re-validate
    Backoff<P> backoff;
    for (i32 lv = static_cast<i32>(x->level) - 1; lv >= 0; --lv) {
      for (;;) {
        Link* pred = find_pred(static_cast<u32>(lv), x->key);
        pred->level_locks[lv].acquire();
        x->level_locks[lv].acquire();
        if (pred->next[lv].load_relaxed() == x) { // writers hold this same level lock
          pred->next[lv].store_release(x->next[lv].load_relaxed());
          x->level_locks[lv].release();
          pred->level_locks[lv].release();
          break;
        }
        x->level_locks[lv].release();
        pred->level_locks[lv].release();
        backoff.spin();
      }
      backoff.reset();
    }
  }

  u32 npriorities_;
  std::unique_ptr<Link> head_;
  std::unique_ptr<Link> tail_;
  std::vector<std::unique_ptr<Link>> links_;
  typename P::template Shared<Link*> del_link_{nullptr};
  TtasLock<P> del_lock_;
};

} // namespace fpq
