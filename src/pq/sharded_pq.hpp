// ShardedPq: a composite "PQ of PQs" (ROADMAP item 3, SmartPQ arXiv
// 2406.06900, Calciu et al. arXiv 1408.1021, multiqueue c-of-k sampling).
//
// K sub-queues ("shards"), each a full registry queue behind a one-word
// *stash* holding the shard's packed minimum entry. Inserts go to the
// caller's home shard (pq/shard_policy.hpp maps contiguous processor-id
// blocks to contiguous, mesh-proximate node patches); delete-min peeks the
// stashes of c randomly sampled shards and pops the best one.
//
// ## Relaxation contract
//
// With c == K every delete-min scans every stash, so on a sequential
// history the result is the exact global minimum (the stash invariant
// below) — rank error 0; overlapping operations can perturb that by a
// bounded amount (see the invariant's concurrency note).
// With c < K a delete-min may miss the shard holding the true minimum and
// return the best of its sample instead: rank error is nonzero but bounded
// by the number of smaller entries parked on unsampled shards (verified by
// verify/rank_error.hpp). Quiescent *emptiness* is never relaxed: before
// reporting empty the scan widens to all K shards and drains each backend's
// head, so nullopt still means quiescently empty.
//
// ## Stash invariant
//
// On sequential histories, each shard's stash holds the minimum of that
// shard and the stash is empty iff the shard is empty. Inserts keep it: an
// entry smaller than the stash swaps itself in and reinstates the
// displaced entry (stash first, backend otherwise); larger entries go
// straight to the backend. Delete-min claims the stash word by CAS and
// refills it from the backend before returning.
//
// Under concurrency the invariant is best-effort: the straight-to-backend
// branch decides against a stash value that a concurrent pop's refill can
// change, so a completed overlapping insert/pop pair may leave the stash
// above the backend head — a bounded perturbation that persists until
// that shard is popped again (it is what the rank-error metric measures,
// and why even c == K is only *sequentially* exact). direct_insert
// revalidates after a backend insert and pulls the backend head back up,
// which empirically keeps the steady-state rank error near zero. The
// empty-path backend drain above repairs the fail-stop variant (a
// crashed refiller), so entries can never become unreachable at drain
// time.
//
// ## Access modes (shard_policy.hpp)
//
// kDirect: every processor CASes the stash itself. kDelegate: processors
// post requests into per-processor combining slots and whoever holds the
// shard's TTAS server lock applies them (flat combining). The combiner runs
// the *same* direct primitives, so correctness is mode-independent — the
// monitor's mode word is purely a performance decision and may flip
// mid-operation without a handshake. Slot protocol (all state writes are
// release stores or acq_rel RMWs; arg/resp are relaxed but ordered through
// the state word — DESIGN.md §14 has the §8.2-style order table):
//
//   client:   arg <-rel'd- payload; state -release-> kReqInsert/kReqDelete;
//             loop { state acquire == kReqDone? take resp, state -release->
//             kReqIdle; else try_acquire server lock and combine }
//   combiner: scan states (acquire); claim posted slots by CAS(posted ->
//             kReqClaimed, acq_rel) — an RMW, so a stale combiner can never
//             re-serve a slot another combiner already claimed; execute;
//             resp <-rel'd- result; state -release-> kReqDone.
//
// The client's wait loop self-services (it keeps trying the server lock),
// so a posted request never waits on a combiner that left before seeing
// it; each iteration touches shared words, so the fault watchdog sees a
// client wedged behind a crashed combiner (the queue is declared
// kBlocking in the registry for exactly this window).
//
// ## Backend requirement
//
// reinstate() must never drop an entry that is already linearized into the
// shard, so it retries a refused backend insert forever. The default
// backend (LockfreeSkiplist) only refuses under the fault engine's finite
// alloc-failure injection; a capacity-bounded backend needs enough headroom
// that a displaced entry always fits (give each shard the full caller
// capacity, as the registry factory does).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/assert.hpp"
#include "common/entry.hpp"
#include "common/padded.hpp"
#include "common/types.hpp"
#include "platform/platform.hpp"
#include "pq/pq.hpp"
#include "pq/shard_policy.hpp"
#include "sync/backoff.hpp"
#include "sync/ttas_lock.hpp"

namespace fpq {

template <Platform P>
class ShardedPq {
 public:
  /// Builds one backend sub-queue; called K times at construction with
  /// per-shard params (distinct seeds, shard config cleared). Type-erased
  /// so any registry entry can serve without a circular registry include.
  using BackendFactory = std::function<std::unique_ptr<IPriorityQueue<P>>(const PqParams&)>;

  ShardedPq(const PqParams& params, const BackendFactory& make_backend)
      : params_(params),
        maxprocs_(params.maxprocs),
        k_(params.shard.effective_shards(params.maxprocs)),
        c_(params.shard.effective_sample(k_)),
        policy_(params.shard.policy) {
    params_.validate();
    params_.shard.validate();
    shards_ = std::make_unique<Padded<Shard>[]>(k_);
    PqParams bp = params_;
    bp.shard = {}; // backends are plain queues
    for (u32 s = 0; s < k_; ++s) {
      Shard& sh = *shards_[s];
      bp.seed = params_.seed + 0x9E3779B97F4A7C15ull * (s + 1);
      sh.backend = make_backend(bp);
      FPQ_ASSERT_MSG(sh.backend != nullptr, "backend factory returned null");
      sh.slots = std::make_unique<Padded<ReqSlot>[]>(maxprocs_);
      if (policy_ == ShardPolicyKind::kDelegate)
        sh.mon->mode.store_relaxed(ShardMonitor<P>::kModeDelegate);
    }
  }

  bool insert(Prio prio, Item item) {
    FPQ_ASSERT_MSG(prio < params_.npriorities, "priority out of range");
    const Entry e{prio, item};
    Shard& sh = shard(home_shard(P::self(), maxprocs_, k_));
    if (sh.mon->delegated()) return delegate_op(sh, kReqInsert, pack_entry(e)) != 0;
    return direct_insert(sh, e);
  }

  std::optional<Entry> delete_min() {
    Backoff<P> bo;
    for (;;) {
      u32 best = k_;
      u64 bestw = kNoEntry;
      auto consider = [&](u32 s) {
        const u64 w = shard(s).stash.word.load_acquire();
        if (w != kNoEntry && (best == k_ || unpack_entry(w).prio < unpack_entry(bestw).prio)) {
          best = s;
          bestw = w;
        }
      };
      if (c_ >= k_) {
        // Exact mode: deterministic full scan (ties break toward the lowest
        // shard index), no randomness consumed.
        for (u32 s = 0; s < k_; ++s) consider(s);
      } else {
        for (u32 i = 0; i < c_; ++i) consider(static_cast<u32>(P::rnd(k_)));
        // Never report empty off a partial sample: widen to all shards.
        if (best == k_)
          for (u32 s = 0; s < k_; ++s) consider(s);
      }
      if (best == k_) {
        // Every stash is empty. Repair any refill gap before concluding
        // empty: a processor that died (or is paused) between claiming a
        // stash and refilling it leaves its shard's entries visible only in
        // the backend. Pull each backend's head up into its stash; if
        // nothing surfaced anywhere, the queue is quiescently empty.
        bool repaired = false;
        for (u32 s = 0; s < k_; ++s) {
          if (auto r = shard(s).backend->delete_min()) {
            reinstate(shard(s), *r);
            repaired = true;
          }
        }
        if (!repaired) return std::nullopt;
        continue;
      }
      Shard& sh = shard(best);
      const u64 got = sh.mon->delegated() ? delegate_op(sh, kReqDelete, 0) : direct_pop(sh);
      if (got != kNoEntry) return unpack_entry(got);
      bo.spin(); // lost the claim (or the shard drained under us): resample
    }
  }

  void adopt_orphans(ProcId dead, ProcId adopter) {
    for (u32 s = 0; s < k_; ++s) shard(s).backend->adopt_orphans(dead, adopter);
  }

  u32 npriorities() const { return params_.npriorities; }
  u32 shard_count() const { return k_; }
  u32 sample_width() const { return c_; }
  ShardPolicyKind policy() const { return policy_; }

  /// Monitor snapshot of every shard (tests, diagnostics).
  std::vector<ShardStats> stats() const {
    std::vector<ShardStats> out(k_);
    for (u32 s = 0; s < k_; ++s) {
      const ShardMonitor<P>& m = *shard(s).mon;
      out[s].shard = s;
      out[s].delegated = m.mode.load_acquire() == ShardMonitor<P>::kModeDelegate;
      out[s].ops = m.ops.load_acquire();
      out[s].size = m.size.load_acquire();
      out[s].contention_ewma = m.contention_ewma.load_acquire();
      out[s].occupancy_ewma = m.occupancy_ewma.load_acquire();
    }
    return out;
  }

  /// Direct monitor access (unit tests drive window folds through it).
  ShardMonitor<P>& monitor(u32 s) { return *shard(s).mon; }

 private:
  // Slot states of the delegation protocol (header comment).
  static constexpr u32 kReqIdle = 0;
  static constexpr u32 kReqInsert = 1;
  static constexpr u32 kReqDelete = 2;
  static constexpr u32 kReqClaimed = 3;
  static constexpr u32 kReqDone = 4;

  /// Direct-mode stash claim attempts before giving the caller back to the
  /// sampling loop (a failed claim means someone else made progress).
  static constexpr u32 kClaimAttempts = 4;

  struct ReqSlot {
    typename P::template Shared<u32> state{kReqIdle};
    typename P::template Shared<u64> arg{0};
    typename P::template Shared<u64> resp{0};
  };

  /// One packed entry (the shard's quiescent minimum) on its own line.
  struct alignas(kCacheLineBytes) StashLine {
    typename P::template Shared<u64> word{kNoEntry};
  };

  struct Shard {
    StashLine stash;
    Padded<ShardMonitor<P>> mon;
    Padded<TtasLock<P>> server;
    std::unique_ptr<Padded<ReqSlot>[]> slots;
    std::unique_ptr<IPriorityQueue<P>> backend;
  };

  Shard& shard(u32 s) { return *shards_[s]; }
  const Shard& shard(u32 s) const { return *shards_[s]; }

  bool direct_insert(Shard& sh, Entry e) {
    const u64 w = pack_entry(e);
    Backoff<P> bo;
    u64 cur = sh.stash.word.load_acquire();
    for (;;) {
      if (cur == kNoEntry) {
        if (sh.stash.word.compare_exchange(cur, w, MemOrder::kAcqRel, MemOrder::kAcquire)) {
          sh.mon->note_size(1);
          sh.mon->note_op(policy_);
          return true;
        }
        sh.mon->note_cas_fail();
        continue; // cur was refreshed by the failed CAS
      }
      if (e.prio < unpack_entry(cur).prio) {
        const u64 displaced = cur;
        if (sh.stash.word.compare_exchange(cur, w, MemOrder::kAcqRel, MemOrder::kAcquire)) {
          sh.mon->note_size(1);
          sh.mon->note_op(policy_);
          reinstate(sh, unpack_entry(displaced));
          return true;
        }
        sh.mon->note_cas_fail();
        bo.spin();
        continue;
      }
      if (sh.backend->insert(e.prio, e.item)) {
        sh.mon->note_size(1);
        sh.mon->note_op(policy_);
        // Revalidate: a concurrent pop may have refilled the stash from
        // the backend between our stash read and the backend insert,
        // stranding our (smaller) entry below a larger stash. Pull the
        // backend head back up; reinstate() re-settles it into whichever
        // of stash/backend it belongs.
        const u64 now = sh.stash.word.load_acquire();
        if (now == kNoEntry || e.prio < unpack_entry(now).prio) {
          if (auto r = sh.backend->delete_min()) reinstate(sh, *r);
        }
        return true;
      }
      return false; // backend refusal (capacity/alloc): structure untouched
    }
  }

  /// Pops the stash (bounded claim attempts) and refills it from the
  /// backend. kNoEntry = stash empty or claim lost; the caller resamples.
  u64 direct_pop(Shard& sh) {
    u64 cur = sh.stash.word.load_acquire();
    for (u32 n = 0; n < kClaimAttempts && cur != kNoEntry; ++n) {
      if (sh.stash.word.compare_exchange(cur, kNoEntry, MemOrder::kAcqRel, MemOrder::kAcquire)) {
        sh.mon->note_size(-1);
        sh.mon->note_op(policy_);
        if (auto r = sh.backend->delete_min()) reinstate(sh, *r);
        return cur;
      }
      sh.mon->note_cas_fail();
    }
    return kNoEntry;
  }

  /// Puts an entry that is already linearized into the shard back where a
  /// delete-min can see it: into the stash if it is empty or held by a
  /// larger entry (whose displacement continues the loop), into the backend
  /// otherwise. Must not fail — a refused backend insert is retried (see
  /// the backend-requirement header note). Never touches the size counter.
  void reinstate(Shard& sh, Entry e) {
    Backoff<P> bo;
    for (;;) {
      u64 cur = sh.stash.word.load_acquire();
      if (cur == kNoEntry || e.prio < unpack_entry(cur).prio) {
        if (sh.stash.word.compare_exchange(cur, pack_entry(e), MemOrder::kAcqRel,
                                           MemOrder::kAcquire)) {
          if (cur == kNoEntry) return;
          e = unpack_entry(cur); // displaced a larger entry; keep placing it
          continue;
        }
        sh.mon->note_cas_fail();
        bo.spin();
        continue;
      }
      if (sh.backend->insert(e.prio, e.item)) return;
      bo.spin(); // refusal is transient (alloc injection); never drop e
    }
  }

  /// Posts an operation into this processor's combining slot and waits for
  /// a combiner (possibly itself) to apply it. Returns the resp word:
  /// accepted (1/0) for kReqInsert, popped word or kNoEntry for kReqDelete.
  u64 delegate_op(Shard& sh, u32 op, u64 arg) {
    ReqSlot& slot = *sh.slots[P::self() % maxprocs_];
    slot.arg.store_relaxed(arg);
    slot.state.store_release(op);
    Backoff<P> bo;
    for (;;) {
      if (slot.state.load_acquire() == kReqDone) break;
      if (sh.server->try_acquire()) {
        combine(sh);
        sh.server->release();
        continue;
      }
      bo.spin(); // current combiner will serve us, or the lock frees
    }
    const u64 resp = slot.resp.load_relaxed(); // ordered by the kReqDone acquire
    slot.state.store_release(kReqIdle);
    return resp;
  }

  /// Serves every posted slot. Caller holds sh.server. Claiming is an
  /// acq_rel CAS so a combiner that read a stale posted state can never
  /// re-execute a request a newer combiner already served.
  void combine(Shard& sh) {
    for (u32 p = 0; p < maxprocs_; ++p) {
      ReqSlot& slot = *sh.slots[p];
      u32 st = slot.state.load_acquire();
      if (st != kReqInsert && st != kReqDelete) continue;
      const u32 op = st;
      if (!slot.state.compare_exchange(st, kReqClaimed, MemOrder::kAcqRel, MemOrder::kAcquire))
        continue;
      const u64 arg = slot.arg.load_relaxed();
      u64 resp;
      if (op == kReqInsert)
        resp = direct_insert(sh, unpack_entry(arg)) ? 1 : 0;
      else
        resp = direct_pop(sh);
      slot.resp.store_relaxed(resp);
      slot.state.store_release(kReqDone);
    }
  }

  PqParams params_;
  u32 maxprocs_;
  u32 k_;
  u32 c_;
  ShardPolicyKind policy_;
  std::unique_ptr<Padded<Shard>[]> shards_;
};

} // namespace fpq
