// SimpleTree (paper Fig. 3, suggested by Dan Touitou): a complete binary
// tree whose N leaves are per-priority bins and whose N-1 internal counters
// each hold the number of items currently in the *left* subtree.
//
//   delete-min descends from the root: BFaD(counter, 0) — go left if the
//   counter was positive (claiming one item of the left subtree), right
//   otherwise; then bin-delete at the leaf.
//
//   insert places the item in its leaf's bin first and then climbs to the
//   root, FaI-ing the parent counter every time it arrives from a left
//   child (top-down insertions would race with descending deleters).
//
// Under concurrency a descent can chase a count that an overlapping insert
// has not yet published and reach an empty leaf; delete_min then reports
// nullopt, which quiescent consistency permits (see pq.hpp). The counter
// template parameter lets FunnelTree share this skeleton.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "common/bits.hpp"
#include "container/bin.hpp"
#include "container/counters.hpp"
#include "pq/pq.hpp"

namespace fpq {

template <Platform P>
class SimpleTreePq {
 public:
  explicit SimpleTreePq(const PqParams& params)
      : npriorities_(params.npriorities),
        nleaves_(round_up_pow2(params.npriorities)) {
    params.validate();
    counters_.reserve(nleaves_); // heap-indexed 1..nleaves_-1; slot 0 unused
    for (u32 i = 0; i < nleaves_; ++i) counters_.push_back(std::make_unique<CasCounter<P>>(0));
    bins_.reserve(npriorities_);
    for (u32 i = 0; i < npriorities_; ++i)
      bins_.push_back(
          std::make_unique<LockedBin<P>>(params.maxprocs, params.bin_capacity));
  }

  bool insert(Prio prio, Item item) {
    FPQ_ASSERT_MSG(prio < npriorities_, "priority outside the bounded range");
    if (!bins_[prio]->insert(item)) return false;
    // Climb: increment each counter reached from its left child.
    for (u32 n = nleaves_ + prio; n > 1; n >>= 1) {
      if ((n & 1) == 0) counters_[n >> 1]->fai();
    }
    return true;
  }

  std::optional<Entry> delete_min() {
    u32 n = 1;
    while (n < nleaves_) {
      const i64 before = counters_[n]->bfad(0);
      n = (n << 1) | (before > 0 ? 0u : 1u);
    }
    const u32 prio = n - nleaves_;
    if (prio >= npriorities_) return std::nullopt; // padding leaf, queue side empty
    if (auto e = bins_[prio]->remove()) return Entry{prio, *e};
    return std::nullopt;
  }

  u32 npriorities() const { return npriorities_; }

  /// Test hook: the value of internal counter `node` (heap index).
  i64 counter_value(u32 node) const { return counters_[node]->read(); }
  u32 nleaves() const { return nleaves_; }

 private:
  u32 npriorities_;
  u32 nleaves_;
  std::vector<std::unique_ptr<CasCounter<P>>> counters_;
  std::vector<std::unique_ptr<LockedBin<P>>> bins_;
};

} // namespace fpq
