// LinearFunnels (paper §3.2): SimpleLinear with every MCS-locked bin
// replaced by a combining-funnel stack. insert pushes into the priority's
// stack; delete-min scans stacks in priority order, testing emptiness with
// a single read (crucial — a read is far cheaper than a funnel traversal)
// and popping from the first non-empty one. Quiescently consistent.
//
// Batch entry points (insert_batch/delete_min_batch) aggregate: inserts
// are grouped by priority and each group rides one funnel traversal
// (FunnelStack::push_batch); deletes drain each non-empty bin with one
// pop_batch per visit. An optional PQ-level elimination array
// (FunnelOptions::pq_elimination, src/pq/elim_layer.hpp) can hand an
// insert of a historically-minimal priority straight to a parked
// delete_min.
#pragma once

#include <algorithm>
#include <memory>
#include <optional>
#include <vector>

#include "funnel/params.hpp"
#include "funnel/stack.hpp"
#include "pq/elim_layer.hpp"
#include "pq/pq.hpp"

namespace fpq {

/// Knobs shared by the funnel-based queues.
struct FunnelOptions {
  /// Funnel layer geometry; defaults to FunnelParams::for_procs(maxprocs),
  /// mirroring the paper's single pre-tuned set used for every funnel.
  std::optional<FunnelParams> params;
  /// Elimination toggle (ablation of §3.3's "up to 250%" claim).
  bool eliminate = true;
  /// FunnelTree only: tree depth down to which nodes use funnel counters;
  /// deeper nodes use MCS-locked counters (§3.2 uses 4).
  u32 tree_cutoff = 4;
  /// Bin order: LIFO stacks (the paper's default) or the §3.2 fairness
  /// hybrid — elimination in the funnel, FIFO order in the central store.
  BinOrder bin_order = BinOrder::kLifo;
  /// PQ-level elimination array in front of the structure (see
  /// elim_layer.hpp for the hand-off legality argument). Off by default.
  bool pq_elimination = false;
  u32 elim_slots = 4;
  /// Deleter parking budget (slot re-checks) before withdrawing.
  u32 elim_spin = 64;
  /// Collision protocol of every funnel in the queue: the paper's pairwise
  /// exchange, or the Roh et al. '24 aggregation (DESIGN.md §13).
  /// Authoritative — overrides the protocol field of an explicit `params`.
  FunnelProtocol protocol = FunnelProtocol::kExchange;
};

/// Upper bound on one aggregated chunk; PqParams::max_batch beyond this is
/// chunked (keeps the grouping scratch on the stack).
inline constexpr u32 kMaxBatchChunk = 256;

/// The funnel geometry for a queue: the user's (or for_procs) layer set,
/// with the record buffers widened to carry the queue's batch size.
inline FunnelParams funnel_params_for(const PqParams& params, const FunnelOptions& opts) {
  FunnelParams fp = opts.params
                        ? *opts.params
                        : FunnelParams::for_procs(params.maxprocs, opts.protocol);
  fp.protocol = opts.protocol;
  fp.batch_limit = std::max(fp.batch_limit, std::min(params.max_batch, kMaxBatchChunk));
  return fp;
}

template <Platform P>
class LinearFunnelsPq {
 public:
  explicit LinearFunnelsPq(const PqParams& params, const FunnelOptions& opts = {})
      : npriorities_(params.npriorities),
        chunk_(std::min(params.max_batch, kMaxBatchChunk)),
        elim_spin_(opts.elim_spin),
        elim_(opts.pq_elimination ? opts.elim_slots : 0) {
    params.validate();
    const FunnelParams fp = funnel_params_for(params, opts);
    stacks_.reserve(npriorities_);
    for (u32 i = 0; i < npriorities_; ++i)
      stacks_.push_back(std::make_unique<FunnelStack<P>>(
          params.maxprocs, fp, params.bin_capacity, opts.eliminate, opts.bin_order));
  }

  bool insert(Prio prio, Item item) {
    FPQ_ASSERT_MSG(prio < npriorities_, "priority outside the bounded range");
    if (elim_.enabled() && elim_.try_hand_off(prio, item)) return true;
    return stacks_[prio]->push(item);
  }

  std::optional<Entry> delete_min() {
    for (u32 i = 0; i < npriorities_; ++i) {
      if (!stacks_[i]->empty()) {
        if (auto e = stacks_[i]->pop()) return Entry{i, *e};
      }
    }
    if (elim_.enabled()) return elim_.park(elim_spin_);
    return std::nullopt;
  }

  // Bounded-wait variants (DESIGN.md §12). Both bypass the funnel layer and
  // the elimination array entirely — a funnel capture waits on a *partner's*
  // progress, which a budget cannot bound — and go straight for the central
  // lock with try_acquire + backoff. Fully pre-commit: kTimeout / kEmpty
  // consumed and inserted nothing.
  PqStatus try_insert(Prio prio, Item item, const TryBudget& budget) {
    FPQ_ASSERT_MSG(prio < npriorities_, "priority outside the bounded range");
    TryClock<P> clock(budget);
    for (;;) {
      switch (stacks_[prio]->try_push(item, clock)) {
        case FunnelStack<P>::TryOutcome::kOk: return PqStatus::kOk;
        case FunnelStack<P>::TryOutcome::kTimeout: return PqStatus::kTimeout;
        case FunnelStack<P>::TryOutcome::kRefused:
          // Capacity exhaustion, transient under concurrent deletes.
          if (!clock.tick_backoff()) return PqStatus::kTimeout;
      }
    }
  }

  PqStatus try_delete_min(Entry& out, const TryBudget& budget) {
    TryClock<P> clock(budget);
    for (u32 i = 0; i < npriorities_; ++i) {
      if (stacks_[i]->empty()) continue;
      Item v;
      switch (stacks_[i]->try_pop(v, clock)) {
        case FunnelStack<P>::TryOutcome::kOk: out = Entry{i, v}; return PqStatus::kOk;
        case FunnelStack<P>::TryOutcome::kTimeout: return PqStatus::kTimeout;
        case FunnelStack<P>::TryOutcome::kRefused:
          break; // bin drained between the probe and the lock; keep scanning
      }
    }
    return PqStatus::kEmpty; // no elim park: parking blocks on a partner
  }

  /// Aggregated insert: entries grouped by priority, one funnel traversal
  /// per (chunk, priority) group. Returns the number accepted.
  u32 insert_batch(const Entry* entries, u32 n) {
    u32 accepted = 0;
    Item tmp[kMaxBatchChunk];
    for (u32 base = 0; base < n; base += chunk_) {
      const u32 c = std::min(chunk_, n - base);
      const Entry* es = entries + base;
      for (u32 i = 0; i < c; ++i) {
        const Prio p = es[i].prio;
        FPQ_ASSERT_MSG(p < npriorities_, "priority outside the bounded range");
        bool grouped = false;
        for (u32 j = 0; j < i; ++j)
          if (es[j].prio == p) {
            grouped = true;
            break;
          }
        if (grouped) continue;
        u32 g = 0;
        for (u32 j = i; j < c; ++j)
          if (es[j].prio == p) tmp[g++] = es[j].item;
        accepted += stacks_[p]->push_batch(tmp, g);
      }
    }
    return accepted;
  }

  /// Aggregated delete-min: scans bins in priority order, draining each
  /// non-empty one with batched pops. Returns entries in nondecreasing
  /// priority order.
  u32 delete_min_batch(Entry* out, u32 k) {
    u32 got = 0;
    Item tmp[kMaxBatchChunk];
    for (u32 p = 0; p < npriorities_ && got < k; ++p) {
      while (got < k && !stacks_[p]->empty()) {
        const u32 want = std::min(k - got, chunk_);
        const u32 m = stacks_[p]->pop_batch(tmp, want);
        for (u32 i = 0; i < m; ++i) out[got++] = Entry{p, tmp[i]};
        if (m < want) break; // bin ran short; move to the next priority
      }
    }
    return got;
  }

  u32 npriorities() const { return npriorities_; }

 private:
  u32 npriorities_;
  u32 chunk_;
  u32 elim_spin_;
  ElimLayer<P> elim_;
  std::vector<std::unique_ptr<FunnelStack<P>>> stacks_;
};

} // namespace fpq
