// LinearFunnels (paper §3.2): SimpleLinear with every MCS-locked bin
// replaced by a combining-funnel stack. insert pushes into the priority's
// stack; delete-min scans stacks in priority order, testing emptiness with
// a single read (crucial — a read is far cheaper than a funnel traversal)
// and popping from the first non-empty one. Quiescently consistent.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "funnel/params.hpp"
#include "funnel/stack.hpp"
#include "pq/pq.hpp"

namespace fpq {

/// Knobs shared by the funnel-based queues.
struct FunnelOptions {
  /// Funnel layer geometry; defaults to FunnelParams::for_procs(maxprocs),
  /// mirroring the paper's single pre-tuned set used for every funnel.
  std::optional<FunnelParams> params;
  /// Elimination toggle (ablation of §3.3's "up to 250%" claim).
  bool eliminate = true;
  /// FunnelTree only: tree depth down to which nodes use funnel counters;
  /// deeper nodes use MCS-locked counters (§3.2 uses 4).
  u32 tree_cutoff = 4;
  /// Bin order: LIFO stacks (the paper's default) or the §3.2 fairness
  /// hybrid — elimination in the funnel, FIFO order in the central store.
  BinOrder bin_order = BinOrder::kLifo;
};

template <Platform P>
class LinearFunnelsPq {
 public:
  explicit LinearFunnelsPq(const PqParams& params, const FunnelOptions& opts = {})
      : npriorities_(params.npriorities) {
    params.validate();
    const FunnelParams fp = opts.params ? *opts.params
                                        : FunnelParams::for_procs(params.maxprocs);
    stacks_.reserve(npriorities_);
    for (u32 i = 0; i < npriorities_; ++i)
      stacks_.push_back(std::make_unique<FunnelStack<P>>(
          params.maxprocs, fp, params.bin_capacity, opts.eliminate, opts.bin_order));
  }

  bool insert(Prio prio, Item item) {
    FPQ_ASSERT_MSG(prio < npriorities_, "priority outside the bounded range");
    return stacks_[prio]->push(item);
  }

  std::optional<Entry> delete_min() {
    for (u32 i = 0; i < npriorities_; ++i) {
      if (!stacks_[i]->empty()) {
        if (auto e = stacks_[i]->pop()) return Entry{i, *e};
      }
    }
    return std::nullopt;
  }

  u32 npriorities() const { return npriorities_; }

 private:
  u32 npriorities_;
  std::vector<std::unique_ptr<FunnelStack<P>>> stacks_;
};

} // namespace fpq
