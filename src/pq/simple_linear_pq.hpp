// SimpleLinear (paper Fig. 2): an array of MCS-locked bins, one per
// priority. insert drops the item into its bin; delete-min scans bins from
// smallest priority upward, testing emptiness with a single read and only
// locking bins that look promising. Linearizable when built from locked
// bins (paper §2.1).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "container/bin.hpp"
#include "pq/pq.hpp"

namespace fpq {

template <Platform P>
class SimpleLinearPq {
 public:
  explicit SimpleLinearPq(const PqParams& params) : npriorities_(params.npriorities) {
    params.validate();
    bins_.reserve(npriorities_);
    for (u32 i = 0; i < npriorities_; ++i)
      bins_.push_back(
          std::make_unique<LockedBin<P>>(params.maxprocs, params.bin_capacity));
  }

  bool insert(Prio prio, Item item) {
    FPQ_ASSERT_MSG(prio < npriorities_, "priority outside the bounded range");
    return bins_[prio]->insert(item);
  }

  std::optional<Entry> delete_min() {
    for (u32 i = 0; i < npriorities_; ++i) {
      if (!bins_[i]->empty()) {
        if (auto e = bins_[i]->remove()) return Entry{i, *e};
        // The bin drained between the test and the lock; keep scanning.
      }
    }
    return std::nullopt;
  }

  u32 npriorities() const { return npriorities_; }

 private:
  u32 npriorities_;
  std::vector<std::unique_ptr<LockedBin<P>>> bins_;
};

} // namespace fpq
