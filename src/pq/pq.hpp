// Common surface of every bounded-range priority queue in the library.
//
// Semantics (paper Appendix B): priorities are the integers
// [0, npriorities); insert(p, item) adds an item with priority p;
// delete_min removes and returns an item of (quiescently) minimal priority,
// or nullopt when the queue is (quiescently) empty. Under concurrency a
// delete_min may return nullopt even though overlapping inserts have placed
// items (this is inherent to SimpleTree/FunnelTree and allowed by quiescent
// consistency); callers that need an item retry.
//
// insert returns false only on resource exhaustion — bin/heap capacity (a
// sizing error by the caller, reported rather than silently dropped), or
// an allocation failure in the dynamically-allocated queues (only ever
// seen under the fault engine's alloc-failure injection). Either way the
// structure is untouched.
//
// Batched operations: insert_batch/delete_min_batch carry several
// operations through one structure traversal where the algorithm supports
// aggregation (the funnel queues); every other queue gets a loop fallback
// with identical semantics. Each batched element individually obeys the
// single-op contract above — a batch is a sequence of concurrent point
// operations issued by one processor, not an atomic unit.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "common/assert.hpp"
#include "common/entry.hpp"
#include "common/types.hpp"
#include "platform/platform.hpp"
#include "pq/shard_policy.hpp"
#include "reclaim/policy.hpp"
#include "sync/backoff.hpp"
#include "sync/try_budget.hpp"

namespace fpq {

/// Result of a bounded-wait operation (try_insert / try_delete_min).
enum class PqStatus : u8 {
  kOk,       // operation completed
  kEmpty,    // delete_min observed a (quiescently) empty queue
  kTimeout,  // budget exhausted before the operation could commit
  kNoMemory, // allocation failed; the structure is untorn, nothing leaked
};

constexpr std::string_view to_string(PqStatus s) {
  switch (s) {
    case PqStatus::kOk: return "ok";
    case PqStatus::kEmpty: return "empty";
    case PqStatus::kTimeout: return "timeout";
    case PqStatus::kNoMemory: return "nomem";
  }
  return "?";
}

// TryBudget / TryClock (the budget type of the try_* API) live in
// sync/try_budget.hpp so the funnel and container layers can consume them
// below this header.

struct PqParams {
  /// Size of the fixed priority range [0, npriorities).
  u32 npriorities = 16;
  /// Upper bound on the processor ids that will touch the queue.
  u32 maxprocs = 1;
  /// Capacity of each per-priority bin / stack (bin-based queues) or of the
  /// whole heap (heap-based queues, where it is multiplied by npriorities).
  u32 bin_capacity = 4096;
  /// Total item capacity of the heap-based queues (SingleLock, HuntEtAl),
  /// which share one array rather than per-priority bins.
  u32 heap_capacity = 1u << 16;
  /// Seed for structure-construction randomness (skip-list levels).
  u64 seed = 1;
  /// Memory-reclamation policy for the dynamically-allocated queues
  /// (LockfreeSkiplist); the array-based queues ignore it.
  reclaim::Policy reclaim_policy = reclaim::Policy::kHazardPointer;
  /// Largest batch the funnel queues aggregate in one traversal; larger
  /// insert_batch/delete_min_batch requests are chunked. Sizes the
  /// per-record funnel buffers, so the default keeps the point-operation
  /// memory footprint — raise it when using the batch API in earnest.
  u32 max_batch = 1;
  /// Sharding configuration of the composite queue (pq/sharded_pq.hpp);
  /// every other algorithm ignores it.
  ShardConfig shard = {};

  void validate() const {
    FPQ_ASSERT_MSG(npriorities >= 1 && npriorities < kMaxPackablePrio,
                   "npriorities out of range");
    FPQ_ASSERT_MSG(maxprocs >= 1, "maxprocs must be positive");
    FPQ_ASSERT_MSG(bin_capacity >= 1, "bin_capacity must be positive");
    FPQ_ASSERT_MSG(heap_capacity >= 1, "heap_capacity must be positive");
    FPQ_ASSERT_MSG(max_batch >= 1, "max_batch must be positive");
    shard.validate();
  }
};

/// Type-erased view used by benchmarks, examples and generic tests. The
/// concrete algorithm templates are the primary API; this wrapper adds one
/// virtual dispatch per operation (free in simulated time).
template <Platform P>
class IPriorityQueue {
 public:
  virtual ~IPriorityQueue() = default;
  virtual bool insert(Prio prio, Item item) = 0;
  virtual std::optional<Entry> delete_min() = 0;
  /// Inserts every entry, aggregating where the structure supports it.
  /// Returns the number accepted; refusals are capacity exhaustion only
  /// (which entries were refused is algorithm-dependent).
  virtual u32 insert_batch(std::span<const Entry> entries) = 0;
  /// Removes up to out.size() quiescently-minimal entries into out, in
  /// nondecreasing priority order; returns the count obtained. Like
  /// delete_min, may come up short under overlapping inserts.
  virtual u32 delete_min_batch(std::span<Entry> out) = 0;
  /// Bounded-wait variants (DESIGN.md §12). Contract: kOk committed the
  /// operation (try_delete_min filled `out`); kEmpty / kTimeout / kNoMemory
  /// consumed and inserted *nothing* — a timed-out caller may shed load or
  /// retry with a fresh budget and no cleanup. Queues with native
  /// implementations (registry::has_native_try) honor the budget *inside*
  /// an operation, so a stalled or dead lock holder yields kTimeout rather
  /// than a hang; the generic fallback only checks the budget between full
  /// blocking attempts and can block for as long as one attempt does.
  virtual PqStatus try_insert(Prio prio, Item item, const TryBudget& budget) = 0;
  virtual PqStatus try_delete_min(Entry& out, const TryBudget& budget) = 0;
  /// Fault-battery hook (default no-op): take over the reclamation state of
  /// the fail-stopped processor `dead` — stale hazard slots / epoch pin and
  /// limbo — on behalf of the surviving `adopter`. Queues without dynamic
  /// reclamation have nothing to adopt. See reclaim::Domain::adopt_orphans.
  virtual void adopt_orphans(ProcId dead, ProcId adopter) {
    (void)dead;
    (void)adopter;
  }
  virtual u32 npriorities() const = 0;
};

/// Adapts any concrete queue type to IPriorityQueue. Queues that implement
/// the native batch entry points (insert_batch(const Entry*, u32) /
/// delete_min_batch(Entry*, u32)) are dispatched to them; the rest get the
/// loop fallback.
template <Platform P, class Q>
class PqAdapter final : public IPriorityQueue<P> {
 public:
  template <class... Args>
  explicit PqAdapter(Args&&... args) : q_(std::forward<Args>(args)...) {}

  bool insert(Prio prio, Item item) override { return q_.insert(prio, item); }
  std::optional<Entry> delete_min() override { return q_.delete_min(); }

  u32 insert_batch(std::span<const Entry> entries) override {
    const u32 n = static_cast<u32>(entries.size());
    if (n == 0) return 0;
    if constexpr (requires(Q& q) { q.insert_batch(entries.data(), n); }) {
      return q_.insert_batch(entries.data(), n);
    } else {
      u32 accepted = 0;
      for (const Entry& e : entries)
        if (q_.insert(e.prio, e.item)) ++accepted;
      return accepted;
    }
  }

  u32 delete_min_batch(std::span<Entry> out) override {
    const u32 k = static_cast<u32>(out.size());
    if (k == 0) return 0;
    if constexpr (requires(Q& q) { q.delete_min_batch(out.data(), k); }) {
      return q_.delete_min_batch(out.data(), k);
    } else {
      u32 got = 0;
      for (u32 i = 0; i < k; ++i) {
        auto e = q_.delete_min();
        if (!e) break;
        out[got++] = *e;
      }
      return got;
    }
  }

  PqStatus try_insert(Prio prio, Item item, const TryBudget& budget) override {
    if constexpr (requires(Q& q) { q.try_insert(prio, item, budget); }) {
      return q_.try_insert(prio, item, budget);
    } else {
      // Fallback: full blocking inserts with backoff between attempts. A
      // refusal here is capacity exhaustion, transient under concurrent
      // deletes, so it is retried until the budget runs out.
      TryClock<P> clock(budget);
      do {
        if (q_.insert(prio, item)) return PqStatus::kOk;
      } while (clock.tick_backoff());
      return PqStatus::kTimeout;
    }
  }

  PqStatus try_delete_min(Entry& out, const TryBudget& budget) override {
    if constexpr (requires(Q& q) { q.try_delete_min(out, budget); }) {
      return q_.try_delete_min(out, budget);
    } else {
      // Fallback: one blocking attempt — nullopt already means
      // (quiescently) empty, which a bounded retry loop cannot improve on.
      auto e = q_.delete_min();
      if (!e) return PqStatus::kEmpty;
      out = *e;
      return PqStatus::kOk;
    }
  }

  void adopt_orphans(ProcId dead, ProcId adopter) override {
    if constexpr (requires(Q& q) { q.adopt_orphans(dead, adopter); })
      q_.adopt_orphans(dead, adopter);
  }

  u32 npriorities() const override { return q_.npriorities(); }

  Q& impl() { return q_; }

 private:
  Q q_;
};

} // namespace fpq
