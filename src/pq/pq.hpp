// Common surface of every bounded-range priority queue in the library.
//
// Semantics (paper Appendix B): priorities are the integers
// [0, npriorities); insert(p, item) adds an item with priority p;
// delete_min removes and returns an item of (quiescently) minimal priority,
// or nullopt when the queue is (quiescently) empty. Under concurrency a
// delete_min may return nullopt even though overlapping inserts have placed
// items (this is inherent to SimpleTree/FunnelTree and allowed by quiescent
// consistency); callers that need an item retry.
//
// insert returns false only on capacity exhaustion (a sizing error by the
// caller, reported rather than silently dropped).
#pragma once

#include <optional>
#include <string>

#include "common/assert.hpp"
#include "common/entry.hpp"
#include "common/types.hpp"
#include "platform/platform.hpp"

namespace fpq {

struct PqParams {
  /// Size of the fixed priority range [0, npriorities).
  u32 npriorities = 16;
  /// Upper bound on the processor ids that will touch the queue.
  u32 maxprocs = 1;
  /// Capacity of each per-priority bin / stack (bin-based queues) or of the
  /// whole heap (heap-based queues, where it is multiplied by npriorities).
  u32 bin_capacity = 4096;
  /// Total item capacity of the heap-based queues (SingleLock, HuntEtAl),
  /// which share one array rather than per-priority bins.
  u32 heap_capacity = 1u << 16;
  /// Seed for structure-construction randomness (skip-list levels).
  u64 seed = 1;

  void validate() const {
    FPQ_ASSERT_MSG(npriorities >= 1 && npriorities < kMaxPackablePrio,
                   "npriorities out of range");
    FPQ_ASSERT_MSG(maxprocs >= 1, "maxprocs must be positive");
    FPQ_ASSERT_MSG(bin_capacity >= 1, "bin_capacity must be positive");
    FPQ_ASSERT_MSG(heap_capacity >= 1, "heap_capacity must be positive");
  }
};

/// Type-erased view used by benchmarks, examples and generic tests. The
/// concrete algorithm templates are the primary API; this wrapper adds one
/// virtual dispatch per operation (free in simulated time).
template <Platform P>
class IPriorityQueue {
 public:
  virtual ~IPriorityQueue() = default;
  virtual bool insert(Prio prio, Item item) = 0;
  virtual std::optional<Entry> delete_min() = 0;
  virtual u32 npriorities() const = 0;
};

/// Adapts any concrete queue type to IPriorityQueue.
template <Platform P, class Q>
class PqAdapter final : public IPriorityQueue<P> {
 public:
  template <class... Args>
  explicit PqAdapter(Args&&... args) : q_(std::forward<Args>(args)...) {}

  bool insert(Prio prio, Item item) override { return q_.insert(prio, item); }
  std::optional<Entry> delete_min() override { return q_.delete_min(); }
  u32 npriorities() const override { return q_.npriorities(); }

  Q& impl() { return q_; }

 private:
  Q q_;
};

} // namespace fpq
