// HuntEtAl (Hunt, Michael, Parthasarathy & Scott, IPL '96; paper Fig. 11,
// right): a concurrent array heap with
//
//   * a single short-lived heap lock protecting only the size counter and
//     the choice of the slot to fill/empty,
//   * one lock per heap node, taken hand-over-hand,
//   * insertions that walk *bottom-up* while deletions sift *top-down*
//     (increasing parallelism), and
//   * bit-reversed slot selection so consecutive insertions climb along
//     disjoint root paths.
//
// Each node carries a tag: kEmpty (no item), kAvail (item in its final
// heap position), or the id-tag of the inserting processor while the item
// is still climbing. Deleters may relocate a climbing item; its owner
// detects this ("tag is no longer mine") and chases the item up the tree.
// Linearizable; the heap lock is the serial bottleneck the paper measures.
#pragma once

#include <optional>
#include <vector>

#include "common/bits.hpp"
#include "common/entry.hpp"
#include "pq/pq.hpp"
#include "sync/backoff.hpp"
#include "sync/mcs_lock.hpp"
#include "sync/ttas_lock.hpp"

namespace fpq {

template <Platform P>
class HuntPq {
 public:
  explicit HuntPq(const PqParams& params)
      : npriorities_(params.npriorities),
        capacity_(params.heap_capacity),
        heap_lock_(params.maxprocs),
        // Bit-reversed slots are not a contiguous prefix: with n items the
        // occupied slots reach to the end of the last (partial) level, so
        // the array must cover that whole level.
        nodes_(2 * round_up_pow2(params.heap_capacity + 1)) {
    params.validate();
  }

  bool insert(Prio prio, Item item) {
    FPQ_ASSERT_MSG(prio < npriorities_, "priority outside the bounded range");
    const u64 packed = pack_entry({prio, item});
    const u64 mytag = tag_of(P::self());

    heap_lock_.acquire();
    u64 n = size_.load_relaxed();
    if (n >= capacity_) {
      heap_lock_.release();
      return false;
    }
    ++n;
    size_.store_relaxed(n);
    u64 i = bit_reversed(n);
    nodes_[i].lock.acquire();
    heap_lock_.release();
    nodes_[i].entry.store_relaxed(packed);
    nodes_[i].tag.store_relaxed(mytag);
    nodes_[i].lock.release();

    // Climb toward the root until the item reaches heap order. The item can
    // be moved by concurrent operations: deleters swap climbing items up
    // during sift-down and may even consume them as the "last element".
    Backoff<P> backoff;
    while (i > 1) {
      const u64 par = i >> 1;
      nodes_[par].lock.acquire();
      nodes_[i].lock.acquire();
      const u64 tpar = nodes_[par].tag.load_relaxed();
      const u64 ti = nodes_[i].tag.load_relaxed();
      u64 next = i;
      if (ti == mytag) {
        if (tpar == kAvail) {
          if (nodes_[i].entry.load_relaxed() < nodes_[par].entry.load_relaxed()) {
            swap_nodes(par, i);
            next = par;
          } else {
            nodes_[i].tag.store_relaxed(kAvail);
            next = 0; // settled
          }
        }
        // else retry: the parent is either another climbing item (its owner
        // will settle it) or a slot that was just claimed and is about to be
        // filled. Stopping here would strand our pid tag — an item only
        // stops being ours through the kAvail path or a deleter moving it.
      } else {
        // Our item was swapped upward by a deleter's sift (or consumed as a
        // "last element"); chase toward the root, which finishes the job if
        // the item is still climbing and is a no-op if it was consumed.
        next = par;
      }
      nodes_[i].lock.release();
      nodes_[par].lock.release();
      // Randomized backoff before retrying the same spot: a fixed-period
      // retry can starve the very operation (a sifting deleter or the
      // parent item's owner) it is waiting for.
      if (next == i)
        backoff.spin();
      else
        backoff.reset();
      i = next;
    }
    if (i == 1) {
      nodes_[1].lock.acquire();
      if (nodes_[1].tag.load_relaxed() == mytag) nodes_[1].tag.store_relaxed(kAvail);
      nodes_[1].lock.release();
    }
    return true;
  }

  std::optional<Entry> delete_min() {
    heap_lock_.acquire();
    const u64 n = size_.load_relaxed();
    if (n == 0) {
      heap_lock_.release();
      return std::nullopt;
    }
    size_.store_relaxed(n - 1);
    const u64 last = bit_reversed(n);
    nodes_[last].lock.acquire();
    const u64 moved = nodes_[last].entry.load_relaxed();
    nodes_[last].tag.store_relaxed(kEmpty);
    nodes_[last].lock.release();

    if (last == 1) {
      // The heap held a single item; it is the minimum.
      heap_lock_.release();
      return unpack_entry(moved);
    }

    nodes_[1].lock.acquire();
    heap_lock_.release();
    if (nodes_[1].tag.load_relaxed() == kEmpty) {
      // A racing deleter consumed the root via the "last element" path
      // before we locked it; the item we extracted stands in for the root.
      nodes_[1].lock.release();
      return unpack_entry(moved);
    }
    const u64 min = nodes_[1].entry.load_relaxed();
    nodes_[1].entry.store_relaxed(moved);
    nodes_[1].tag.store_relaxed(kAvail);

    sift_down();
    return unpack_entry(min);
  }

  u32 npriorities() const { return npriorities_; }

  /// Bit-reversal slot sequence (exposed for tests): the k-th inserted item
  /// lands in slot bit_reversed(k), which reverses the within-level bits so
  /// consecutive climbs share no path except near the root.
  static u64 bit_reversed(u64 s) {
    FPQ_ASSERT(s >= 1);
    u64 h = 1;
    while ((h << 1) <= s) h <<= 1; // highest power of two <= s
    u64 low = s - h;               // position within the level
    u64 rev = 0;
    for (u64 b = h >> 1; b != 0; b >>= 1) {
      rev = (rev << 1) | (low & 1);
      low >>= 1;
    }
    return h + rev;
  }

  /// Test hook: heap order among non-empty nodes; meaningful at quiescence.
  bool heap_invariant_holds() const {
    for (u64 i = 2; i < nodes_.size(); ++i) {
      const u64 pi = i >> 1;
      if (nodes_[pi].tag.load_acquire() == kEmpty || nodes_[i].tag.load_acquire() == kEmpty)
        continue;
      if (nodes_[pi].entry.load_relaxed() > nodes_[i].entry.load_relaxed()) return false;
    }
    return true;
  }

 private:
  static constexpr u64 kEmpty = 0;
  static constexpr u64 kAvail = 1;
  static u64 tag_of(ProcId p) { return static_cast<u64>(p) + 2; }

  // Ordering contract: tag and entry are only touched while holding the
  // node's lock (size_ likewise under heap_lock_), so every access is
  // relaxed — the TTAS/MCS edges order them. Nodes are cache-line-aligned:
  // hand-over-hand traversals of adjacent heap slots would otherwise
  // false-share their locks.
  struct alignas(kCacheLineBytes) Node {
    TtasLock<P> lock;
    typename P::template Shared<u64> tag{kEmpty};
    typename P::template Shared<u64> entry{0};
  };

  void swap_nodes(u64 a, u64 b) {
    const u64 ea = nodes_[a].entry.load_relaxed();
    const u64 ta = nodes_[a].tag.load_relaxed();
    nodes_[a].entry.store_relaxed(nodes_[b].entry.load_relaxed());
    nodes_[a].tag.store_relaxed(nodes_[b].tag.load_relaxed());
    nodes_[b].entry.store_relaxed(ea);
    nodes_[b].tag.store_relaxed(ta);
  }

  /// Sift the root item down to heap order. Called holding nodes_[1].lock;
  /// releases every lock it takes, including the moving node's.
  void sift_down() {
    u64 i = 1;
    // contract-lint: allow(naked-spin) structurally bounded: i descends a
    // finite heap; waiting happens inside the watchdog-visible node locks.
    for (;;) {
      const u64 l = i << 1;
      const u64 r = l + 1;
      if (l >= nodes_.size()) break;
      nodes_[l].lock.acquire();
      u64 c = 0;
      if (r < nodes_.size()) {
        nodes_[r].lock.acquire();
        const bool le = nodes_[l].tag.load_relaxed() == kEmpty;
        const bool re = nodes_[r].tag.load_relaxed() == kEmpty;
        if (le && re) {
          nodes_[r].lock.release();
          nodes_[l].lock.release();
          break;
        }
        if (!le && (re || nodes_[l].entry.load_relaxed() <= nodes_[r].entry.load_relaxed())) {
          nodes_[r].lock.release();
          c = l;
        } else {
          nodes_[l].lock.release();
          c = r;
        }
      } else {
        if (nodes_[l].tag.load_relaxed() == kEmpty) {
          nodes_[l].lock.release();
          break;
        }
        c = l;
      }
      if (nodes_[c].entry.load_relaxed() < nodes_[i].entry.load_relaxed()) {
        swap_nodes(i, c);
        nodes_[i].lock.release();
        i = c;
      } else {
        nodes_[c].lock.release();
        break;
      }
    }
    nodes_[i].lock.release();
  }

  u32 npriorities_;
  u32 capacity_;
  McsLock<P> heap_lock_;
  typename P::template Shared<u64> size_{0};
  std::vector<Node> nodes_;
};

} // namespace fpq
