// SingleLock (paper Fig. 11, left): a sequential array heap protected by
// one MCS lock for the whole operation. The representative of centralized
// lock-based algorithms; linearizable; supports arbitrary priorities (we
// still enforce the bounded range for a fair comparison).
//
// Entries are packed (prio << 48 | item), so comparing the packed words
// orders by priority first — the heap is a min-heap on packed words.
#pragma once

#include <optional>
#include <vector>

#include "common/entry.hpp"
#include "pq/pq.hpp"
#include "sync/mcs_lock.hpp"

namespace fpq {

template <Platform P>
class SingleLockPq {
 public:
  explicit SingleLockPq(const PqParams& params)
      : npriorities_(params.npriorities),
        lock_(params.maxprocs),
        heap_(params.heap_capacity + 1) { // 1-indexed
    params.validate();
  }

  // Ordering contract: heap_ and size_ are only touched while holding the
  // MCS lock, whose acquire/release edges order them — every access inside
  // the critical section is relaxed. On the native backend this turns the
  // whole sift loop from fenced stores into plain cached writes.
  bool insert(Prio prio, Item item) {
    FPQ_ASSERT_MSG(prio < npriorities_, "priority outside the bounded range");
    const u64 packed = pack_entry({prio, item});
    McsGuard<P> g(lock_);
    u64 n = size_.load_relaxed();
    if (n + 1 >= heap_.size()) return false;
    ++n;
    size_.store_relaxed(n);
    // Sift up.
    u64 i = n;
    heap_[i].store_relaxed(packed);
    while (i > 1) {
      const u64 par = i >> 1;
      const u64 pv = heap_[par].load_relaxed();
      if (pv <= packed) break;
      heap_[i].store_relaxed(pv);
      heap_[par].store_relaxed(packed);
      i = par;
    }
    return true;
  }

  std::optional<Entry> delete_min() {
    McsGuard<P> g(lock_);
    const u64 n = size_.load_relaxed();
    if (n == 0) return std::nullopt;
    const u64 min = heap_[1].load_relaxed();
    const u64 last = heap_[n].load_relaxed();
    size_.store_relaxed(n - 1);
    // Sift the previous last element down from the root.
    u64 i = 1;
    heap_[1].store_relaxed(last);
    const u64 limit = n - 1;
    // contract-lint: allow(naked-spin) structurally bounded heap descent,
    // run under the queue's one lock (no shared word is awaited).
    for (;;) {
      u64 child = i << 1;
      if (child > limit) break;
      u64 cv = heap_[child].load_relaxed();
      if (child + 1 <= limit) {
        const u64 rv = heap_[child + 1].load_relaxed();
        if (rv < cv) {
          cv = rv;
          ++child;
        }
      }
      if (cv >= last) break;
      heap_[i].store_relaxed(cv);
      heap_[child].store_relaxed(last);
      i = child;
    }
    return unpack_entry(min);
  }

  u32 npriorities() const { return npriorities_; }

  /// Test hook: heap invariant check; only meaningful at quiescence.
  bool heap_invariant_holds() const {
    const u64 n = size_.load_acquire();
    for (u64 i = 2; i <= n; ++i)
      if (heap_[i >> 1].load_relaxed() > heap_[i].load_relaxed()) return false;
    return true;
  }

 private:
  u32 npriorities_;
  McsLock<P> lock_;
  typename P::template Shared<u64> size_{0};
  // Only the lock holder touches the heap; dense layout is the point.
  std::vector<typename P::template Shared<u64>> heap_; // contract-lint: allow(unpadded-shared)
};

} // namespace fpq
