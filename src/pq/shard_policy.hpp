// Shard-access policy for the composite "PQ of PQs" (pq/sharded_pq.hpp):
// configuration (shard count, c-of-k sample width, access-mode policy), the
// processor-to-home-shard placement map, and the per-shard contention
// monitor that drives SmartPQ-style adaptive mode switching (arXiv
// 2406.06900; Calciu et al., arXiv 1408.1021).
//
// ## Placement and the ccNUMA mesh
//
// The simulated machine (sim/memory.hpp) numbers its mesh nodes row-major,
// so a contiguous block of processor ids occupies a contiguous — and
// therefore mesh-proximate — patch of nodes. home_shard() exploits that:
// it partitions [0, maxprocs) into K contiguous blocks, one per shard, so
// a shard's regular clients are each other's mesh neighbours and the
// shard's words (first-touch homed near whoever initializes and hammers
// them) stay few hops away. On the native backend the same map degrades
// gracefully to "spread the processors evenly across shards".
//
// ## Adaptive access mode (per shard)
//
// Each shard runs in one of two access modes:
//   kDirect   — every processor CASes the shard's words itself (multiqueue
//               style; best at low contention and across few mesh hops);
//   kDelegate — processors post requests into per-processor combining
//               slots and one server (whoever wins the shard's TTAS lock)
//               applies them all (flat combining / SmartPQ NUMA-server
//               style; best once CAS failure rates climb).
// The monitor accumulates per-shard operation and CAS-failure counts and,
// once per kWindowOps operations, folds the window's failure rate and
// occupancy into EWMAs (fixed-point /256). ShardPolicyKind::kAdaptive
// flips the mode word by hysteresis on the contention EWMA; the occupancy
// EWMA gates delegation (serving an always-empty shard through a server
// buys nothing). kDirect/kDelegate pin the mode at construction.
//
// All monitor words are written with kAcqRel RMWs (and the EWMA/mode words
// with acq_rel CASes), so the happens-before race detector sees every
// update ordered; the monitor is heuristic state, but "heuristic" is not
// an exemption from the declared-order contract (DESIGN.md §8/§10).
#pragma once

#include <string>

#include "common/assert.hpp"
#include "common/types.hpp"
#include "platform/platform.hpp"

namespace fpq {

/// Access-mode policy of a sharded queue (CLI spelling in parentheses).
enum class ShardPolicyKind : u8 {
  kDirect = 0,   // "direct":   every shard stays in direct-CAS mode
  kDelegate = 1, // "delegate": every shard stays in server-delegation mode
  kAdaptive = 2, // "adaptive": per-shard hysteresis on the contention EWMA
};

inline const char* to_string(ShardPolicyKind k) {
  switch (k) {
    case ShardPolicyKind::kDirect: return "direct";
    case ShardPolicyKind::kDelegate: return "delegate";
    case ShardPolicyKind::kAdaptive: return "adaptive";
  }
  return "?";
}

/// Parse "direct"/"delegate"/"adaptive" into `out`; false on anything else.
inline bool shard_policy_from_string(const std::string& s, ShardPolicyKind& out) {
  if (s == "direct") {
    out = ShardPolicyKind::kDirect;
    return true;
  }
  if (s == "delegate") {
    out = ShardPolicyKind::kDelegate;
    return true;
  }
  if (s == "adaptive") {
    out = ShardPolicyKind::kAdaptive;
    return true;
  }
  return false;
}

inline constexpr u32 kMaxShards = 64;

/// Configuration of a ShardedPq, carried inside PqParams so the registry
/// factory, the stress harness and the benches all speak the same knobs.
struct ShardConfig {
  /// Number of sub-queues K; 0 = auto (one shard per two expected
  /// processors, clamped to [1, 8] — the mesh-block placement then gives
  /// every shard a two-processor home block).
  u32 shards = 0;
  /// Delete-min sample width c: peek c randomly chosen shards and pop the
  /// best. 0 (or >= K) = scan every shard — sampling degenerates to exact
  /// delete-min and the composite is quiescently precise.
  u32 sample_c = 0;
  /// Access-mode policy (see ShardPolicyKind).
  ShardPolicyKind policy = ShardPolicyKind::kAdaptive;

  /// Effective shard count for a queue shared by `maxprocs` processors.
  u32 effective_shards(u32 maxprocs) const {
    if (shards != 0) return shards < kMaxShards ? shards : kMaxShards;
    const u32 k = maxprocs / 2;
    return k < 1 ? 1 : (k > 8 ? 8 : k);
  }

  /// Effective sample width against `k` shards (0 and oversized both mean
  /// "all of them").
  u32 effective_sample(u32 k) const {
    return (sample_c == 0 || sample_c >= k) ? k : sample_c;
  }

  void validate() const {
    FPQ_ASSERT_MSG(shards <= kMaxShards, "shard count exceeds kMaxShards");
  }
};

/// Home shard of processor `proc`: contiguous processor-id blocks map to
/// contiguous (row-major, hence mesh-proximate) node patches — see the
/// header comment. Inserts go home; delete-min samples randomly.
inline u32 home_shard(ProcId proc, u32 maxprocs, u32 nshards) {
  const u32 p = maxprocs > 0 ? proc % maxprocs : 0;
  return static_cast<u32>((static_cast<u64>(p) * nshards) / (maxprocs ? maxprocs : 1));
}

/// Per-shard contention/occupancy monitor + mode word. One instance lives
/// inside each shard descriptor (cache-line padded by the owner; the
/// contract-lint unpadded-shard-array rule enforces that).
template <Platform P>
struct ShardMonitor {
  /// Operations per monitoring window.
  static constexpr u64 kWindowOps = 64;
  /// Hysteresis thresholds on the contention EWMA (fixed-point /256):
  /// switch to delegation above kHi, back to direct below kLo.
  static constexpr u32 kHi = 96;
  static constexpr u32 kLo = 24;
  /// Minimum occupancy EWMA (items, /256 fixed point — i.e. >= 1 item on
  /// average) before delegation is considered worthwhile.
  static constexpr u32 kOccMin = 256;

  static constexpr u32 kModeDirect = 0;
  static constexpr u32 kModeDelegate = 1;

  typename P::template Shared<u32> mode{kModeDirect};
  typename P::template Shared<u64> ops{0};
  typename P::template Shared<u64> cas_fails{0};
  typename P::template Shared<u64> size{0}; // approximate occupancy (items)
  typename P::template Shared<u32> contention_ewma{0}; // /256
  typename P::template Shared<u32> occupancy_ewma{0};  // items * 256

  bool delegated() const { return mode.load_acquire() == kModeDelegate; }

  void note_cas_fail() { cas_fails.fetch_add(1, MemOrder::kAcqRel); }
  void note_size(i64 delta) {
    if (delta >= 0)
      size.fetch_add(static_cast<u64>(delta), MemOrder::kAcqRel);
    else
      size.fetch_sub(static_cast<u64>(-delta), MemOrder::kAcqRel);
  }

  /// Per-operation pulse. The processor that completes a window boundary
  /// folds the window into the EWMAs and (under kAdaptive) applies the
  /// hysteresis decision. Both folds are single-shot acq_rel CASes — a
  /// lost race just skips one window, which a heuristic can afford.
  void note_op(ShardPolicyKind policy) {
    const u64 n = ops.fetch_add(1, MemOrder::kAcqRel) + 1;
    if ((n % kWindowOps) != 0) return;
    const u64 fails = cas_fails.exchange(0, MemOrder::kAcqRel);
    u64 rate = fails * 256 / kWindowOps;
    if (rate > 256) rate = 256; // >1 failure per op: saturate
    u32 c = contention_ewma.load_acquire();
    const u32 nc = static_cast<u32>((3ull * c + rate) / 4);
    contention_ewma.compare_exchange(c, nc, MemOrder::kAcqRel, MemOrder::kRelaxed);
    const i64 sz = static_cast<i64>(size.load_acquire());
    const u64 occ = sz > 0 ? static_cast<u64>(sz) * 256 : 0;
    u32 o = occupancy_ewma.load_acquire();
    u64 no64 = (3ull * o + occ) / 4;
    if (no64 > 0xFFFFFFFFull) no64 = 0xFFFFFFFFull;
    occupancy_ewma.compare_exchange(o, static_cast<u32>(no64), MemOrder::kAcqRel,
                                    MemOrder::kRelaxed);
    if (policy != ShardPolicyKind::kAdaptive) return;
    const u32 cur = mode.load_acquire();
    if (cur == kModeDirect && nc >= kHi && no64 >= kOccMin) {
      u32 expect = kModeDirect;
      mode.compare_exchange(expect, kModeDelegate, MemOrder::kAcqRel, MemOrder::kRelaxed);
    } else if (cur == kModeDelegate && nc <= kLo) {
      u32 expect = kModeDelegate;
      mode.compare_exchange(expect, kModeDirect, MemOrder::kAcqRel, MemOrder::kRelaxed);
    }
  }
};

/// Snapshot of one shard's monitor, for tests and diagnostics.
struct ShardStats {
  u32 shard = 0;
  bool delegated = false;
  u64 ops = 0;
  u64 size = 0;
  u32 contention_ewma = 0; // /256
  u32 occupancy_ewma = 0;  // items * 256
};

} // namespace fpq
