// Optional PQ-level elimination array placed in front of the funnel
// queues (after Calciu et al., "The Adaptive Priority Queue with
// Elimination and Combining"): an insert hands its entry directly to a
// parked delete_min when doing so is provably legal, skipping the
// structure entirely.
//
// Legality argument. The layer maintains `min_seen`, the monotonically
// decreasing minimum of every priority any insert has *offered* to the
// queue (updated with a CAS-min before the hand-off check, both seq_cst —
// in the single total order of these accesses, every insert whose update
// precedes my read is accounted). An insert(p, ·) attempts a hand-off only
// when p <= min_seen at that point: then no entry with a strictly smaller
// priority has ever been offered, so the handed entry is of minimal
// priority among everything the queue ever held — a legal delete_min
// return under the quiescent-consistency contract of src/pq/pq.hpp.
// Inserts whose offered priority is not a historical minimum (and any
// insert racing a yet-unordered smaller offer, which is then still an
// overlapping insert covered by the rank bound's |I| slack) go through
// the structure as usual.
//
// Deleter side: a delete_min parks in a random slot only after the
// structure answered empty-handed — pq.hpp explicitly allows an empty
// answer under overlapping inserts, so converting some of those into
// successful hand-offs only sharpens the queue's answers. Parking leaves
// no residue: the deleter withdraws its slot by CAS on timeout, and a
// failed withdrawal means an entry was delivered and must be taken.
//
// Slot protocol (one Shared word per slot, packed-entry encoding; the
// reserved top priority makes the two control values distinct from every
// legal entry):
//   kSlotEmpty --CAS(deleter)--> kSlotWaiting --CAS(inserter)--> entry
//   kSlotWaiting --CAS(deleter, timeout)--> kSlotEmpty
//   entry --store(owning deleter)--> kSlotEmpty
// The inserter's acq_rel CAS publishes the entry; the deleter's acquire
// load receives it.
#pragma once

#include <memory>
#include <optional>

#include "common/assert.hpp"
#include "common/entry.hpp"
#include "common/padded.hpp"
#include "common/types.hpp"
#include "platform/platform.hpp"

namespace fpq {

template <Platform P>
class ElimLayer {
 public:
  /// nslots == 0 disables the layer (enabled() false, both ops no-ops).
  explicit ElimLayer(u32 nslots) : nslots_(nslots) {
    if (nslots_ == 0) return;
    slots_ = std::make_unique<Padded<typename P::template Shared<u64>>[]>(nslots_);
    for (u32 i = 0; i < nslots_; ++i) (*slots_[i]).store(kSlotEmpty);
  }

  bool enabled() const { return nslots_ != 0; }

  /// Inserter side: record the offered priority and, if it is a historical
  /// minimum, try to hand the entry to a parked deleter. True means the
  /// entry was delivered and the insert is complete.
  bool try_hand_off(Prio prio, Item item) {
    if (nslots_ == 0) return false;
    if (item > kMaxPackableItem) return false; // needs the packed encoding
    u64 seen = min_seen_.load(); // seq_cst, as is the CAS-min below
    while (prio < seen) {
      if (min_seen_.compare_exchange(seen, prio)) {
        seen = prio;
        break;
      }
    }
    if (static_cast<u64>(prio) > seen) return false; // smaller prio was offered
    for (u32 t = 0; t < kProbes; ++t) {
      auto& slot = *slots_[P::rnd(nslots_)];
      u64 v = slot.load_relaxed();
      if (v == kSlotWaiting &&
          slot.compare_exchange(v, pack_entry({prio, item}), MemOrder::kAcqRel,
                                MemOrder::kRelaxed))
        return true;
    }
    return false;
  }

  /// Deleter side: park in a random slot for `spin` re-checks. Returns the
  /// delivered entry, or nullopt (slot busy, or nobody delivered in time).
  std::optional<Entry> park(u32 spin) {
    if (nslots_ == 0) return std::nullopt;
    auto& slot = *slots_[P::rnd(nslots_)];
    u64 expected = kSlotEmpty;
    if (!slot.compare_exchange(expected, kSlotWaiting, MemOrder::kAcqRel,
                               MemOrder::kRelaxed))
      return std::nullopt;
    for (u32 i = 0; i < spin; ++i) {
      if (slot.load_acquire() != kSlotWaiting) break;
      P::relax();
    }
    u64 cur = slot.load_acquire();
    if (cur == kSlotWaiting) {
      u64 waiting = kSlotWaiting;
      if (slot.compare_exchange(waiting, kSlotEmpty, MemOrder::kAcqRel,
                                MemOrder::kRelaxed))
        return std::nullopt;    // withdrew cleanly
      cur = slot.load_acquire(); // lost the withdrawal race: entry delivered
    }
    // Only the parked deleter transitions a delivered slot back to empty.
    slot.store_release(kSlotEmpty);
    return unpack_entry(cur);
  }

 private:
  /// Both control values use the reserved top priority, so every legal
  /// packed entry compares unequal to them.
  static constexpr u64 kSlotEmpty = static_cast<u64>(kMaxPackablePrio) << 48;
  static constexpr u64 kSlotWaiting = kSlotEmpty | 1;
  static constexpr u32 kProbes = 2;

  u32 nslots_;
  /// Offered-priority minimum; only ever decreases. kMaxPackablePrio is
  /// above every legal priority, so the first offer always records itself.
  typename P::template Shared<u64> min_seen_{kMaxPackablePrio};
  std::unique_ptr<Padded<typename P::template Shared<u64>>[]> slots_;
};

} // namespace fpq
