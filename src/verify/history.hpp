// Operation histories for the consistency checkers (paper Appendix B).
//
// Recording is processor-local: each processor appends to its own buffer
// (host memory — in the simulator this deliberately costs zero simulated
// cycles, so instrumentation does not perturb the measured algorithms), and
// the buffers are merged after the run.
#pragma once

#include <optional>
#include <vector>

#include "common/entry.hpp"
#include "common/types.hpp"

namespace fpq {

struct OpRecord {
  enum class Kind : u8 { kInsert, kDeleteMin };
  Kind kind = Kind::kInsert;
  ProcId proc = 0;
  Cycles invoked = 0;
  Cycles responded = 0;
  /// kInsert: the inserted entry. kDeleteMin: the returned entry when
  /// result_present, unspecified otherwise.
  Entry entry;
  bool result_present = false; // kDeleteMin only

  static OpRecord insert_op(ProcId p, Cycles t0, Cycles t1, Entry e) {
    return {Kind::kInsert, p, t0, t1, e, true};
  }
  static OpRecord delete_op(ProcId p, Cycles t0, Cycles t1, std::optional<Entry> e) {
    return {Kind::kDeleteMin, p, t0, t1, e.value_or(Entry{}), e.has_value()};
  }
};

using History = std::vector<OpRecord>;

class HistoryRecorder {
 public:
  explicit HistoryRecorder(u32 nprocs) : per_proc_(nprocs) {}

  void record(const OpRecord& op) { per_proc_[op.proc].push_back(op); }

  /// Merged history, sorted by invocation time (stable on proc id).
  History merged() const;

 private:
  std::vector<std::vector<OpRecord>> per_proc_;
};

} // namespace fpq
