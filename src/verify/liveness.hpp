// Empirical progress-guarantee classification (DESIGN.md §12).
//
// A LivenessSpec pins one deterministic scenario: an algorithm, a fault
// plan that permanently downs one or more processors (sim/faults.hpp), and
// a per-processor heartbeat watchdog. The runner drives a mixed workload,
// lets the plan fire, and reads the engine's FaultReport:
//
//   * a queue behaves LOCK-FREE under the plan when every surviving
//     processor still completes its full quota of operations;
//   * a queue behaves BLOCKING when some survivor ends the run detected as
//     blocked — parked on a dead processor's lock (kBlocked) or wedged by
//     the watchdog while actively spinning (kWedged). Detection, not
//     hanging, is the point: the watchdog guarantees the run terminates,
//     so a blocking queue under a hostile plan costs a classification, not
//     a hung test binary.
//
// run_liveness_battery sweeps every registry algorithm across a small set
// of crash and stall plans and checks the observed class against the
// declared one (registry::progress_guarantee): a declared-lock-free queue
// must survive *every* plan; a declared-blocking queue must never hang
// (already structural) and its blocked survivors must all be detected.
// format_liveness_table renders the per-queue guarantee table the fault CI
// job publishes.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "reclaim/policy.hpp"
#include "sim/faults.hpp"
#include "platform/sim.hpp"

namespace fpq::verify {

struct LivenessSpec {
  Algorithm algo = Algorithm::kSingleLock;
  reclaim::Policy reclaim = reclaim::Policy::kHazardPointer;
  u64 seed = 1;
  u32 nprocs = 4;
  u32 ops_per_proc = 32;
  u32 npriorities = 2; // few priorities: survivors must share the victim's locks
  u32 insert_percent = 60;
  /// The plan is expected to permanently down at least one processor
  /// (crash or stall-forever events); casfail/allocfail events are legal
  /// but do not change the classification universe.
  sim::FaultPlan faults;
  /// Heartbeat budget (accesses between op boundaries). Always on: this is
  /// what turns "survivor spins forever on a dead lock holder" into a
  /// detected kWedged instead of a hung test. Must comfortably exceed the
  /// access count of the longest legitimate single operation.
  u64 watchdog = 20000;
};

/// One-line key=value serialization (replay-spec style).
std::string to_line(const LivenessSpec& s);
LivenessSpec liveness_spec_from_line(const std::string& line);

struct LivenessResult {
  LivenessSpec spec;
  sim::FaultReport report;
  /// Operations each processor finished in the mixed phase.
  std::vector<u64> completed;
  /// Processors the plan never targeted with a crash/stall event...
  u32 survivors = 0;
  /// ...split into: finished their full quota,
  u32 survivors_completed = 0;
  /// ...and detected as blocked (parked or watchdog-wedged).
  u32 survivors_blocked = 0;
  /// kLockFree iff every survivor completed; kBlocking otherwise.
  ProgressGuarantee observed = ProgressGuarantee::kBlocking;
};

/// Runs one scenario. Always terminates (watchdog); after the run the
/// downed processors' reclamation state is adopted by a survivor so the
/// queue tears down cleanly.
LivenessResult run_liveness(const LivenessSpec& spec);

/// One row of the progress-guarantee table: an algorithm's declared class
/// against its behavior across the battery's plans.
struct LivenessRow {
  Algorithm algo = Algorithm::kSingleLock;
  ProgressGuarantee declared = ProgressGuarantee::kBlocking;
  /// Every survivor of every plan completed its quota.
  bool all_survivors_completed = false;
  /// Some plan produced a detected-blocked survivor.
  bool observed_blocking = false;
  /// Declared-lock-free queues must have all_survivors_completed; for
  /// declared-blocking queues termination-with-detection is the property
  /// (structural here), so they pass either way.
  bool ok = false;
};

struct LivenessBatteryOptions {
  std::vector<Algorithm> algorithms; // empty = all eight
  reclaim::Policy reclaim = reclaim::Policy::kHazardPointer;
  u64 seed = 1;
  u32 nprocs = 4;
  u32 ops_per_proc = 32;
};

/// Sweeps algorithms x {crash, stall-forever} x victim ordinals.
std::vector<LivenessRow> run_liveness_battery(const LivenessBatteryOptions& opt,
                                              std::ostream* progress = nullptr);

/// Renders the guarantee table (one row per algorithm, declared vs
/// observed, verdict) for test logs and the fault CI job's artifact.
std::string format_liveness_table(const std::vector<LivenessRow>& rows);

} // namespace fpq::verify
