// Schedule-exploration stress harness (the standing correctness gate).
//
// A StressSpec fully determines one deterministic scenario: an algorithm, a
// schedule policy (sim/params.hpp), a seed, the machine's scheduling knobs
// and the workload shape. The runner drives the queue through a mixed
// insert/delete phase followed by a quiescent drain, recording the op
// history, and applies the Appendix-B checkers:
//
//   * conservation   — every inserted entry comes back exactly once;
//   * quiescent      — phase rank bound (check_quiescent_phase) with the
//                      empty queue as the opening quiescent point;
//   * drain-order    — the solo drain yields nondecreasing priorities;
//   * linearizability— Wing-Gong check, gated per spec (exhaustive, so only
//                      small-history specs enable it).
//
// A sweep fans specs across algorithms x policies x seeds; the first
// failure is greedily minimized (fewer processors, fewer ops — reruns are
// free because scenarios are deterministic) and serialized as a one-line
// replay spec plus the op trace, so
//
//   fpq_stress --replay "algo=... policy=... seed=..."
//
// reproduces it exactly. See DESIGN.md §7 and tests/stress_main.cpp.
#pragma once

#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "funnel/params.hpp"
#include "reclaim/policy.hpp"
#include "platform/sim.hpp"
#include "sim/explore.hpp"
#include "sim/faults.hpp"
#include "verify/history.hpp"

namespace fpq::verify {

struct StressSpec {
  Algorithm algo = Algorithm::kSingleLock;
  sim::SchedulePolicy policy = sim::SchedulePolicy::kSmallestClock;
  u64 seed = 1;
  u32 nprocs = 4;
  u32 ops_per_proc = 12;
  u32 npriorities = 8;
  /// Percentage of operations that are inserts (rest are delete-mins).
  u32 insert_percent = 60;
  /// Scheduler knobs (sim::SchedParams); recorded so a replay reconstructs
  /// the exact machine.
  u32 perturb_permille = 250;
  Cycles max_delay = 256;
  Cycles access_jitter = 0;
  /// Batch width: 1 runs the classic point-op mixed phase; > 1 groups each
  /// processor's operations into insert_batch/delete_min_batch calls of up
  /// to this size (PqParams::max_batch is set to match). Every batched
  /// element is recorded as its own operation sharing the batch's
  /// [invoke, response] window, so the same checkers apply unchanged.
  u32 batch = 1;
  /// PQ-level elimination array slots for the funnel queues (0 = off);
  /// forwarded as FunnelOptions::pq_elimination / elim_slots.
  u32 elim = 0;
  /// Memory-reclamation policy for the queues that reclaim through
  /// reclaim::Domain (PqParams::reclaim_policy); ignored by the rest.
  reclaim::Policy reclaim = reclaim::Policy::kHazardPointer;
  /// Funnel collision protocol (FunnelOptions::protocol) for the funnel
  /// queues — exchange (paper) or aggregate (Roh et al. '24); ignored by
  /// the rest.
  FunnelProtocol funnel = FunnelProtocol::kExchange;
  /// Sharded-composite knobs (PqParams::shard), ignored by every other
  /// algorithm. Serialized as `shards= c= mode=` — but only for kSharded
  /// specs, so pre-existing replay lines stay byte-identical. shards=0 is
  /// auto (shard_policy.hpp); sample_c=0 samples every shard (exact mode).
  u32 shards = 0;
  u32 sample_c = 0;
  ShardPolicyKind shard_mode = ShardPolicyKind::kAdaptive;
  /// Gate the exhaustive linearizability checker (keep histories small:
  /// nprocs * ops_per_proc + drain must stay around 20 ops).
  bool check_lin = false;
  /// Attach the happens-before race detector and the lock-order checker
  /// (sim/race_detector.hpp) to the scenario's engine; any report becomes a
  /// failure of kind "race" or "lock-order". Timing is unchanged, so a spec
  /// replays identically with the flag on or off.
  bool race_detect = false;
  /// Fault plan injected into the scenario's engine (sim/faults.hpp);
  /// empty = fault-free. Under a non-empty plan the strict conservation /
  /// quiescent checks are replaced by the weaker no-fabrication check (a
  /// crashed processor's in-flight op may legally half-apply), and an
  /// insert refusal under an alloc-failure plan is a recorded no-op rather
  /// than a capacity failure. Serialized in the replay line as faults= /
  /// watchdog=, so minimized fault counterexamples replay like any other.
  sim::FaultPlan faults;
  /// Watchdog budget (accesses between P::heartbeat() calls) forwarded to
  /// FaultPlan::watchdog_budget; 0 disables. Required for plans that stall
  /// a lock holder whose waiters spin without parking.
  u64 watchdog = 0;
  /// Exhaustive exploration only (policy == kExhaustive; the keys are
  /// serialized only then, so every other replay line stays byte-identical).
  /// preempt_bound / max_execs map onto sim::ExploreParams; 0 = unbounded.
  u32 preempt_bound = 0;
  u64 max_execs = u64{1} << 20;
  /// 0-based index of the failing execution within the exploration, stamped
  /// onto counterexample specs. Informational on replay: the exploration
  /// order is deterministic, so re-exploring reaches the same execution.
  u64 trace = 0;

  bool faulted() const { return !faults.empty() || watchdog != 0; }

  /// Machine for this scenario: default timing, spec's scheduling.
  sim::MachineParams machine() const;
};

/// One-line key=value serialization, parseable by spec_from_line.
std::string to_line(const StressSpec& s);
/// Parses to_line output (order-insensitive); throws std::invalid_argument.
StressSpec spec_from_line(const std::string& line);
/// Parses a SchedulePolicy display name; throws std::invalid_argument.
sim::SchedulePolicy policy_from_string(std::string_view name);

struct StressFailure {
  StressSpec spec;
  std::string kind; // conservation | quiescent | drain-order | linearizability
                    // | capacity | race | lock-order | fault-conservation
                    // | rank-error | deadlock
  std::string diagnostic;
  /// Recorded op trace: the mixed phase (all procs) then the quiescent
  /// drain (proc 0), in invocation order.
  History trace;
};

/// Human-readable dump: kind, diagnostic, replay line, machine, op trace.
std::string format_failure(const StressFailure& f);

/// Factory injection point so the harness itself is testable against
/// deliberately broken queues (tests/test_stress.cpp).
using QueueFactory =
    std::function<std::unique_ptr<IPriorityQueue<SimPlatform>>(const PqParams&)>;

/// Which checks to apply; run_scenario derives this from the algorithm
/// (SkipList's stale delete-bin is exempt from the rank bound by design;
/// the sharded composite trades the rank bound for the rank-error metric,
/// and its solo drain is sorted only when the sample covers every shard).
struct ScenarioChecks {
  bool quiescent_rank = true;
  bool drain_sorted = true;
  bool linearizability = false;
  /// Score the history with verify/rank_error.hpp (kSharded). Exactness
  /// (rank error identically 0) is enforced where it must hold: sequential
  /// runs with c == K, and any npriorities == 1 history; a concurrent
  /// c == K run may transiently miss a mid-refill entry, which is the
  /// quiescent relaxation the composite documents. unmatched entries fail
  /// unconditionally.
  bool rank_error = false;
};

/// Runs one scenario; nullopt when every enabled check passes. A spec with
/// policy == kExhaustive is dispatched to run_exhaustive_with (the whole
/// exploration is "one scenario": it fails iff some schedule fails).
std::optional<StressFailure> run_scenario(const StressSpec& spec);
std::optional<StressFailure> run_scenario_with(const QueueFactory& make,
                                               const StressSpec& spec,
                                               const ScenarioChecks& checks);

/// Result of exhaustively exploring one scenario's schedule space: the
/// first failing execution (if any) plus honest coverage accounting — a
/// clean result with !stats.complete() is qualified, not a proof.
struct ExhaustiveResult {
  std::optional<StressFailure> failure;
  sim::ExploreStats stats;
  /// 0-based index of the failing execution (== failure->spec.trace).
  u64 failing_exec = 0;
};

/// Runs the scenario under every DPOR-non-redundant schedule (fresh queue
/// and engine per execution, same seed, full oracle stack each time).
/// Throws std::invalid_argument for faulted specs: fault injection and
/// systematic exploration are mutually exclusive.
ExhaustiveResult run_exhaustive(const StressSpec& spec);
ExhaustiveResult run_exhaustive_with(const QueueFactory& make, const StressSpec& spec,
                                     const ScenarioChecks& checks);

/// Greedy shrink (processors, then ops per processor) while the scenario
/// still fails any enabled check. Deterministic and cheap: a handful of
/// reruns of an already-small scenario.
StressFailure minimize(const StressFailure& f);
StressFailure minimize_with(const QueueFactory& make, const StressFailure& f,
                            const ScenarioChecks& checks);

struct StressOptions {
  std::vector<Algorithm> algorithms;         // empty = all nine
  std::vector<sim::SchedulePolicy> policies; // empty = all three
  u64 seed_base = 1;
  u32 seeds = 32;
  u32 nprocs = 4;
  u32 ops_per_proc = 12;
  u32 npriorities = 8;
  u32 insert_percent = 60;
  /// Per-access jitter used for the perturbing policies (the
  /// smallest-clock baseline always runs jitter-free).
  Cycles access_jitter = 64;
  /// Batch width / elimination slots / reclamation policy forwarded into
  /// every spec.
  u32 batch = 1;
  u32 elim = 0;
  reclaim::Policy reclaim = reclaim::Policy::kHazardPointer;
  FunnelProtocol funnel = FunnelProtocol::kExchange;
  /// Sharded-composite knobs forwarded into every spec (ignored by the
  /// other algorithms): shard count, sample width, access-mode policy.
  u32 shards = 0;
  u32 sample_c = 0;
  ShardPolicyKind shard_mode = ShardPolicyKind::kAdaptive;
  /// Forwarded into every spec (StressSpec::race_detect).
  bool race_detect = false;
  /// Fault plan / watchdog budget forwarded into every spec — a sweep over
  /// a hostile plan across the whole registry (StressSpec::faults).
  sim::FaultPlan faults;
  u64 watchdog = 0;
  /// Exhaustive-policy knobs forwarded into every spec (ignored by the
  /// randomized policies): preemption bound and execution budget.
  u32 preempt_bound = 0;
  u64 max_execs = u64{1} << 20;
  bool minimize_failures = true;
  /// Stop sweeping after this many failures (each is minimized).
  u32 max_failures = 1;
  /// Invoked with each spec just before it runs. The driver uses this to
  /// keep the current spec in a buffer its SIGABRT handler prints, so even
  /// an FPQ_ASSERT abort inside an algorithm leaves a replayable spec.
  std::function<void(const StressSpec&)> on_scenario;
};

/// Fans scenarios across algorithms x policies x seeds. For algorithms the
/// paper classifies as linearizable with a hard guarantee (SingleLock), an
/// additional small-history linearizability sweep runs per policy x seed.
/// Returns the (minimized) failures; empty means the gate is clean.
std::vector<StressFailure> run_sweep(const StressOptions& opt,
                                     std::ostream* progress = nullptr);

} // namespace fpq::verify
