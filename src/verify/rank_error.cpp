#include "verify/rank_error.hpp"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "common/entry.hpp"

namespace fpq {
namespace {

/// Fenwick tree over priorities: point add, prefix count of entries with
/// priority strictly below a bound. Sized to the largest priority seen, so
/// the cost tracks the history's actual range, not the packable maximum.
class PrioCounts {
 public:
  explicit PrioCounts(u32 nprio) : tree_(static_cast<size_t>(nprio) + 1, 0) {}

  void add(Prio p, i64 d) {
    for (u32 i = p + 1; i < tree_.size(); i += i & (~i + 1)) tree_[i] += d;
  }

  /// Number of present entries with priority < p.
  u64 below(Prio p) const {
    i64 n = 0;
    for (u32 i = p; i > 0; i -= i & (~i + 1)) n += tree_[i];
    return n < 0 ? 0 : static_cast<u64>(n);
  }

 private:
  std::vector<i64> tree_;
};

} // namespace

RankErrorReport compute_rank_error(const History& h) {
  RankErrorReport rep;
  u32 nprio = 1;
  // Prescan: per packed-entry insert counts (for borrowing) + prio range.
  std::unordered_map<u64, u64> future;
  for (const OpRecord& op : h) {
    if (op.kind == OpRecord::Kind::kInsert) ++future[pack_entry(op.entry)];
    if (op.result_present && op.entry.prio >= nprio) nprio = op.entry.prio + 1;
  }

  PrioCounts counts(nprio);
  std::unordered_map<u64, u64> present;  // packed entry -> live count
  std::unordered_map<u64, u64> borrowed; // consumed ahead of their insert
  std::vector<u64> errors;

  for (const OpRecord& op : h) {
    const u64 w = op.result_present ? pack_entry(op.entry) : 0;
    if (op.kind == OpRecord::Kind::kInsert) {
      --future[w];
      if (auto it = borrowed.find(w); it != borrowed.end() && it->second > 0) {
        --it->second; // an overlapping delete already took this entry
      } else {
        ++present[w];
        counts.add(op.entry.prio, 1);
      }
      continue;
    }
    if (!op.result_present) {
      ++rep.empties;
      continue;
    }
    if (auto it = present.find(w); it != present.end() && it->second > 0) {
      --it->second;
      counts.add(op.entry.prio, -1);
    } else if (future[w] > borrowed[w]) {
      ++borrowed[w]; // insert invoked later but overlapped this delete
    } else {
      ++rep.unmatched;
      continue;
    }
    errors.push_back(counts.below(op.entry.prio));
  }

  rep.deletes = errors.size();
  if (rep.deletes == 0) return rep;
  u64 sum = 0;
  for (u64 e : errors) {
    sum += e;
    if (e > 0) ++rep.nonzero;
    if (e > rep.max) rep.max = e;
  }
  rep.mean = static_cast<double>(sum) / static_cast<double>(rep.deletes);
  std::sort(errors.begin(), errors.end());
  const size_t idx = (errors.size() * 99 + 99) / 100; // ceil(0.99 n)
  rep.p99 = static_cast<double>(errors[std::min(idx, errors.size()) - 1]);
  return rep;
}

} // namespace fpq
