// Rank-error quality metric for relaxed priority queues (ISSUE/ROADMAP
// item 3: the sharded c-of-k composite deliberately trades strict
// delete-min precision for scalability, so "how wrong" needs a number).
//
// The analyzer replays a merged operation history (verify/history.hpp, in
// invocation order) against a model multiset. Each successful delete-min
// is scored with its *rank error*: how many entries of strictly smaller
// priority were present in the model at that point — 0 means the delete
// returned a true minimum, r means r better entries were skipped. The
// report aggregates the per-op distribution (mean / p99 / max / nonzero
// count), which is the contract the tests pin down: exactly 0 everywhere
// when the composite samples every shard (c == K), bounded nonzero when
// c < K.
//
// Concurrency is handled the same way the quiescent checkers do: the
// replay order is invocation order, and a delete may legally return an
// entry whose insert *invoked* later but overlapped it. Such an entry is
// "borrowed" against the insert's future occurrence (the later insert
// replay then cancels the borrow instead of materializing the entry). A
// deleted entry with no matching insert anywhere in the history is
// reported as `unmatched` — that is a conservation bug, not relaxation,
// and the callers treat it as a failure in its own right.
#pragma once

#include "common/types.hpp"
#include "verify/history.hpp"

namespace fpq {

/// Distribution of per-delete-min rank errors over one history.
struct RankErrorReport {
  u64 deletes = 0;   // successful delete-mins scored
  u64 empties = 0;   // delete-mins that returned empty
  u64 unmatched = 0; // deleted entries matching no insert (conservation bug)
  u64 nonzero = 0;   // scored deletes with rank error > 0
  u64 max = 0;
  double mean = 0.0;
  double p99 = 0.0;

  /// True when every delete returned a true minimum and every deleted
  /// entry was accounted for — what c == K (and every non-relaxed queue)
  /// must produce on a quiescent history.
  bool exact() const { return nonzero == 0 && unmatched == 0; }
};

/// Replays `h` (merged, invocation-sorted) and scores every delete-min.
RankErrorReport compute_rank_error(const History& h);

} // namespace fpq
