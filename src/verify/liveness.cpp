#include "verify/liveness.hpp"

#include <ostream>
#include <sstream>
#include <stdexcept>

#include "pq/pq.hpp"

namespace fpq::verify {

namespace {

bool perm_down_event(const sim::FaultEvent& e) {
  return e.kind == sim::FaultKind::kCrash ||
         (e.kind == sim::FaultKind::kStall && e.count == 0);
}

bool targeted(const sim::FaultPlan& plan, ProcId p) {
  for (const sim::FaultEvent& e : plan.events)
    if (e.proc == p && perm_down_event(e)) return true;
  return false;
}

} // namespace

std::string to_line(const LivenessSpec& s) {
  std::ostringstream os;
  os << "algo=" << to_string(s.algo) << " reclaim=" << reclaim::to_string(s.reclaim)
     << " seed=" << s.seed << " procs=" << s.nprocs << " ops=" << s.ops_per_proc
     << " nprio=" << s.npriorities << " ins=" << s.insert_percent
     << " faults=" << sim::to_string(s.faults) << " watchdog=" << s.watchdog;
  return os.str();
}

LivenessSpec liveness_spec_from_line(const std::string& line) {
  LivenessSpec s;
  std::istringstream is(line);
  std::string tok;
  while (is >> tok) {
    const auto eq = tok.find('=');
    if (eq == std::string::npos)
      throw std::invalid_argument("liveness spec token without '=': " + tok);
    const std::string key = tok.substr(0, eq);
    const std::string val = tok.substr(eq + 1);
    try {
      if (key == "algo") {
        s.algo = algorithm_from_string(val);
      } else if (key == "reclaim") {
        s.reclaim = reclaim::policy_from_string(val);
      } else if (key == "seed") {
        s.seed = std::stoull(val);
      } else if (key == "procs") {
        s.nprocs = static_cast<u32>(std::stoul(val));
      } else if (key == "ops") {
        s.ops_per_proc = static_cast<u32>(std::stoul(val));
      } else if (key == "nprio") {
        s.npriorities = static_cast<u32>(std::stoul(val));
      } else if (key == "ins") {
        s.insert_percent = static_cast<u32>(std::stoul(val));
      } else if (key == "faults") {
        s.faults = sim::fault_plan_from_string(val);
      } else if (key == "watchdog") {
        s.watchdog = std::stoull(val);
      } else {
        throw std::invalid_argument("unknown liveness spec key: " + key);
      }
    } catch (const std::logic_error& e) {
      throw std::invalid_argument("bad liveness spec token '" + tok + "': " + e.what());
    }
  }
  if (s.nprocs < 1 || s.npriorities < 1)
    throw std::invalid_argument("liveness spec needs procs and nprio >= 1");
  return s;
}

LivenessResult run_liveness(const LivenessSpec& spec) {
  PqParams params{.npriorities = spec.npriorities, .maxprocs = spec.nprocs,
                  .bin_capacity = 1u << 13};
  params.seed = spec.seed;
  params.reclaim_policy = spec.reclaim;
  if (spec.algo == Algorithm::kSharded) {
    // The composite's declared kBlocking guarantee comes from exactly one
    // window: a client spinning behind a crashed combiner that holds a
    // shard's server lock (pq/sharded_pq.hpp delegation protocol). The
    // default adaptive policy starts every shard in direct mode — lock-free
    // paths only — so classification must pin the delegation configuration;
    // one shard funnels every survivor onto the victim's lock.
    params.shard = ShardConfig{1, 0, ShardPolicyKind::kDelegate};
  }
  auto pq = make_priority_queue<SimPlatform>(spec.algo, params, FunnelOptions{});

  sim::Engine eng(spec.nprocs, sim::MachineParams{}, spec.seed);
  sim::FaultPlan plan = spec.faults;
  plan.watchdog_budget = spec.watchdog;
  eng.set_fault_plan(std::move(plan));

  std::vector<u64> completed(spec.nprocs, 0);
  eng.run([&](ProcId id) {
    for (u32 i = 0; i < spec.ops_per_proc; ++i) {
      SimPlatform::heartbeat(); // op boundary: resets the watchdog budget
      if (SimPlatform::rnd(100) < spec.insert_percent) {
        pq->insert(static_cast<Prio>(SimPlatform::rnd(spec.npriorities)),
                   (static_cast<u64>(id) << 20) | i);
      } else {
        Entry e;
        (void)pq->try_delete_min(e, TryBudget{}); // bounded: see note below
      }
      ++completed[id];
    }
  });
  // Why try_delete_min above: a *blocking* delete_min on an empty funnel
  // queue parks in the elimination layer / scans forever only bounded by
  // work arriving; the classification must measure blocking on the *dead
  // processor's locks*, not on an empty queue. The bounded variant returns
  // kTimeout/kEmpty instead, while still walking the same locked hot path
  // (native try implementations) or full blocking attempts (fallback), so
  // a dead lock holder still manifests as kBlocked/kWedged.

  LivenessResult r;
  r.spec = spec;
  r.report = eng.fault_report();
  r.completed = completed;
  for (ProcId p = 0; p < spec.nprocs; ++p) {
    if (targeted(spec.faults, p)) continue;
    ++r.survivors;
    if (r.report.outcomes[p] == sim::ProcOutcome::kCompleted)
      ++r.survivors_completed;
    else
      ++r.survivors_blocked; // kBlocked or kWedged: detected, not hung
  }
  r.observed = (r.survivors > 0 && r.survivors_blocked == 0)
                   ? ProgressGuarantee::kLockFree
                   : ProgressGuarantee::kBlocking;

  // Sweep reclamation state onto a live processor so the queue's domain
  // destructs cleanly (stale hazards / epoch pins of downed fibers).
  ProcId adopter = 0;
  while (adopter < spec.nprocs &&
         r.report.outcomes[adopter] != sim::ProcOutcome::kCompleted)
    ++adopter;
  if (adopter < spec.nprocs) {
    for (ProcId p = 0; p < spec.nprocs; ++p)
      if (p != adopter) pq->adopt_orphans(p, adopter);
  }
  return r;
}

std::vector<LivenessRow> run_liveness_battery(const LivenessBatteryOptions& opt,
                                              std::ostream* progress) {
  const std::vector<Algorithm>& algos =
      opt.algorithms.empty() ? all_algorithms() : opt.algorithms;
  // One victim, downed at several depths into the run, by both mechanisms.
  // Ordinals are access counts: tens of operations in, so the victim dies
  // mid-structure — holding whatever lock its op was in — rather than at a
  // quiescent boundary. Access patterns are deterministic (fixed seed), so
  // the ordinals are chosen to land inside a critical section for every
  // lock-based queue somewhere across the list: a queue's lock windows are
  // often narrow and periodic (a round-number sweep can miss them all), so
  // the list mixes depths and off-cycle ordinals.
  const char* plans[] = {"crash@p1a100", "crash@p1a121", "crash@p1a200",
                         "crash@p1a212", "crash@p1a350", "crash@p1a500",
                         "crash@p1a1500", "stall@p1a250", "stall@p1a900"};

  std::vector<LivenessRow> rows;
  for (Algorithm algo : algos) {
    LivenessRow row;
    row.algo = algo;
    row.declared = progress_guarantee(algo);
    row.all_survivors_completed = true;
    row.observed_blocking = false;
    for (const char* plan : plans) {
      LivenessSpec spec;
      spec.algo = algo;
      spec.reclaim = opt.reclaim;
      spec.seed = opt.seed;
      spec.nprocs = opt.nprocs;
      spec.ops_per_proc = opt.ops_per_proc;
      spec.faults = sim::fault_plan_from_string(plan);
      const LivenessResult r = run_liveness(spec);
      if (r.survivors_completed < r.survivors) row.all_survivors_completed = false;
      if (r.survivors_blocked > 0) row.observed_blocking = true;
      if (progress) {
        *progress << to_string(algo) << " under " << plan << ": "
                  << r.survivors_completed << "/" << r.survivors
                  << " survivors completed, " << r.survivors_blocked
                  << " detected blocked\n";
      }
    }
    // A declared-lock-free queue must shrug off every plan. A declared-
    // blocking queue passes by terminating with detection (structural by
    // this point — a hang would have kept run_liveness from returning);
    // whether a given plan actually collided with its locks is workload
    // luck, so observed_blocking is reported but not required.
    row.ok = row.declared == ProgressGuarantee::kLockFree
                 ? row.all_survivors_completed
                 : true;
    rows.push_back(row);
  }
  return rows;
}

std::string format_liveness_table(const std::vector<LivenessRow>& rows) {
  std::ostringstream os;
  os << "progress-guarantee table (declared vs observed under crash/stall plans)\n";
  os << "  algorithm          declared   survivors-completed  observed-blocking  verdict\n";
  for (const LivenessRow& r : rows) {
    std::string name(to_string(r.algo));
    name.resize(19, ' ');
    std::string decl(to_string(r.declared));
    decl.resize(11, ' ');
    os << "  " << name << decl << (r.all_survivors_completed ? "yes" : "no ")
       << "                  " << (r.observed_blocking ? "yes" : "no ")
       << "                " << (r.ok ? "ok" : "MISMATCH") << "\n";
  }
  return os.str();
}

} // namespace fpq::verify
