#include "verify/stress.hpp"

#include <algorithm>
#include <map>
#include <ostream>
#include <span>
#include <sstream>
#include <stdexcept>

#include "verify/linearizability.hpp"
#include "verify/quiescent.hpp"
#include "verify/rank_error.hpp"

namespace fpq::verify {

namespace {

/// The Wing-Gong checker is exhaustive; histories beyond this are skipped
/// even when a spec asks for the linearizability gate (see checker header).
constexpr std::size_t kMaxLinOps = 24;

ScenarioChecks checks_for(const StressSpec& spec) {
  ScenarioChecks c;
  // SkipList's stale delete-bin may legally exceed the Appendix-B rank
  // bound (see skiplist_pq.hpp); conservation still gates it. The sharded
  // composite relaxes delete-min by design — it trades the rank bound for
  // the rank-error metric, and its solo drain comes out sorted only when
  // the c-of-k sample covers every shard.
  c.quiescent_rank = spec.algo != Algorithm::kSkipList && spec.algo != Algorithm::kSharded;
  c.drain_sorted = c.quiescent_rank;
  if (spec.algo == Algorithm::kSharded) {
    // A concurrent mixed phase may leave a shard's stash above its
    // backend head (sharded_pq.hpp's stash-invariant note) and that
    // perturbation legally persists into the solo drain, so the sorted-
    // drain guarantee only exists for sequential exact-mode histories.
    const ShardConfig cfg{spec.shards, spec.sample_c, spec.shard_mode};
    const u32 k = cfg.effective_shards(spec.nprocs);
    c.drain_sorted = cfg.effective_sample(k) == k && spec.nprocs == 1;
    c.rank_error = true;
  }
  c.linearizability = spec.check_lin;
  return c;
}

QueueFactory registry_factory(const StressSpec& spec) {
  const Algorithm algo = spec.algo;
  FunnelOptions opts;
  opts.protocol = spec.funnel;
  if (spec.elim > 0) {
    opts.pq_elimination = true;
    opts.elim_slots = spec.elim;
  }
  return [algo, opts](const PqParams& params) {
    return make_priority_queue<SimPlatform>(algo, params, opts);
  };
}

void dump_trace(std::ostream& os, const History& h) {
  for (const OpRecord& op : h) {
    os << "    p" << op.proc << " ";
    if (op.kind == OpRecord::Kind::kInsert)
      os << "ins(" << op.entry.prio << "," << op.entry.item << ")";
    else if (op.result_present)
      os << "del->(" << op.entry.prio << "," << op.entry.item << ")";
    else
      os << "del->empty";
    os << " [" << op.invoked << "," << op.responded << "]\n";
  }
}

} // namespace

sim::MachineParams StressSpec::machine() const {
  sim::MachineParams m;
  m.sched.policy = policy;
  m.sched.perturb_permille = perturb_permille;
  m.sched.max_delay = max_delay;
  m.sched.access_jitter = access_jitter;
  // The explorer owns the schedule outright; jitter would only desync the
  // recorded replay prefix from the engine's clocks.
  if (policy == sim::SchedulePolicy::kExhaustive) m.sched.access_jitter = 0;
  m.race_detect = race_detect;
  return m;
}

std::string to_line(const StressSpec& s) {
  std::ostringstream os;
  os << "algo=" << to_string(s.algo) << " policy=" << to_string(s.policy)
     << " seed=" << s.seed << " procs=" << s.nprocs << " ops=" << s.ops_per_proc
     << " nprio=" << s.npriorities << " ins=" << s.insert_percent
     << " permille=" << s.perturb_permille << " maxdelay=" << s.max_delay
     << " jitter=" << s.access_jitter << " batch=" << s.batch << " elim=" << s.elim
     << " reclaim=" << reclaim::to_string(s.reclaim) << " funnel=" << to_string(s.funnel);
  // Sharding keys only for the sharded composite, so every other
  // algorithm's replay lines stay byte-identical to what earlier versions
  // emitted.
  if (s.algo == Algorithm::kSharded)
    os << " shards=" << s.shards << " c=" << s.sample_c << " mode=" << to_string(s.shard_mode);
  os << " lin=" << (s.check_lin ? 1 : 0) << " race=" << (s.race_detect ? 1 : 0);
  // Fault keys only when non-default, so fault-free replay lines are
  // byte-identical to what earlier versions emitted.
  if (!s.faults.empty()) os << " faults=" << sim::to_string(s.faults);
  if (s.watchdog != 0) os << " watchdog=" << s.watchdog;
  // Exploration keys only for the exhaustive policy, so every randomized-
  // policy replay line stays byte-identical to what earlier versions
  // emitted.
  if (s.policy == sim::SchedulePolicy::kExhaustive) {
    os << " preempt_bound=" << s.preempt_bound << " max_execs=" << s.max_execs;
    if (s.trace != 0) os << " trace=" << s.trace;
  }
  return os.str();
}

sim::SchedulePolicy policy_from_string(std::string_view name) {
  for (auto p : {sim::SchedulePolicy::kSmallestClock, sim::SchedulePolicy::kRandomPreempt,
                 sim::SchedulePolicy::kDelayLeader, sim::SchedulePolicy::kExhaustive}) {
    if (to_string(p) == name) return p;
  }
  throw std::invalid_argument("unknown schedule policy: " + std::string(name));
}

StressSpec spec_from_line(const std::string& line) {
  StressSpec s;
  std::istringstream is(line);
  std::string tok;
  while (is >> tok) {
    const auto eq = tok.find('=');
    if (eq == std::string::npos)
      throw std::invalid_argument("stress spec token without '=': " + tok);
    const std::string key = tok.substr(0, eq);
    const std::string val = tok.substr(eq + 1);
    try {
    if (key == "algo") {
      s.algo = algorithm_from_string(val);
    } else if (key == "policy" || key == "schedule") {
      // "schedule" mirrors the fpq_stress --schedule= flag (ISSUE 10).
      s.policy = policy_from_string(val);
    } else if (key == "seed") {
      s.seed = std::stoull(val);
    } else if (key == "procs") {
      s.nprocs = static_cast<u32>(std::stoul(val));
    } else if (key == "ops") {
      s.ops_per_proc = static_cast<u32>(std::stoul(val));
    } else if (key == "nprio") {
      s.npriorities = static_cast<u32>(std::stoul(val));
    } else if (key == "ins") {
      s.insert_percent = static_cast<u32>(std::stoul(val));
    } else if (key == "permille") {
      s.perturb_permille = static_cast<u32>(std::stoul(val));
    } else if (key == "maxdelay") {
      s.max_delay = std::stoull(val);
    } else if (key == "jitter") {
      s.access_jitter = std::stoull(val);
    } else if (key == "batch") {
      s.batch = static_cast<u32>(std::stoul(val));
    } else if (key == "elim") {
      s.elim = static_cast<u32>(std::stoul(val));
    } else if (key == "reclaim") {
      s.reclaim = reclaim::policy_from_string(val);
    } else if (key == "funnel") {
      if (!funnel_protocol_from_string(val, s.funnel))
        throw std::invalid_argument("unknown funnel protocol: " + val);
    } else if (key == "shards") {
      s.shards = static_cast<u32>(std::stoul(val));
    } else if (key == "c") {
      s.sample_c = static_cast<u32>(std::stoul(val));
    } else if (key == "mode") {
      if (!shard_policy_from_string(val, s.shard_mode))
        throw std::invalid_argument("unknown shard policy: " + val);
    } else if (key == "lin") {
      s.check_lin = val != "0";
    } else if (key == "race") {
      s.race_detect = val != "0";
    } else if (key == "faults") {
      s.faults = sim::fault_plan_from_string(val);
    } else if (key == "watchdog") {
      s.watchdog = std::stoull(val);
    } else if (key == "preempt_bound") {
      s.preempt_bound = static_cast<u32>(std::stoul(val));
    } else if (key == "max_execs") {
      s.max_execs = std::stoull(val);
    } else if (key == "trace") {
      s.trace = std::stoull(val);
    } else {
      throw std::invalid_argument("unknown stress spec key: " + key);
    }
    } catch (const std::logic_error& e) {
      // std::sto* throw bare "stoul"; name the offending token instead.
      throw std::invalid_argument("bad stress spec token '" + tok + "': " + e.what());
    }
  }
  if (s.nprocs < 1 || s.npriorities < 1 || s.batch < 1)
    throw std::invalid_argument("stress spec needs procs, nprio and batch >= 1");
  return s;
}

std::string format_failure(const StressFailure& f) {
  std::ostringstream os;
  const sim::MachineParams m = f.spec.machine();
  os << "stress: FAILED [" << f.kind << "] " << to_string(f.spec.algo) << " under "
     << to_string(f.spec.policy) << " (seed " << f.spec.seed << ")\n"
     << "  " << f.diagnostic << "\n"
     << "  replay: " << to_line(f.spec) << "\n"
     << "  machine: t_hit=" << m.t_hit << " t_mem=" << m.t_mem << " t_occ=" << m.t_occ
     << " t_net_base=" << m.t_net_base << " t_hop=" << m.t_hop
     << " t_dirty_fetch=" << m.t_dirty_fetch << " t_inv_base=" << m.t_inv_base
     << " t_inv_per_sharer=" << m.t_inv_per_sharer << " t_pause=" << m.t_pause << "\n"
     << "  trace (mixed phase, then quiescent drain by p0):\n";
  dump_trace(os, f.trace);
  return os.str();
}

namespace {

/// One deterministic execution of the scenario: fresh queue, fresh engine,
/// mixed phase + quiescent drain, full oracle stack. With `explorer` set
/// this is one execution of an exhaustive exploration (the engine hands it
/// every scheduling decision); the caller owns the begin/end bracketing.
std::optional<StressFailure> run_one_execution(const QueueFactory& make,
                                               const StressSpec& spec,
                                               const ScenarioChecks& checks,
                                               sim::Explorer* explorer) {
  PqParams params{.npriorities = spec.npriorities, .maxprocs = spec.nprocs,
                  .bin_capacity = 1u << 13};
  params.seed = spec.seed;
  params.max_batch = spec.batch;
  params.reclaim_policy = spec.reclaim;
  params.shard = ShardConfig{spec.shards, spec.sample_c, spec.shard_mode};
  auto pq = make(params);
  HistoryRecorder rec(spec.nprocs);
  std::vector<std::vector<Entry>> ins(spec.nprocs), del(spec.nprocs);
  // Inserts a crashed processor may have half-applied: recorded *before*
  // the call so the faulted-run no-fabrication check has the full universe
  // of entries that could legally surface.
  std::vector<std::vector<Entry>> attempted(spec.nprocs);
  bool insert_refused = false;
  // Under an alloc-failure plan a refused insert is the injected failure
  // doing its job (a recorded no-op), not a sizing bug.
  bool alloc_plan = false;
  for (const sim::FaultEvent& e : spec.faults.events)
    alloc_plan |= e.kind == sim::FaultKind::kAllocFail;

  sim::Engine eng(spec.nprocs, spec.machine(), spec.seed);
  if (explorer != nullptr) eng.set_explorer(explorer);
  if (spec.faulted()) {
    sim::FaultPlan plan = spec.faults;
    plan.watchdog_budget = spec.watchdog;
    eng.set_fault_plan(std::move(plan));
  }
  auto fail = [&](std::string kind, std::string diagnostic) {
    return StressFailure{spec, std::move(kind), std::move(diagnostic), rec.merged()};
  };
  // A deadlocked schedule leaves fibers parked mid-operation: the queue's
  // internal state (held locks, reclamation limbo) is arbitrary and its
  // destructor may legitimately assert. Leak the queue on purpose — the
  // counterexample is worth more than the few litmus-sized allocations.
  auto deadlock_fail = [&]() {
    (void)pq.release();
    return fail("deadlock", "schedule deadlocks: live fibers with nothing enabled");
  };
  if (spec.batch <= 1) {
    eng.run([&](ProcId id) {
      for (u32 i = 0; i < spec.ops_per_proc; ++i) {
        SimPlatform::heartbeat(); // op boundary: feeds the fault watchdog
        SimPlatform::delay(SimPlatform::rnd(64));
        if (SimPlatform::rnd(100) < spec.insert_percent) {
          const Entry e{static_cast<Prio>(SimPlatform::rnd(spec.npriorities)),
                        (static_cast<u64>(id) << 20) | i};
          attempted[id].push_back(e);
          const Cycles t0 = SimPlatform::now();
          if (!pq->insert(e.prio, e.item)) {
            attempted[id].pop_back(); // refused: nothing could have applied
            if (alloc_plan) continue;
            insert_refused = true;
            return;
          }
          rec.record(OpRecord::insert_op(id, t0, SimPlatform::now(), e));
          ins[id].push_back(e);
        } else {
          const Cycles t0 = SimPlatform::now();
          auto e = pq->delete_min();
          rec.record(OpRecord::delete_op(id, t0, SimPlatform::now(), e));
          if (e) del[id].push_back(*e);
        }
      }
    });
  } else {
    // Batched mixed phase: each processor's ops_per_proc operations are
    // issued in insert_batch / delete_min_batch groups of up to spec.batch.
    // Each element is recorded as one operation spanning the whole batch's
    // [invoke, response] window — per pq.hpp a batch IS a set of concurrent
    // point operations, so the shared window is the element's real span.
    // Conservation and the quiescent phase checks are span-independent;
    // the linearizability checker sees batch elements as mutually
    // concurrent, which is exactly the semantics the interface promises.
    eng.run([&](ProcId id) {
      std::vector<Entry> buf(spec.batch);
      for (u32 i = 0; i < spec.ops_per_proc;) {
        SimPlatform::heartbeat(); // op boundary: feeds the fault watchdog
        SimPlatform::delay(SimPlatform::rnd(64));
        const u32 n = std::min(spec.batch, spec.ops_per_proc - i);
        if (SimPlatform::rnd(100) < spec.insert_percent) {
          for (u32 j = 0; j < n; ++j)
            buf[j] = Entry{static_cast<Prio>(SimPlatform::rnd(spec.npriorities)),
                           (static_cast<u64>(id) << 20) | (i + j)};
          for (u32 j = 0; j < n; ++j) attempted[id].push_back(buf[j]);
          const Cycles t0 = SimPlatform::now();
          const u32 a = pq->insert_batch(std::span<const Entry>(buf.data(), n));
          const Cycles t1 = SimPlatform::now();
          if (a != n && !alloc_plan) {
            insert_refused = true;
            return;
          }
          if (a == n) {
            for (u32 j = 0; j < n; ++j) {
              rec.record(OpRecord::insert_op(id, t0, t1, buf[j]));
              ins[id].push_back(buf[j]);
            }
          } // else: injected refusals — which elements landed is unknown;
            // the faulted-run no-fabrication check covers them via `attempted`
        } else {
          const Cycles t0 = SimPlatform::now();
          const u32 m = pq->delete_min_batch(std::span<Entry>(buf.data(), n));
          const Cycles t1 = SimPlatform::now();
          for (u32 j = 0; j < m; ++j) {
            rec.record(OpRecord::delete_op(id, t0, t1, buf[j]));
            del[id].push_back(buf[j]);
          }
          for (u32 j = m; j < n; ++j)
            rec.record(OpRecord::delete_op(id, t0, t1, std::nullopt));
        }
        i += n;
      }
    });
  }

  if (explorer != nullptr && explorer->deadlocked()) return deadlock_fail();
  if (insert_refused)
    return fail("capacity", "insert refused: bin/heap capacity exhausted (sizing bug)");

  // Quiescent drain; normally by processor 0, but under a fault plan by
  // the lowest processor the plan left able to run (a permanently-downed
  // processor never restarts, and a drain on a blocked one just parks).
  ProcId drainer = 0;
  if (spec.faulted()) {
    const auto& oc = eng.fault_report().outcomes;
    while (drainer < spec.nprocs && oc[drainer] != sim::ProcOutcome::kCompleted &&
           oc[drainer] != sim::ProcOutcome::kBlocked)
      ++drainer;
    if (drainer == spec.nprocs) drainer = 0; // everyone down: drain no-ops
  }
  std::vector<Entry> drained;
  eng.run([&](ProcId id) {
    if (id != drainer) return;
    for (;;) {
      SimPlatform::heartbeat();
      const Cycles t0 = SimPlatform::now();
      auto e = pq->delete_min();
      rec.record(OpRecord::delete_op(drainer, t0, SimPlatform::now(), e));
      if (!e) break;
      drained.push_back(*e);
    }
  });
  if (explorer != nullptr && explorer->deadlocked()) return deadlock_fail();

  if (spec.faulted()) {
    // Sweep every other processor's reclamation state onto the drainer:
    // downed processors can never clear their own hazards / epoch pin, and
    // without adoption the queue's domain destructor would assert on the
    // limbo their stale protections pin.
    for (ProcId p = 0; p < spec.nprocs; ++p)
      if (p != drainer) pq->adopt_orphans(p, drainer);
  }

  // Detector findings outrank the semantic checks: an undeclared-ordering
  // bug can make any of them fail downstream on native hardware.
  if (sim::RaceDetector* det = eng.race_detector()) {
    if (det->race_count() > 0) {
      std::ostringstream os;
      os << det->race_count() << " undeclared-ordering race(s); first:\n";
      for (const sim::RaceReport& r : det->races()) os << "    " << to_string(r) << "\n";
      return fail("race", os.str());
    }
    if (det->inversion_count() > 0) {
      std::ostringstream os;
      os << det->inversion_count() << " lock-order inversion(s):\n";
      for (const sim::LockOrderReport& r : det->lock_inversions())
        os << "    " << to_string(r) << "\n";
      return fail("lock-order", os.str());
    }
  }

  std::vector<Entry> inserted, deleted;
  for (const auto& v : ins) inserted.insert(inserted.end(), v.begin(), v.end());
  for (const auto& v : del) deleted.insert(deleted.end(), v.begin(), v.end());

  std::vector<Entry> out(deleted);
  out.insert(out.end(), drained.begin(), drained.end());

  if (spec.faulted()) {
    // A downed processor's in-flight op may legally half-apply (an insert
    // that committed before the crash surfaces later; a claimed-but-
    // unreported delete vanishes), so strict conservation is unverifiable.
    // What must still hold is no-fabrication: every entry that comes out
    // was attempted, and no entry comes out more often than it went in.
    std::map<std::pair<Prio, u64>, i64> budgeted;
    for (const auto& v : attempted)
      for (const Entry& e : v) ++budgeted[{e.prio, e.item}];
    for (const Entry& e : out) {
      if (--budgeted[{e.prio, e.item}] < 0) {
        std::ostringstream os;
        os << "fault run fabricated or duplicated entry (" << e.prio << "," << e.item
           << "): returned more often than it was ever inserted";
        return fail("fault-conservation", os.str());
      }
    }
    if (checks.drain_sorted) {
      const PhaseCheckResult dr = check_drain_sorted(drained);
      if (!dr.ok) return fail("drain-order", dr.diagnostic);
    }
    return std::nullopt; // rank/lin checks assume crash-free histories
  }

  if (!same_entries(inserted, out)) {
    std::ostringstream os;
    os << "conservation violated: inserted " << inserted.size()
       << " entries, got back " << out.size() << " (mixed-phase deletes "
       << deleted.size() << " + drained " << drained.size() << ")";
    return fail("conservation", os.str());
  }

  if (checks.quiescent_rank) {
    const PhaseCheckResult qr = check_quiescent_phase({}, inserted, deleted);
    if (!qr.ok) return fail("quiescent", qr.diagnostic);
  }
  if (checks.drain_sorted) {
    const PhaseCheckResult dr = check_drain_sorted(drained);
    if (!dr.ok) return fail("drain-order", dr.diagnostic);
  }

  if (checks.rank_error) {
    const RankErrorReport rr = compute_rank_error(rec.merged());
    // unmatched means a delete returned an entry no insert produced —
    // conservation in another coat, never legal on a crash-free run.
    if (rr.unmatched > 0) {
      std::ostringstream os;
      os << rr.unmatched << " deleted entr(ies) match no insert in the history";
      return fail("rank-error", os.str());
    }
    // Exactness holds wherever relaxation has no room to act: a sequential
    // run sampling every shard, or a single-priority key space (no entry
    // can be strictly smaller than another). See ScenarioChecks.
    const ShardConfig cfg{spec.shards, spec.sample_c, spec.shard_mode};
    const bool exact_cfg = cfg.effective_sample(cfg.effective_shards(spec.nprocs)) ==
                           cfg.effective_shards(spec.nprocs);
    if ((spec.npriorities == 1 || (exact_cfg && spec.nprocs == 1)) && !rr.exact()) {
      std::ostringstream os;
      os << "rank error must be 0 here (npriorities=" << spec.npriorities
         << " nprocs=" << spec.nprocs << "): mean=" << rr.mean << " p99=" << rr.p99
         << " max=" << rr.max << " nonzero=" << rr.nonzero << "/" << rr.deletes;
      return fail("rank-error", os.str());
    }
  }

  if (checks.linearizability) {
    const History h = rec.merged();
    if (h.size() <= kMaxLinOps && !check_linearizable(h).linearizable) {
      std::ostringstream os;
      os << "no valid linearization of the " << h.size() << "-op history exists";
      return fail("linearizability", os.str());
    }
  }
  return std::nullopt;
}

} // namespace

std::optional<StressFailure> run_scenario_with(const QueueFactory& make,
                                               const StressSpec& spec,
                                               const ScenarioChecks& checks) {
  if (spec.policy == sim::SchedulePolicy::kExhaustive)
    return run_exhaustive_with(make, spec, checks).failure;
  return run_one_execution(make, spec, checks, nullptr);
}

ExhaustiveResult run_exhaustive_with(const QueueFactory& make, const StressSpec& spec,
                                     const ScenarioChecks& checks) {
  if (spec.faulted())
    throw std::invalid_argument(
        "exhaustive exploration is incompatible with fault plans: a fault's "
        "access-ordinal trigger is not stable across schedules");
  sim::ExploreParams ep;
  ep.preempt_bound = spec.preempt_bound;
  ep.max_execs = spec.max_execs;
  sim::Explorer ex(spec.nprocs, ep);
  ExhaustiveResult res;
  while (!ex.finished()) {
    ex.begin_execution();
    auto f = run_one_execution(make, spec, checks, &ex);
    const u64 index = ex.execution_index();
    ex.end_execution();
    if (f) {
      // Stamp which execution failed so the counterexample line documents
      // its position in the (deterministic) exploration order.
      f->spec.trace = index;
      res.failing_exec = index;
      res.failure = std::move(f);
      break;
    }
  }
  res.stats = ex.stats();
  return res;
}

ExhaustiveResult run_exhaustive(const StressSpec& spec) {
  return run_exhaustive_with(registry_factory(spec), spec, checks_for(spec));
}

std::optional<StressFailure> run_scenario(const StressSpec& spec) {
  return run_scenario_with(registry_factory(spec), spec, checks_for(spec));
}

StressFailure minimize_with(const QueueFactory& make, const StressFailure& f,
                            const ScenarioChecks& checks) {
  StressFailure best = f;
  for (bool improved = true; improved;) {
    improved = false;
    std::vector<StressSpec> candidates;
    const StressSpec& s = best.spec;
    if (s.nprocs > 2) {
      StressSpec half = s;
      half.nprocs = std::max(2u, s.nprocs / 2);
      candidates.push_back(half);
      StressSpec dec = s;
      dec.nprocs = s.nprocs - 1;
      candidates.push_back(dec);
    }
    if (s.ops_per_proc > 1) {
      StressSpec half = s;
      half.ops_per_proc = std::max(1u, s.ops_per_proc / 2);
      candidates.push_back(half);
      StressSpec dec = s;
      dec.ops_per_proc = s.ops_per_proc - 1;
      candidates.push_back(dec);
    }
    for (const StressSpec& c : candidates) {
      if (auto r = run_scenario_with(make, c, checks)) {
        best = *r;
        improved = true;
        break;
      }
    }
  }
  return best;
}

StressFailure minimize(const StressFailure& f) {
  return minimize_with(registry_factory(f.spec), f, checks_for(f.spec));
}

std::vector<StressFailure> run_sweep(const StressOptions& opt, std::ostream* progress) {
  const std::vector<Algorithm>& algos =
      opt.algorithms.empty() ? all_algorithms() : opt.algorithms;
  std::vector<sim::SchedulePolicy> policies = opt.policies;
  if (policies.empty()) {
    policies = {sim::SchedulePolicy::kSmallestClock, sim::SchedulePolicy::kRandomPreempt,
                sim::SchedulePolicy::kDelayLeader};
  }

  std::vector<StressFailure> failures;
  auto sweep_one = [&](StressSpec spec) {
    if (failures.size() >= opt.max_failures) return;
    if (opt.on_scenario) opt.on_scenario(spec);
    if (spec.policy == sim::SchedulePolicy::kExhaustive) {
      // Exhaustive scenarios go through the exploring driver directly so
      // coverage is reported honestly even when the exploration is clean.
      ExhaustiveResult r = run_exhaustive_with(registry_factory(spec), spec, checks_for(spec));
      if (progress)
        *progress << "  " << to_string(spec.algo) << " seed " << spec.seed
                  << " exhaustive: " << sim::to_string(r.stats) << "\n";
      if (r.failure) {
        failures.push_back(opt.minimize_failures ? minimize(*r.failure) : *r.failure);
        if (progress) *progress << format_failure(failures.back());
      }
      return;
    }
    if (auto r = run_scenario(spec)) {
      failures.push_back(opt.minimize_failures ? minimize(*r) : *r);
      if (progress) *progress << format_failure(failures.back());
    }
  };

  for (Algorithm algo : algos) {
    for (sim::SchedulePolicy policy : policies) {
      StressSpec spec;
      spec.algo = algo;
      spec.policy = policy;
      spec.nprocs = opt.nprocs;
      spec.ops_per_proc = opt.ops_per_proc;
      spec.npriorities = opt.npriorities;
      spec.insert_percent = opt.insert_percent;
      spec.batch = opt.batch;
      spec.elim = opt.elim;
      spec.reclaim = opt.reclaim;
      spec.funnel = opt.funnel;
      spec.shards = opt.shards;
      spec.sample_c = opt.sample_c;
      spec.shard_mode = opt.shard_mode;
      spec.race_detect = opt.race_detect;
      spec.faults = opt.faults;
      spec.watchdog = opt.watchdog;
      spec.preempt_bound = opt.preempt_bound;
      spec.max_execs = opt.max_execs;
      // The baseline policy stays jitter-free: it is the paper's
      // measurement schedule, kept as the known-good reference point. The
      // exhaustive policy owns the schedule outright, so jitter is moot.
      spec.access_jitter = policy == sim::SchedulePolicy::kSmallestClock ||
                                   policy == sim::SchedulePolicy::kExhaustive
                               ? 0
                               : opt.access_jitter;
      // Under exhaustive exploration the strict-guarantee algorithms get
      // the Wing-Gong checker inline (the sub-sweep below is redundant
      // when every schedule is visited anyway).
      if (policy == sim::SchedulePolicy::kExhaustive &&
          (algo == Algorithm::kSingleLock || algo == Algorithm::kLockfreeSkipList))
        spec.check_lin = true;
      const std::size_t before = failures.size();
      for (u64 seed = opt.seed_base; seed < opt.seed_base + opt.seeds; ++seed) {
        spec.seed = seed;
        sweep_one(spec);
        if (failures.size() >= opt.max_failures) break;
      }
      // SingleLock holds one lock across whole operations (the paper's one
      // unconditional guarantee) and the lock-free skiplist's claiming CAS
      // is a per-op linearization point: both get the exhaustive checker on
      // small histories.
      if ((algo == Algorithm::kSingleLock || algo == Algorithm::kLockfreeSkipList) &&
          policy != sim::SchedulePolicy::kExhaustive &&
          failures.size() < opt.max_failures) {
        StressSpec lin = spec;
        lin.nprocs = 3;
        lin.ops_per_proc = 4;
        lin.check_lin = true;
        for (u64 seed = opt.seed_base; seed < opt.seed_base + opt.seeds; ++seed) {
          lin.seed = seed;
          sweep_one(lin);
          if (failures.size() >= opt.max_failures) break;
        }
      }
      if (progress) {
        *progress << to_string(algo) << " x " << to_string(policy) << ": seeds "
                  << opt.seed_base << ".." << (opt.seed_base + opt.seeds - 1) << " "
                  << (failures.size() == before ? "ok" : "FAILED") << "\n";
      }
      if (failures.size() >= opt.max_failures) return failures;
    }
  }
  return failures;
}

} // namespace fpq::verify
