#include "verify/linearizability.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/assert.hpp"
#include "verify/model_pq.hpp"

namespace fpq {

History HistoryRecorder::merged() const {
  History out;
  for (const auto& v : per_proc_) out.insert(out.end(), v.begin(), v.end());
  std::stable_sort(out.begin(), out.end(), [](const OpRecord& a, const OpRecord& b) {
    if (a.invoked != b.invoked) return a.invoked < b.invoked;
    return a.proc < b.proc;
  });
  return out;
}

namespace {

class Searcher {
 public:
  explicit Searcher(const History& h) : h_(h) {
    FPQ_ASSERT_MSG(h.size() <= 64, "linearizability checker limited to 64 ops");
  }

  bool search(u64 done, ModelPq& model, std::vector<u32>& order) {
    if (order.size() == h_.size()) return true;
    if (!visited_.insert(done).second) return false;

    // Real-time constraint: the next linearized op must begin before every
    // still-unlinearized op ends.
    Cycles min_resp = ~0ull;
    for (u32 i = 0; i < h_.size(); ++i)
      if (!(done & (1ull << i))) min_resp = std::min(min_resp, h_[i].responded);

    for (u32 i = 0; i < h_.size(); ++i) {
      if (done & (1ull << i)) continue;
      const OpRecord& op = h_[i];
      if (op.invoked > min_resp) continue;
      if (op.kind == OpRecord::Kind::kInsert) {
        model.insert(op.entry.prio, op.entry.item);
        order.push_back(i);
        if (search(done | (1ull << i), model, order)) return true;
        order.pop_back();
        FPQ_ASSERT(model.remove(op.entry.prio, op.entry.item));
      } else if (!op.result_present) {
        if (!model.empty()) continue;
        order.push_back(i);
        if (search(done | (1ull << i), model, order)) return true;
        order.pop_back();
      } else {
        const auto minp = model.min_priority();
        if (!minp || *minp != op.entry.prio) continue;
        if (!model.remove(op.entry.prio, op.entry.item)) continue;
        order.push_back(i);
        if (search(done | (1ull << i), model, order)) return true;
        order.pop_back();
        model.insert(op.entry.prio, op.entry.item);
      }
    }
    return false;
  }

 private:
  const History& h_;
  std::unordered_set<u64> visited_;
};

} // namespace

LinearizabilityResult check_linearizable(const History& h) {
  LinearizabilityResult r;
  Searcher s(h);
  ModelPq model;
  r.linearizable = s.search(0, model, r.order);
  return r;
}

} // namespace fpq
