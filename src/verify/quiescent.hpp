// Quiescent-consistency checking (paper Appendix B, after Aspnes, Herlihy &
// Shavit). Tests drive the queues in *phases* separated by quiescent points
// (no operation in flight). For each phase, with
//
//   E = queue content at the phase's opening quiescent point,
//   I = entries inserted during the phase,
//   D = entries returned by the phase's k successful delete-mins,
//
// Appendix B requires D ⊆ Min_k(E) ∪ Min_k(E ∪ I). We verify a sound
// rank-based consequence: the i-th smallest returned priority is at most
// the (i+|I|)-th smallest priority of E ∪ I (the |I| slack covers deletes
// legally reordered between overlapping inserts; with |I| = 0 this is the
// exact Min_k requirement) — plus exact conservation: D's items are a
// sub-multiset of E ∪ I.
#pragma once

#include <string>
#include <vector>

#include "common/entry.hpp"
#include "common/types.hpp"

namespace fpq {

struct PhaseCheckResult {
  bool ok = true;
  std::string diagnostic; // first violation, empty when ok
};

/// `initial` = E, `inserted` = I, `deleted` = D (successful deletions only).
PhaseCheckResult check_quiescent_phase(const std::vector<Entry>& initial,
                                       const std::vector<Entry>& inserted,
                                       const std::vector<Entry>& deleted);

/// For a solo drain at quiescence: priorities must come out nondecreasing.
PhaseCheckResult check_drain_sorted(const std::vector<Entry>& drained);

/// Multiset equality of (prio, item) pairs — conservation at quiescence.
bool same_entries(std::vector<Entry> a, std::vector<Entry> b);

} // namespace fpq
