#include "verify/quiescent.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace fpq {

namespace {
bool entry_less(const Entry& a, const Entry& b) {
  if (a.prio != b.prio) return a.prio < b.prio;
  return a.item < b.item;
}
} // namespace

PhaseCheckResult check_quiescent_phase(const std::vector<Entry>& initial,
                                       const std::vector<Entry>& inserted,
                                       const std::vector<Entry>& deleted) {
  PhaseCheckResult r;

  // Conservation: every deleted entry must exist (multiset) in E ∪ I.
  std::map<std::pair<Prio, Item>, i64> avail;
  for (const Entry& e : initial) ++avail[{e.prio, e.item}];
  for (const Entry& e : inserted) ++avail[{e.prio, e.item}];
  for (const Entry& e : deleted) {
    if (--avail[{e.prio, e.item}] < 0) {
      std::ostringstream os;
      os << "deleted entry (prio=" << e.prio << ", item=" << e.item
         << ") not available in E ∪ I (lost/duplicated item)";
      r.ok = false;
      r.diagnostic = os.str();
      return r;
    }
  }

  // Priority bound. Appendix B says D ⊆ Min_k(E) ∪ Min_k(E ∪ I); read
  // literally that over-constrains executions where an insert pair is
  // in flight (a delete may legally be reordered after insert(high) but
  // before insert(low)). The sound version gives the rank bound |I| slack:
  // the i-th smallest returned priority is at most the (i+|I|)-th smallest
  // available priority. With no overlapping inserts this is exactly the
  // Min_k requirement.
  const u64 k = deleted.size();
  if (k == 0) return r;
  std::vector<Prio> pool;
  pool.reserve(initial.size() + inserted.size());
  for (const Entry& e : initial) pool.push_back(e.prio);
  for (const Entry& e : inserted) pool.push_back(e.prio);
  std::sort(pool.begin(), pool.end());
  if (k > pool.size()) {
    r.ok = false;
    r.diagnostic = "more successful deletions than available entries";
    return r;
  }
  std::vector<Prio> got;
  got.reserve(k);
  for (const Entry& e : deleted) got.push_back(e.prio);
  std::sort(got.begin(), got.end());
  const u64 slack = inserted.size();
  for (u64 i = 0; i < k; ++i) {
    const u64 j = i + slack;
    if (j >= pool.size()) break; // no constraint once slack exhausts the pool
    if (got[i] > pool[j]) {
      std::ostringstream os;
      os << "rank-" << i << " deleted priority " << got[i]
         << " exceeds the rank-" << j << " available priority " << pool[j]
         << " (slack=" << slack << ")";
      r.ok = false;
      r.diagnostic = os.str();
      return r;
    }
  }
  return r;
}

PhaseCheckResult check_drain_sorted(const std::vector<Entry>& drained) {
  PhaseCheckResult r;
  for (std::size_t i = 1; i < drained.size(); ++i) {
    if (drained[i].prio < drained[i - 1].prio) {
      std::ostringstream os;
      os << "drain order violation at position " << i << ": priority "
         << drained[i].prio << " after " << drained[i - 1].prio;
      r.ok = false;
      r.diagnostic = os.str();
      return r;
    }
  }
  return r;
}

bool same_entries(std::vector<Entry> a, std::vector<Entry> b) {
  if (a.size() != b.size()) return false;
  std::sort(a.begin(), a.end(), entry_less);
  std::sort(b.begin(), b.end(), entry_less);
  return a == b;
}

} // namespace fpq
