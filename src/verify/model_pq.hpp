// Sequential reference priority queue used as the oracle by the checkers
// and the conformance tests. Within one priority, items come out LIFO to
// mirror the array-bin / stack behaviour of the implementations (Appendix B
// leaves the equal-priority order unspecified, so any order is legal; LIFO
// makes exact-match tests deterministic).
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "common/entry.hpp"
#include "common/types.hpp"

namespace fpq {

class ModelPq {
 public:
  void insert(Prio prio, Item item) { bins_[prio].push_back(item); }

  std::optional<Entry> delete_min() {
    auto it = bins_.begin();
    if (it == bins_.end()) return std::nullopt;
    Entry e{it->first, it->second.back()};
    it->second.pop_back();
    if (it->second.empty()) bins_.erase(it);
    return e;
  }

  bool empty() const { return bins_.empty(); }

  u64 size() const {
    u64 n = 0;
    for (const auto& [p, v] : bins_) n += v.size();
    return n;
  }

  std::optional<Prio> min_priority() const {
    if (bins_.empty()) return std::nullopt;
    return bins_.begin()->first;
  }

  /// True if some item of priority `prio` with payload `item` is present.
  bool contains(Prio prio, Item item) const {
    auto it = bins_.find(prio);
    if (it == bins_.end()) return false;
    for (Item x : it->second)
      if (x == item) return true;
    return false;
  }

  /// Removes a specific (priority, item) pair; returns false if absent.
  bool remove(Prio prio, Item item) {
    auto it = bins_.find(prio);
    if (it == bins_.end()) return false;
    auto& v = it->second;
    for (auto vi = v.begin(); vi != v.end(); ++vi) {
      if (*vi == item) {
        v.erase(vi);
        if (v.empty()) bins_.erase(it);
        return true;
      }
    }
    return false;
  }

  /// All entries, ascending by priority (ties in insertion order).
  std::vector<Entry> entries() const {
    std::vector<Entry> out;
    for (const auto& [p, v] : bins_)
      for (Item x : v) out.push_back({p, x});
    return out;
  }

 private:
  std::map<Prio, std::vector<Item>> bins_;
};

} // namespace fpq
