// Wing-Gong style linearizability checker for priority-queue histories
// (paper Appendix B defines linearizability after Herlihy & Wing).
//
// Exhaustive search with memoization on the set of linearized operations;
// practical for the small recorded histories the tests produce (<= 24 ops).
// An operation may be linearized next only if its invocation precedes every
// unlinearized operation's response (real-time order preservation); a
// delete-min is legal iff its result has the minimal priority currently in
// the model (or the model is empty for a nullopt result).
#pragma once

#include "verify/history.hpp"

namespace fpq {

struct LinearizabilityResult {
  bool linearizable = false;
  /// Indices into the input history in linearization order (valid only when
  /// linearizable).
  std::vector<u32> order;
};

/// Checks a complete history (every operation responded).
LinearizabilityResult check_linearizable(const History& h);

} // namespace fpq
