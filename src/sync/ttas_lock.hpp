// Test-and-test-and-set lock with randomized exponential backoff, built on
// register-to-memory-swap (the paper's baseline hardware primitive). Used
// where critical sections are a handful of accesses and the extra fairness
// of MCS is not worth its handoff cost (e.g. the central stack behind a
// combining funnel, skip-list level locks).
#pragma once

#include "common/types.hpp"
#include "platform/platform.hpp"
#include "sync/backoff.hpp"

namespace fpq {

template <Platform P>
class TtasLock {
 public:
  TtasLock() = default;

  // Ordering contract: the winning exchange is the acquire edge (acq_rel
  // pairs with release()'s store); the test spins are mere hints and read
  // relaxed/acquire without synchronizing anything themselves.
  void acquire() {
    Backoff<P> backoff;
    for (;;) {
      P::spin_until(flag_, [](u32 v) { return v == 0; });
      if (flag_.exchange(1, MemOrder::kAcqRel) == 0) {
        P::note_lock_acquire(this, /*trylock=*/false);
        return;
      }
      backoff.spin();
    }
  }

  void release() {
    P::note_lock_release(this);
    flag_.store_release(0);
  }

  bool try_acquire() {
    if (flag_.load_relaxed() != 0) return false;
    if (flag_.exchange(1, MemOrder::kAcqRel) != 0) return false;
    P::note_lock_acquire(this, /*trylock=*/true);
    return true;
  }

 private:
  typename P::template Shared<u32> flag_{0};
};

template <Platform P>
class TtasGuard {
 public:
  explicit TtasGuard(TtasLock<P>& l) : lock_(l) { lock_.acquire(); }
  ~TtasGuard() { lock_.release(); }
  TtasGuard(const TtasGuard&) = delete;
  TtasGuard& operator=(const TtasGuard&) = delete;

 private:
  TtasLock<P>& lock_;
};

} // namespace fpq
