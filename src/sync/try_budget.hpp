// Budgeting for bounded-wait ("try") operations: a TryBudget caps how many
// retry points an operation may pass (attempts) and/or how long it may run
// (a P::now() deadline), and a TryClock meters one operation against it,
// escalating through randomized-exponential backoff between charged
// retries. Lives in sync/ because the funnel and container layers consume
// it below the PQ API (pq/pq.hpp re-exports it to PQ callers).
#pragma once

#include "common/types.hpp"
#include "platform/platform.hpp"
#include "sync/backoff.hpp"

namespace fpq {

/// Budget for a bounded-wait operation. `attempts` bounds how many retry
/// points (contended CAS retries, lock try-acquisitions, full-operation
/// restarts) the operation may pass; `spend` is a deadline in P::now()
/// units (simulated cycles / native nanoseconds), checked at the same
/// retry points. 0 disables the respective bound; both at 0 means the
/// operation degenerates to its blocking form.
struct TryBudget {
  u64 attempts = 128;
  Cycles spend = 0;
};

/// Per-call budget meter: charges retry points against a TryBudget and
/// interleaves randomized-exponential backoff (sync/backoff.hpp) between
/// charged retries, so a timing-out operation escalates politely instead
/// of hammering the contended word until the deadline.
template <Platform P>
class TryClock {
 public:
  explicit TryClock(const TryBudget& b)
      : budget_(b), deadline_(b.spend != 0 ? P::now() + b.spend : 0) {}

  /// Charges one retry point; false once the budget is exhausted. The
  /// first `attempts` retries pass; the deadline is checked each time.
  bool tick() {
    if (budget_.attempts != 0 && ++used_ > budget_.attempts) return false;
    if (deadline_ != 0 && P::now() >= deadline_) return false;
    return true;
  }

  /// tick(), then one backoff window when the budget still has room.
  bool tick_backoff() {
    if (!tick()) return false;
    backoff_.spin();
    return true;
  }

 private:
  TryBudget budget_;
  Cycles deadline_;
  u64 used_ = 0;
  Backoff<P> backoff_;
};

} // namespace fpq
