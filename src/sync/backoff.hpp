// Randomized truncated exponential backoff for retry loops (CAS retry,
// TTAS acquisition). Purely processor-local. On the simulator the wait is
// modeled local work (P::delay — charged cycles, no memory traffic); on
// the native backend it is a cpu-relax loop (P::relax), so a backing-off
// processor holds no fences and, unlike P::pause, never yields the OS
// thread mid-backoff — the window doubling is the politeness mechanism.
#pragma once

#include "common/types.hpp"
#include "platform/platform.hpp"

namespace fpq {

template <Platform P>
class Backoff {
 public:
  explicit Backoff(Cycles base = 8, Cycles cap = 1024) : base_(base), cap_(cap), cur_(base) {}

  /// Waits a random slice of the current window, then doubles the window.
  void spin() {
    const Cycles n = 1 + P::rnd(cur_);
    if constexpr (P::kSimulated) {
      P::delay(n);
    } else {
      for (Cycles i = 0; i < n; ++i) P::relax();
    }
    cur_ = cur_ * 2 <= cap_ ? cur_ * 2 : cap_;
  }

  void reset() { cur_ = base_; }

 private:
  Cycles base_;
  Cycles cap_;
  Cycles cur_;
};

} // namespace fpq
