// Randomized truncated exponential backoff for retry loops (CAS retry,
// TTAS acquisition). Purely processor-local: delays through P::delay.
#pragma once

#include "common/types.hpp"
#include "platform/platform.hpp"

namespace fpq {

template <Platform P>
class Backoff {
 public:
  explicit Backoff(Cycles base = 8, Cycles cap = 1024) : base_(base), cap_(cap), cur_(base) {}

  /// Waits a random slice of the current window, then doubles the window.
  void spin() {
    P::delay(1 + P::rnd(cur_));
    cur_ = cur_ * 2 <= cap_ ? cur_ * 2 : cap_;
  }

  void reset() { cur_ = base_; }

 private:
  Cycles base_;
  Cycles cap_;
  Cycles cur_;
};

} // namespace fpq
