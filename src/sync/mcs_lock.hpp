// The MCS list-based queue lock (Mellor-Crummey & Scott, TOCS '91) — the
// lock the paper uses for all its lock-based structures. Each acquiring
// processor appends its queue node with one register-to-memory-swap and then
// spins on a flag in its *own* node, so waiting generates no interconnect
// traffic until the predecessor hands the lock over. Handoff is FIFO.
//
// Each lock owns one queue node per processor: a processor never waits on
// the same lock twice concurrently, so the slot can be reused (this is the
// standard qnode allocation of the original paper).
//
// Liveness audit (fault battery, DESIGN.md §12): every wait in this file —
// the acquire spin on the local locked flag and release()'s wait for a
// half-enqueued successor's link — goes through P::spin_until, which parks
// the fiber on the simulator and relax-then-escalates natively. There are
// no naked spins here: under a stall/crash plan a blocked acquirer shows
// up as a parked (kBlocked) or watchdog-wedged processor, never as a
// scheduler-monopolizing hot loop. The lock itself is, of course,
// blocking — a dead holder strands the queue; that is the property the
// liveness battery classifies, and McsLock::try_acquire is the primitive
// the bounded-wait (try_*) degraded paths build on.
#pragma once

#include <memory>
#include <vector>

#include "common/assert.hpp"
#include "common/padded.hpp"
#include "common/types.hpp"
#include "platform/platform.hpp"

namespace fpq {

template <Platform P>
class McsLock {
 public:
  /// `maxprocs` is the highest processor count this lock may see.
  explicit McsLock(u32 maxprocs) : nodes_(maxprocs) {}

  // Ordering contract: the tail exchange is the lock-acquisition edge
  // (acquire pairs with a releaser's release on tail or on the locked
  // flag); the locked-flag handoff is release -> acquire-spin; everything
  // inside a critical section may then be relaxed.
  void acquire() {
    QNode& me = node(P::self());
    me.next.store_relaxed(nullptr);
    QNode* pred = tail_.exchange(&me, MemOrder::kAcqRel);
    if (pred != nullptr) {
      // locked=1 is published by the release store of our link; the
      // releaser's acquire load of next therefore sees it before storing 0.
      me.locked.store_relaxed(1);
      pred->next.store_release(&me);
      P::spin_until(me.locked, [](u32 v) { return v == 0; }); // acquire spin
    }
    P::note_lock_acquire(this, /*trylock=*/false);
  }

  void release() {
    P::note_lock_release(this);
    QNode& me = node(P::self());
    QNode* succ = me.next.load_acquire();
    if (succ == nullptr) {
      QNode* expected = &me;
      // Release so the next tail exchanger acquires our critical section.
      if (tail_.compare_exchange(expected, nullptr, MemOrder::kRelease, MemOrder::kRelaxed))
        return; // no one waiting
      // A successor is in the middle of enqueueing; wait for its link.
      succ = P::spin_until(me.next, [](QNode* n) { return n != nullptr; });
    }
    succ->locked.store_release(0); // hand off: publishes the critical section
  }

  /// Single attempt: succeeds only when the lock is free (used by the
  /// SkipList delete path, paper Fig. 12's `acquired`).
  bool try_acquire() {
    QNode& me = node(P::self());
    me.next.store_relaxed(nullptr);
    QNode* expected = nullptr;
    if (!tail_.compare_exchange(expected, &me, MemOrder::kAcqRel, MemOrder::kRelaxed))
      return false;
    P::note_lock_acquire(this, /*trylock=*/true);
    return true;
  }

 private:
  struct QNode {
    typename P::template Shared<QNode*> next{nullptr};
    typename P::template Shared<u32> locked{0};
  };

  QNode& node(ProcId p) {
    FPQ_ASSERT_MSG(p < nodes_.size(), "processor id exceeds lock's maxprocs");
    return *nodes_[p];
  }

  typename P::template Shared<QNode*> tail_{nullptr};
  std::vector<Padded<QNode>> nodes_;
};

/// RAII guard (Core Guidelines CP.20).
template <Platform P>
class McsGuard {
 public:
  explicit McsGuard(McsLock<P>& l) : lock_(l) { lock_.acquire(); }
  ~McsGuard() { lock_.release(); }
  McsGuard(const McsGuard&) = delete;
  McsGuard& operator=(const McsGuard&) = delete;

 private:
  McsLock<P>& lock_;
};

} // namespace fpq
