#include "core/registry.hpp"

#include <stdexcept>
#include <string>

namespace fpq {

std::string_view to_string(Algorithm a) {
  switch (a) {
    case Algorithm::kSingleLock: return "SingleLock";
    case Algorithm::kHuntEtAl: return "HuntEtAl";
    case Algorithm::kSkipList: return "SkipList";
    case Algorithm::kSimpleLinear: return "SimpleLinear";
    case Algorithm::kSimpleTree: return "SimpleTree";
    case Algorithm::kLinearFunnels: return "LinearFunnels";
    case Algorithm::kFunnelTree: return "FunnelTree";
    case Algorithm::kLockfreeSkipList: return "LockfreeSkiplist";
    case Algorithm::kSharded: return "Sharded";
  }
  return "?";
}

Algorithm algorithm_from_string(std::string_view name) {
  for (Algorithm a : all_algorithms()) {
    if (to_string(a) == name) return a;
  }
  throw std::invalid_argument("unknown algorithm: " + std::string(name));
}

const std::vector<Algorithm>& all_algorithms() {
  static const std::vector<Algorithm> all = {
      Algorithm::kSingleLock,   Algorithm::kHuntEtAl,         Algorithm::kSkipList,
      Algorithm::kSimpleLinear, Algorithm::kSimpleTree,       Algorithm::kLinearFunnels,
      Algorithm::kFunnelTree,   Algorithm::kLockfreeSkipList, Algorithm::kSharded,
  };
  return all;
}

bool has_native_batch(Algorithm a) {
  return a == Algorithm::kLinearFunnels || a == Algorithm::kFunnelTree;
}

std::string_view to_string(ProgressGuarantee g) {
  switch (g) {
    case ProgressGuarantee::kBlocking: return "blocking";
    case ProgressGuarantee::kLockFree: return "lock-free";
  }
  return "?";
}

ProgressGuarantee progress_guarantee(Algorithm a) {
  // Everything the paper evaluates is lock-based (MCS levels, bin locks,
  // combining funnels that hand results through captured partners); only
  // the Linden/Jonsson-style skiplist extension is lock-free. The sharded
  // composite is blocking despite its lock-free backends: a client whose
  // request was claimed by a combiner that then dies waits forever
  // (sharded_pq.hpp's delegation protocol).
  return a == Algorithm::kLockfreeSkipList ? ProgressGuarantee::kLockFree
                                           : ProgressGuarantee::kBlocking;
}

bool has_native_try(Algorithm a) {
  return a == Algorithm::kLinearFunnels || a == Algorithm::kFunnelTree ||
         a == Algorithm::kLockfreeSkipList;
}

const std::vector<Algorithm>& scalable_algorithms() {
  static const std::vector<Algorithm> four = {
      Algorithm::kSimpleLinear,
      Algorithm::kSimpleTree,
      Algorithm::kLinearFunnels,
      Algorithm::kFunnelTree,
  };
  return four;
}

} // namespace fpq
