// funnelpq — scalable bounded-range concurrent priority queues.
//
// Umbrella header: include this to get the whole public API. See README.md
// for a tour and DESIGN.md for the architecture.
//
//   PqParams params{.npriorities = 16, .maxprocs = 8};
//   auto pq = fpq::make_priority_queue<fpq::NativePlatform>(
//       fpq::Algorithm::kFunnelTree, params);
//   fpq::NativePlatform::run(8, [&](fpq::ProcId) {
//     pq->insert(3, 42);
//     auto e = pq->delete_min();
//   });
#pragma once

#include "common/entry.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "core/registry.hpp"
#include "platform/native.hpp"
#include "platform/platform.hpp"
#include "platform/sim.hpp"
#include "pq/pq.hpp"
