// Algorithm registry: the seven queue algorithms the paper evaluates, the
// Linden/Jonsson-style lock-free skiplist extension, and the sharded
// relaxed composite on top of it, plus a name table and a type-erased
// factory so benchmarks and examples can be written once and swept over
// algorithms and platforms.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "pq/funnel_tree_pq.hpp"
#include "pq/hunt_pq.hpp"
#include "pq/linear_funnels_pq.hpp"
#include "pq/lockfree_skiplist_pq.hpp"
#include "pq/pq.hpp"
#include "pq/sharded_pq.hpp"
#include "pq/simple_linear_pq.hpp"
#include "pq/simple_tree_pq.hpp"
#include "pq/single_lock_pq.hpp"
#include "pq/skiplist_pq.hpp"

namespace fpq {

enum class Algorithm {
  kSingleLock,
  kHuntEtAl,
  kSkipList,
  kSimpleLinear,
  kSimpleTree,
  kLinearFunnels,
  kFunnelTree,
  kLockfreeSkipList,
  kSharded,
};

/// Paper-faithful display names.
std::string_view to_string(Algorithm a);

/// Parses a display name (case-sensitive); throws std::invalid_argument.
Algorithm algorithm_from_string(std::string_view name);

/// All nine: the paper's seven in presentation order, then the lock-free
/// skiplist extension, then the sharded relaxed composite built on it.
const std::vector<Algorithm>& all_algorithms();

/// The four algorithms the paper carries into its high-concurrency
/// experiments (Figs. 7-9).
const std::vector<Algorithm>& scalable_algorithms();

/// True for the queues whose insert_batch/delete_min_batch aggregate
/// natively (one structure traversal per batch) rather than falling back
/// to the per-entry loop in PqAdapter.
bool has_native_batch(Algorithm a);

/// Declared progress guarantee of each algorithm — what the liveness
/// battery (verify/liveness.hpp) verifies empirically under crash plans:
/// a kLockFree queue keeps completing operations with a dead processor
/// inside it; a kBlocking queue is allowed (expected) to wedge behind one.
enum class ProgressGuarantee : u8 {
  kBlocking,
  kLockFree,
};

std::string_view to_string(ProgressGuarantee g);

ProgressGuarantee progress_guarantee(Algorithm a);

/// True for the queues with native try_insert/try_delete_min — the budget
/// is honored *inside* an operation (bounded wait even behind a stalled
/// lock holder), not just between PqAdapter fallback attempts.
bool has_native_try(Algorithm a);

template <Platform P>
std::unique_ptr<IPriorityQueue<P>> make_priority_queue(Algorithm a,
                                                       const PqParams& params,
                                                       const FunnelOptions& opts = {}) {
  switch (a) {
    case Algorithm::kSingleLock:
      return std::make_unique<PqAdapter<P, SingleLockPq<P>>>(params);
    case Algorithm::kHuntEtAl:
      return std::make_unique<PqAdapter<P, HuntPq<P>>>(params);
    case Algorithm::kSkipList:
      return std::make_unique<PqAdapter<P, SkipListPq<P>>>(params);
    case Algorithm::kSimpleLinear:
      return std::make_unique<PqAdapter<P, SimpleLinearPq<P>>>(params);
    case Algorithm::kSimpleTree:
      return std::make_unique<PqAdapter<P, SimpleTreePq<P>>>(params);
    case Algorithm::kLinearFunnels:
      return std::make_unique<PqAdapter<P, LinearFunnelsPq<P>>>(params, opts);
    case Algorithm::kFunnelTree:
      return std::make_unique<PqAdapter<P, FunnelTreePq<P>>>(params, opts);
    case Algorithm::kLockfreeSkipList:
      return std::make_unique<PqAdapter<P, LockfreeSkipListPq<P>>>(params);
    case Algorithm::kSharded: {
      // Composite queue over per-shard LockfreeSkiplist backends (dynamic
      // allocation, so reinstate's no-drop retry contract holds — see
      // sharded_pq.hpp's backend-requirement note).
      typename ShardedPq<P>::BackendFactory backend = [](const PqParams& bp) {
        return std::unique_ptr<IPriorityQueue<P>>(
            std::make_unique<PqAdapter<P, LockfreeSkipListPq<P>>>(bp));
      };
      return std::make_unique<PqAdapter<P, ShardedPq<P>>>(params, backend);
    }
  }
  FPQ_ASSERT_MSG(false, "unknown algorithm");
  return nullptr;
}

} // namespace fpq
