// The paper's "bin" (Fig. 1): an unordered pool of items with insert,
// remove-arbitrary and a one-read emptiness test, guarded by an MCS lock.
// This is the building block of SimpleLinear / SimpleTree / SkipList; the
// funnel algorithms replace it with the combining-funnel stack.
#pragma once

#include <optional>
#include <vector>

#include "common/assert.hpp"
#include "common/types.hpp"
#include "platform/platform.hpp"
#include "sync/mcs_lock.hpp"

namespace fpq {

template <Platform P>
class LockedBin {
 public:
  /// `capacity` bounds the number of simultaneously stored items; exceeding
  /// it is reported to the caller (the paper's code silently drops, which
  /// we refuse to reproduce).
  LockedBin(u32 maxprocs, u32 capacity) : lock_(maxprocs), elems_(capacity) {
    FPQ_ASSERT(capacity > 0);
  }

  // Ordering contract: size_ and elems_ are only written inside the MCS
  // critical section, whose acquire/release edges order them — the
  // accesses themselves are relaxed. The lock-free empty() probe reads
  // acquire so a true "non-empty" answer is backed by a visible item.

  /// bin-insert. Returns false when the bin is full.
  bool insert(Item e) {
    McsGuard<P> g(lock_);
    const u64 n = size_.load_relaxed();
    if (n >= elems_.size()) return false;
    elems_[n].store_relaxed(e);
    size_.store_relaxed(n + 1);
    return true;
  }

  /// bin-delete: removes an unspecified element (the most recent one, as in
  /// the paper's array code).
  std::optional<Item> remove() {
    McsGuard<P> g(lock_);
    const u64 n = size_.load_relaxed();
    if (n == 0) return std::nullopt;
    Item e = elems_[n - 1].load_relaxed();
    size_.store_relaxed(n - 1);
    return e;
  }

  /// bin-empty: a single read of the size word, no lock (paper Fig. 1 and
  /// the LinearFunnels discussion in §3.2 both rely on this being cheap).
  bool empty() const { return size_.load_acquire() == 0; }

  u32 capacity() const { return static_cast<u32>(elems_.size()); }

 private:
  McsLock<P> lock_;
  typename P::template Shared<u64> size_{0};
  std::vector<typename P::template Shared<u64>> elems_;
};

} // namespace fpq
