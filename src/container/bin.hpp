// The paper's "bin" (Fig. 1): an unordered pool of items with insert,
// remove-arbitrary and a one-read emptiness test, guarded by an MCS lock.
// This is the building block of SimpleLinear / SimpleTree / SkipList; the
// funnel algorithms replace it with the combining-funnel stack.
#pragma once

#include <optional>
#include <vector>

#include "common/assert.hpp"
#include "common/types.hpp"
#include "platform/platform.hpp"
#include "sync/mcs_lock.hpp"

namespace fpq {

template <Platform P>
class LockedBin {
 public:
  /// `capacity` bounds the number of simultaneously stored items; exceeding
  /// it is reported to the caller (the paper's code silently drops, which
  /// we refuse to reproduce).
  LockedBin(u32 maxprocs, u32 capacity) : lock_(maxprocs), elems_(capacity) {
    FPQ_ASSERT(capacity > 0);
  }

  // Ordering contract: elems_ is only written inside the MCS critical
  // section, whose acquire/release edges order it for other lock holders —
  // those accesses are relaxed. size_ is *published* with a release store
  // so the lock-free empty() acquire probe pairs with it: a "non-empty"
  // answer is therefore backed by visible items (the release store carries
  // the elems_ writes sequenced before it). An "empty" answer is only a
  // hint — empty() participates in store-buffering shapes with the probing
  // thread's surrounding accesses, which release/acquire cannot forbid.
  // Callers whose protocol needs a decisive answer must use empty_locked(),
  // whose critical section is totally ordered against every completed
  // insert()/remove() (SkipListPq's rescue path relies on exactly that).

  /// bin-insert. Returns false when the bin is full.
  bool insert(Item e) {
    McsGuard<P> g(lock_);
    const u64 n = size_.load_relaxed();
    if (n >= elems_.size()) return false;
    elems_[n].store_relaxed(e);
    size_.store_release(n + 1); // publishes elems_[n] to the empty() probe
    return true;
  }

  /// bin-delete: removes an unspecified element (the most recent one, as in
  /// the paper's array code).
  std::optional<Item> remove() {
    McsGuard<P> g(lock_);
    const u64 n = size_.load_relaxed();
    if (n == 0) return std::nullopt;
    Item e = elems_[n - 1].load_relaxed();
    size_.store_release(n - 1);
    return e;
  }

  /// bin-empty: a single read of the size word, no lock (paper Fig. 1 and
  /// the LinearFunnels discussion in §3.2 both rely on this being cheap).
  /// "Non-empty" is authoritative (see the contract above); "empty" is a
  /// scan hint only.
  bool empty() const { return size_.load_acquire() == 0; }

  /// bin-empty under the lock: ordered against every completed insert and
  /// remove by the lock's critical-section total order, at the cost of a
  /// lock acquisition. Use when the answer arbitrates a racy protocol.
  bool empty_locked() {
    McsGuard<P> g(lock_);
    return size_.load_relaxed() == 0;
  }

  u32 capacity() const { return static_cast<u32>(elems_.size()); }

 private:
  McsLock<P> lock_;
  typename P::template Shared<u64> size_{0};
  // Bulk data only ever touched inside the lock's critical section; padding
  // each element would trade the sequential-scan locality for nothing.
  // contract-lint: allow(unpadded-shared)
  std::vector<typename P::template Shared<u64>> elems_;
};

} // namespace fpq
