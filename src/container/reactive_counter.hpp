// Reactive counter in the style of Lim & Agarwal '94 — the alternative the
// paper's footnote 4 points at: instead of embedding adaption *inside* the
// structure (combining funnels), reactively replace one whole structure
// with another — here an MCS-locked counter under low load and a combining
// funnel under high load.
//
// The paper's criticism is that such schemes need "a more centralized (as
// opposed to distributed) algorithmic solution and strong coordination";
// this implementation makes that cost concrete: every operation announces
// itself on a per-mode active counter (two extra RMWs) so a switcher can
// wait for the outgoing representation to drain before transferring the
// value. bench/reactive_counter quantifies the overhead against the plain
// funnel counter.
//
// Protocol
//   * mode ∈ {MCS, FUNNEL, TRANSITION}.
//   * op: announce on active[m]; re-check mode (retry if it moved); perform
//     the operation on representation m; retire from active[m].
//   * switch (any op may trigger one on local contention evidence):
//     CAS mode m -> TRANSITION, wait for active[m] == 0, move the value
//     into the other representation, publish the new mode.
// Ops that see TRANSITION spin. The active counters are themselves shared
// hot words — that is the point being demonstrated, not an oversight.
#pragma once

#include <memory>
#include <vector>

#include "common/assert.hpp"
#include "common/padded.hpp"
#include "common/types.hpp"
#include "funnel/counter.hpp"
#include "funnel/params.hpp"
#include "platform/platform.hpp"
#include "sync/mcs_lock.hpp"

namespace fpq {

template <Platform P>
class ReactiveCounter {
 public:
  /// Contention evidence needed to switch up/down (consecutive operations
  /// per processor).
  struct Tuning {
    Cycles high_wait = 400; // lock acquisition slower than this = contended
    u32 up_streak = 3;      // contended MCS ops before switching to funnel
    u32 down_streak = 16;   // uncontended funnel ops before switching back
  };

  ReactiveCounter(u32 maxprocs, const FunnelParams& fp, i64 floor, i64 initial = 0,
                  Tuning tuning = {})
      : tuning_(tuning),
        floor_(floor),
        lock_(maxprocs),
        value_(initial),
        funnel_(maxprocs, fp,
                typename FunnelCounter<P>::Config{true, true, floor,
                                                  FunnelCounter<P>::kNoCeiling},
                initial),
        streaks_(maxprocs) {}

  i64 fai() { return apply(+1); }

  i64 bfad(i64 bound) {
    FPQ_ASSERT_MSG(bound == floor_, "reactive counter is bound-specialized");
    return apply(-1);
  }

  /// Quiescent-only read.
  i64 read() const {
    return mode_.load_acquire() == kFunnel ? funnel_.read() : value_.load_acquire();
  }

  bool using_funnel() const { return mode_.load_acquire() == kFunnel; }
  u64 switches() const { return switches_.load_acquire(); }

 private:
  static constexpr u32 kMcs = 0;
  static constexpr u32 kFunnel = 1;
  static constexpr u32 kTransition = 2;

  struct alignas(kCacheLineBytes) Streak {
    u32 high = 0; // contended MCS ops in a row
    u32 calm = 0; // cheap funnel ops in a row
  };

  // Ordering contract: announce/recheck vs. CAS/drain is a store-buffering
  // shape — an op writes active_[m] then reads mode_ while the switcher
  // writes mode_ then reads active_[m] — which release/acquire cannot
  // forbid (both sides could read the stale value, letting an op mutate
  // representation m concurrently with the switcher's unlocked value
  // transfer). The four accesses that decide the handshake are therefore
  // seq_cst: the announce fetch_add, the mode recheck, the switcher's mode
  // CAS, and the drain's deciding probe of active_[m]. The retire
  // fetch_sub stays release — it pairs with the drain probe to publish the
  // op's effects before the transfer. value_ itself is protected by the
  // MCS lock or by this handshake, so its accesses are relaxed.
  i64 apply(i64 delta) {
    for (;;) {
      // Wait out a transition through the platform's parking wait rather
      // than a naked pause-spin: identical semantics (re-read until the
      // switcher publishes), but the simulator can park the waiter — and
      // the model checker (DESIGN.md §15) then sees one wake-up instead of
      // an unbounded run of schedulable re-reads.
      const u32 m =
          P::spin_until(mode_, [](u32 v) { return v != kTransition; });
#ifdef FPQ_SEEDED_BUG_REACTIVE_SB
      // Seeded-bug corpus (negative control, tests/test_dpor_corpus.cpp):
      // the PR 3 store-buffering race reintroduced. A relaxed announce and
      // recheck can both pass before the switcher's mode CAS becomes
      // visible here, while the switcher's deciding probe of active_[m]
      // misses the announce — both sides proceed, and the op mutates the
      // representation the switcher is transferring from.
      active_[m].fetch_add(1, MemOrder::kRelaxed);
      if (mode_.load_relaxed() != m) {
#else
      active_[m].fetch_add(1); // seq_cst announce (see contract above)
      if (mode_.load() != m) { // seq_cst recheck
#endif
        active_[m].fetch_sub(1, MemOrder::kRelease);
        continue;
      }
      i64 result;
      bool contended = false;
      if (m == kMcs) {
        const Cycles t0 = P::now();
        McsGuard<P> g(lock_);
        contended = P::now() - t0 > tuning_.high_wait;
        result = value_.load_relaxed();
        if (delta > 0 || result > floor_) value_.store_relaxed(result + delta);
      } else {
        const Cycles t0 = P::now();
        result = delta > 0 ? funnel_.fai() : funnel_.bfad(floor_);
        contended = P::now() - t0 > tuning_.high_wait;
      }
      active_[m].fetch_sub(1, MemOrder::kRelease);
      maybe_switch(m, contended);
      return result;
    }
  }

  void maybe_switch(u32 m, bool contended) {
    Streak& s = *streaks_[P::self()];
    if (m == kMcs) {
      s.high = contended ? s.high + 1 : 0;
      if (s.high >= tuning_.up_streak) {
        s.high = 0;
        switch_mode(kMcs, kFunnel);
      }
    } else {
      s.calm = contended ? 0 : s.calm + 1;
      if (s.calm >= tuning_.down_streak) {
        s.calm = 0;
        switch_mode(kFunnel, kMcs);
      }
    }
  }

  void switch_mode(u32 from, u32 to) {
    u32 expected = from;
    if (!mode_.compare_exchange(expected, kTransition)) // seq_cst CAS
      return; // lost the race
    // Drain the outgoing representation: every announced op retires (their
    // release retirements pair with these probes). The acquire spin is only
    // the cheap wait; a seq_cst re-read decides that the drain is complete,
    // closing the store-buffering race with the announce/recheck (an op
    // whose seq_cst announce precedes this probe has either retired or will
    // observe kTransition at its seq_cst recheck and retry).
    for (;;) {
      P::spin_until(active_[from], [](u64 a) { return a == 0; });
      if (active_[from].load() == 0) break; // seq_cst deciding probe
    }
    if (to == kFunnel)
      funnel_.set_value(value_.load_relaxed());
    else
      value_.store_relaxed(funnel_.read());
    switches_.fetch_add(1, MemOrder::kRelaxed);
    mode_.store_release(to); // publishes the transferred value
  }

  Tuning tuning_;
  i64 floor_;
  typename P::template Shared<u32> mode_{kMcs};
  typename P::template Shared<u64> active_[2]{};
  typename P::template Shared<u64> switches_{0};
  McsLock<P> lock_;
  typename P::template Shared<i64> value_;
  FunnelCounter<P> funnel_;
  std::vector<Padded<Streak>> streaks_;
};

} // namespace fpq
