// Shared counters supporting fetch-and-increment / fetch-and-decrement and
// their *bounded* variants (paper §2.1, Fig. 1). Two non-funnel
// implementations:
//
//   CasCounter — the "hardware" counter: FaI is a fetch-and-add; the bounded
//                operations are single-word CAS retry loops, i.e. the
//                atomically{...} blocks of Fig. 1 executed by the machine's
//                RMW primitive.
//   McsCounter — the counter guarded by an MCS lock; the paper uses these
//                for the deep (low-traffic) tree levels of FunnelTree.
//
// The funnel-based counter lives in src/funnel/bounded_counter.hpp. All
// three expose the same interface so tree algorithms can mix them per node.
#pragma once

#include <optional>

#include "common/types.hpp"
#include "platform/platform.hpp"
#include "sync/mcs_lock.hpp"
#include "sync/try_budget.hpp"

namespace fpq {

// Ordering contract for both counters: every successful mutation is an
// acq_rel RMW (or happens inside the MCS critical section), so the ticket
// a counter hands out carries a happens-before edge from every earlier
// ticket holder — what SimpleTree/FunnelTree rely on when a delete-min
// descends toward items whose inserts published counts on the way up.
// Loads that only feed a CAS retry are relaxed.
template <Platform P>
class CasCounter {
 public:
  explicit CasCounter(i64 initial = 0) : v_(initial) {}

  i64 fai() { return v_.fetch_add(1, MemOrder::kAcqRel); }
  i64 fad() { return v_.fetch_sub(1, MemOrder::kAcqRel); }

  /// Bounded fetch-and-decrement: decrements only if the current value is
  /// greater than `bound`; always returns the pre-operation value
  /// (paper Fig. 1, BFaD).
  i64 bfad(i64 bound) {
    i64 old = v_.load_relaxed();
    // contract-lint: allow(naked-spin) lock-free retry: a CAS failure means
    // another processor's counter op committed.
    for (;;) {
      if (old <= bound) return old;
      if (v_.compare_exchange(old, old - 1, MemOrder::kAcqRel, MemOrder::kRelaxed)) return old;
      // compare_exchange reloaded `old` on failure.
    }
  }

  /// Bounded fetch-and-increment: increments only while below `bound`.
  i64 bfai(i64 bound) {
    i64 old = v_.load_relaxed();
    // contract-lint: allow(naked-spin) lock-free retry (as bfad above)
    for (;;) {
      if (old >= bound) return old;
      if (v_.compare_exchange(old, old + 1, MemOrder::kAcqRel, MemOrder::kRelaxed)) return old;
    }
  }

  /// Batched FaI: k increments in one RMW. Returns k for interface parity
  /// with the funnel counter's batch API.
  u64 fai_batch(u64 k) {
    v_.fetch_add(static_cast<i64>(k), MemOrder::kAcqRel);
    return k;
  }

  /// Batched BFaD: applies k decrements clamped at `bound` in one CAS.
  /// Returns how many of them observed a value above the bound.
  u64 bfad_batch(i64 bound, u64 k) {
    i64 old = v_.load_relaxed();
    // contract-lint: allow(naked-spin) lock-free retry (as bfad above)
    for (;;) {
      const i64 room = old - bound;
      const u64 eff = room > 0 ? (static_cast<u64>(room) < k ? static_cast<u64>(room) : k) : 0;
      if (eff == 0) return 0;
      if (v_.compare_exchange(old, old - static_cast<i64>(eff), MemOrder::kAcqRel,
                              MemOrder::kRelaxed))
        return eff;
    }
  }

  i64 read() const { return v_.load_acquire(); }

 private:
  typename P::template Shared<i64> v_;
};

template <Platform P>
class McsCounter {
 public:
  McsCounter(u32 maxprocs, i64 initial = 0) : lock_(maxprocs), v_(initial) {}

  // v_ is only *mutated* inside the critical section, so the loads feeding
  // each mutation are relaxed (the lock's edges order them). The stores are
  // release because read() is lock-free: its acquire load pairs with the
  // last mutation's release, ordering the reader after the count it saw.
  i64 fai() {
    McsGuard<P> g(lock_);
    i64 old = v_.load_relaxed();
    v_.store_release(old + 1);
    return old;
  }

  i64 fad() {
    McsGuard<P> g(lock_);
    i64 old = v_.load_relaxed();
    v_.store_release(old - 1);
    return old;
  }

  i64 bfad(i64 bound) {
    McsGuard<P> g(lock_);
    i64 old = v_.load_relaxed();
    if (old > bound) v_.store_release(old - 1);
    return old;
  }

  i64 bfai(i64 bound) {
    McsGuard<P> g(lock_);
    i64 old = v_.load_relaxed();
    if (old < bound) v_.store_release(old + 1);
    return old;
  }

  /// Batched FaI: k increments in one critical section.
  u64 fai_batch(u64 k) {
    McsGuard<P> g(lock_);
    v_.store_release(v_.load_relaxed() + static_cast<i64>(k));
    return k;
  }

  /// Batched BFaD: k decrements clamped at `bound` in one critical
  /// section; returns how many observed a value above the bound.
  u64 bfad_batch(i64 bound, u64 k) {
    McsGuard<P> g(lock_);
    const i64 old = v_.load_relaxed();
    const i64 room = old - bound;
    const u64 eff = room > 0 ? (static_cast<u64>(room) < k ? static_cast<u64>(room) : k) : 0;
    if (eff != 0) v_.store_release(old - static_cast<i64>(eff));
    return eff;
  }

  i64 read() const { return v_.load_acquire(); }

  /// Bounded-wait variants (DESIGN.md §12): the mutation happens only if the
  /// MCS lock can be try-acquired within the budget. nullopt = budget
  /// exhausted with the counter untouched — a dead or stalled lock holder
  /// costs the caller a timeout, never a hang. NB: v_ is mutated with plain
  /// release stores under the lock, so a CAS-based bounded path (as in
  /// CasCounter) would race; try_acquire is the only legal primitive here.
  std::optional<i64> try_fai(TryClock<P>& clock) {
    for (;;) {
      if (lock_.try_acquire()) {
        const i64 old = v_.load_relaxed();
        v_.store_release(old + 1);
        lock_.release();
        return old;
      }
      if (!clock.tick_backoff()) return std::nullopt;
    }
  }

  std::optional<i64> try_bfad(i64 bound, TryClock<P>& clock) {
    for (;;) {
      if (lock_.try_acquire()) {
        const i64 old = v_.load_relaxed();
        if (old > bound) v_.store_release(old - 1);
        lock_.release();
        return old;
      }
      if (!clock.tick_backoff()) return std::nullopt;
    }
  }

 private:
  McsLock<P> lock_;
  typename P::template Shared<i64> v_;
};

} // namespace fpq
