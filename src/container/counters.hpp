// Shared counters supporting fetch-and-increment / fetch-and-decrement and
// their *bounded* variants (paper §2.1, Fig. 1). Two non-funnel
// implementations:
//
//   CasCounter — the "hardware" counter: FaI is a fetch-and-add; the bounded
//                operations are single-word CAS retry loops, i.e. the
//                atomically{...} blocks of Fig. 1 executed by the machine's
//                RMW primitive.
//   McsCounter — the counter guarded by an MCS lock; the paper uses these
//                for the deep (low-traffic) tree levels of FunnelTree.
//
// The funnel-based counter lives in src/funnel/bounded_counter.hpp. All
// three expose the same interface so tree algorithms can mix them per node.
#pragma once

#include "common/types.hpp"
#include "platform/platform.hpp"
#include "sync/mcs_lock.hpp"

namespace fpq {

template <Platform P>
class CasCounter {
 public:
  explicit CasCounter(i64 initial = 0) : v_(initial) {}

  i64 fai() { return v_.fetch_add(1); }
  i64 fad() { return v_.fetch_add(-1); }

  /// Bounded fetch-and-decrement: decrements only if the current value is
  /// greater than `bound`; always returns the pre-operation value
  /// (paper Fig. 1, BFaD).
  i64 bfad(i64 bound) {
    i64 old = v_.load();
    for (;;) {
      if (old <= bound) return old;
      if (v_.compare_exchange(old, old - 1)) return old;
      // compare_exchange reloaded `old` on failure.
    }
  }

  /// Bounded fetch-and-increment: increments only while below `bound`.
  i64 bfai(i64 bound) {
    i64 old = v_.load();
    for (;;) {
      if (old >= bound) return old;
      if (v_.compare_exchange(old, old + 1)) return old;
    }
  }

  i64 read() const { return v_.load(); }

 private:
  typename P::template Shared<i64> v_;
};

template <Platform P>
class McsCounter {
 public:
  McsCounter(u32 maxprocs, i64 initial = 0) : lock_(maxprocs), v_(initial) {}

  i64 fai() {
    McsGuard<P> g(lock_);
    i64 old = v_.load();
    v_.store(old + 1);
    return old;
  }

  i64 fad() {
    McsGuard<P> g(lock_);
    i64 old = v_.load();
    v_.store(old - 1);
    return old;
  }

  i64 bfad(i64 bound) {
    McsGuard<P> g(lock_);
    i64 old = v_.load();
    if (old > bound) v_.store(old - 1);
    return old;
  }

  i64 bfai(i64 bound) {
    McsGuard<P> g(lock_);
    i64 old = v_.load();
    if (old < bound) v_.store(old + 1);
    return old;
  }

  i64 read() const { return v_.load(); }

 private:
  McsLock<P> lock_;
  typename P::template Shared<i64> v_;
};

} // namespace fpq
