// Combining-funnel stack — the "bin" of the funnel-based priority queues
// (paper §3.2; elimination from Shavit & Touitou '95, funnels from Shavit &
// Zemach '98). Same collision skeleton as FunnelCounter, specialized:
//
//   * push trees carry their items up the combining tree (a parent copies a
//     captured child subtree's items into its own buffer);
//   * pop trees carry counts up and items back down (a parent serves each
//     child subtree its slice of the popped batch);
//   * a push tree colliding with a pop tree eliminates: the poppers consume
//     the pushers' items without touching the central stack (this is what
//     makes funnel bins win at high load);
//   * surviving batches apply to a central array stack in one short MCS
//     critical section.
//
// Batching (Roh et al. '24 aggregation): a record carries a batch of k
// same-direction operations (push_batch/pop_batch), and same-direction
// trees combine at *any* sizes — the paper's equal-size homogeneity rule
// is replaced by a buffer-capacity guard. Item/verdict routing is purely
// positional: a tree root's buffer lays out its own batch first, then each
// captured child subtree's slice in capture order, and a per-record
// `mark` fill pointer (published with the record like `sum`) tracks how
// much of the owner's slice eliminations have already consumed/filled, so
// the remaining region is always one contiguous range. Elimination serves
// a captured opposite tree *whole* (it is frozen and absorbs exactly one
// verdict): either the capturer's entire remaining batch cancels (full
// elimination) or the capture cancels a slice of the capturer's *own*
// operations only (partial elimination) — a child subtree's slice is never
// split between an elimination and the central verdict, which is what
// keeps flat push verdicts (kStPushed/kStFull) truthful. Oversized
// opposite captures get kStRetry.
//
// Collision protocol (FunnelParams::protocol, DESIGN.md §13): the above
// describes the paper's pairwise *exchange* protocol. In *aggregate* mode
// (Roh et al. '24) a layer-slot occupant keeps an open aggregation record
// (funnel/aggregate.hpp) that late arrivals CAS their batched requests
// onto. The representative's open window is the MCS lock acquisition wait
// itself: it opens, queues on the central lock, and once inside closes the
// flat list and serves every participant's slice — its own first, then
// each joiner in close order — in ONE critical section, exactly the
// operation sequence the same records would have produced as consecutive
// point batches (per-record all-or-nothing push refusal included; one
// refused participant never blocks later ones). Verdicts are published
// after the unlock on the usual result_state edges.
//
// bin-empty is a single read of the central size word — the property
// LinearFunnels' delete-min scan depends on (§3.2).
//
// Like the paper's stacks, equal-priority items come out LIFO by default,
// which "can cause unfairness (and even starvation) among items of equal
// priority" (§3.2). The paper's suggested remedy is implemented as
// BinOrder::kFifo: the *hybrid* structure that still eliminates in the
// funnel but stores surviving batches in a central FIFO ring, so items of
// equal priority that reach the central store come out in arrival order.
//
// Pops that find the central store short return fewer items. Items must
// not equal kNoEntry (reserved as the "no item" sentinel). Pushing beyond
// `capacity` refuses the batch's non-eliminated remainder, which the queue
// surfaces as insert() == false / a short insert_batch count.
#pragma once

#include <cstdlib>
#include <memory>
#include <optional>
#include <vector>

#include "common/assert.hpp"
#include "common/entry.hpp"
#include "common/padded.hpp"
#include "common/types.hpp"
#include "funnel/aggregate.hpp"
#include "funnel/params.hpp"
#include "platform/platform.hpp"
#include "sync/mcs_lock.hpp"
#include "sync/try_budget.hpp"

namespace fpq {

/// Order of the central item store behind the funnel.
enum class BinOrder : u8 {
  kLifo, // array stack — the paper's default bins
  kFifo, // ring queue — the paper's fairness hybrid (§3.2)
};

template <Platform P>
class FunnelStack {
 public:
  FunnelStack(u32 maxprocs, const FunnelParams& params, u32 capacity,
              bool eliminate = true, BinOrder order = BinOrder::kLifo)
      : params_(params), eliminate_(eliminate), order_(order), lock_(maxprocs),
        cells_(capacity) {
    params_.validate();
    FPQ_ASSERT(maxprocs >= 1 && capacity >= 1);
    const u32 batch = max_batch();
    records_.reserve(maxprocs);
    for (u32 i = 0; i < maxprocs; ++i) records_.push_back(std::make_unique<Rec>(batch));
    layers_.resize(params_.levels);
    for (u32 d = 0; d < params_.levels; ++d)
      layers_[d] = std::make_unique<Padded<Slot>[]>(params_.width[d]);
  }

  /// Pushes one item. Returns false when the central stack is full (the
  /// remaining combined batch is refused, so callers see a consistent
  /// signal).
  bool push(Item v) {
    FPQ_ASSERT_MSG(v != kNoEntry, "item value reserved as sentinel");
    Rec& my = *records_[P::self()];
    my.buf[0].store_relaxed(v); // published by the location release in apply()
    return apply(my, /*delta=*/+1, 1) == 1;
  }

  /// Pops one item, or nullopt when the stack has none to give.
  std::optional<Item> pop() {
    Rec& my = *records_[P::self()];
    apply(my, /*delta=*/-1, 1);
    const u64 r = my.buf[0].load_relaxed();
    if (r == kNoItem) return std::nullopt;
    return r;
  }

  /// Pushes items[0..n) as one aggregated batch (n <= max_batch()).
  /// Returns the number accepted: eliminations always accept, and a full
  /// central store refuses the batch's whole remainder.
  u32 push_batch(const Item* items, u32 n) {
    FPQ_ASSERT(n >= 1 && n <= max_batch());
    Rec& my = *records_[P::self()];
    for (u32 i = 0; i < n; ++i) {
      FPQ_ASSERT_MSG(items[i] != kNoEntry, "item value reserved as sentinel");
      my.buf[i].store_relaxed(items[i]);
    }
    return static_cast<u32>(apply(my, static_cast<i64>(n), n));
  }

  /// Pops up to k items (k <= max_batch()) into out[0..). Returns the
  /// number obtained — short when the central store comes up short.
  u32 pop_batch(Item* out, u32 k) {
    FPQ_ASSERT(k >= 1 && k <= max_batch());
    Rec& my = *records_[P::self()];
    apply(my, -static_cast<i64>(k), k);
    u32 got = 0;
    for (u32 i = 0; i < k; ++i) {
      const u64 v = my.buf[i].load_relaxed();
      if (v != kNoItem) out[got++] = v;
    }
    return got;
  }

  /// Outcome of the bounded-wait entry points below.
  enum class TryOutcome : u8 {
    kOk,      // operation committed
    kRefused, // push: central store full; pop: central store empty
    kTimeout, // budget exhausted before the lock was won; nothing consumed
  };

  /// Bounded-wait push: bypasses the funnel entirely — no capture, so no
  /// dependence on any partner's liveness — and takes the central lock
  /// with try_acquire under the budget. A stalled or dead lock holder
  /// therefore costs kTimeout, never a hang. Elimination is forgone; this
  /// is the degraded mode, not the fast path.
  TryOutcome try_push(Item v, TryClock<P>& clock) {
    FPQ_ASSERT_MSG(v != kNoEntry, "item value reserved as sentinel");
    for (;;) {
      if (lock_.try_acquire()) {
        const u64 cap = cells_.size();
        const u64 n = size_.load_relaxed();
        TryOutcome r = TryOutcome::kRefused;
        if (n < cap) {
          const u64 t = tail_.load_relaxed();
          cells_[t % cap].store_relaxed(v);
          tail_.store_relaxed(t + 1);
          size_.store_release(n + 1);
          r = TryOutcome::kOk;
        }
        lock_.release();
        return r;
      }
      if (!clock.tick_backoff()) return TryOutcome::kTimeout;
    }
  }

  /// Bounded-wait pop (same contract as try_push). kRefused = the central
  /// store held nothing, the same answer pop()'s sentinel gives.
  TryOutcome try_pop(Item& out, TryClock<P>& clock) {
    for (;;) {
      if (empty()) return TryOutcome::kRefused; // 1-read probe, as pop()'s users do
      if (lock_.try_acquire()) {
        const u64 cap = cells_.size();
        const u64 n = size_.load_relaxed();
        TryOutcome r = TryOutcome::kRefused;
        if (n > 0) {
          if (order_ == BinOrder::kLifo) {
            const u64 t = tail_.load_relaxed();
            out = cells_[(t - 1) % cap].load_relaxed();
            tail_.store_relaxed(t - 1);
          } else {
            const u64 h = head_.load_relaxed();
            out = cells_[h % cap].load_relaxed();
            head_.store_relaxed(h + 1);
          }
          size_.store_release(n - 1);
          r = TryOutcome::kOk;
        }
        lock_.release();
        return r;
      }
      if (!clock.tick_backoff()) return TryOutcome::kTimeout;
    }
  }

  /// One shared read (bin-empty of Fig. 1 / §3.2).
  bool empty() const { return size_.load_acquire() == 0; }
  u64 size() const { return size_.load_acquire(); }
  u32 capacity() const { return static_cast<u32>(cells_.size()); }
  /// Largest batch one record (and so one push_batch/pop_batch call) may
  /// carry; also bounds a combining tree's total batch.
  u32 max_batch() const { return params_.batch_limit << params_.levels; }
  BinOrder order() const { return order_; }

 private:
  static constexpr u64 kLocEmpty = 0;
  static constexpr u32 kStEmpty = 0;
  static constexpr u32 kStPushed = 1;  // push batch applied (or eliminated)
  static constexpr u32 kStPopped = 2;  // items (or sentinels) are in my buf
  static constexpr u32 kStFull = 3;    // remainder refused: stack full
  static constexpr u32 kStRetry = 4;   // capturer could not serve us; rejoin
  static constexpr u64 kNoItem = kNoEntry;

  struct alignas(kCacheLineBytes) Rec {
    // The buffer is handed between owner and capturer wholesale (one party
    // at a time, ordered by the location/verdict edges); contiguity is
    // what makes the slice copies cheap.
    // contract-lint: allow(unpadded-shared)
    explicit Rec(u32 batch) : buf(std::make_unique<typename P::template Shared<u64>[]>(batch)) {}
    typename P::template Shared<u64> location{kLocEmpty};
    typename P::template Shared<i64> sum{0};
    /// Elimination fill pointer into the owner's slice, published with the
    /// record (same location-release edge as sum). Push trees: own items
    /// below mark have been consumed by poppers, so the tree's remaining
    /// items are the contiguous range [mark, own_n + child_extra). Pop
    /// trees: own demand below mark has been filled, so the unfilled
    /// positions are [mark, own_n + child_extra).
    typename P::template Shared<u64> mark{0};
    typename P::template Shared<u32> result_state{kStEmpty};
    /// Subtree item buffer, laid out positionally: the owner's batch at
    /// [0, own_n), then each captured child subtree's slice in capture
    /// order. Push trees accumulate items here on the way up; pop trees
    /// receive their slices here on the way down.
    // contract-lint: allow(unpadded-shared)
    std::unique_ptr<typename P::template Shared<u64>[]> buf;
    // Owner-local state; adaption starts low (assume no load until the
    // lock or layers say otherwise).
    u64 own_n = 0;
    u64 child_extra = 0; // children's items (push) / demand (pop) absorbed
    i64 local_sum = 0;
    double adaption = 0.125;
    std::vector<Rec*> children;
    /// Aggregation protocol only: per-participant verdict states computed
    /// inside the critical section, published after the unlock (owner-local
    /// scratch, parallel to `children`).
    std::vector<u32> verdicts;
    /// Aggregation-protocol endpoint (own aggregate's join point + link in
    /// a representative's list); idle under the exchange protocol.
    AggregateEndpoint<P> agg;
  };

  /// Central-lock acquisition above this is read as contention.
  static constexpr Cycles kFastPathBudget = 300;

  using Slot = typename P::template Shared<Rec*>;

  static u64 loc(u32 depth) { return static_cast<u64>(depth) + 1; }
  static u64 tree_size(i64 sum) { return static_cast<u64>(std::llabs(sum)); }
  static bool same_sign(i64 a, i64 b) { return (a < 0) == (b < 0); }

  /// Runs the funnel for one batch of k pushes (delta=+k) or k pops
  /// (delta=-k). Returns the number of own items accepted (pushes; pops
  /// return 0 and leave items/sentinels in my.buf[0..k)).
  /// Ordering contract: identical to FunnelCounter::apply (payload
  /// published by the location release store, captured via acq_rel CAS;
  /// verdicts published by the result_state release store, received by the
  /// acquire spin) — see counter.hpp. Item buffers and the mark fill
  /// pointer ride those same edges.
  u64 apply(Rec& my, i64 delta, u64 k) {
    my.own_n = k;
    my.child_extra = 0;
    my.mark.store_relaxed(0);
    my.local_sum = delta;
    my.children.clear();
    // Adaption (§3.1): under low observed load, skip the funnel and apply
    // the batch directly under the central lock; a slow acquisition is the
    // contention signal that re-opens the funnel.
    if (params_.adaptive && my.adaption <= params_.adapt_min * 1.01) {
      const Cycles t0 = P::now();
      const u64 r = central_apply(my);
      if (P::now() - t0 > kFastPathBudget)
        my.adaption = std::min(1.0, my.adaption * 1.5);
      return r;
    }
    my.result_state.store_relaxed(kStEmpty);
    my.sum.store_relaxed(delta);
    if (params_.protocol == FunnelProtocol::kAggregate) return aggregate_apply(my);
    u32 d = 0;
    my.location.store_release(loc(0)); // publishes sum/mark/state/buf
    bool collided = false;

    for (;;) {
      u32 n = 0;
      while (n < params_.attempts && d < params_.levels) {
        ++n;
        const u32 wid = effective_width(my, d);
        Rec* q = (*layers_[d][P::rnd(wid)]).exchange(&my, MemOrder::kAcqRel);
        if (q != nullptr && q != &my) {
          u64 mloc = loc(d);
          if (!my.location.compare_exchange(mloc, kLocEmpty, MemOrder::kAcqRel,
                                            MemOrder::kRelaxed)) {
            if (auto r = finish_as_child(my, d)) return *r;
            continue; // told to retry; we already rejoined the layer
          }
          u64 qloc = loc(d);
          if (q->location.compare_exchange(qloc, kLocEmpty, MemOrder::kAcqRel,
                                           MemOrder::kRelaxed)) {
            const i64 qsum = q->sum.load_relaxed(); // ordered by the capture CAS
            if (eliminate_ && qsum == -my.local_sum) return eliminate_full(my, *q);
            if (eliminate_ && !same_sign(qsum, my.local_sum) &&
                tree_size(qsum) <= own_rem(my)) {
              // Partial elimination: q's whole tree cancels against a
              // slice of my own batch; my children's slices are untouched.
              partial_eliminate(my, *q, qsum);
              my.location.store_release(loc(d)); // publishes sum and mark
              continue;
            }
            if (same_sign(qsum, my.local_sum) && combine_with(my, *q)) {
              collided = true;
              ++d;
              my.location.store_release(loc(d));
              n = 0;
              continue;
            }
            // Cannot serve the captured partner (opposite tree bigger than
            // our own remaining batch, elimination off, or a same-direction
            // tree that would overflow our buffer): hand it an explicit
            // retry (see counter.hpp for the race this avoids).
            q->result_state.store_release(kStRetry);
            my.location.store_release(loc(d));
            continue;
          }
          my.location.store_release(loc(d));
        }
        // Relax between capture-wait probes — see counter.hpp: the polite
        // spin hint natively, and on the simulator the yield that keeps a
        // hit-only loop from monopolizing the scheduler under stall plans.
        for (u32 i = 0; i < params_.spin[d]; ++i) {
          if (my.location.load_relaxed() != loc(d)) {
            if (auto r = finish_as_child(my, d)) return *r;
            break; // retry: rejoin the attempts loop
          }
          P::relax();
        }
      }

      u64 mloc = loc(d);
      if (!my.location.compare_exchange(mloc, kLocEmpty, MemOrder::kAcqRel,
                                        MemOrder::kRelaxed)) {
        if (auto r = finish_as_child(my, d)) return *r;
        continue;
      }
      const u64 r = central_apply(my);
      adapt(my, collided);
      return r;
    }
  }

  // ---- Aggregation protocol (DESIGN.md §13). The record's payload (sum,
  // mark, item buffer) is already written relaxed by apply(); publication
  // happens through the slot-claim CAS (representatives) or the join CAS
  // on the occupant's `agg.head` (joiners) — the `location` word is never
  // used, so nothing here can be captured pairwise.
  u64 aggregate_apply(Rec& my) {
    for (u32 n = 0; n < params_.attempts; ++n) {
      Slot& slot = *layers_[0][P::rnd(effective_width(my, 0))];
      Rec* cur = slot.load_acquire();
      if (cur == nullptr) {
        Rec* expected = nullptr;
        if (slot.compare_exchange(expected, &my, MemOrder::kAcqRel, MemOrder::kRelaxed))
          return serve_aggregate(my, slot);
        cur = expected;
      }
      if (cur == nullptr || cur == &my) continue; // lost the claim race / stale self
      if (cur->agg.try_join(&my)) {
        adapt(my, true); // joining is the aggregation analogue of colliding
        return finish_as_aggregate_child(my);
      }
      // Occupant's aggregate is closed: help-clear the stale slot, retry.
      slot.compare_exchange(cur, nullptr, MemOrder::kAcqRel, MemOrder::kRelaxed);
    }
    adapt(my, false);
    return central_apply(my); // no aggregate formed: serve the own batch solo
  }

  /// Representative path. The open window is up to agg_wait relax beats
  /// (closed early once joins stop arriving — wait_open_window) plus the
  /// MCS acquisition wait — under contention the lock queueing delay is
  /// exactly when joiners pile on, and the adaptive window keeps a door
  /// open even when the lock is free (the adaptive fast path already
  /// bypasses the funnel when that latency would be wasted). Inside the critical
  /// section every participant's slice is applied in sequence
  /// (representative first, then joiners in close order), each with the
  /// same per-record all-or-nothing rules as a point batch; verdicts are
  /// published only after the unlock so no waiter ever spins on a value
  /// computed inside somebody's critical section.
  u64 serve_aggregate(Rec& my, Slot& slot) {
    my.agg.open();
    my.agg.wait_open_window(params_.agg_wait, params_.agg_idle_limit());
    my.verdicts.clear();
    u32 mine;
    {
      McsGuard<P> g(lock_);
      my.agg.close_into(my.children);
      Rec* self = &my;
      slot.compare_exchange(self, nullptr, MemOrder::kAcqRel, MemOrder::kRelaxed);
      mine = apply_one_locked(my);
      for (Rec* c : my.children) my.verdicts.push_back(apply_one_locked(*c));
    }
    adapt(my, !my.children.empty());
    for (u64 i = 0; i < my.children.size(); ++i)
      my.children[i]->result_state.store_release(my.verdicts[i]); // publishes buf slices
    if (my.local_sum < 0) return 0;
    return mine == kStFull ? my.mark.load_relaxed() : my.own_n;
  }

  /// One participant's slice against the central store, lock held. Exactly
  /// central_apply's rules for a single record: all-or-nothing push
  /// refusal (kStFull), pops served short with kNoItem sentinels. Reads
  /// the record's published sum/mark (not owner-local fields) — for
  /// joiners those are ordered by the join-CAS/close-exchange edge, and
  /// the relaxed writes into a joiner's buffer are published afterwards by
  /// the result_state release in serve_aggregate.
  u32 apply_one_locked(Rec& r) {
    const i64 rsum = r.sum.load_relaxed();
    const u64 rrem = tree_size(rsum);
    const u64 rmark = r.mark.load_relaxed();
    const u64 cap = cells_.size();
    const u64 n = size_.load_relaxed();
    if (rsum > 0) {
      if (n + rrem > cap) return kStFull;
      const u64 t = tail_.load_relaxed();
      for (u64 i = 0; i < rrem; ++i)
        cells_[(t + i) % cap].store_relaxed(r.buf[rmark + i].load_relaxed());
      tail_.store_relaxed(t + rrem);
      size_.store_release(n + rrem);
      return kStPushed;
    }
    const u64 m = n < rrem ? n : rrem;
    if (order_ == BinOrder::kLifo) {
      const u64 t = tail_.load_relaxed();
      for (u64 i = 0; i < m; ++i)
        r.buf[rmark + i].store_relaxed(cells_[(t - 1 - i) % cap].load_relaxed());
      tail_.store_relaxed(t - m);
    } else {
      const u64 h = head_.load_relaxed();
      for (u64 i = 0; i < m; ++i)
        r.buf[rmark + i].store_relaxed(cells_[(h + i) % cap].load_relaxed());
      head_.store_relaxed(h + m);
    }
    size_.store_release(n - m);
    for (u64 i = m; i < rrem; ++i) r.buf[rmark + i].store_relaxed(kNoItem);
    return kStPopped;
  }

  /// Joiner path: the representative serves every participant, so the only
  /// verdicts are kStPushed/kStFull/kStPopped — never kStRetry.
  u64 finish_as_aggregate_child(Rec& my) {
    const u32 st = P::spin_until(my.result_state, [](u32 v) { return v != kStEmpty; });
    FPQ_ASSERT_MSG(st != kStRetry, "aggregate participants are always served");
    if (st == kStPopped) return 0;
    return st == kStFull ? my.mark.load_relaxed() : my.own_n;
  }

  /// Own-batch operations not yet consumed/filled by eliminations.
  u64 own_rem(const Rec& my) const { return my.own_n - my.mark.load_relaxed(); }

  /// Merges the captured same-direction subtree into ours, provided the
  /// total batch fits our buffer. q is frozen (spinning on its
  /// result_state) and was acquired by the capture CAS, so its sum, mark
  /// and items are readable relaxed.
  bool combine_with(Rec& my, Rec& q) {
    const u64 qrem = tree_size(q.sum.load_relaxed());
    if (my.own_n + my.child_extra + qrem > max_batch()) return false;
    if (my.local_sum > 0) {
      // Push tree: pull q's remaining items (one contiguous range starting
      // at its mark) up into our children region.
      const u64 qmark = q.mark.load_relaxed();
      for (u64 i = 0; i < qrem; ++i)
        my.buf[my.own_n + my.child_extra + i].store_relaxed(q.buf[qmark + i].load_relaxed());
    }
    my.child_extra += qrem;
    my.local_sum += q.sum.load_relaxed();
    my.sum.store_relaxed(my.local_sum);
    my.children.push_back(&q);
    return true;
  }

  /// Opposite trees of equal remaining size: the poppers consume the
  /// pushers' items; nobody touches the central stack. Serves both trees
  /// entirely.
  u64 eliminate_full(Rec& my, Rec& q) {
    const u64 r = tree_size(my.local_sum);
    const u64 mmark = my.mark.load_relaxed();
    const u64 qmark = q.mark.load_relaxed();
    adapt(my, true);
    if (my.local_sum > 0) {
      for (u64 i = 0; i < r; ++i)
        q.buf[qmark + i].store_relaxed(my.buf[mmark + i].load_relaxed());
      q.result_state.store_release(kStPopped); // publishes q's buf slice
      distribute_push(my, kStPushed);
      return my.own_n;
    }
    for (u64 i = 0; i < r; ++i)
      my.buf[mmark + i].store_relaxed(q.buf[qmark + i].load_relaxed());
    q.result_state.store_release(kStPushed);
    distribute_pop(my);
    return 0;
  }

  /// Opposite capture no bigger than my own remaining batch: q's whole
  /// tree is served against my own slice (items flow between the two
  /// contiguous mark-ranges), my mark advances past the cancelled ops, and
  /// my tree rejoins the layer with the shrunk sum.
  void partial_eliminate(Rec& my, Rec& q, i64 qsum) {
    const u64 qrem = tree_size(qsum);
    const u64 mmark = my.mark.load_relaxed();
    const u64 qmark = q.mark.load_relaxed();
    if (my.local_sum > 0) {
      for (u64 i = 0; i < qrem; ++i)
        q.buf[qmark + i].store_relaxed(my.buf[mmark + i].load_relaxed());
      q.result_state.store_release(kStPopped);
    } else {
      for (u64 i = 0; i < qrem; ++i)
        my.buf[mmark + i].store_relaxed(q.buf[qmark + i].load_relaxed());
      q.result_state.store_release(kStPushed);
    }
    my.mark.store_relaxed(mmark + qrem);
    my.local_sum += qsum;
    my.sum.store_relaxed(my.local_sum);
    adapt(my, true);
  }

  /// Applies the tree's remaining batch to the central store and
  /// distributes. The store is a ring addressed by monotone
  /// produce/consume counters; LIFO pops consume from the produce end,
  /// FIFO pops from the consume end. The separate size word keeps
  /// bin-empty a single read.
  u64 central_apply(Rec& my) {
    const u64 r = tree_size(my.local_sum);
    const u64 cap = cells_.size();
    const u64 mark = my.mark.load_relaxed();
    // cells_/head_/tail_ are only touched inside the MCS critical section;
    // the lock's edges order them, so those accesses are relaxed. size_ is
    // also *read lock-free* by empty()/size() (the single-read bin-empty
    // probe), so its stores are release to pair with those acquire loads —
    // a probe that observes n > 0 is then ordered after the push behind it.
    if (my.local_sum > 0) {
      bool full = false;
      {
        McsGuard<P> g(lock_);
        const u64 n = size_.load_relaxed();
        if (n + r > cap) {
          full = true;
        } else {
          const u64 t = tail_.load_relaxed();
          for (u64 i = 0; i < r; ++i)
            cells_[(t + i) % cap].store_relaxed(my.buf[mark + i].load_relaxed());
          tail_.store_relaxed(t + r);
          size_.store_release(n + r);
        }
      }
      distribute_push(my, full ? kStFull : kStPushed);
      // Accepted: everything on success; only the eliminated slice when
      // the remainder was refused.
      return full ? mark : my.own_n;
    }
    {
      McsGuard<P> g(lock_);
      const u64 n = size_.load_relaxed();
      const u64 m = n < r ? n : r;
      if (order_ == BinOrder::kLifo) {
        const u64 t = tail_.load_relaxed();
        for (u64 i = 0; i < m; ++i)
          my.buf[mark + i].store_relaxed(cells_[(t - 1 - i) % cap].load_relaxed());
        tail_.store_relaxed(t - m);
      } else {
        const u64 h = head_.load_relaxed();
        for (u64 i = 0; i < m; ++i)
          my.buf[mark + i].store_relaxed(cells_[(h + i) % cap].load_relaxed());
        head_.store_relaxed(h + m);
      }
      size_.store_release(n - m);
      for (u64 i = m; i < r; ++i) my.buf[mark + i].store_relaxed(kNoItem);
    }
    distribute_pop(my);
    return 0;
  }

  /// Waits for the capturer's verdict; nullopt means "rejoin layer d and
  /// keep trying" (the record has already re-entered the layer).
  std::optional<u64> finish_as_child(Rec& my, u32 d) {
    const u32 st =
        P::spin_until(my.result_state, [](u32 v) { return v != kStEmpty; });
    if (st == kStRetry) {
      my.result_state.store_relaxed(kStEmpty);
      my.location.store_release(loc(d));
      return std::nullopt;
    }
    adapt(my, true);
    if (st == kStPopped) {
      distribute_pop(my);
      return 0;
    }
    distribute_push(my, st);
    // kStFull refuses only the non-eliminated remainder; the slice below
    // my mark was already consumed by poppers.
    return st == kStFull ? my.mark.load_relaxed() : my.own_n;
  }

  void distribute_push(Rec& my, u32 state) {
    for (Rec* c : my.children) c->result_state.store_release(state);
  }

  /// my.buf holds the tree's items/sentinels positionally; slice them out
  /// to the child subtrees in capture order. Each child receives its
  /// remaining demand starting at its own mark; the verdict (and slice)
  /// is published by the release store of its result_state.
  void distribute_pop(Rec& my) {
    u64 off = my.own_n;
    for (Rec* c : my.children) {
      const u64 crem = tree_size(c->sum.load_relaxed());
      const u64 cmark = c->mark.load_relaxed();
      for (u64 i = 0; i < crem; ++i)
        c->buf[cmark + i].store_relaxed(my.buf[off + i].load_relaxed());
      c->result_state.store_release(kStPopped);
      off += crem;
    }
  }

  u32 effective_width(Rec& my, u32 d) const {
    const u32 full = params_.width[d];
    if (!params_.adaptive) return full;
    const u32 w = static_cast<u32>(my.adaption * full);
    return w >= 1 ? w : 1;
  }

  void adapt(Rec& my, bool collided) {
    if (!params_.adaptive) return;
    if (collided)
      my.adaption = std::min(1.0, my.adaption * 1.5);
    else
      my.adaption = std::max(params_.adapt_min, my.adaption * 0.75);
  }

  FunnelParams params_;
  bool eliminate_;
  BinOrder order_;
  McsLock<P> lock_;
  typename P::template Shared<u64> head_{0}; // consumed count (FIFO end)
  typename P::template Shared<u64> tail_{0}; // produced count
  /// tail - head, for 1-read empty. On its own line: the lock-free empty()
  /// probes must not be invalidated by unrelated head_/tail_ churn.
  alignas(kCacheLineBytes) typename P::template Shared<u64> size_{0};
  // Central store: only the lock holder touches cells, in bulk.
  std::vector<typename P::template Shared<u64>> cells_; // contract-lint: allow(unpadded-shared)
  std::vector<std::unique_ptr<Rec>> records_;
  /// Layer slots are swapped by unrelated processors — one per cache line.
  std::vector<std::unique_ptr<Padded<Slot>[]>> layers_;
};

} // namespace fpq
