// Combining-funnel stack — the "bin" of the funnel-based priority queues
// (paper §3.2; elimination from Shavit & Touitou '95, funnels from Shavit &
// Zemach '98). Same collision skeleton as FunnelCounter, specialized:
//
//   * push trees carry their items up the combining tree (a parent copies a
//     captured child subtree's items into its own buffer);
//   * pop trees carry counts up and items back down (a parent serves each
//     child subtree its slice of the popped batch);
//   * a push tree colliding with an equal-size pop tree eliminates: the
//     poppers consume the pushers' items without touching the central
//     stack (this is what makes funnel bins win at high load);
//   * surviving batches apply to a central array stack in one short TTAS
//     critical section.
//
// The homogeneity rule (equal-size, same-operation trees only) is reused
// from the bounded counter so elimination is always an exact 1:1 match.
//
// bin-empty is a single read of the central size word — the property
// LinearFunnels' delete-min scan depends on (§3.2).
//
// Like the paper's stacks, equal-priority items come out LIFO by default,
// which "can cause unfairness (and even starvation) among items of equal
// priority" (§3.2). The paper's suggested remedy is implemented as
// BinOrder::kFifo: the *hybrid* structure that still eliminates in the
// funnel but stores surviving batches in a central FIFO ring, so items of
// equal priority that reach the central store come out in arrival order.
//
// Pops that find the central store short return nullopt. Items must not
// equal kNoEntry (reserved as the "no item" sentinel). Pushing beyond
// `capacity` fails the whole batch, which the queue surfaces as
// insert() == false.
#pragma once

#include <cstdlib>
#include <memory>
#include <optional>
#include <vector>

#include "common/assert.hpp"
#include "common/entry.hpp"
#include "common/padded.hpp"
#include "common/types.hpp"
#include "funnel/params.hpp"
#include "platform/platform.hpp"
#include "sync/mcs_lock.hpp"

namespace fpq {

/// Order of the central item store behind the funnel.
enum class BinOrder : u8 {
  kLifo, // array stack — the paper's default bins
  kFifo, // ring queue — the paper's fairness hybrid (§3.2)
};

template <Platform P>
class FunnelStack {
 public:
  FunnelStack(u32 maxprocs, const FunnelParams& params, u32 capacity,
              bool eliminate = true, BinOrder order = BinOrder::kLifo)
      : params_(params), eliminate_(eliminate), order_(order), lock_(maxprocs),
        cells_(capacity) {
    params_.validate();
    FPQ_ASSERT(maxprocs >= 1 && capacity >= 1);
    const u32 batch = max_batch();
    records_.reserve(maxprocs);
    for (u32 i = 0; i < maxprocs; ++i) records_.push_back(std::make_unique<Rec>(batch));
    layers_.resize(params_.levels);
    for (u32 d = 0; d < params_.levels; ++d)
      layers_[d] = std::make_unique<Padded<Slot>[]>(params_.width[d]);
  }

  /// Pushes one item. Returns false when the central stack is full (the
  /// entire combined batch is refused, so callers see a consistent signal).
  bool push(Item v) {
    FPQ_ASSERT_MSG(v != kNoEntry, "item value reserved as sentinel");
    Rec& my = *records_[P::self()];
    my.buf[0].store_relaxed(v); // published by the location release in apply()
    const u64 r = apply(my, /*delta=*/+1);
    return r != kFullResult;
  }

  /// Pops one item, or nullopt when the stack has none to give.
  std::optional<Item> pop() {
    Rec& my = *records_[P::self()];
    const u64 r = apply(my, /*delta=*/-1);
    if (r == kNoEntry) return std::nullopt;
    return r;
  }

  /// One shared read (bin-empty of Fig. 1 / §3.2).
  bool empty() const { return size_.load_acquire() == 0; }
  u64 size() const { return size_.load_acquire(); }
  u32 capacity() const { return static_cast<u32>(cells_.size()); }
  BinOrder order() const { return order_; }

 private:
  static constexpr u64 kLocEmpty = 0;
  static constexpr u32 kStEmpty = 0;
  static constexpr u32 kStPushed = 1;  // push batch applied (or eliminated)
  static constexpr u32 kStPopped = 2;  // items (or sentinels) are in my buf
  static constexpr u32 kStFull = 3;    // push batch refused: stack full
  static constexpr u32 kStRetry = 4;   // capturer could not serve us; rejoin
  static constexpr u64 kNoItem = kNoEntry;
  /// push() internal marker distinct from any item/sentinel result of pop.
  static constexpr u64 kFullResult = kNoEntry - 1;
  static constexpr u64 kPushedResult = kNoEntry - 2;

  struct alignas(kCacheLineBytes) Rec {
    explicit Rec(u32 batch) : buf(std::make_unique<typename P::template Shared<u64>[]>(batch)) {}
    typename P::template Shared<u64> location{kLocEmpty};
    typename P::template Shared<i64> sum{0};
    typename P::template Shared<u32> result_state{kStEmpty};
    /// Subtree item buffer: push trees accumulate items here on the way up;
    /// pop trees receive their slice here on the way down.
    std::unique_ptr<typename P::template Shared<u64>[]> buf;
    // Owner-local state; adaption starts low (assume no load until the
    // lock or layers say otherwise).
    i64 local_sum = 0;
    double adaption = 0.125;
    std::vector<Rec*> children;
  };

  /// Central-lock acquisition above this is read as contention.
  static constexpr Cycles kFastPathBudget = 300;

  using Slot = typename P::template Shared<Rec*>;

  u32 max_batch() const { return 1u << params_.levels; }
  static u64 loc(u32 depth) { return static_cast<u64>(depth) + 1; }
  static u64 tree_size(i64 sum) { return static_cast<u64>(std::llabs(sum)); }

  /// Runs the funnel for one push (+1) or pop (-1). Returns:
  ///   pop  — the item, or kNoItem;
  ///   push — kPushedResult on success, kFullResult when refused.
  /// Ordering contract: identical to FunnelCounter::apply (payload
  /// published by the location release store, captured via acq_rel CAS;
  /// verdicts published by the result_state release store, received by the
  /// acquire spin) — see counter.hpp. Item buffers ride those same edges.
  u64 apply(Rec& my, i64 delta) {
    my.local_sum = delta;
    my.children.clear();
    // Adaption (§3.1): under low observed load, skip the funnel and apply
    // the single-op batch directly under the central lock; a slow
    // acquisition is the contention signal that re-opens the funnel.
    if (params_.adaptive && my.adaption <= params_.adapt_min * 1.01) {
      const Cycles t0 = P::now();
      const u64 r = central_apply(my);
      // Budget scales with batch size 1; a slow acquisition means waiters.
      if (P::now() - t0 > kFastPathBudget)
        my.adaption = std::min(1.0, my.adaption * 1.5);
      return r;
    }
    my.result_state.store_relaxed(kStEmpty);
    my.sum.store_relaxed(delta);
    u32 d = 0;
    my.location.store_release(loc(0)); // publishes sum/state/buf[0]
    bool collided = false;

    for (;;) {
      u32 n = 0;
      while (n < params_.attempts && d < params_.levels) {
        ++n;
        const u32 wid = effective_width(my, d);
        Rec* q = (*layers_[d][P::rnd(wid)]).exchange(&my, MemOrder::kAcqRel);
        if (q != nullptr && q != &my) {
          u64 mloc = loc(d);
          if (!my.location.compare_exchange(mloc, kLocEmpty, MemOrder::kAcqRel,
                                            MemOrder::kRelaxed)) {
            if (auto r = finish_as_child(my, d)) return *r;
            continue; // told to retry; we already rejoined the layer
          }
          u64 qloc = loc(d);
          if (q->location.compare_exchange(qloc, kLocEmpty, MemOrder::kAcqRel,
                                           MemOrder::kRelaxed)) {
            const i64 qsum = q->sum.load_relaxed(); // ordered by the capture CAS
            if (eliminate_ && qsum == -my.local_sum) return eliminate_with(my, *q);
            if (qsum == my.local_sum) {
              combine_with(my, *q);
              collided = true;
              ++d;
              my.location.store_release(loc(d));
              n = 0;
              continue;
            }
            // Opposite trees with elimination off: hand the captured
            // partner an explicit retry (see counter.hpp for the race this
            // avoids).
            q->result_state.store_release(kStRetry);
            my.location.store_release(loc(d));
            continue;
          }
          my.location.store_release(loc(d));
        }
        for (u32 i = 0; i < params_.spin[d]; ++i) {
          if (my.location.load_relaxed() != loc(d)) {
            if (auto r = finish_as_child(my, d)) return *r;
            break; // retry: rejoin the attempts loop
          }
        }
      }

      u64 mloc = loc(d);
      if (!my.location.compare_exchange(mloc, kLocEmpty, MemOrder::kAcqRel,
                                        MemOrder::kRelaxed)) {
        if (auto r = finish_as_child(my, d)) return *r;
        continue;
      }
      const u64 r = central_apply(my);
      adapt(my, collided);
      return r;
    }
  }

  /// Merges the captured same-operation subtree into ours. q is frozen
  /// (spinning on its result_state) and was acquired by the capture CAS,
  /// so its sum and items are readable relaxed.
  void combine_with(Rec& my, Rec& q) {
    const u64 mine = tree_size(my.local_sum);
    const u64 theirs = tree_size(q.sum.load_relaxed());
    if (my.local_sum > 0) {
      // Push tree: pull q's items up into our buffer.
      FPQ_ASSERT(mine + theirs <= max_batch());
      for (u64 i = 0; i < theirs; ++i) my.buf[mine + i].store_relaxed(q.buf[i].load_relaxed());
    }
    my.local_sum += q.sum.load_relaxed();
    my.sum.store_relaxed(my.local_sum);
    my.children.push_back(&q);
  }

  /// Equal-size push tree meets pop tree: the poppers consume the pushers'
  /// items; nobody touches the central stack.
  u64 eliminate_with(Rec& my, Rec& q) {
    const u64 k = tree_size(my.local_sum);
    Rec& pusher = my.local_sum > 0 ? my : q;
    Rec& popper = my.local_sum > 0 ? q : my;
    for (u64 i = 0; i < k; ++i) popper.buf[i].store_relaxed(pusher.buf[i].load_relaxed());
    adapt(my, true);
    if (&popper == &q) {
      q.result_state.store_release(kStPopped); // publishes q's buf slice
      distribute_push(my, kStPushed);
      return kPushedResult;
    }
    q.result_state.store_release(kStPushed);
    return distribute_pop(my);
  }

  /// Applies the whole tree's batch to the central store and distributes.
  /// The store is a ring addressed by monotone produce/consume counters;
  /// LIFO pops consume from the produce end, FIFO pops from the consume
  /// end. The separate size word keeps bin-empty a single read.
  u64 central_apply(Rec& my) {
    const u64 k = tree_size(my.local_sum);
    const u64 cap = cells_.size();
    // cells_/head_/tail_/size_ are only touched inside the MCS critical
    // section; the lock's edges order them, so the accesses are relaxed.
    if (my.local_sum > 0) {
      bool full = false;
      {
        McsGuard<P> g(lock_);
        const u64 n = size_.load_relaxed();
        if (n + k > cap) {
          full = true;
        } else {
          const u64 t = tail_.load_relaxed();
          for (u64 i = 0; i < k; ++i)
            cells_[(t + i) % cap].store_relaxed(my.buf[i].load_relaxed());
          tail_.store_relaxed(t + k);
          size_.store_relaxed(n + k);
        }
      }
      distribute_push(my, full ? kStFull : kStPushed);
      return full ? kFullResult : kPushedResult;
    }
    {
      McsGuard<P> g(lock_);
      const u64 n = size_.load_relaxed();
      const u64 m = n < k ? n : k;
      if (order_ == BinOrder::kLifo) {
        const u64 t = tail_.load_relaxed();
        for (u64 i = 0; i < m; ++i)
          my.buf[i].store_relaxed(cells_[(t - 1 - i) % cap].load_relaxed());
        tail_.store_relaxed(t - m);
      } else {
        const u64 h = head_.load_relaxed();
        for (u64 i = 0; i < m; ++i)
          my.buf[i].store_relaxed(cells_[(h + i) % cap].load_relaxed());
        head_.store_relaxed(h + m);
      }
      size_.store_relaxed(n - m);
      for (u64 i = m; i < k; ++i) my.buf[i].store_relaxed(kNoItem);
    }
    return distribute_pop(my);
  }

  /// Waits for the capturer's verdict; nullopt means "rejoin layer d and
  /// keep trying" (the record has already re-entered the layer).
  std::optional<u64> finish_as_child(Rec& my, u32 d) {
    const u32 st =
        P::spin_until(my.result_state, [](u32 v) { return v != kStEmpty; });
    if (st == kStRetry) {
      my.result_state.store_relaxed(kStEmpty);
      my.location.store_release(loc(d));
      return std::nullopt;
    }
    adapt(my, true);
    if (st == kStPopped) return distribute_pop(my);
    distribute_push(my, st);
    return st == kStFull ? kFullResult : kPushedResult;
  }

  void distribute_push(Rec& my, u32 state) {
    for (Rec* c : my.children) c->result_state.store_release(state);
  }

  /// my.buf holds tree_size items/sentinels; slice them out to the child
  /// subtrees in capture order and return my own (buf[0]). Each child's
  /// slice is published by the release store of its result_state.
  u64 distribute_pop(Rec& my) {
    u64 off = 1;
    for (Rec* c : my.children) {
      const u64 csize = tree_size(c->sum.load_relaxed());
      for (u64 i = 0; i < csize; ++i) c->buf[i].store_relaxed(my.buf[off + i].load_relaxed());
      c->result_state.store_release(kStPopped);
      off += csize;
    }
    return my.buf[0].load_relaxed();
  }

  u32 effective_width(Rec& my, u32 d) const {
    const u32 full = params_.width[d];
    if (!params_.adaptive) return full;
    const u32 w = static_cast<u32>(my.adaption * full);
    return w >= 1 ? w : 1;
  }

  void adapt(Rec& my, bool collided) {
    if (!params_.adaptive) return;
    if (collided)
      my.adaption = std::min(1.0, my.adaption * 1.5);
    else
      my.adaption = std::max(params_.adapt_min, my.adaption * 0.75);
  }

  FunnelParams params_;
  bool eliminate_;
  BinOrder order_;
  McsLock<P> lock_;
  typename P::template Shared<u64> head_{0}; // consumed count (FIFO end)
  typename P::template Shared<u64> tail_{0}; // produced count
  /// tail - head, for 1-read empty. On its own line: the lock-free empty()
  /// probes must not be invalidated by unrelated head_/tail_ churn.
  alignas(kCacheLineBytes) typename P::template Shared<u64> size_{0};
  std::vector<typename P::template Shared<u64>> cells_;
  std::vector<std::unique_ptr<Rec>> records_;
  /// Layer slots are swapped by unrelated processors — one per cache line.
  std::vector<std::unique_ptr<Padded<Slot>[]>> layers_;
};

} // namespace fpq
