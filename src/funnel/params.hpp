// Tuning parameters of a combining funnel (Shavit & Zemach '98; paper
// §3.1). The paper selected one parameter set by a preliminary sweep at 256
// processors and used it for all funnels; for_procs() plays that role here
// and bench/ablation_funnel_cutoff re-derives the sensitivity.
#pragma once

#include <array>
#include <string>

#include "common/assert.hpp"
#include "common/types.hpp"

namespace fpq {

inline constexpr u32 kMaxFunnelLevels = 6;

/// Collision protocol of the funnel layers.
///  - kExchange: the paper's pairwise protocol — a collision merges exactly
///    two combining trees, so a width-w burst needs Θ(log w) rounds before
///    one processor reaches the central object.
///  - kAggregate: aggregating-funnel protocol (Roh et al. '24, arXiv
///    2411.14420) — a layer slot holds an *open aggregation record* that
///    late arrivals CAS-append their whole batched request onto; the
///    representative closes the aggregate, applies ONE central RMW for all
///    of it, and distributes positional verdicts across the flat list.
enum class FunnelProtocol : u8 { kExchange = 0, kAggregate = 1 };

inline const char* to_string(FunnelProtocol p) {
  return p == FunnelProtocol::kAggregate ? "aggregate" : "exchange";
}

/// Parse "exchange"/"aggregate" into `out`; false on anything else.
inline bool funnel_protocol_from_string(const std::string& s, FunnelProtocol& out) {
  if (s == "exchange") {
    out = FunnelProtocol::kExchange;
    return true;
  }
  if (s == "aggregate") {
    out = FunnelProtocol::kAggregate;
    return true;
  }
  return false;
}

struct FunnelParams {
  /// Number of combining layers a processor traverses before applying its
  /// operation to the central object. Tree size is bounded by 2^levels.
  u32 levels = 2;
  /// Width (slot count) of each layer.
  std::array<u32, kMaxFunnelLevels> width{8, 4, 2, 1, 1, 1};
  /// Collision attempts per layer before trying the central object.
  u32 attempts = 3;
  /// Post-attempt delay (in location re-checks) waiting to be captured.
  std::array<u32, kMaxFunnelLevels> spin{8, 16, 32, 64, 64, 64};
  /// Width adaption (§3.1): processors locally scale the slot-choice width
  /// by a factor in [adapt_min, 1] tracking observed collision success.
  bool adaptive = true;
  double adapt_min = 0.125;
  /// Largest operation batch a single funnel record may carry (Roh et al.
  /// '24 aggregation). Sizes the per-record item buffers of FunnelStack at
  /// batch_limit << levels, so the default keeps the point-operation
  /// footprint; queues that use insert_batch/delete_min_batch raise it via
  /// PqParams::max_batch and chunk larger requests.
  u32 batch_limit = 1;
  /// Which collision protocol the layers run (see FunnelProtocol).
  FunnelProtocol protocol = FunnelProtocol::kExchange;
  /// Aggregation only: how many relax() beats a representative keeps its
  /// record open for late joiners before closing the aggregate — an upper
  /// bound; the window closes early once joins stop arriving (see
  /// agg_idle_limit / AggregateEndpoint::wait_open_window), so the
  /// uncontended cost is the idle threshold, not the whole budget.
  u32 agg_wait = 32;

  /// Adaptive-close idle threshold derived from the budget: a small
  /// fraction of it, clamped to [8, 128] beats. The upper clamp bounds a
  /// solo representative's latency however large the configured window
  /// is; it must still exceed one cross-processor fetch round trip
  /// (~100+ cycles on the simulated mesh, a relax beat being t_pause=4),
  /// or a joiner that already saw the open aggregate loses its join CAS
  /// to the close and is orphaned into a second central RMW.
  u32 agg_idle_limit() const {
    const u32 frac = agg_wait / 8;
    return frac < 8 ? 8 : (frac > 128 ? 128 : frac);
  }

  void validate() const {
    FPQ_ASSERT_MSG(levels <= kMaxFunnelLevels, "too many funnel levels");
    for (u32 d = 0; d < levels; ++d) FPQ_ASSERT_MSG(width[d] >= 1, "zero-width layer");
    FPQ_ASSERT_MSG(attempts >= 1, "attempts must be positive");
    FPQ_ASSERT_MSG(adapt_min > 0.0 && adapt_min <= 1.0, "adapt_min out of (0,1]");
    FPQ_ASSERT_MSG(batch_limit >= 1, "batch_limit must be positive");
  }

  /// The parameter set used throughout the reproduction, scaled to the
  /// expected concurrency level (the paper's preliminary 256-processor
  /// sweep fixed one set; this generalizes it downward).
  static FunnelParams for_procs(u32 nprocs) {
    FunnelParams p;
    if (nprocs >= 128)
      p.levels = 3;
    else if (nprocs >= 32)
      p.levels = 2;
    else
      p.levels = 1;
    p.attempts = 4;
    for (u32 d = 0; d < kMaxFunnelLevels; ++d) {
      const u32 w = nprocs >> (d + 2);
      p.width[d] = w >= 1 ? w : 1;
      p.spin[d] = 16u << d; // wait longer at deeper layers: capture is likely
    }
    return p;
  }

  /// Per-protocol defaults (ISSUE 8 satellite). The exchange table above is
  /// tuned for Θ(log w) pairwise rounds: multiple narrow layers, long
  /// capture spins. Aggregation collapses the tree into one flat list per
  /// representative, so depth buys nothing — one WIDE layer minimizes the
  /// chance that two representatives split a burst, and the tunable that
  /// matters is the open-window length, scaled with expected concurrency.
  static FunnelParams for_procs(u32 nprocs, FunnelProtocol proto) {
    if (proto == FunnelProtocol::kExchange) return for_procs(nprocs);
    FunnelParams p;
    p.protocol = FunnelProtocol::kAggregate;
    p.levels = 1;
    p.attempts = 2; // slot churn resolves by joining, not by re-colliding
    const u32 w = nprocs / 8;
    p.width[0] = w >= 1 ? w : 1;
    for (u32 d = 1; d < kMaxFunnelLevels; ++d) p.width[d] = 1;
    const u32 scaled = 2 * nprocs;
    p.agg_wait = 16 + (scaled < 512 ? scaled : 512);
    return p;
  }
};

} // namespace fpq
