// Combining-funnel shared counter, including the paper's novel *bounded*
// fetch-and-decrement (Fig. 10 and Appendix A).
//
// A processor entering the funnel publishes a record and walks the layers:
// it SWAPs its record into a random slot of the current layer, reads the
// previous occupant, and tries to collide by CAS-locking first itself and
// then the partner (both from <layer d> to EMPTY on their Location words).
//
//   * combine     — same-direction partner: sums merge, the partner becomes
//                   a child and waits; the winner ascends a layer.
//   * eliminate   — opposite-direction partner (bounded mode): the captured
//                   tree completes with a single read of the central value
//                   (Fig. 10 lines 12-18), either cancelling the whole
//                   capturing tree (equal sums) or a slice of the
//                   capturer's *own* batch (partial elimination).
//   * central     — after its attempts (or all layers) a processor CAS-es
//                   the whole tree's sum into the central value, clamping
//                   at the floor (lines 28-37).
//   * distribute  — results flow down the combining tree (lines 39-47).
//
// Batching (Roh et al. '24 aggregation, replacing the paper's strict
// homogeneity rule of Appendix A): a record carries a *batch* of k
// same-direction operations, and bounded-mode trees of the same direction
// combine at any sizes. That is sound because verdict distribution is
// positional — a layer root that wins the central CAS at pre-value v hands
// every participant the value the counter would have shown it under the
// sequential order <my own batch, child 1's subtree, child 2's subtree,
// ...> (advance() folds the floor/ceiling clamp into that sequence), which
// no longer needs equal subtree sizes. Elimination keeps one constraint:
// a captured opposite tree is always served *whole* (it is frozen and can
// absorb exactly one verdict), so it must cancel either the capturer's
// entire remaining sum (full elimination, both trees done) or a slice of
// the capturer's own batch only (partial elimination — children's
// positional verdicts are never split). Oversized opposite captures are
// handed kStRetry, as incompatible trees always were.
//
// Configurations:
//   plain   (bounded=false)           — classic combining-funnel
//                                       fetch-and-add; combines any trees;
//                                       never eliminates; never clamps.
//   bounded (bounded=true)            — unbounded increments + decrements
//                                       clamped at `floor` (what FunnelTree
//                                       needs); `eliminate` can be toggled
//                                       off for the ablation study.
//
// Collision protocol (FunnelParams::protocol, DESIGN.md §13): the above
// describes the paper's pairwise *exchange* protocol. In *aggregate* mode
// (Roh et al. '24) a layer-slot occupant keeps an open aggregation record
// (funnel/aggregate.hpp) that late arrivals CAS their batched requests
// onto; the representative closes the flat list, applies ONE central RMW
// for the whole aggregate, and distributes positional verdicts directly.
// Pairwise elimination is subsumed by the fold: opposite-direction slices
// in one aggregate cancel arithmetically inside that single RMW, and each
// participant's verdict is still the exact pre-value of its slice under
// the sequential order <representative, joiners in close order> with the
// floor/ceiling clamp applied slice by slice.
#pragma once

#include <cmath>
#include <limits>
#include <memory>
#include <optional>
#include <vector>

#include "common/assert.hpp"
#include "common/padded.hpp"
#include "common/types.hpp"
#include "funnel/aggregate.hpp"
#include "funnel/params.hpp"
#include "platform/platform.hpp"
#include "sync/backoff.hpp"
#include "sync/try_budget.hpp"

namespace fpq {

template <Platform P>
class FunnelCounter {
 public:
  struct Config {
    bool bounded = true;
    bool eliminate = true;
    i64 floor = 0;
    /// Optional upper bound for the analogous bounded-fetch-and-increment
    /// (§3.3 mentions BFaI as the symmetric primitive; the priority queues
    /// need only the floor).
    i64 ceiling = kNoCeiling;
  };

  static constexpr i64 kNoCeiling = std::numeric_limits<i64>::max();

  FunnelCounter(u32 maxprocs, const FunnelParams& params, Config cfg, i64 initial = 0)
      : params_(params), cfg_(cfg), central_(initial) {
    params_.validate();
    FPQ_ASSERT(maxprocs >= 1);
    records_.reserve(maxprocs);
    for (u32 i = 0; i < maxprocs; ++i) records_.push_back(std::make_unique<Rec>());
    layers_.resize(params_.levels);
    for (u32 d = 0; d < params_.levels; ++d) {
      layers_[d] = std::make_unique<Padded<Slot>[]>(params_.width[d]);
    }
  }

  /// Fetch-and-increment: returns the pre-operation value. Requires an
  /// unbounded ceiling (use bfai on ceiling-bounded counters).
  i64 fai() {
    FPQ_ASSERT_MSG(cfg_.ceiling == kNoCeiling, "use bfai on a ceiling-bounded counter");
    return run(+1, 1).ticket;
  }

  /// Bounded fetch-and-increment with the configured ceiling: increments
  /// only if the value is below the ceiling; returns the pre-op value.
  i64 bfai(i64 bound) {
    FPQ_ASSERT_MSG(cfg_.bounded && bound == cfg_.ceiling,
                   "funnel counter is bound-specialized at construction");
    return run(+1, 1).ticket;
  }

  /// Bounded fetch-and-decrement with the configured floor: decrements only
  /// if the value is above the floor; returns the pre-operation value.
  /// `bound` must equal the configured floor (kept as a parameter so the
  /// counter is interchangeable with Cas/McsCounter in tree code).
  i64 bfad(i64 bound) {
    FPQ_ASSERT_MSG(cfg_.bounded && bound == cfg_.floor,
                   "funnel counter is bound-specialized at construction");
    return run(-1, 1).ticket;
  }

  /// Plain fetch-and-add (plain configuration only; Fig. 5's baseline).
  i64 faa(i64 delta) {
    FPQ_ASSERT_MSG(!cfg_.bounded, "faa on a bounded funnel counter");
    return run(delta, 1).ticket;
  }

  /// Batched fetch-and-increment: k increments in one funnel traversal.
  /// Returns the number that moved the value (k unless ceiling-clamped).
  u64 fai_batch(u64 k) {
    FPQ_ASSERT_MSG(cfg_.ceiling == kNoCeiling, "use bfai on a ceiling-bounded counter");
    FPQ_ASSERT(k >= 1);
    return run(static_cast<i64>(k), k).successes;
  }

  /// Batched bounded fetch-and-decrement: k decrements in one traversal.
  /// Returns how many of them observed a value above the floor — the
  /// per-op successes a one-at-a-time bfad loop would have counted.
  u64 bfad_batch(i64 bound, u64 k) {
    FPQ_ASSERT_MSG(cfg_.bounded && bound == cfg_.floor,
                   "funnel counter is bound-specialized at construction");
    FPQ_ASSERT(k >= 1);
    return run(-static_cast<i64>(k), k).successes;
  }

  /// Bounded-wait fetch-and-increment: never enters the funnel (no capture,
  /// so no dependence on any partner's liveness) — it CASes the central
  /// value directly under the budget, exactly like the adaptive fast path.
  /// nullopt = budget exhausted, counter untouched.
  std::optional<i64> try_fai(TryClock<P>& clock) {
    FPQ_ASSERT_MSG(cfg_.ceiling == kNoCeiling, "use a ceiling-matched try on bfai counters");
    return try_apply(+1, clock);
  }

  /// Bounded-wait bounded fetch-and-decrement (same contract as try_fai).
  std::optional<i64> try_bfad(i64 bound, TryClock<P>& clock) {
    FPQ_ASSERT_MSG(cfg_.bounded && bound == cfg_.floor,
                   "funnel counter is bound-specialized at construction");
    return try_apply(-1, clock);
  }

  /// Unsynchronized read of the central value (quiescent use only).
  i64 read() const { return central_.load_acquire(); }

  /// Unsynchronized write of the central value. Only legal while no
  /// operation is in flight (used by reactive wrappers when switching
  /// representations).
  void set_value(i64 v) { central_.store_release(v); }

  const Config& config() const { return cfg_; }

  /// Total joiner slices folded by aggregate representatives (quiescent
  /// use; 0 unless the protocol is kAggregate). Lets tests assert that an
  /// adaptively-closed window still forms multi-party aggregates.
  u64 folded_joins() const { return folded_joins_.load_acquire(); }

 private:
  static constexpr u64 kLocEmpty = 0;
  static constexpr u32 kStEmpty = 0;
  static constexpr u32 kStCount = 1;
  static constexpr u32 kStElim = 2;
  /// Handed to a captured partner we cannot serve (opposite trees with
  /// elimination disabled, or an opposite batch larger than our own
  /// remaining slice): "you were not combined — rejoin the layer".
  /// The partner rejoins by storing its own location, so it stays
  /// uncapturable in between and no result can be clobbered.
  static constexpr u32 kStRetry = 3;

  struct alignas(kCacheLineBytes) Rec {
    typename P::template Shared<u64> location{kLocEmpty};
    typename P::template Shared<i64> sum{0};
    typename P::template Shared<i64> result_value{0};
    typename P::template Shared<u32> result_state{kStEmpty};
    // Owner-local state (never touched by other processors). Adaption
    // starts at the minimum: assume low load until collisions prove
    // otherwise (the first contended op raises it immediately).
    i64 own_delta = 0;
    /// Own-batch ops not yet cancelled by a partial elimination; these are
    /// the positions the tree's verdict base applies to first.
    u64 own_rem = 0;
    /// Own-batch ops already cancelled, and the central read their
    /// elimination event was pinned to (the k=1 return value).
    u64 own_elim = 0;
    i64 own_elim_value = 0;
    i64 local_sum = 0;
    double adaption = 0.125;
    std::vector<Rec*> children;
    /// Aggregation-protocol endpoint (own aggregate's join point + link in
    /// a representative's list); idle under the exchange protocol.
    AggregateEndpoint<P> agg;
  };

  /// What one traversal yields: the pre-op value of the owner's first
  /// operation (the single-op API's return) and, in bounded mode, how many
  /// of the owner's k ops moved the value (the batch API's return).
  struct Done {
    i64 ticket = 0;
    u64 successes = 0;
  };

  using Slot = typename P::template Shared<Rec*>;

  static u64 loc(u32 depth) { return static_cast<u64>(depth) + 1; }
  static bool same_sign(i64 a, i64 b) { return (a < 0) == (b < 0); }

  // Ordering contract of the collision protocol (shared with FunnelStack):
  //   * A record's payload (sum, result fields) is written relaxed and
  //     *published* by the release store of its location word; the
  //     capturer's successful acq_rel CAS on that same location word is the
  //     matching acquire, after which it may read the payload relaxed.
  //   * Verdicts flow the other way: result_value is written relaxed and
  //     published by the release store of result_state; the waiter's
  //     acquire spin on result_state is the matching edge.
  //   * Layer-slot exchanges are acq_rel so a record pointer read from a
  //     slot carries the owner's preceding location publication.
  //   * The central CAS is acq_rel: each winner acquires the edges of every
  //     earlier winner, which is all the ordering the tickets need.
  Done run(i64 delta, u64 k) {
    Rec& my = *records_[P::self()];
    // Adaption (§3.1): a processor that has seen no collisions lately
    // traverses zero combining layers — it applies its batch directly
    // and only enters the funnel when the direct CAS loses a race. This is
    // the "how many layers to traverse" half of the paper's adaption; the
    // layer-width half is effective_width().
    if (params_.adaptive && my.adaption <= params_.adapt_min * 1.01) {
      Backoff<P> fast_backoff(8, 64);
      for (u32 tries = 0; tries < 3; ++tries) {
        i64 val = central_.load_relaxed();
        const i64 nv_fast = clamp(val + delta);
        if (central_.compare_exchange(val, nv_fast, MemOrder::kAcqRel, MemOrder::kRelaxed))
          return {val, static_cast<u64>(std::llabs(nv_fast - val))};
        fast_backoff.spin();
      }
      my.adaption = std::min(1.0, my.adaption * 2.0); // contention after all
    }
    my.own_delta = delta;
    my.own_rem = k;
    my.own_elim = 0;
    my.own_elim_value = 0;
    my.local_sum = delta;
    my.children.clear();
    my.result_state.store_relaxed(kStEmpty);
    my.sum.store_relaxed(delta);
    if (params_.protocol == FunnelProtocol::kAggregate) return run_aggregate(my);
    u32 d = 0;
    my.location.store_release(loc(0)); // publishes sum/result_state
    bool collided = false;
    Backoff<P> central_backoff(16, 2048);

    for (;;) {
      // ---- Collision attempts at layer d (Fig. 10 lines 5-27).
      u32 n = 0;
      while (n < params_.attempts && d < params_.levels) {
        ++n;
        const u32 wid = effective_width(my, d);
        Rec* q = (*layers_[d][P::rnd(wid)]).exchange(&my, MemOrder::kAcqRel);
        if (q != nullptr && q != &my) {
          u64 mloc = loc(d);
          if (!my.location.compare_exchange(mloc, kLocEmpty, MemOrder::kAcqRel,
                                            MemOrder::kRelaxed)) {
            if (auto r = finish_as_child(my, d)) return *r; // captured first
            continue;                                       // told to retry
          }
          u64 qloc = loc(d);
          if (q->location.compare_exchange(qloc, kLocEmpty, MemOrder::kAcqRel,
                                           MemOrder::kRelaxed)) {
            const i64 qsum = q->sum.load_relaxed(); // ordered by the capture CAS
            if (cfg_.bounded && cfg_.eliminate && qsum == -my.local_sum) {
              return eliminate_with(my, *q, qsum); // opposite equal trees
            }
            if (cfg_.bounded && cfg_.eliminate && !same_sign(qsum, my.local_sum) &&
                static_cast<u64>(std::llabs(qsum)) <= my.own_rem) {
              // Partial elimination: q's whole tree cancels a slice of my
              // own batch; my children's pending positions are untouched.
              partial_eliminate(my, *q, qsum);
              my.location.store_release(loc(d)); // publishes the shrunk sum
              continue;
            }
            if (!cfg_.bounded || same_sign(qsum, my.local_sum)) {
              // Combine: q's tree hangs under ours; ascend a layer.
              my.local_sum += qsum;
              my.sum.store_relaxed(my.local_sum);
              my.children.push_back(q);
              collided = true;
              ++d;
              my.location.store_release(loc(d));
              n = 0; // fresh attempt budget at the new layer (line 22)
              continue;
            }
            // Opposite trees we cannot serve (elimination off, or q is
            // bigger than our own remaining batch): we hold q captured and
            // cannot give it a whole-tree verdict — tell it to rejoin the
            // layer itself. Silently restoring q's location would race
            // with q noticing the capture and waiting forever.
            q->result_state.store_release(kStRetry);
            my.location.store_release(loc(d));
            continue;
          }
          // Failed to lock the partner; rejoin the layer (line 24).
          my.location.store_release(loc(d));
        }
        // Wait to be captured for a while (lines 25-26). The relax between
        // probes matters on both backends: natively it is the polite spin
        // hint; on the simulator the probe is a cache hit, and hit-elision
        // never yields on hits — without the relax (which charges a cycle
        // and yields) a stall plan that freezes every other fiber would
        // leave this loop monopolizing the scheduler.
        for (u32 i = 0; i < params_.spin[d]; ++i) {
          if (my.location.load_relaxed() != loc(d)) {
            if (auto r = finish_as_child(my, d)) return *r;
            break; // retry: rejoin the attempts loop
          }
          P::relax();
        }
      }

      // ---- Central attempt (lines 28-37).
      u64 mloc = loc(d);
      if (!my.location.compare_exchange(mloc, kLocEmpty, MemOrder::kAcqRel,
                                        MemOrder::kRelaxed)) {
        if (auto r = finish_as_child(my, d)) return *r;
        continue;
      }
      i64 val = central_.load_relaxed();
      const i64 nv = clamp(val + my.local_sum);
      if (central_.compare_exchange(val, nv, MemOrder::kAcqRel, MemOrder::kRelaxed)) {
        adapt(my, collided);
        distribute(my, kStCount, val);
        return {ticket_for(my, val), my.own_elim + own_successes(my, val)};
      }
      my.location.store_release(loc(d)); // lost the race; rejoin the funnel
      // Randomized backoff keeps failed central CAS-ers from convoying
      // (while waiting in the layer they remain capturable).
      central_backoff.spin();
      if (my.location.load_relaxed() != loc(d)) {
        if (auto r = finish_as_child(my, d)) return *r;
      }
    }
  }

  // ---- Aggregation protocol (DESIGN.md §13). The record's fields are
  // already initialized and its payload (sum) stored relaxed by run();
  // publication happens through the slot-claim CAS (representatives) or
  // the join CAS on the occupant's `agg.head` (joiners) — the `location`
  // word is never used, so nothing here can be captured pairwise.
  Done run_aggregate(Rec& my) {
    for (u32 n = 0; n < params_.attempts; ++n) {
      Slot& slot = *layers_[0][P::rnd(effective_width(my, 0))];
      Rec* cur = slot.load_acquire();
      if (cur == nullptr) {
        Rec* expected = nullptr;
        if (slot.compare_exchange(expected, &my, MemOrder::kAcqRel, MemOrder::kRelaxed))
          return serve_aggregate(my, slot);
        cur = expected;
      }
      if (cur == nullptr || cur == &my) continue; // lost the claim race / stale self
      if (cur->agg.try_join(&my)) {
        adapt(my, true); // joining is the aggregation analogue of colliding
        return finish_as_aggregate_child(my);
      }
      // The occupant's aggregate is closed: help-clear the stale slot so
      // the next arrival can claim it, then retry. Helping across tenures
      // is benign — the CAS only clears the exact pointer we saw.
      slot.compare_exchange(cur, nullptr, MemOrder::kAcqRel, MemOrder::kRelaxed);
    }
    // No slot claimed, no aggregate joined: apply the own batch directly.
    adapt(my, false);
    Backoff<P> central_backoff(16, 2048);
    for (;;) {
      i64 val = central_.load_relaxed();
      if (central_.compare_exchange(val, after_slice(val, my.local_sum), MemOrder::kAcqRel,
                                    MemOrder::kRelaxed))
        return {ticket_for(my, val), my.own_elim + own_successes(my, val)};
      central_backoff.spin();
    }
  }

  /// Representative path: keep the aggregate open for up to agg_wait beats
  /// (closing early once joins stop arriving), close it, release the slot,
  /// fold every participant's slice into ONE central RMW, and hand out
  /// positional verdicts. Sequential order of the aggregate: <my own
  /// batch, joiners in close order>, each slice applied whole with the
  /// clamp folded in (after_slice).
  Done serve_aggregate(Rec& my, Slot& slot) {
    my.agg.open();
    my.agg.wait_open_window(params_.agg_wait, params_.agg_idle_limit());
    my.agg.close_into(my.children);
    if (!my.children.empty())
      folded_joins_.fetch_add(my.children.size(), MemOrder::kAcqRel);
    Rec* self = &my;
    slot.compare_exchange(self, nullptr, MemOrder::kAcqRel, MemOrder::kRelaxed);
    adapt(my, !my.children.empty());
    Backoff<P> central_backoff(16, 2048);
    for (;;) {
      i64 val = central_.load_relaxed();
      i64 nv = after_slice(val, my.local_sum);
      for (Rec* c : my.children) nv = after_slice(nv, c->sum.load_relaxed());
      if (central_.compare_exchange(val, nv, MemOrder::kAcqRel, MemOrder::kRelaxed)) {
        i64 v = after_slice(val, my.local_sum);
        for (Rec* c : my.children) {
#ifdef FPQ_SEEDED_BUG_AGG_VERDICT
          // Seeded-bug corpus (negative control, tests/test_dpor_corpus.cpp):
          // the PR 8 read-after-release bug reintroduced. Reading the slice
          // after publishing the verdict races with the freed child reusing
          // its record for the next operation and rewriting sum.
          c->result_value.store_relaxed(v);
          c->result_state.store_release(kStCount);
          const i64 csum = c->sum.load_relaxed();
#else
          // Read the slice BEFORE releasing the verdict: the release frees
          // the child to start its next operation and rewrite its sum.
          const i64 csum = c->sum.load_relaxed();
          c->result_value.store_relaxed(v);
          c->result_state.store_release(kStCount); // publishes the verdict
#endif
          v = after_slice(v, csum);
        }
        return {ticket_for(my, val), my.own_elim + own_successes(my, val)};
      }
      central_backoff.spin();
    }
  }

  /// Joiner path: the representative is committed to serving us, so the
  /// only possible verdict is a positional kStCount — aggregation never
  /// hands back kStRetry (any sign and size folds exactly).
  Done finish_as_aggregate_child(Rec& my) {
    const u32 st = P::spin_until(my.result_state, [](u32 v) { return v != kStEmpty; });
    FPQ_ASSERT_MSG(st == kStCount, "aggregate verdicts are always positional");
    const i64 base = my.result_value.load_relaxed(); // ordered by the acquire spin
    return {ticket_for(my, base), my.own_elim + own_successes(my, base)};
  }

  /// Counter value after one whole slice (a record's homogeneous batch)
  /// applied from `base`. Bounded slices are k ops of ±1, so |sum| is the
  /// op count and the clamp folds in positionally; plain mode is exact
  /// addition of an arbitrary delta.
  i64 after_slice(i64 base, i64 ssum) const {
    if (!cfg_.bounded) return base + ssum;
    return advance(base, static_cast<u64>(std::llabs(ssum)), ssum < 0);
  }

  /// Elimination (Fig. 10 lines 12-18): both trees complete using one read
  /// of the central value. Every member of the decrementing tree returns v
  /// (adjusted up off the floor), every member of the incrementing tree
  /// v-1 — the interleaving "inc, dec, inc, dec, ..." made explicit.
  Done eliminate_with(Rec& my, Rec& q, i64 qsum) {
    i64 v = central_.load_acquire();
    if (v == cfg_.floor) v += 1; // line 14: the leading op must be the inc
    const i64 my_base = my.local_sum < 0 ? v : v - 1;
    const i64 q_base = qsum < 0 ? v : v - 1;
    q.result_value.store_relaxed(q_base);
    q.result_state.store_release(kStElim); // publishes the verdict payload
    adapt(my, true);
    distribute(my, kStElim, my_base);
    // Every eliminated op is paired against an opposite one at a value off
    // the floor, so all of my remaining own ops count as successes.
    return {ticket_for(my, my_base), my.own_elim + my.own_rem};
  }

  /// Partial elimination: the captured opposite tree q (|q| <= my.own_rem)
  /// cancels |q| ops of *my own* batch under the same single-central-read
  /// argument as eliminate_with — q's side is served whole with a flat
  /// verdict, my cancelled slice is accounted in own_elim, and my tree
  /// (children untouched) rejoins the layer with the shrunk sum.
  void partial_eliminate(Rec& my, Rec& q, i64 qsum) {
    i64 v = central_.load_acquire();
    if (v == cfg_.floor) v += 1;
    q.result_value.store_relaxed(qsum < 0 ? v : v - 1);
    q.result_state.store_release(kStElim);
    const u64 served = static_cast<u64>(std::llabs(qsum));
    my.own_rem -= served;
    my.own_elim += served;
    my.own_elim_value = my.local_sum < 0 ? v : v - 1;
    my.local_sum += qsum;
    my.sum.store_relaxed(my.local_sum);
    adapt(my, true);
  }

  /// Waits for the capturer's verdict. Returns the operation's result, or
  /// nullopt if the capturer could not serve us (kStRetry) — in that case
  /// this rejoins layer `d` before returning, so the caller just continues.
  std::optional<Done> finish_as_child(Rec& my, u32 d) {
    const u32 st = P::spin_until(my.result_state, [](u32 v) { return v != kStEmpty; });
    if (st == kStRetry) {
      my.result_state.store_relaxed(kStEmpty);
      my.location.store_release(loc(d)); // rejoin; we were uncapturable meanwhile
      return std::nullopt;
    }
    const i64 base = my.result_value.load_relaxed(); // ordered by the acquire spin
    adapt(my, true); // being captured is a successful collision too
    distribute(my, st, base);
    const u64 succ = st == kStElim ? my.own_elim + my.own_rem
                                   : my.own_elim + own_successes(my, base);
    return Done{ticket_for(my, base), succ};
  }

  /// Hands each child subtree its position in the operation sequence
  /// (Fig. 10 lines 41-47, with the floor clamp folded into the sequence).
  /// Captured children are frozen (they spin on result_state), so their
  /// sums are stable and readable relaxed; each verdict is published by the
  /// release store of the child's result_state.
  void distribute(Rec& my, u32 event, i64 base) {
    if (my.children.empty()) return;
    if (event == kStElim) {
      for (Rec* c : my.children) {
        c->result_value.store_relaxed(base);
        c->result_state.store_release(kStElim);
      }
      return;
    }
    if (!cfg_.bounded) {
      i64 running = my.own_delta;
      for (Rec* c : my.children) {
        const i64 csum = c->sum.load_relaxed();
        c->result_value.store_relaxed(base + running);
        c->result_state.store_release(kStCount);
        running += csum;
      }
      return;
    }
    // Bounded: homogeneous tree, all deltas share my.own_delta's sign. My
    // own remaining batch occupies the first own_rem positions.
    const bool decrementing = my.own_delta < 0;
    u64 steps = my.own_rem;
    for (Rec* c : my.children) {
      const u64 csize = static_cast<u64>(std::llabs(c->sum.load_relaxed()));
      c->result_value.store_relaxed(advance(base, steps, decrementing));
      c->result_state.store_release(kStCount);
      steps += csize;
    }
  }

  /// Direct-CAS core of the try_* entries. Lock-free: each failed CAS
  /// means some other operation committed.
  std::optional<i64> try_apply(i64 delta, TryClock<P>& clock) {
    for (;;) {
      i64 val = central_.load_relaxed();
      if (central_.compare_exchange(val, clamp(val + delta), MemOrder::kAcqRel,
                                    MemOrder::kRelaxed))
        return val;
      if (!clock.tick_backoff()) return std::nullopt;
    }
  }

  /// Value of the counter after `steps` same-direction ops starting at
  /// `base`: clamped at the floor for decrements, at the ceiling for
  /// increments.
  i64 advance(i64 base, u64 steps, bool decrementing) const {
    const i64 s = static_cast<i64>(steps);
    if (decrementing) {
      const i64 v = base - s;
      return cfg_.bounded && v < cfg_.floor ? cfg_.floor : v;
    }
    const i64 v = base + s;
    return cfg_.bounded && v > cfg_.ceiling ? cfg_.ceiling : v;
  }

  /// How many of my own remaining ops move the value when they execute
  /// positionally first from pre-value `base`.
  u64 own_successes(const Rec& my, i64 base) const {
    if (!cfg_.bounded) return my.own_rem;
    if (my.own_delta < 0) {
      const i64 room = base - cfg_.floor;
      const u64 r = room > 0 ? static_cast<u64>(room) : 0;
      return r < my.own_rem ? r : my.own_rem;
    }
    if (cfg_.ceiling == kNoCeiling) return my.own_rem;
    const i64 room = cfg_.ceiling - base;
    const u64 r = room > 0 ? static_cast<u64>(room) : 0;
    return r < my.own_rem ? r : my.own_rem;
  }

  /// The single-op API's return: the first own op's pre-value — positional
  /// when any own op is still pending, else the pinned elimination read.
  i64 ticket_for(const Rec& my, i64 base) const {
    return my.own_rem > 0 ? base : my.own_elim_value;
  }

  i64 clamp(i64 v) const {
    if (!cfg_.bounded) return v;
    if (v < cfg_.floor) return cfg_.floor;
    if (v > cfg_.ceiling) return cfg_.ceiling;
    return v;
  }

  u32 effective_width(Rec& my, u32 d) const {
    const u32 full = params_.width[d];
    if (!params_.adaptive) return full;
    const u32 w = static_cast<u32>(my.adaption * full);
    return w >= 1 ? w : 1;
  }

  void adapt(Rec& my, bool collided) {
    if (!params_.adaptive) return;
    if (collided)
      my.adaption = std::min(1.0, my.adaption * 1.5);
    else
      my.adaption = std::max(params_.adapt_min, my.adaption * 0.75);
  }

  FunnelParams params_;
  Config cfg_;
  /// The hot word every surviving tree CASes; keep it off its neighbors'
  /// cache lines.
  alignas(kCacheLineBytes) typename P::template Shared<i64> central_;
  /// Aggregation fold statistic (folded_joins); cold, written only by
  /// representatives that actually collected joiners.
  alignas(kCacheLineBytes) typename P::template Shared<u64> folded_joins_{0};
  std::vector<std::unique_ptr<Rec>> records_;
  /// Layer slots are swapped by unrelated processors — one per cache line.
  std::vector<std::unique_ptr<Padded<Slot>[]>> layers_;
};

} // namespace fpq
