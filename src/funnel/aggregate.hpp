// Aggregation collision endpoint (Roh et al. '24, arXiv 2411.14420 —
// "Aggregating Funnels for Faster Fetch&Add and Queues").
//
// Where the exchange protocol resolves a layer collision *pairwise* (one
// collision merges exactly two combining trees, so a width-w burst needs
// Θ(log w) rounds before someone reaches the central object), aggregation
// lets a layer slot's occupant keep an *open aggregation record*: every
// late arrival CAS-appends its whole batched request onto the occupant's
// list, the occupant ("representative") closes the list, applies ONE
// central RMW for the entire aggregate, and hands each participant its
// positional verdict directly — a flat list instead of a binary tree.
//
// The endpoint is embedded in a funnel record (FunnelCounter::Rec /
// FunnelStack::Rec, which must expose it as a member named `agg`): `head`
// is the join point of the record's *own* aggregate when it acts as
// representative; `next` is the record's link in *someone else's* aggregate
// when it joins. `head` holds one of
//     kAggClosed    — no aggregate open on this record (initial state);
//     kAggOpenEmpty — open, nobody has joined yet;
//     a Rec*        — open, encoded pointer to the most recent joiner
// (records are cache-line aligned, so real pointers never collide with the
// two small sentinels).
//
// ABA discipline (why no tags are needed): a representative opens `head`
// only AFTER privately winning its layer slot, and is committed from that
// point to close the list and serve everyone on it. A joiner that read a
// stale slot pointer and lands on the owner's *next* aggregate has made a
// perfectly valid join — requests are self-describing (the joined record
// carries its whole batch), so it never matters *which* tenure's aggregate
// serves them. Likewise the join CAS publishing `next = h` is consistent
// across tenures: the CAS succeeding means `head == h` at that instant, so
// the list stays well-formed no matter when `h` was read.
//
// Memory-order contract (DESIGN.md §8 / §13): a joiner's payload (batch
// sums, item buffers, mark) is written relaxed and published by the
// release half of its join CAS on `head`; the representative's acq_rel
// exchange that closes the list is the matching acquire, made transitive
// through the intermediate joiners' acq_rel CASes (each absorbs and
// re-publishes the sync clock of the word). `open()` is a release store so
// a joiner arriving through a stale slot read is still ordered after the
// representative's record reuse. Verdicts flow back on the usual
// result_state release / acquire-spin edge owned by the records. No
// seq_cst anywhere: there is no store-buffering shape — every decision is
// made through RMWs on the single `head` word.
#pragma once

#include <vector>

#include "common/padded.hpp"
#include "common/types.hpp"
#include "platform/platform.hpp"

namespace fpq {

/// One record's aggregation endpoint. Cache-line aligned so the `head`
/// word — CASed by every joiner of this record's aggregate — does not
/// false-share with the owning record's location/sum/result words, which
/// the exchange-protocol machinery and the verdict edges keep hot.
template <Platform P>
struct alignas(kCacheLineBytes) AggregateEndpoint {
  static constexpr u64 kAggClosed = 1;
  static constexpr u64 kAggOpenEmpty = 0;

  typename P::template Shared<u64> head{kAggClosed};
  typename P::template Shared<u64> next{kAggOpenEmpty};

  /// Representative only, after winning a layer slot: start accepting
  /// joiners. Release: publishes the owner's record reuse (result_state
  /// reset) to joiners that reach us through a stale slot pointer.
  void open() { head.store_release(kAggOpenEmpty); }

  /// Append `self` (whose payload is already written, relaxed) onto this
  /// record's open aggregate. False = the aggregate is closed (or closed
  /// mid-attempt); the caller should help-clear the slot and retry.
  /// The success order is acq_rel: release publishes self's payload and
  /// `next` link; acquire extends the word's sync clock so the closing
  /// exchange observes every joiner transitively.
  template <class Rec>
  bool try_join(Rec* self) {
    u64 h = head.load_relaxed();
    while (h != kAggClosed) {
      self->agg.next.store_relaxed(h);
      if (head.compare_exchange(h, reinterpret_cast<u64>(self), MemOrder::kAcqRel,
                                MemOrder::kRelaxed))
        return true;
    }
    return false;
  }

  /// Representative only, between open() and close_into(): burn up to
  /// `budget` relax beats, returning early once no new joiner has been
  /// observed for `idle_limit` consecutive beats (adaptive window close —
  /// a solo caller stops paying the whole window, a busy one keeps it open
  /// to the budget). The polls are relaxed reads of a word the join CASes
  /// write acq_rel — pure hints, racing nothing; the closing exchange in
  /// close_into still owns the synchronizing edge.
  void wait_open_window(u32 budget, u32 idle_limit) {
    u64 last = head.load_relaxed();
    u32 idle = 0;
    for (u32 i = 0; i < budget && idle < idle_limit; ++i) {
      P::relax();
      if ((i & 3u) != 3u) continue; // poll every 4th beat: mostly local work
      const u64 h = head.load_relaxed();
      if (h == last) {
        idle += 4;
      } else {
        last = h; // someone joined: restart the idle clock
        idle = 0;
      }
    }
  }

  /// Representative only: stop accepting joiners and collect them (most
  /// recent first) into `out`. The acquire half of the exchange is the
  /// edge that makes every joiner's relaxed payload readable; the `next`
  /// links are readable relaxed under the same edge.
  template <class Rec>
  void close_into(std::vector<Rec*>& out) {
    u64 p = head.exchange(kAggClosed, MemOrder::kAcqRel);
    while (p != kAggOpenEmpty) {
      Rec* r = reinterpret_cast<Rec*>(p);
      out.push_back(r);
      p = r->agg.next.load_relaxed();
    }
  }
};

} // namespace fpq
