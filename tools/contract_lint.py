#!/usr/bin/env python3
"""Static enforcement of the Platform::Shared memory-ordering contract.

The dynamic half of the contract lives in the simulator's race detector
(src/sim/race_detector.hpp, DESIGN.md §10); this linter is the static
half. It greps the algorithm layers for three contract violations that
are cheap to catch at review time:

  raw-atomic       `std::atomic` outside the platform layer. Algorithms
                   must go through `Platform::Shared` so both backends —
                   and the detector — see every access.

  seq-cst          a sequentially-consistent access (explicit
                   `MemOrder::kSeqCst` or an unsuffixed default like
                   `.load()` / `.store(v)` / 2-arg `compare_exchange`)
                   outside the files enumerated in the DESIGN.md §8.2
                   exemption table. Seq_cst is reserved for
                   store-buffering handshakes that are argued there.

  unpadded-shared  a contiguous container of `Shared<T>` without the
                   `Padded<>` wrapper (false-sharing audit, §8.4).
                   Deliberately-contiguous arrays (lock-serialized data,
                   bulk-transfer buffers) carry a waiver.

  unpadded-shard   a contiguous container of per-shard descriptor structs
                   (element type named `Shard`/`*Shard*`) without the
                   `Padded<>` wrapper. A shard descriptor bundles that
                   shard's hot words (stash, monitor EWMAs, server lock,
                   request slots); packing descriptors back-to-back makes
                   every neighbour pair false-share, which silently undoes
                   the whole point of sharding (DESIGN.md §14). Plain
                   value types (`ShardConfig`, `ShardStats`,
                   `ShardPolicyKind`) are copied snapshots, not contended
                   state, and are not flagged.

  naked-reclaim    a `delete` / `delete[]` / `free()` expression outside
                   src/reclaim/. Nodes that were ever reachable through a
                   `Shared` pointer must die via `reclaim::Guard::retire`
                   (DESIGN.md §11) — a direct free races with concurrent
                   readers that still hold the pointer. Ownership-clear
                   frees (never-published nodes, quiescent destructor
                   teardown) carry a waiver stating why no reader can
                   exist. Deleted-function declarations (`= delete`) are
                   not flagged.

  schedule-fork-point
                   a concurrency primitive inside the scheduler layer
                   (src/sim/): `std::atomic`, `std::thread`/`std::mutex`,
                   or an instrumented `Shared<>`/`SimShared<>` word. The
                   model checker (DESIGN.md §15) is sound only if every
                   schedulable access flows through Engine::on_access —
                   a raw atomic below that hook is an access the explorer
                   never sees as a fork point (missed dependence edges =
                   unsound pruning), and an instrumented word *inside*
                   the engine would re-enter the hook from the scheduler
                   itself. Host-side state that is provably outside the
                   simulated machine carries a waiver saying so.

  naked-spin       an unbounded loop (`for (;;)`, `while (true)`,
                   `while (1)`) outside src/sync/ whose body shows no
                   escalation or parking token — no Backoff, spin_until /
                   wait_on, P::relax / pause, heartbeat, or TryClock
                   tick. Under the fault model (DESIGN.md §12) such a
                   loop spinning on a dead processor's word monopolizes
                   the simulated core invisibly: the hit-elision rule
                   never yields and the watchdog cannot distinguish it
                   from progress. Genuine lock-free retry loops (each
                   iteration re-reads shared state and one CAS failure
                   implies another processor progressed) carry a waiver
                   saying so.

A line is waived by a trailing comment, or by a comment anywhere in the
contiguous `//` block immediately above it:

    // contract-lint: allow(<rule>) <reason>

Exit status: 0 clean, 1 findings, 2 usage/internal error. Run from the
repository root (CI does) or pass --root. `--self-test` checks the rules
against embedded positive/negative snippets and needs no repository.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

# Directories scanned for contract violations (relative to the repo root).
SCAN_DIRS = ["src"]
# The platform layer implements the contract and the bench support layer
# measures the raw backend; both legitimately name std::atomic. The sim
# layer (race detector) and common/ (the MemOrder enum itself) reason
# *about* orders, so the seq-cst rule skips them too. src/sim is owned by
# the stricter schedule-fork-point rule instead of raw-atomic: same
# tokens, scheduler-specific argument, one finding per line.
RAW_ATOMIC_EXEMPT_DIRS = ["src/platform", "src/bench_support", "src/sim"]
SEQ_CST_EXEMPT_DIRS = ["src/platform", "src/bench_support", "src/sim", "src/common"]
# The reclamation layer is where deferred frees are implemented; its
# deleters are the one place a real `delete` belongs.
NAKED_RECLAIM_EXEMPT_DIRS = ["src/reclaim"]
# src/sync implements the escalation primitives themselves (Backoff, the
# lock slow paths); the platform/sim layers host the scheduler and the
# native backend's host-side loops, which the fault model does not cover.
NAKED_SPIN_EXEMPT_DIRS = ["src/sync", "src/platform", "src/sim",
                          "src/bench_support", "src/common"]
# The scheduler layer: everything here runs *underneath* the instrumented
# access hook, so concurrency primitives and instrumented words are both
# escapes (see the schedule-fork-point rule in the docstring).
FORK_POINT_DIRS = ["src/sim"]

DESIGN_DOC = "DESIGN.md"
EXEMPTION_SECTION = "### 8.2"

WAIVER_RE = re.compile(r"contract-lint:\s*allow\(([a-z-]+)\)")

RAW_ATOMIC_RE = re.compile(r"\bstd::atomic\b|#\s*include\s*<atomic>")
EXPLICIT_SEQ_CST_RE = re.compile(r"\bMemOrder::kSeqCst\b")
# Unsuffixed Shared operations default to seq_cst (DESIGN.md §8.1):
#   .load()  .store(v)  and RMWs whose argument list names no MemOrder.
DEFAULT_LOAD_RE = re.compile(r"\.load\(\s*\)")
DEFAULT_STORE_RE = re.compile(r"\.store\(")
DEFAULT_RMW_RE = re.compile(r"\.(compare_exchange|fetch_add|fetch_sub|exchange)\(")
# A contiguous container whose element type is Shared<...>; a Padded
# wrapper anywhere on the line waives it (checked separately).
UNPADDED_SHARED_RE = re.compile(
    r"(?:vector|array)<[^;]*\bShared<|\bShared<[^<>;]*>\s*\[\s*\]"
)
# A contiguous container of per-shard descriptors: vector/array element or
# C-style/unique_ptr array whose type name contains `Shard`. Padded<> on
# the line waives it (checked separately); value-snapshot types are
# allowlisted below.
UNPADDED_SHARD_RE = re.compile(
    r"(?:vector|array)<[^;]*?\b(\w*Shard\w*)\b|\b(\w*Shard\w*)(?:<[^<>;]*>)?\s*\[\s*\]?"
)
SHARD_VALUE_TYPES = {"ShardConfig", "ShardStats", "ShardPolicyKind", "kMaxShards"}
# A delete-expression (`delete p`, `delete[] p`) or a C free call. The
# negative lookbehind skips deleted-function declarations (`= delete;`,
# `= delete ;`), which end the statement rather than name an operand.
NAKED_DELETE_RE = re.compile(r"\bdelete\b\s*(?:\[\s*\]\s*)?(?=[A-Za-z_(*:])")
NAKED_FREE_RE = re.compile(r"\b(?:std\s*::\s*)?free\s*\(")
# Concurrency primitives and instrumented words that must not appear in
# the scheduler layer: real atomics/threads escape Engine::on_access (the
# explorer's fork-point source), and Shared<>/SimShared<> words would
# re-enter the hook from inside the engine. `\bShared<` deliberately does
# not match `SimShared<` (no word boundary there) — both alternations are
# listed so either spelling is caught and named in the finding.
FORK_POINT_RE = re.compile(
    r"\bstd\s*::\s*atomic\b|#\s*include\s*<(?:atomic|thread|mutex|condition_variable)>|"
    r"\bstd\s*::\s*(?:jthread|thread|mutex|recursive_mutex|condition_variable\w*)\b|"
    r"\bSimShared<|\bShared<"
)
# An unbounded loop head; the body is then searched for escalation tokens.
NAKED_SPIN_HEAD_RE = re.compile(
    r"\bfor\s*\(\s*;\s*;\s*\)|\bwhile\s*\(\s*(?:true|1)\s*\)"
)
# Anything that makes an unbounded loop visible to the fault model: backoff
# escalation (Backoff members or .spin()), the engine's parking facility
# (spin_until/wait_on), an explicit pause/relax, a liveness heartbeat, or a
# TryClock budget charge.
SPIN_ESCALATION_RE = re.compile(
    r"Backoff|backoff|spin_until|wait_on|\brelax\(|\bpause\(|\.spin\(|"
    r"heartbeat\(|tick\(|tick_backoff\("
)


def parse_exemptions(design_path: Path) -> set[str]:
    """Files allowed to use seq_cst: the §8.2 table rows `| `path` | ... |`."""
    try:
        text = design_path.read_text(encoding="utf-8")
    except OSError as e:
        sys.exit(f"contract_lint: cannot read {design_path}: {e}")
    start = text.find(EXEMPTION_SECTION)
    if start < 0:
        sys.exit(f"contract_lint: {design_path} has no '{EXEMPTION_SECTION}' section")
    next_heading = text.find("\n### ", start + 1)
    section = text[start : next_heading if next_heading > 0 else len(text)]
    return set(re.findall(r"^\|\s*`([^`]+)`\s*\|", section, flags=re.MULTILINE))


def spin_body(lines: list[str], idx: int) -> str:
    """The loop body starting at the loop head on lines[idx]: joined code
    (comments stripped) until the body's braces balance, or the single
    following statement for an unbraced loop. Bounded lookahead."""
    depth = 0
    opened = False
    out: list[str] = []
    j = idx
    while j < len(lines) and j - idx < 200:
        code = lines[j].split("//", 1)[0]
        out.append(code)
        for ch in code:
            if ch == "{":
                depth += 1
                opened = True
            elif ch == "}":
                depth -= 1
        if opened and depth <= 0:
            break
        if not opened and j > idx and code.strip():
            break  # unbraced single-statement body
        j += 1
    return "\n".join(out)


def waived(rule: str, lines: list[str], idx: int) -> bool:
    """Trailing waiver on the line itself, or anywhere in the contiguous
    comment block immediately above it (multi-line waiver comments)."""
    if 0 <= idx < len(lines):
        m = WAIVER_RE.search(lines[idx])
        if m and m.group(1) == rule:
            return True
    look = idx - 1
    while look >= 0 and lines[look].lstrip().startswith("//"):
        m = WAIVER_RE.search(lines[look])
        if m and m.group(1) == rule:
            return True
        look -= 1
    return False


def lint_file(rel: str, lines: list[str], seq_cst_exempt_files: set[str]) -> list[str]:
    findings = []

    def finding(idx: int, rule: str, message: str) -> None:
        if not waived(rule, lines, idx):
            findings.append(f"{rel}:{idx + 1}: [{rule}] {message}")

    raw_atomic_scanned = not any(rel.startswith(d + "/") for d in RAW_ATOMIC_EXEMPT_DIRS)
    seq_cst_scanned = (
        not any(rel.startswith(d + "/") for d in SEQ_CST_EXEMPT_DIRS)
        and rel not in seq_cst_exempt_files
    )
    naked_reclaim_scanned = not any(
        rel.startswith(d + "/") for d in NAKED_RECLAIM_EXEMPT_DIRS
    )
    naked_spin_scanned = not any(
        rel.startswith(d + "/") for d in NAKED_SPIN_EXEMPT_DIRS
    )
    fork_point_scanned = any(rel.startswith(d + "/") for d in FORK_POINT_DIRS)

    for idx, line in enumerate(lines):
        code = line.split("//", 1)[0]
        if raw_atomic_scanned and RAW_ATOMIC_RE.search(code):
            finding(idx, "raw-atomic",
                    "std::atomic outside src/platform — use Platform::Shared")
        if seq_cst_scanned:
            if EXPLICIT_SEQ_CST_RE.search(code):
                finding(idx, "seq-cst",
                        "explicit kSeqCst outside the DESIGN.md §8.2 exemption table")
            if DEFAULT_LOAD_RE.search(code) or DEFAULT_STORE_RE.search(code):
                finding(idx, "seq-cst",
                        "unsuffixed load()/store() defaults to seq_cst; "
                        "annotate or add the file to DESIGN.md §8.2")
            else:
                m = DEFAULT_RMW_RE.search(code)
                if m:
                    # The argument list may wrap; join continuation lines
                    # until the parens balance (bounded lookahead).
                    stmt, j = code, idx
                    while (stmt.count("(") > stmt.count(")") and j + 1 < len(lines)
                           and j - idx < 4):
                        j += 1
                        stmt += lines[j].split("//", 1)[0]
                    if "MemOrder" not in stmt[m.end():]:
                        finding(idx, "seq-cst",
                                f"{m.group(1)} without an explicit MemOrder defaults "
                                "to seq_cst; annotate or add the file to DESIGN.md §8.2")
        if "Padded<" not in code and UNPADDED_SHARED_RE.search(code):
            finding(idx, "unpadded-shared",
                    "contiguous Shared<> container without Padded<> "
                    "(false-sharing audit, DESIGN.md §8.4)")
        if "Padded<" not in code:
            m = UNPADDED_SHARD_RE.search(code)
            if m:
                name = m.group(1) or m.group(2)
                if name not in SHARD_VALUE_TYPES:
                    finding(idx, "unpadded-shard",
                            f"contiguous array of per-shard descriptor `{name}` "
                            "without Padded<> — neighbouring shards false-share "
                            "(DESIGN.md §14)")
        if fork_point_scanned:
            m = FORK_POINT_RE.search(code)
            if m:
                finding(idx, "schedule-fork-point",
                        f"`{m.group(0).strip()}` inside the scheduler layer — "
                        "schedulable accesses must route through "
                        "Engine::on_access so the explorer sees the fork point "
                        "(DESIGN.md §15); waive only for host-side state "
                        "provably outside the simulated machine")
        if naked_reclaim_scanned and (NAKED_DELETE_RE.search(code)
                                      or NAKED_FREE_RE.search(code)):
            finding(idx, "naked-reclaim",
                    "naked delete/free outside src/reclaim — Shared-reachable "
                    "nodes must die via reclaim::Guard::retire (DESIGN.md §11); "
                    "waive only with an argument why no concurrent reader exists")
        if naked_spin_scanned and NAKED_SPIN_HEAD_RE.search(code):
            if not SPIN_ESCALATION_RE.search(spin_body(lines, idx)):
                finding(idx, "naked-spin",
                        "unbounded loop with no backoff/park/heartbeat token — "
                        "invisible to the fault watchdog (DESIGN.md §12); route "
                        "it through Backoff/TryClock or waive with a lock-free "
                        "progress argument")
    return findings


def run(root: Path) -> int:
    exempt = parse_exemptions(root / DESIGN_DOC)
    findings: list[str] = []
    for scan_dir in SCAN_DIRS:
        base = root / scan_dir
        if not base.is_dir():
            sys.exit(f"contract_lint: {base} is not a directory (wrong --root?)")
        for path in sorted(base.rglob("*")):
            if path.suffix not in {".hpp", ".cpp", ".h", ".cc"}:
                continue
            rel = path.relative_to(root).as_posix()
            lines = path.read_text(encoding="utf-8").splitlines()
            findings.extend(lint_file(rel, lines, exempt))
    for f in findings:
        print(f)
    if findings:
        print(f"contract_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("contract_lint: clean")
    return 0


# ---- Self-test -------------------------------------------------------------

SELF_TEST_CASES = [
    # (rule or None, file path, snippet)
    ("raw-atomic", "src/pq/x.hpp", "std::atomic<int> a;"),
    ("raw-atomic", "src/pq/x.hpp", "#include <atomic>"),
    (None, "src/platform/native.hpp", "std::atomic<int> a;"),
    (None, "src/pq/x.hpp",
     "std::atomic<int> a; // contract-lint: allow(raw-atomic) measurement shim"),
    ("seq-cst", "src/pq/x.hpp", "w.load();"),
    ("seq-cst", "src/pq/x.hpp", "w.store(1);"),
    ("seq-cst", "src/pq/x.hpp", "w.compare_exchange(a, b);"),
    ("seq-cst", "src/pq/x.hpp", "w.fetch_add(1);"),
    ("seq-cst", "src/pq/x.hpp", "MemOrder o = MemOrder::kSeqCst;"),
    (None, "src/pq/x.hpp", "w.load_acquire();"),
    (None, "src/pq/x.hpp", "w.store_relaxed(1);"),
    (None, "src/pq/x.hpp", "w.fetch_add(1, MemOrder::kAcqRel);"),
    (None, "src/pq/x.hpp",
     "w.compare_exchange(a, b, MemOrder::kAcqRel, MemOrder::kRelaxed);"),
    (None, "src/pq/exempt.hpp", "w.load();"),  # via exemption table below
    (None, "src/sim/race_detector.hpp", "MemOrder o = MemOrder::kSeqCst;"),
    ("unpadded-shared", "src/pq/x.hpp",
     "std::vector<typename P::template Shared<u64>> v_;"),
    ("unpadded-shared", "src/pq/x.hpp",
     "std::array<typename P::template Shared<Link*>, kMax> next;"),
    (None, "src/pq/x.hpp",
     "std::vector<Padded<typename P::template Shared<u64>>> v_;"),
    (None, "src/pq/x.hpp",
     "std::unique_ptr<Padded<typename P::template Shared<u64>>[]> slots_;"),
    (None, "src/pq/x.hpp",
     "// waived below\n"
     "std::vector<typename P::template Shared<u64>> v_; "
     "// contract-lint: allow(unpadded-shared) lock-serialized"),
    # Per-shard descriptor arrays must be Padded (DESIGN.md §14).
    ("unpadded-shard", "src/pq/x.hpp", "std::vector<Shard> shards_;"),
    ("unpadded-shard", "src/pq/x.hpp",
     "std::array<ShardMonitor<P>, kMax> monitors_;"),
    ("unpadded-shard", "src/pq/x.hpp", "std::unique_ptr<Shard[]> shards_;"),
    (None, "src/pq/x.hpp", "std::vector<Padded<Shard>> shards_;"),
    (None, "src/pq/x.hpp", "std::unique_ptr<Padded<Shard>[]> shards_;"),
    (None, "src/pq/x.hpp", "std::vector<ShardStats> stats() const;"),
    (None, "src/pq/x.hpp", "ShardConfig shard = {};"),
    (None, "src/pq/x.hpp", "std::array<u32, kMaxShards> widths_;"),
    (None, "src/pq/x.hpp",
     "std::vector<Shard> shards_; "
     "// contract-lint: allow(unpadded-shard) single-threaded test fixture"),
    ("naked-reclaim", "src/pq/x.hpp", "delete cur;"),
    ("naked-reclaim", "src/pq/x.hpp", "delete[] slots;"),
    ("naked-reclaim", "src/pq/x.hpp", "delete static_cast<Node*>(p);"),
    ("naked-reclaim", "src/pq/x.hpp", "free(node);"),
    ("naked-reclaim", "src/pq/x.hpp", "std::free(node);"),
    (None, "src/pq/x.hpp", "Pq(const Pq&) = delete;"),
    (None, "src/pq/x.hpp", "Pq& operator=(const Pq&) = delete;"),
    (None, "src/reclaim/hazard.hpp", "delete static_cast<Node*>(p);"),
    (None, "src/pq/x.hpp",
     "delete cur; // contract-lint: allow(naked-reclaim) quiescent owner teardown"),
    (None, "src/pq/x.hpp", "// delete-min scans the prefix"),
    (None, "src/pq/x.hpp", "g.retire(u); // deferred free"),
    # The scheduler layer must not host concurrency primitives or
    # instrumented words (schedule-fork-point, DESIGN.md §15).
    ("schedule-fork-point", "src/sim/engine.cpp", "std::atomic<u64> ticket_;"),
    ("schedule-fork-point", "src/sim/explore.cpp", "#include <atomic>"),
    ("schedule-fork-point", "src/sim/fiber.cpp", "std::mutex switch_mu_;"),
    ("schedule-fork-point", "src/sim/engine.hpp", "SimShared<u64> epoch_;"),
    ("schedule-fork-point", "src/sim/engine.hpp",
     "typename P::template Shared<u64> mode_;"),
    (None, "src/sim/engine.hpp", "// whose Shared<T> words report each access"),
    (None, "src/platform/sim.hpp", "std::atomic<int> a;"),
    (None, "src/pq/x.hpp", "SimShared<u64> w; // test fixture, not src/sim"),
    (None, "src/sim/engine.cpp",
     "std::atomic<u64> wall_; "
     "// contract-lint: allow(schedule-fork-point) host-side wall clock, "
     "never read by a fiber"),
    ("naked-spin", "src/pq/x.hpp",
     "for (;;) {\n  if (w.load_acquire() == 0) break;\n}"),
    ("naked-spin", "src/funnel/x.hpp",
     "while (true) {\n  v = w.load_acquire();\n}"),
    ("naked-spin", "src/container/x.hpp",
     "while (1)\n  v = w.load_acquire();"),
    (None, "src/pq/x.hpp",
     "for (;;) {\n  if (lock_.try_acquire()) break;\n"
     "  if (!clock.tick_backoff()) return;\n}"),
    (None, "src/pq/x.hpp", "Backoff<P> b;\nfor (;;) {\n  b.spin();\n}"),
    (None, "src/pq/x.hpp", "for (;;) {\n  P::relax();\n}"),
    (None, "src/sync/x.hpp", "for (;;) {\n  v = w.load_acquire();\n}"),
    (None, "src/pq/x.hpp",
     "// contract-lint: allow(naked-spin) lock-free retry: a CAS failure\n"
     "for (;;) {\n  step();\n}"),
    (None, "src/pq/x.hpp", "for (u32 i = 0; i < n; ++i) w.load_acquire();"),
    (None, "src/verify/x.cpp",
     "for (;;) {\n  SimPlatform::heartbeat();\n  if (!pq->delete_min()) break;\n}"),
    # Aggregation-protocol idioms (src/funnel/aggregate.hpp, DESIGN.md §13).
    # The join/close loops are condition-bounded (`while (h != kAggClosed)`
    # is not an unbounded head) and every head-word access carries an
    # explicit order — these shapes must stay clean, and their unsuffixed
    # or backoff-free variants must stay flagged.
    (None, "src/funnel/aggregate.hpp",
     "while (h != kAggClosed) {\n"
     "  self->agg.next.store_relaxed(h);\n"
     "  if (head.compare_exchange(h, reinterpret_cast<u64>(self),\n"
     "                            MemOrder::kAcqRel, MemOrder::kRelaxed))\n"
     "    return true;\n}"),
    (None, "src/funnel/aggregate.hpp",
     "u64 p = head.exchange(kAggClosed, MemOrder::kAcqRel);"),
    ("seq-cst", "src/funnel/aggregate.hpp",
     "u64 p = head.exchange(kAggClosed);"),
    (None, "src/funnel/counter.hpp",
     "for (u32 i = 0; i < params_.agg_wait; ++i) P::relax();"),
    (None, "src/funnel/counter.hpp",
     "Backoff<P> central_backoff(16, 2048);\n"
     "for (;;) {\n"
     "  i64 val = central_.load_relaxed();\n"
     "  if (central_.compare_exchange(val, nv, MemOrder::kAcqRel,\n"
     "                                MemOrder::kRelaxed))\n"
     "    break;\n"
     "  central_backoff.spin();\n}"),
    ("naked-spin", "src/funnel/counter.hpp",
     "for (;;) {\n"
     "  i64 val = central_.load_relaxed();\n"
     "  if (central_.compare_exchange(val, nv, MemOrder::kAcqRel,\n"
     "                                MemOrder::kRelaxed))\n"
     "    break;\n}"),
]


def self_test() -> int:
    exempt = {"src/pq/exempt.hpp"}
    failures = 0
    for want_rule, rel, snippet in SELF_TEST_CASES:
        findings = lint_file(rel, snippet.splitlines(), exempt)
        got = findings[0].split("[")[1].split("]")[0] if findings else None
        if got != want_rule:
            print(f"self-test FAILED: {rel} {snippet!r}: want {want_rule}, got "
                  f"{findings or 'clean'}", file=sys.stderr)
            failures += 1
    if failures:
        return 1
    print(f"contract_lint: self-test passed ({len(SELF_TEST_CASES)} cases)")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--root", type=Path, default=Path.cwd(),
                    help="repository root (default: cwd)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the embedded rule tests and exit")
    args = ap.parse_args()
    return self_test() if args.self_test else run(args.root)


if __name__ == "__main__":
    sys.exit(main())
