file(REMOVE_RECURSE
  "CMakeFiles/fig7_high_concurrency.dir/fig7_high_concurrency.cpp.o"
  "CMakeFiles/fig7_high_concurrency.dir/fig7_high_concurrency.cpp.o.d"
  "fig7_high_concurrency"
  "fig7_high_concurrency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_high_concurrency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
