# Empty compiler generated dependencies file for fig7_high_concurrency.
# This may be replaced when dependencies are built.
