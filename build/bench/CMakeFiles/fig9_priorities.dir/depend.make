# Empty dependencies file for fig9_priorities.
# This may be replaced when dependencies are built.
