file(REMOVE_RECURSE
  "CMakeFiles/fig9_priorities.dir/fig9_priorities.cpp.o"
  "CMakeFiles/fig9_priorities.dir/fig9_priorities.cpp.o.d"
  "fig9_priorities"
  "fig9_priorities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_priorities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
