# Empty dependencies file for fig6_low_concurrency.
# This may be replaced when dependencies are built.
