file(REMOVE_RECURSE
  "CMakeFiles/fig6_low_concurrency.dir/fig6_low_concurrency.cpp.o"
  "CMakeFiles/fig6_low_concurrency.dir/fig6_low_concurrency.cpp.o.d"
  "fig6_low_concurrency"
  "fig6_low_concurrency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_low_concurrency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
