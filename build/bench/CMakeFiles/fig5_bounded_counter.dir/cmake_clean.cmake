file(REMOVE_RECURSE
  "CMakeFiles/fig5_bounded_counter.dir/fig5_bounded_counter.cpp.o"
  "CMakeFiles/fig5_bounded_counter.dir/fig5_bounded_counter.cpp.o.d"
  "fig5_bounded_counter"
  "fig5_bounded_counter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_bounded_counter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
