file(REMOVE_RECURSE
  "CMakeFiles/native_components.dir/native_components.cpp.o"
  "CMakeFiles/native_components.dir/native_components.cpp.o.d"
  "native_components"
  "native_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/native_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
