# Empty compiler generated dependencies file for native_components.
# This may be replaced when dependencies are built.
