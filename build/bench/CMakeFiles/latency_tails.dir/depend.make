# Empty dependencies file for latency_tails.
# This may be replaced when dependencies are built.
