file(REMOVE_RECURSE
  "CMakeFiles/latency_tails.dir/latency_tails.cpp.o"
  "CMakeFiles/latency_tails.dir/latency_tails.cpp.o.d"
  "latency_tails"
  "latency_tails.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latency_tails.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
