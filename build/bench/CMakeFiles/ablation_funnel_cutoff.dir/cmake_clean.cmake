file(REMOVE_RECURSE
  "CMakeFiles/ablation_funnel_cutoff.dir/ablation_funnel_cutoff.cpp.o"
  "CMakeFiles/ablation_funnel_cutoff.dir/ablation_funnel_cutoff.cpp.o.d"
  "ablation_funnel_cutoff"
  "ablation_funnel_cutoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_funnel_cutoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
