# Empty dependencies file for ablation_funnel_cutoff.
# This may be replaced when dependencies are built.
