# Empty dependencies file for reactive_counter.
# This may be replaced when dependencies are built.
