file(REMOVE_RECURSE
  "CMakeFiles/reactive_counter.dir/reactive_counter.cpp.o"
  "CMakeFiles/reactive_counter.dir/reactive_counter.cpp.o.d"
  "reactive_counter"
  "reactive_counter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reactive_counter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
