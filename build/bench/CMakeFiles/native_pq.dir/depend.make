# Empty dependencies file for native_pq.
# This may be replaced when dependencies are built.
