file(REMOVE_RECURSE
  "CMakeFiles/native_pq.dir/native_pq.cpp.o"
  "CMakeFiles/native_pq.dir/native_pq.cpp.o.d"
  "native_pq"
  "native_pq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/native_pq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
