file(REMOVE_RECURSE
  "CMakeFiles/table8_breakdown.dir/table8_breakdown.cpp.o"
  "CMakeFiles/table8_breakdown.dir/table8_breakdown.cpp.o.d"
  "table8_breakdown"
  "table8_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
