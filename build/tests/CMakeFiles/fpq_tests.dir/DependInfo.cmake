
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_bins_counters.cpp" "tests/CMakeFiles/fpq_tests.dir/test_bins_counters.cpp.o" "gcc" "tests/CMakeFiles/fpq_tests.dir/test_bins_counters.cpp.o.d"
  "/root/repo/tests/test_common.cpp" "tests/CMakeFiles/fpq_tests.dir/test_common.cpp.o" "gcc" "tests/CMakeFiles/fpq_tests.dir/test_common.cpp.o.d"
  "/root/repo/tests/test_extensions.cpp" "tests/CMakeFiles/fpq_tests.dir/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/fpq_tests.dir/test_extensions.cpp.o.d"
  "/root/repo/tests/test_funnel_counter.cpp" "tests/CMakeFiles/fpq_tests.dir/test_funnel_counter.cpp.o" "gcc" "tests/CMakeFiles/fpq_tests.dir/test_funnel_counter.cpp.o.d"
  "/root/repo/tests/test_funnel_params_grid.cpp" "tests/CMakeFiles/fpq_tests.dir/test_funnel_params_grid.cpp.o" "gcc" "tests/CMakeFiles/fpq_tests.dir/test_funnel_params_grid.cpp.o.d"
  "/root/repo/tests/test_funnel_stack.cpp" "tests/CMakeFiles/fpq_tests.dir/test_funnel_stack.cpp.o" "gcc" "tests/CMakeFiles/fpq_tests.dir/test_funnel_stack.cpp.o.d"
  "/root/repo/tests/test_hunt.cpp" "tests/CMakeFiles/fpq_tests.dir/test_hunt.cpp.o" "gcc" "tests/CMakeFiles/fpq_tests.dir/test_hunt.cpp.o.d"
  "/root/repo/tests/test_memory_model.cpp" "tests/CMakeFiles/fpq_tests.dir/test_memory_model.cpp.o" "gcc" "tests/CMakeFiles/fpq_tests.dir/test_memory_model.cpp.o.d"
  "/root/repo/tests/test_native.cpp" "tests/CMakeFiles/fpq_tests.dir/test_native.cpp.o" "gcc" "tests/CMakeFiles/fpq_tests.dir/test_native.cpp.o.d"
  "/root/repo/tests/test_platform_parity.cpp" "tests/CMakeFiles/fpq_tests.dir/test_platform_parity.cpp.o" "gcc" "tests/CMakeFiles/fpq_tests.dir/test_platform_parity.cpp.o.d"
  "/root/repo/tests/test_pq_concurrent.cpp" "tests/CMakeFiles/fpq_tests.dir/test_pq_concurrent.cpp.o" "gcc" "tests/CMakeFiles/fpq_tests.dir/test_pq_concurrent.cpp.o.d"
  "/root/repo/tests/test_pq_linearizability.cpp" "tests/CMakeFiles/fpq_tests.dir/test_pq_linearizability.cpp.o" "gcc" "tests/CMakeFiles/fpq_tests.dir/test_pq_linearizability.cpp.o.d"
  "/root/repo/tests/test_pq_sequential.cpp" "tests/CMakeFiles/fpq_tests.dir/test_pq_sequential.cpp.o" "gcc" "tests/CMakeFiles/fpq_tests.dir/test_pq_sequential.cpp.o.d"
  "/root/repo/tests/test_reactive_histogram.cpp" "tests/CMakeFiles/fpq_tests.dir/test_reactive_histogram.cpp.o" "gcc" "tests/CMakeFiles/fpq_tests.dir/test_reactive_histogram.cpp.o.d"
  "/root/repo/tests/test_sim_engine.cpp" "tests/CMakeFiles/fpq_tests.dir/test_sim_engine.cpp.o" "gcc" "tests/CMakeFiles/fpq_tests.dir/test_sim_engine.cpp.o.d"
  "/root/repo/tests/test_skiplist.cpp" "tests/CMakeFiles/fpq_tests.dir/test_skiplist.cpp.o" "gcc" "tests/CMakeFiles/fpq_tests.dir/test_skiplist.cpp.o.d"
  "/root/repo/tests/test_sync.cpp" "tests/CMakeFiles/fpq_tests.dir/test_sync.cpp.o" "gcc" "tests/CMakeFiles/fpq_tests.dir/test_sync.cpp.o.d"
  "/root/repo/tests/test_verify.cpp" "tests/CMakeFiles/fpq_tests.dir/test_verify.cpp.o" "gcc" "tests/CMakeFiles/fpq_tests.dir/test_verify.cpp.o.d"
  "/root/repo/tests/test_workload.cpp" "tests/CMakeFiles/fpq_tests.dir/test_workload.cpp.o" "gcc" "tests/CMakeFiles/fpq_tests.dir/test_workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/funnelpq.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
