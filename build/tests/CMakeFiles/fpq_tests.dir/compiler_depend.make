# Empty compiler generated dependencies file for fpq_tests.
# This may be replaced when dependencies are built.
