# Empty compiler generated dependencies file for funnelpq.
# This may be replaced when dependencies are built.
