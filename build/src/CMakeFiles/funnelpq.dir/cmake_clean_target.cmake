file(REMOVE_RECURSE
  "libfunnelpq.a"
)
