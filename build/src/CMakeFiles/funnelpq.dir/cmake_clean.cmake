file(REMOVE_RECURSE
  "CMakeFiles/funnelpq.dir/bench_support/histogram.cpp.o"
  "CMakeFiles/funnelpq.dir/bench_support/histogram.cpp.o.d"
  "CMakeFiles/funnelpq.dir/bench_support/stats.cpp.o"
  "CMakeFiles/funnelpq.dir/bench_support/stats.cpp.o.d"
  "CMakeFiles/funnelpq.dir/bench_support/table.cpp.o"
  "CMakeFiles/funnelpq.dir/bench_support/table.cpp.o.d"
  "CMakeFiles/funnelpq.dir/core/registry.cpp.o"
  "CMakeFiles/funnelpq.dir/core/registry.cpp.o.d"
  "CMakeFiles/funnelpq.dir/platform/native.cpp.o"
  "CMakeFiles/funnelpq.dir/platform/native.cpp.o.d"
  "CMakeFiles/funnelpq.dir/sim/engine.cpp.o"
  "CMakeFiles/funnelpq.dir/sim/engine.cpp.o.d"
  "CMakeFiles/funnelpq.dir/sim/fiber.cpp.o"
  "CMakeFiles/funnelpq.dir/sim/fiber.cpp.o.d"
  "CMakeFiles/funnelpq.dir/sim/memory.cpp.o"
  "CMakeFiles/funnelpq.dir/sim/memory.cpp.o.d"
  "CMakeFiles/funnelpq.dir/verify/linearizability.cpp.o"
  "CMakeFiles/funnelpq.dir/verify/linearizability.cpp.o.d"
  "CMakeFiles/funnelpq.dir/verify/quiescent.cpp.o"
  "CMakeFiles/funnelpq.dir/verify/quiescent.cpp.o.d"
  "libfunnelpq.a"
  "libfunnelpq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/funnelpq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
