
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bench_support/histogram.cpp" "src/CMakeFiles/funnelpq.dir/bench_support/histogram.cpp.o" "gcc" "src/CMakeFiles/funnelpq.dir/bench_support/histogram.cpp.o.d"
  "/root/repo/src/bench_support/stats.cpp" "src/CMakeFiles/funnelpq.dir/bench_support/stats.cpp.o" "gcc" "src/CMakeFiles/funnelpq.dir/bench_support/stats.cpp.o.d"
  "/root/repo/src/bench_support/table.cpp" "src/CMakeFiles/funnelpq.dir/bench_support/table.cpp.o" "gcc" "src/CMakeFiles/funnelpq.dir/bench_support/table.cpp.o.d"
  "/root/repo/src/core/registry.cpp" "src/CMakeFiles/funnelpq.dir/core/registry.cpp.o" "gcc" "src/CMakeFiles/funnelpq.dir/core/registry.cpp.o.d"
  "/root/repo/src/platform/native.cpp" "src/CMakeFiles/funnelpq.dir/platform/native.cpp.o" "gcc" "src/CMakeFiles/funnelpq.dir/platform/native.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "src/CMakeFiles/funnelpq.dir/sim/engine.cpp.o" "gcc" "src/CMakeFiles/funnelpq.dir/sim/engine.cpp.o.d"
  "/root/repo/src/sim/fiber.cpp" "src/CMakeFiles/funnelpq.dir/sim/fiber.cpp.o" "gcc" "src/CMakeFiles/funnelpq.dir/sim/fiber.cpp.o.d"
  "/root/repo/src/sim/memory.cpp" "src/CMakeFiles/funnelpq.dir/sim/memory.cpp.o" "gcc" "src/CMakeFiles/funnelpq.dir/sim/memory.cpp.o.d"
  "/root/repo/src/verify/linearizability.cpp" "src/CMakeFiles/funnelpq.dir/verify/linearizability.cpp.o" "gcc" "src/CMakeFiles/funnelpq.dir/verify/linearizability.cpp.o.d"
  "/root/repo/src/verify/quiescent.cpp" "src/CMakeFiles/funnelpq.dir/verify/quiescent.cpp.o" "gcc" "src/CMakeFiles/funnelpq.dir/verify/quiescent.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
