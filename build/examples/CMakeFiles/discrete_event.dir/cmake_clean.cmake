file(REMOVE_RECURSE
  "CMakeFiles/discrete_event.dir/discrete_event.cpp.o"
  "CMakeFiles/discrete_event.dir/discrete_event.cpp.o.d"
  "discrete_event"
  "discrete_event.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discrete_event.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
