# Empty dependencies file for discrete_event.
# This may be replaced when dependencies are built.
