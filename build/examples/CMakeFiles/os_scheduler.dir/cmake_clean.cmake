file(REMOVE_RECURSE
  "CMakeFiles/os_scheduler.dir/os_scheduler.cpp.o"
  "CMakeFiles/os_scheduler.dir/os_scheduler.cpp.o.d"
  "os_scheduler"
  "os_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/os_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
