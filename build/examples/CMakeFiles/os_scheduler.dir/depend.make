# Empty dependencies file for os_scheduler.
# This may be replaced when dependencies are built.
