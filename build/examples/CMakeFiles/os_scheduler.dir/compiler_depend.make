# Empty compiler generated dependencies file for os_scheduler.
# This may be replaced when dependencies are built.
