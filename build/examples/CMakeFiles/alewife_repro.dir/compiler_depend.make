# Empty compiler generated dependencies file for alewife_repro.
# This may be replaced when dependencies are built.
