file(REMOVE_RECURSE
  "CMakeFiles/alewife_repro.dir/alewife_repro.cpp.o"
  "CMakeFiles/alewife_repro.dir/alewife_repro.cpp.o.d"
  "alewife_repro"
  "alewife_repro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alewife_repro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
