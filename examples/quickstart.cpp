// Quickstart: create a bounded-range priority queue, drive it from a few
// threads on the native backend, and drain it.
//
//   $ ./build/examples/quickstart
//
// The library's public API is three pieces:
//   * PqParams        — the queue's shape (priority range, processor bound);
//   * make_priority_queue<Platform>(Algorithm, params) — type-erased factory
//     over the eight algorithms (the paper's seven plus a lock-free
//     skip list);
//   * Platform::run(nprocs, fn) — execute fn(proc_id) on every processor
//     (std::threads natively, simulated processors under SimPlatform).
#include <atomic>
#include <cstdio>

#include "core/fpq.hpp"

using namespace fpq;

int main() {
  constexpr u32 kThreads = 4;
  constexpr u32 kPriorities = 16;

  PqParams params;
  params.npriorities = kPriorities; // priorities 0..15, smaller = more urgent
  params.maxprocs = kThreads;

  // FunnelTree is the paper's scalable choice; swap in any Algorithm::k*
  // (kSimpleLinear is the best pick at very low concurrency).
  auto pq = make_priority_queue<NativePlatform>(Algorithm::kFunnelTree, params);

  std::atomic<u64> handled{0};
  NativePlatform::run(kThreads, [&](ProcId id) {
    // Every thread inserts a burst of work items, then drains whatever is
    // most urgent.
    for (u32 i = 0; i < 1000; ++i) {
      const Prio prio = static_cast<Prio>(NativePlatform::rnd(kPriorities));
      const Item task_id = (static_cast<u64>(id) << 32) | i;
      if (!pq->insert(prio, task_id)) {
        std::fprintf(stderr, "queue full!\n");
        return;
      }
      if (NativePlatform::flip()) {
        if (auto task = pq->delete_min()) {
          handled.fetch_add(1);
        }
      }
    }
  });

  // Drain the leftovers; delete_min returns entries in priority order now
  // that the queue is quiescent.
  u64 drained = 0;
  Prio last = 0;
  bool sorted = true;
  NativePlatform::run(1, [&](ProcId) {
    while (auto e = pq->delete_min()) {
      sorted = sorted && e->prio >= last;
      last = e->prio;
      ++drained;
    }
  });

  std::printf("handled %llu tasks concurrently, drained %llu at the end (%s)\n",
              static_cast<unsigned long long>(handled.load()),
              static_cast<unsigned long long>(drained),
              sorted ? "in priority order" : "OUT OF ORDER — bug!");
  std::printf("total = %llu (expected %u)\n",
              static_cast<unsigned long long>(handled.load() + drained),
              kThreads * 1000);
  return sorted && handled.load() + drained == kThreads * 1000 ? 0 : 1;
}
