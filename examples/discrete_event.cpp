// Parallel discrete-event simulation on a bounded-range priority queue —
// the other classic consumer of priority queues the paper's introduction
// gestures at. A ring of service stations processes jobs; an event is
// "job J arrives at station S at time T". Worker threads repeatedly pull
// the earliest event, advance it, and schedule its follow-up.
//
// Bounded range fits naturally: event times are discretized into a sliding
// window of time buckets (a calendar-queue layout). Inserts beyond the
// window saturate into the last bucket, slightly reordering far-future
// events — acceptable for this optimistic demo and a good illustration of
// what "bounded range" buys and costs.
#include <array>
#include <atomic>
#include <cstdio>

#include "core/fpq.hpp"

using namespace fpq;

namespace {

constexpr u32 kWorkers = 4;
constexpr u32 kStations = 16;
constexpr u32 kBuckets = 128; // the time window
constexpr u32 kJobs = 1500;
constexpr u32 kHopsPerJob = 8;

u64 pack_ev(u32 job, u32 station, u32 hop) {
  return (static_cast<u64>(job) << 16) | (static_cast<u64>(station) << 8) | hop;
}

} // namespace

int main() {
  PqParams params;
  params.npriorities = kBuckets;
  params.maxprocs = kWorkers;
  params.bin_capacity = 1u << 14;
  // FIFO-hybrid bins: events in the same time bucket are handled in
  // arrival order, which keeps the simulation's tie-breaking sane.
  FunnelOptions opts;
  opts.bin_order = BinOrder::kFifo;
  auto events =
      make_priority_queue<NativePlatform>(Algorithm::kFunnelTree, params, opts);

  std::array<std::atomic<u64>, kStations> station_load{};
  std::atomic<u64> processed{0};
  std::atomic<i64> outstanding{0};

  // Seed: every job arrives at a random station in an early bucket.
  NativePlatform::run(1, [&](ProcId) {
    for (u32 j = 0; j < kJobs; ++j) {
      const Prio t = static_cast<Prio>(NativePlatform::rnd(8));
      events->insert(t, pack_ev(j, static_cast<u32>(NativePlatform::rnd(kStations)), 0));
      outstanding.fetch_add(1);
    }
  });

  NativePlatform::run(kWorkers, [&](ProcId) {
    u32 idle = 0;
    while (outstanding.load(std::memory_order_acquire) > 0) {
      auto ev = events->delete_min();
      if (!ev) {
        if (++idle > 512) break;
        NativePlatform::pause();
        continue;
      }
      idle = 0;
      processed.fetch_add(1);
      const u32 job = static_cast<u32>(ev->item >> 16);
      const u32 station = static_cast<u32>((ev->item >> 8) & 0xff);
      const u32 hop = static_cast<u32>(ev->item & 0xff);
      station_load[station].fetch_add(1);
      NativePlatform::delay(30); // service time

      if (hop + 1 < kHopsPerJob) {
        // Forward the job to the next station after a random service delay.
        const u32 next_station =
            (station + 1 + static_cast<u32>(NativePlatform::rnd(3))) % kStations;
        u64 next_t = ev->prio + 1 + NativePlatform::rnd(16);
        if (next_t >= kBuckets) next_t = kBuckets - 1; // window saturation
        outstanding.fetch_add(1);
        events->insert(static_cast<Prio>(next_t), pack_ev(job, next_station, hop + 1));
      }
      outstanding.fetch_sub(1, std::memory_order_acq_rel);
    }
  });

  u64 min_load = ~0ull, max_load = 0;
  for (const auto& s : station_load) {
    min_load = std::min(min_load, s.load());
    max_load = std::max(max_load, s.load());
  }
  const u64 expected = static_cast<u64>(kJobs) * kHopsPerJob;
  std::printf("processed %llu events (expected %llu); station load %llu..%llu\n",
              static_cast<unsigned long long>(processed.load()),
              static_cast<unsigned long long>(expected),
              static_cast<unsigned long long>(min_load),
              static_cast<unsigned long long>(max_load));
  return processed.load() == expected ? 0 : 1;
}
