// Parallel best-first branch-and-bound (0/1 knapsack) on a bounded-range
// priority queue: the classic "application level" use of concurrent
// priority queues the paper's introduction points at.
//
// Nodes are prioritized by their fractional upper bound, discretized into
// the queue's fixed priority range (a bounded range is exactly what bound-
// ordered search needs: bounds live in a known interval). Workers expand
// the most promising node, prune against the shared incumbent, and push
// children.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <vector>

#include "core/fpq.hpp"

using namespace fpq;

namespace {

constexpr u32 kItems = 22;
constexpr u32 kWorkers = 4;
constexpr u32 kPrioBuckets = 256;

struct Problem {
  std::vector<u64> weight;
  std::vector<u64> value;
  u64 capacity = 0;
  double max_bound = 0;
};

Problem make_problem(u64 seed) {
  Problem p;
  Xorshift rng(seed);
  u64 total_w = 0;
  for (u32 i = 0; i < kItems; ++i) {
    p.weight.push_back(1 + rng.below(40));
    p.value.push_back(1 + rng.below(60));
    total_w += p.weight.back();
  }
  p.capacity = total_w / 2;
  // Decide items in density order: the greedy fractional fill below is a
  // valid LP upper bound only in that order.
  std::vector<u32> idx(kItems);
  for (u32 i = 0; i < kItems; ++i) idx[i] = i;
  std::sort(idx.begin(), idx.end(), [&](u32 a, u32 b) {
    return p.value[a] * p.weight[b] > p.value[b] * p.weight[a];
  });
  Problem q;
  q.capacity = p.capacity;
  for (u32 i : idx) {
    q.weight.push_back(p.weight[i]);
    q.value.push_back(p.value[i]);
    q.max_bound += static_cast<double>(p.value[i]);
  }
  return q;
}

/// Fractional (LP) upper bound for the subtree at `depth` with `value`
/// collected and `room` capacity left; items are pre-sorted by density, so
/// the greedy fractional fill is the LP relaxation.
double upper_bound(const Problem& p, u32 depth, u64 value, u64 room) {
  double b = static_cast<double>(value);
  for (u32 i = depth; i < kItems && room > 0; ++i) {
    if (p.weight[i] <= room) {
      room -= p.weight[i];
      b += static_cast<double>(p.value[i]);
    } else {
      b += static_cast<double>(p.value[i]) * static_cast<double>(room) /
           static_cast<double>(p.weight[i]);
      room = 0;
    }
  }
  return b;
}

/// Higher bound => more promising => smaller priority (delete-min pops the
/// best candidate first).
Prio bucket_of(const Problem& p, double bound) {
  const double frac = 1.0 - bound / (p.max_bound + 1.0);
  auto b = static_cast<u32>(frac * kPrioBuckets);
  return static_cast<Prio>(b >= kPrioBuckets ? kPrioBuckets - 1 : b);
}

// Node state packed into the 48-bit item payload: depth (6 bits), value
// (21 bits), room (21 bits).
u64 pack_node(u32 depth, u64 value, u64 room) {
  return (static_cast<u64>(depth) << 42) | (value << 21) | room;
}
void unpack_node(u64 n, u32& depth, u64& value, u64& room) {
  depth = static_cast<u32>(n >> 42);
  value = (n >> 21) & ((1u << 21) - 1);
  room = n & ((1u << 21) - 1);
}

u64 solve_sequential(const Problem& p) {
  // Reference: plain DFS with pruning.
  u64 best = 0;
  std::vector<std::pair<u64, std::pair<u64, u32>>> stack{{0, {p.capacity, 0}}};
  while (!stack.empty()) {
    auto [value, rest] = stack.back();
    auto [room, depth] = rest;
    stack.pop_back();
    if (value > best) best = value;
    if (depth >= kItems) continue;
    if (upper_bound(p, depth, value, room) <= static_cast<double>(best)) continue;
    stack.push_back({value, {room, depth + 1}});
    if (p.weight[depth] <= room)
      stack.push_back({value + p.value[depth], {room - p.weight[depth], depth + 1}});
  }
  return best;
}

} // namespace

int main() {
  const Problem p = make_problem(2024);

  PqParams params;
  params.npriorities = kPrioBuckets;
  params.maxprocs = kWorkers;
  params.bin_capacity = 1u << 15;
  auto open_set = make_priority_queue<NativePlatform>(Algorithm::kFunnelTree, params);

  std::atomic<u64> incumbent{0};
  std::atomic<u64> expanded{0};
  std::atomic<i64> in_flight{1}; // root

  NativePlatform::run(1, [&](ProcId) {
    open_set->insert(bucket_of(p, upper_bound(p, 0, 0, p.capacity)),
                     pack_node(0, 0, p.capacity));
  });

  NativePlatform::run(kWorkers, [&](ProcId) {
    u32 idle = 0;
    while (in_flight.load(std::memory_order_acquire) > 0) {
      auto node = open_set->delete_min();
      if (!node) {
        if (++idle > 256) break;
        NativePlatform::pause();
        continue;
      }
      idle = 0;
      u32 depth;
      u64 value, room;
      unpack_node(node->item, depth, value, room);
      expanded.fetch_add(1);

      u64 best = incumbent.load(std::memory_order_relaxed);
      while (value > best &&
             !incumbent.compare_exchange_weak(best, value, std::memory_order_acq_rel)) {
      }

      if (depth < kItems &&
          upper_bound(p, depth, value, room) >
              static_cast<double>(incumbent.load(std::memory_order_relaxed))) {
        // Expand: skip item `depth`, and take it if it fits.
        const double b_skip = upper_bound(p, depth + 1, value, room);
        in_flight.fetch_add(1, std::memory_order_acq_rel);
        open_set->insert(bucket_of(p, b_skip), pack_node(depth + 1, value, room));
        if (p.weight[depth] <= room) {
          const u64 v2 = value + p.value[depth];
          const u64 r2 = room - p.weight[depth];
          const double b_take = upper_bound(p, depth + 1, v2, r2);
          in_flight.fetch_add(1, std::memory_order_acq_rel);
          open_set->insert(bucket_of(p, b_take), pack_node(depth + 1, v2, r2));
        }
      }
      in_flight.fetch_sub(1, std::memory_order_acq_rel);
    }
  });

  const u64 reference = solve_sequential(p);
  std::printf("branch-and-bound: best=%llu (reference %llu), expanded %llu nodes\n",
              static_cast<unsigned long long>(incumbent.load()),
              static_cast<unsigned long long>(reference),
              static_cast<unsigned long long>(expanded.load()));
  return incumbent.load() == reference ? 0 : 1;
}
