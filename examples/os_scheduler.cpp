// A miniature multiprocessor task scheduler — the paper's motivating
// use-case ("operating systems schedulers", §1): a fixed range of task
// priorities, workers that pull the most urgent runnable task, execute it,
// and possibly spawn follow-up work at a different priority.
//
// Demonstrates: bounded priority ranges as scheduling classes, concurrent
// producers/consumers on one queue, and starvation accounting across
// priority levels.
#include <array>
#include <atomic>
#include <cstdio>

#include "core/fpq.hpp"

using namespace fpq;

namespace {

constexpr u32 kWorkers = 4;
constexpr u32 kClasses = 32; // scheduling classes 0 (realtime) .. 31 (idle)
constexpr u32 kInitialTasks = 2000;

struct SchedulerStats {
  std::array<std::atomic<u64>, kClasses> executed{};
  std::atomic<u64> spawned{0};
  std::atomic<u64> idle_polls{0};
};

} // namespace

int main() {
  PqParams params;
  params.npriorities = kClasses;
  params.maxprocs = kWorkers;
  params.bin_capacity = 1u << 15;
  auto run_queue = make_priority_queue<NativePlatform>(Algorithm::kFunnelTree, params);

  SchedulerStats stats;

  // Seed the run queue: a spread of tasks, denser at low urgency (as real
  // systems look).
  NativePlatform::run(1, [&](ProcId) {
    for (u32 i = 0; i < kInitialTasks; ++i) {
      const Prio cls = static_cast<Prio>(NativePlatform::rnd(kClasses));
      run_queue->insert(cls, i);
    }
  });

  NativePlatform::run(kWorkers, [&](ProcId) {
    u32 executed_here = 0;
    u32 idle_streak = 0;
    while (executed_here < kInitialTasks) { // bounded work per worker
      auto task = run_queue->delete_min();
      if (!task) {
        stats.idle_polls.fetch_add(1);
        if (++idle_streak > 64) break; // queue has drained: clock out
        NativePlatform::pause();
        continue;
      }
      idle_streak = 0;
      ++executed_here;
      stats.executed[task->prio].fetch_add(1);
      // "Run" the task; occasionally it enqueues a follow-up at lower
      // urgency (e.g. deferred I/O completion).
      NativePlatform::delay(50);
      if (NativePlatform::rnd(100) < 25) {
        const Prio follow = static_cast<Prio>(
            std::min<u64>(kClasses - 1, task->prio + 1 + NativePlatform::rnd(4)));
        if (run_queue->insert(follow, task->item | (1ull << 40)))
          stats.spawned.fetch_add(1);
      }
    }
  });

  u64 total = 0;
  std::printf("class  executed\n");
  for (u32 c = 0; c < kClasses; ++c) {
    const u64 n = stats.executed[c].load();
    total += n;
    if (n > 0 && c % 4 == 0) std::printf("%5u  %llu\n", c, static_cast<unsigned long long>(n));
  }
  // Drain any stragglers (followups enqueued just before workers clocked out).
  u64 left = 0;
  NativePlatform::run(1, [&](ProcId) {
    while (run_queue->delete_min()) ++left;
  });
  std::printf("executed %llu tasks (%llu spawned follow-ups, %llu left, %llu idle polls)\n",
              static_cast<unsigned long long>(total),
              static_cast<unsigned long long>(stats.spawned.load()),
              static_cast<unsigned long long>(left),
              static_cast<unsigned long long>(stats.idle_polls.load()));
  const bool balanced = total + left == kInitialTasks + stats.spawned.load();
  std::printf("conservation: %s\n", balanced ? "ok" : "BROKEN");
  return balanced ? 0 : 1;
}
