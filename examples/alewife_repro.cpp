// Drive the paper's actual experiment on the simulated 256-processor
// Alewife-like machine: FunnelTree vs SimpleTree at full concurrency, with
// the machine's contention counters exposed. This is the example to start
// from for custom simulator studies (different machines, workloads,
// funnel geometries).
//
//   $ ./build/examples/alewife_repro
#include <cstdio>
#include <memory>

#include "bench_support/workload.hpp"
#include "core/fpq.hpp"
#include "sim/engine.hpp"

using namespace fpq;

namespace {

void run_one(Algorithm algo, u32 nprocs) {
  PqParams params;
  params.npriorities = 16;
  params.maxprocs = nprocs;
  params.bin_capacity = 1u << 14;
  auto pq = make_priority_queue<SimPlatform>(algo, params);

  // The machine: 2-D mesh ccNUMA, directory MSI, occupancy-queued memory
  // modules. Every knob is in sim::MachineParams.
  sim::MachineParams machine;
  sim::Engine engine(nprocs, machine, /*seed=*/2024);

  WorkloadParams w;
  w.nprocs = nprocs;
  w.ops_per_proc = 150;
  std::vector<Padded<OpStats>> per_proc(nprocs);
  engine.run(pq_workload_body<SimPlatform>(*pq, w, per_proc));

  OpStats total;
  for (const auto& s : per_proc) total += *s;
  const auto& mem = engine.mem_stats();
  std::printf(
      "%-14s P=%-3u  latency/op: %6.0f cycles (ins %6.0f, del %6.0f)\n"
      "               memory: %llu accesses, %.1f%% hits, %llu invalidations,\n"
      "               %llu cycles lost to hot-spot module queueing\n",
      std::string(to_string(algo)).c_str(), nprocs, total.mean_all(),
      total.mean_insert(), total.mean_delete(),
      static_cast<unsigned long long>(mem.reads + mem.writes + mem.rmws),
      100.0 * static_cast<double>(mem.hits) /
          static_cast<double>(mem.hits + mem.misses),
      static_cast<unsigned long long>(mem.invalidations),
      static_cast<unsigned long long>(mem.module_wait_cycles));
}

} // namespace

int main() {
  std::printf("Simulated %ux%u-mesh ccNUMA (MIT-Alewife-like), 16 priorities,\n"
              "the paper's coin-flip workload:\n\n",
              16u, 16u);
  for (Algorithm algo : {Algorithm::kSimpleTree, Algorithm::kFunnelTree}) {
    for (u32 nprocs : {16u, 256u}) run_one(algo, nprocs);
    std::printf("\n");
  }
  std::printf("SimpleTree's root counter melts down at 256 processors; the\n"
              "combining funnels absorb the same traffic (paper Fig. 7).\n");
  return 0;
}
