// Seeded-bug corpus for the DPOR model checker: this file is compiled
// three times (tests/CMakeLists.txt), each with exactly one
// FPQ_SEEDED_BUG_* definition re-introducing a historical ordering bug
// behind an #ifdef:
//
//   FPQ_SEEDED_BUG_REACTIVE_SB — the reactive counter's announce/recheck
//     downgraded to relaxed (the PR 3 store-buffering race).
//   FPQ_SEEDED_BUG_AGG_VERDICT — the aggregate representative's child-sum
//     read moved after its verdict release (the PR 8 read-after-release).
//   FPQ_SEEDED_BUG_HP_RELAXED  — the hazard-pointer publish/validate
//     downgraded to relaxed (the PR 6 under-annotated handshake).
//
// Each mutation must be found, as a happens-before race, within the
// default exploration budget — on the *same* litmus configs that
// tests/test_dpor.cpp proves clean and completely explored when the
// mutation is compiled out. That pairing is the acceptance criterion:
// detection on a config that was never clean proves nothing.
#include <gtest/gtest.h>

#include "dpor_litmus.hpp"

namespace fpq {
namespace {

void expect_race_found(const sim::ExploreOutcome& out) {
  ASSERT_TRUE(out.violation) << "mutation survived exhaustive exploration: "
                             << sim::to_string(out.stats);
  EXPECT_NE(out.diagnostic.find("race"), std::string::npos)
      << "expected a detector race, got: " << out.diagnostic;
}

#if defined(FPQ_SEEDED_BUG_REACTIVE_SB)

TEST(DporCorpus, FindsReactiveStoreBufferingRace) {
  // Detection needs an op's relaxed announce unordered against the
  // switcher's deciding drain probe — i.e. an op in flight while the other
  // processor's first completed op (up_streak=1, high_wait=0) runs the
  // mode switch. Schedules where the op retires first are ordered through
  // the release retire / probe read edge, so only exploration finds it.
  expect_race_found(dpor_litmus::explore_reactive(2, 1));
}

#elif defined(FPQ_SEEDED_BUG_AGG_VERDICT)

TEST(DporCorpus, FindsAggregateVerdictReadAfterRelease) {
  // Once the representative's csum read trails its kStCount release, the
  // released child may start its second operation and write its sum word
  // concurrently with that read — the width-1 litmus funnel makes the two
  // processors collide, and the child's next-op relaxed sum store is
  // unordered against the late read.
  expect_race_found(
      dpor_litmus::explore_funnel_counter(FunnelProtocol::kAggregate, 2, 2));
}

#elif defined(FPQ_SEEDED_BUG_HP_RELAXED)

TEST(DporCorpus, FindsHazardPublishRace) {
  // A relaxed hazard publish is unordered against the reclaimer's scan
  // read in exactly the schedules where the scan overlaps the window
  // between publish and the release clear; the clear's release edge hides
  // the bug in every sequential schedule, so again only exploration
  // reaches it.
  expect_race_found(dpor_litmus::explore_hazard());
}

#else
#error "test_dpor_corpus.cpp must be compiled with exactly one FPQ_SEEDED_BUG_* mutation"
#endif

} // namespace
} // namespace fpq
