// HuntEtAl-specific tests: the bit-reversal slot sequence, heap invariants
// at quiescence, capacity behavior, and a regression stress for the
// pid-tag stranding livelock (an insert must never abandon its own tag).
#include <gtest/gtest.h>

#include <set>

#include "platform/sim.hpp"
#include "pq/hunt_pq.hpp"

namespace fpq {
namespace {

using Hunt = HuntPq<SimPlatform>;

TEST(HuntBitReversal, FirstFifteenSlots) {
  // Within each level, successive insertions visit slots in bit-reversed
  // order: level of 8 goes 8, 12, 10, 14, 9, 13, 11, 15.
  const u64 expect[] = {1, 2, 3, 4, 6, 5, 7, 8, 12, 10, 14, 9, 13, 11, 15};
  for (u64 s = 1; s <= 15; ++s) EXPECT_EQ(Hunt::bit_reversed(s), expect[s - 1]) << s;
}

TEST(HuntBitReversal, IsAPermutationOfEachLevel) {
  for (u64 level = 1; level <= 64; level <<= 1) {
    std::set<u64> slots;
    for (u64 s = level; s < 2 * level; ++s) {
      const u64 slot = Hunt::bit_reversed(s);
      EXPECT_GE(slot, level);
      EXPECT_LT(slot, 2 * level);
      slots.insert(slot);
    }
    EXPECT_EQ(slots.size(), level);
  }
}

TEST(HuntBitReversal, ConsecutiveSlotsShareNoDeepAncestors) {
  // The point of bit-reversal: successive inserts climb disjoint paths.
  // For siblings s and s+1 within a level of >= 4, the slots' parents
  // differ.
  for (u64 s = 8; s < 15; ++s) {
    const u64 a = Hunt::bit_reversed(s) >> 1;
    const u64 b = Hunt::bit_reversed(s + 1) >> 1;
    EXPECT_NE(a, b) << "s=" << s;
  }
}

TEST(HuntHeap, InvariantHoldsAtQuiescenceAfterConcurrency) {
  for (u64 seed = 1; seed <= 5; ++seed) {
    PqParams params{.npriorities = 32, .maxprocs = 8};
    Hunt pq(params);
    sim::Engine eng(8, {}, seed);
    eng.run([&](ProcId id) {
      for (u32 i = 0; i < 30; ++i) {
        if (SimPlatform::rnd(100) < 65)
          ASSERT_TRUE(pq.insert(static_cast<Prio>(SimPlatform::rnd(32)), id * 100 + i));
        else
          pq.delete_min();
      }
    });
    EXPECT_TRUE(pq.heap_invariant_holds()) << "seed " << seed;
  }
}

TEST(HuntHeap, CapacityRefusal) {
  PqParams params{.npriorities = 4, .maxprocs = 1};
  params.heap_capacity = 3;
  Hunt pq(params);
  sim::Engine eng(1);
  eng.run([&](ProcId) {
    EXPECT_TRUE(pq.insert(0, 1));
    EXPECT_TRUE(pq.insert(1, 2));
    EXPECT_TRUE(pq.insert(2, 3));
    EXPECT_FALSE(pq.insert(3, 4));
    EXPECT_TRUE(pq.delete_min().has_value());
    EXPECT_TRUE(pq.insert(3, 4));
  });
}

TEST(HuntHeap, StrandedTagRegression) {
  // Regression for the livelock where an insert stopped on a transiently
  // EMPTY parent, stranding its pid tag: heavy insert traffic into a tiny
  // heap with concurrent deleters. Every run must terminate and conserve.
  for (u64 seed = 1; seed <= 8; ++seed) {
    PqParams params{.npriorities = 4, .maxprocs = 12};
    Hunt pq(params);
    auto net = std::make_unique<SimShared<i64>>(0);
    sim::Engine eng(12, {}, seed);
    eng.run([&](ProcId) {
      for (u32 i = 0; i < 25; ++i) {
        if (SimPlatform::flip()) {
          ASSERT_TRUE(pq.insert(static_cast<Prio>(SimPlatform::rnd(4)), i + 1));
          net->fetch_add(1);
        } else if (pq.delete_min()) {
          net->fetch_add(-1);
        }
      }
    });
    i64 drained = 0;
    eng.run([&](ProcId id) {
      if (id != 0) return;
      while (pq.delete_min()) ++drained;
    });
    EXPECT_EQ(drained, net->load()) << "seed " << seed;
  }
}

TEST(HuntHeap, SoloMatchesPriorityOrderWithDuplicates) {
  PqParams params{.npriorities = 4, .maxprocs = 1};
  Hunt pq(params);
  sim::Engine eng(1);
  eng.run([&](ProcId) {
    const Prio ps[] = {3, 1, 2, 1, 0, 3, 0, 2};
    for (u32 i = 0; i < 8; ++i) ASSERT_TRUE(pq.insert(ps[i], i));
    Prio prev = 0;
    for (u32 i = 0; i < 8; ++i) {
      auto e = pq.delete_min();
      ASSERT_TRUE(e.has_value());
      EXPECT_GE(e->prio, prev);
      prev = e->prio;
    }
  });
}

} // namespace
} // namespace fpq
