// Tests of the paper's Fig. 1 building blocks: MCS-locked bins and the
// (bounded) fetch-and-inc/dec counters in their CAS and MCS variants.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "container/bin.hpp"
#include "container/counters.hpp"
#include "platform/sim.hpp"

namespace fpq {
namespace {

TEST(LockedBin, FillAndDrainLifo) {
  LockedBin<SimPlatform> bin(1, 16);
  sim::Engine eng(1);
  eng.run([&](ProcId) {
    EXPECT_TRUE(bin.empty());
    for (u64 i = 0; i < 5; ++i) EXPECT_TRUE(bin.insert(i));
    EXPECT_FALSE(bin.empty());
    for (u64 i = 5; i-- > 0;) {
      auto e = bin.remove();
      ASSERT_TRUE(e.has_value());
      EXPECT_EQ(*e, i);
    }
    EXPECT_TRUE(bin.empty());
    EXPECT_FALSE(bin.remove().has_value());
  });
}

TEST(LockedBin, CapacityIsEnforced) {
  LockedBin<SimPlatform> bin(1, 3);
  sim::Engine eng(1);
  eng.run([&](ProcId) {
    EXPECT_TRUE(bin.insert(1));
    EXPECT_TRUE(bin.insert(2));
    EXPECT_TRUE(bin.insert(3));
    EXPECT_FALSE(bin.insert(4));
    bin.remove();
    EXPECT_TRUE(bin.insert(5));
  });
}

class LockedBinProcs : public ::testing::TestWithParam<u32> {};

TEST_P(LockedBinProcs, ConcurrentConservation) {
  const u32 nprocs = GetParam();
  LockedBin<SimPlatform> bin(nprocs, 4096);
  auto removed_count = std::make_unique<SimShared<u64>>(0);
  std::vector<std::vector<u64>> removed(nprocs);
  sim::Engine eng(nprocs, {}, 3);
  eng.run([&](ProcId id) {
    for (u32 i = 0; i < 40; ++i) {
      ASSERT_TRUE(bin.insert((static_cast<u64>(id) << 32) | i));
      if (SimPlatform::flip()) {
        if (auto e = bin.remove()) removed[id].push_back(*e);
      }
    }
  });
  std::multiset<u64> out;
  for (const auto& v : removed) out.insert(v.begin(), v.end());
  eng.run([&](ProcId id) {
    if (id != 0) return;
    while (auto e = bin.remove()) removed[0].push_back(*e);
  });
  out.clear();
  for (const auto& v : removed) out.insert(v.begin(), v.end());
  EXPECT_EQ(out.size(), static_cast<std::size_t>(nprocs) * 40);
  std::set<u64> unique(out.begin(), out.end());
  EXPECT_EQ(unique.size(), out.size()) << "duplicate removals";
  (void)removed_count;
}

INSTANTIATE_TEST_SUITE_P(Sweep, LockedBinProcs, ::testing::Values(2u, 4u, 16u, 64u));

TEST(LockedBin, EmptyIsSingleRead) {
  LockedBin<SimPlatform> bin(2, 8);
  sim::Engine eng(2);
  eng.run([&](ProcId id) {
    if (id != 0) return;
    bin.insert(1);
    const u64 reads_before = SimPlatform::engine().mem_stats().reads;
    (void)bin.empty();
    EXPECT_EQ(SimPlatform::engine().mem_stats().reads, reads_before + 1);
  });
}

template <class C>
void counter_unique_fai(C& ctr, u32 nprocs, u32 per_proc, u64 seed) {
  std::vector<std::vector<i64>> got(nprocs);
  sim::Engine eng(nprocs, {}, seed);
  eng.run([&](ProcId id) {
    for (u32 i = 0; i < per_proc; ++i) {
      SimPlatform::delay(SimPlatform::rnd(32));
      got[id].push_back(ctr.fai());
    }
  });
  std::set<i64> values;
  for (const auto& v : got) values.insert(v.begin(), v.end());
  const u64 total = static_cast<u64>(nprocs) * per_proc;
  EXPECT_EQ(values.size(), total) << "duplicate fetch-and-increment results";
  EXPECT_EQ(*values.begin(), 0);
  EXPECT_EQ(*values.rbegin(), static_cast<i64>(total) - 1);
  EXPECT_EQ(ctr.read(), static_cast<i64>(total));
}

TEST(CasCounter, FaiReturnsArePermutation) {
  CasCounter<SimPlatform> c(0);
  counter_unique_fai(c, 16, 25, 17);
}

TEST(McsCounter, FaiReturnsArePermutation) {
  McsCounter<SimPlatform> c(16, 0);
  counter_unique_fai(c, 16, 25, 19);
}

struct BfadCase {
  u32 nprocs;
  u32 dec_pct;
  u64 seed;
};

class BfadSweep : public ::testing::TestWithParam<BfadCase> {};

TEST_P(BfadSweep, NeverBelowFloorAndAccountingExact) {
  const auto [nprocs, dec_pct, seed] = GetParam();
  CasCounter<SimPlatform> c(0);
  auto incs = std::make_unique<SimShared<u64>>(0);
  auto effective_decs = std::make_unique<SimShared<u64>>(0);
  sim::Engine eng(nprocs, {}, seed);
  eng.run([&](ProcId) {
    for (u32 i = 0; i < 30; ++i) {
      SimPlatform::delay(SimPlatform::rnd(64));
      if (SimPlatform::rnd(100) < dec_pct) {
        const i64 before = c.bfad(0);
        EXPECT_GE(before, 0);
        if (before > 0) effective_decs->fetch_add(1);
      } else {
        c.fai();
        incs->fetch_add(1);
      }
    }
  });
  EXPECT_GE(c.read(), 0);
  EXPECT_EQ(c.read(),
            static_cast<i64>(incs->load()) - static_cast<i64>(effective_decs->load()));
}

INSTANTIATE_TEST_SUITE_P(Sweep, BfadSweep,
                         ::testing::Values(BfadCase{2, 50, 1}, BfadCase{8, 50, 2},
                                           BfadCase{8, 80, 3}, BfadCase{8, 20, 4},
                                           BfadCase{32, 50, 5}, BfadCase{32, 100, 6},
                                           BfadCase{64, 50, 7}));

TEST(CasCounter, BfaiRespectsCeiling) {
  CasCounter<SimPlatform> c(0);
  sim::Engine eng(8, {}, 23);
  eng.run([&](ProcId) {
    for (u32 i = 0; i < 50; ++i) {
      const i64 before = c.bfai(10);
      EXPECT_LE(before, 10);
    }
  });
  EXPECT_EQ(c.read(), 10);
}

TEST(CasCounter, FadUnboundedGoesNegative) {
  CasCounter<SimPlatform> c(0);
  sim::Engine eng(4);
  eng.run([&](ProcId) {
    for (u32 i = 0; i < 10; ++i) c.fad();
  });
  EXPECT_EQ(c.read(), -40);
}

TEST(McsCounter, BfadMatchesCasCounterSemantics) {
  // Drive both with one deterministic schedule; at quiescence both must
  // satisfy the same invariant (values differ only through interleaving).
  McsCounter<SimPlatform> mc(8, 5);
  sim::Engine eng(8, {}, 29);
  auto effective = std::make_unique<SimShared<u64>>(0);
  eng.run([&](ProcId) {
    for (u32 i = 0; i < 20; ++i) {
      const i64 before = mc.bfad(0);
      EXPECT_GE(before, 0);
      if (before > 0) effective->fetch_add(1);
    }
  });
  EXPECT_EQ(mc.read(), 5 - static_cast<i64>(effective->load()));
  EXPECT_EQ(mc.read(), 0); // 160 attempts on 5 items drain it
}

} // namespace
} // namespace fpq
