// Tests of the combining-funnel counter — the paper's core primitive
// (Fig. 10). Property-style sweeps over processor counts, op mixes, funnel
// geometries and elimination settings; every configuration must satisfy
// the bounded-counter invariants.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "funnel/counter.hpp"
#include "platform/sim.hpp"

namespace fpq {
namespace {

using Cfg = FunnelCounter<SimPlatform>::Config;

FunnelParams tight_params(u32 levels) {
  FunnelParams p;
  p.levels = levels;
  for (u32 d = 0; d < kMaxFunnelLevels; ++d) {
    p.width[d] = 2;
    p.spin[d] = 8;
  }
  p.attempts = 3;
  return p;
}

TEST(FunnelCounter, SequentialFai) {
  FunnelCounter<SimPlatform> c(1, tight_params(1), Cfg{false, false, 0}, 0);
  sim::Engine eng(1);
  eng.run([&](ProcId) {
    for (i64 i = 0; i < 20; ++i) EXPECT_EQ(c.fai(), i);
  });
  EXPECT_EQ(c.read(), 20);
}

TEST(FunnelCounter, SequentialBfadStopsAtFloor) {
  FunnelCounter<SimPlatform> c(1, tight_params(1), Cfg{true, true, 0}, 3);
  sim::Engine eng(1);
  eng.run([&](ProcId) {
    EXPECT_EQ(c.bfad(0), 3);
    EXPECT_EQ(c.bfad(0), 2);
    EXPECT_EQ(c.bfad(0), 1);
    EXPECT_EQ(c.bfad(0), 0); // at floor: value returned, no decrement
    EXPECT_EQ(c.bfad(0), 0);
  });
  EXPECT_EQ(c.read(), 0);
}

TEST(FunnelCounter, NonzeroFloor) {
  FunnelCounter<SimPlatform> c(1, tight_params(1), Cfg{true, true, 5}, 7);
  sim::Engine eng(1);
  eng.run([&](ProcId) {
    EXPECT_EQ(c.bfad(5), 7);
    EXPECT_EQ(c.bfad(5), 6);
    EXPECT_EQ(c.bfad(5), 5);
    EXPECT_EQ(c.bfad(5), 5);
  });
  EXPECT_EQ(c.read(), 5);
}

struct FaiCase {
  u32 nprocs;
  u32 levels;
  u64 seed;
};

class FunnelFaiSweep : public ::testing::TestWithParam<FaiCase> {};

TEST_P(FunnelFaiSweep, PureIncrementsArePermutation) {
  const auto [nprocs, levels, seed] = GetParam();
  // Pure increments through the bounded counter: every return value must be
  // distinct and exactly cover [0, total) — combining distributes a
  // contiguous block to each tree.
  FunnelCounter<SimPlatform> c(nprocs, tight_params(levels), Cfg{true, true, 0}, 0);
  std::vector<std::vector<i64>> got(nprocs);
  sim::Engine eng(nprocs, {}, seed);
  const u32 per_proc = 25;
  eng.run([&](ProcId id) {
    for (u32 i = 0; i < per_proc; ++i) {
      SimPlatform::delay(SimPlatform::rnd(64));
      got[id].push_back(c.fai());
    }
  });
  std::set<i64> values;
  u64 total = 0;
  for (const auto& v : got) {
    values.insert(v.begin(), v.end());
    total += v.size();
  }
  EXPECT_EQ(values.size(), total);
  EXPECT_EQ(*values.begin(), 0);
  EXPECT_EQ(*values.rbegin(), static_cast<i64>(total) - 1);
  EXPECT_EQ(c.read(), static_cast<i64>(total));
}

INSTANTIATE_TEST_SUITE_P(Sweep, FunnelFaiSweep,
                         ::testing::Values(FaiCase{2, 1, 1}, FaiCase{4, 1, 2},
                                           FaiCase{8, 2, 3}, FaiCase{16, 2, 4},
                                           FaiCase{32, 3, 5}, FaiCase{64, 3, 6},
                                           FaiCase{64, 4, 7}, FaiCase{128, 3, 8}));

struct MixCase {
  u32 nprocs;
  u32 dec_pct;
  bool eliminate;
  u32 levels;
  u64 seed;
};

class FunnelMixSweep : public ::testing::TestWithParam<MixCase> {};

TEST_P(FunnelMixSweep, BoundedInvariantsHold) {
  const auto [nprocs, dec_pct, eliminate, levels, seed] = GetParam();
  FunnelCounter<SimPlatform> c(nprocs, tight_params(levels), Cfg{true, eliminate, 0}, 0);
  auto incs = std::make_unique<SimShared<u64>>(0);
  auto effective_decs = std::make_unique<SimShared<u64>>(0);
  sim::Engine eng(nprocs, {}, seed);
  eng.run([&](ProcId) {
    for (u32 i = 0; i < 30; ++i) {
      SimPlatform::delay(SimPlatform::rnd(64));
      if (SimPlatform::rnd(100) < dec_pct) {
        const i64 before = c.bfad(0);
        ASSERT_GE(before, 0) << "BFaD returned a value below the floor";
        if (before > 0) effective_decs->fetch_add(1);
      } else {
        const i64 before = c.fai();
        ASSERT_GE(before, 0);
        incs->fetch_add(1);
      }
    }
  });
  // Quiescent accounting: central value == increments - effective decrements.
  EXPECT_GE(c.read(), 0);
  EXPECT_EQ(c.read(),
            static_cast<i64>(incs->load()) - static_cast<i64>(effective_decs->load()));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FunnelMixSweep,
    ::testing::Values(MixCase{2, 50, true, 1, 1}, MixCase{4, 50, true, 2, 2},
                      MixCase{8, 50, true, 2, 3}, MixCase{16, 50, true, 2, 4},
                      MixCase{32, 50, true, 3, 5}, MixCase{64, 50, true, 3, 6},
                      MixCase{128, 50, true, 3, 7}, MixCase{8, 50, false, 2, 8},
                      MixCase{32, 50, false, 3, 9}, MixCase{64, 50, false, 3, 10},
                      MixCase{32, 10, true, 3, 11}, MixCase{32, 90, true, 3, 12},
                      MixCase{32, 0, true, 3, 13}, MixCase{32, 100, true, 3, 14},
                      MixCase{16, 50, true, 4, 15}, MixCase{256, 50, true, 3, 16}));

// Regression for the floor-pinning artifact noted in EXPERIMENTS.md: a
// counter pinned at its floor under 100% decrements must hold the BFaD
// contract exactly — every return >= floor, value never dips below the
// floor, and this must survive elimination on/off and an adversarial
// schedule (elimination pairs an inc with a dec; under pure decrements a
// buggy eliminator could fabricate one and push the counter negative).
struct FloorPinCase {
  u32 nprocs;
  bool eliminate;
  sim::SchedulePolicy policy;
  u64 seed;
};

class BfadFloorPin : public ::testing::TestWithParam<FloorPinCase> {};

TEST_P(BfadFloorPin, PureDecrementsNeverBreachFloor) {
  const auto [nprocs, eliminate, policy, seed] = GetParam();
  const i64 initial = 5; // drained within the first few ops, pinned after
  FunnelCounter<SimPlatform> c(nprocs, tight_params(2), Cfg{true, eliminate, 0},
                               initial);
  auto effective = std::make_unique<SimShared<u64>>(0);
  sim::MachineParams m;
  m.sched.policy = policy;
  sim::Engine eng(nprocs, m, seed);
  eng.run([&](ProcId) {
    for (u32 i = 0; i < 30; ++i) {
      SimPlatform::delay(SimPlatform::rnd(64));
      const i64 before = c.bfad(0);
      ASSERT_GE(before, 0) << "BFaD handed out a value below the floor";
      if (before > 0) effective->fetch_add(1);
    }
  });
  // Exactly `initial` decrements took effect; the rest hit the floor.
  EXPECT_EQ(effective->load(), static_cast<u64>(initial));
  EXPECT_EQ(c.read(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BfadFloorPin,
    ::testing::Values(
        FloorPinCase{8, true, sim::SchedulePolicy::kSmallestClock, 1},
        FloorPinCase{8, false, sim::SchedulePolicy::kSmallestClock, 2},
        FloorPinCase{32, true, sim::SchedulePolicy::kSmallestClock, 3},
        FloorPinCase{32, false, sim::SchedulePolicy::kSmallestClock, 4},
        FloorPinCase{32, true, sim::SchedulePolicy::kRandomPreempt, 5},
        FloorPinCase{32, false, sim::SchedulePolicy::kRandomPreempt, 6},
        FloorPinCase{64, true, sim::SchedulePolicy::kDelayLeader, 7},
        FloorPinCase{64, false, sim::SchedulePolicy::kDelayLeader, 8}));

TEST(FunnelCounter, FloorPinAtZeroFromEmptyStart) {
  // The degenerate pin: starts at the floor, every op is a decrement, so
  // no decrement may ever take effect and the value must read 0 throughout.
  for (const bool eliminate : {true, false}) {
    FunnelCounter<SimPlatform> c(16, tight_params(2), Cfg{true, eliminate, 0}, 0);
    sim::Engine eng(16, {}, 9);
    eng.run([&](ProcId) {
      for (u32 i = 0; i < 20; ++i) {
        SimPlatform::delay(SimPlatform::rnd(32));
        ASSERT_EQ(c.bfad(0), 0) << "eliminate=" << eliminate;
      }
    });
    EXPECT_EQ(c.read(), 0) << "eliminate=" << eliminate;
  }
}

TEST(FunnelCounter, PlainFaaSumsAnyDeltas) {
  FunnelCounter<SimPlatform> c(16, tight_params(2), Cfg{false, false, 0}, 100);
  auto sum = std::make_unique<SimShared<i64>>(0);
  sim::Engine eng(16, {}, 31);
  eng.run([&](ProcId id) {
    for (u32 i = 0; i < 20; ++i) {
      SimPlatform::delay(SimPlatform::rnd(32));
      const i64 d = (id + i) % 2 == 0 ? 3 : -2;
      c.faa(d);
      sum->fetch_add(d);
    }
  });
  EXPECT_EQ(c.read(), 100 + sum->load());
}

TEST(FunnelCounter, PlainFaaCanGoNegative) {
  FunnelCounter<SimPlatform> c(8, tight_params(2), Cfg{false, false, 0}, 0);
  sim::Engine eng(8, {}, 33);
  eng.run([&](ProcId) {
    for (u32 i = 0; i < 10; ++i) c.faa(-1);
  });
  EXPECT_EQ(c.read(), -80);
}

TEST(FunnelCounter, EliminationActuallyOccursUnderBalancedLoad) {
  // With elimination on, a balanced mix at high concurrency must perform
  // fewer central RMWs than operations (some pairs never reach the center).
  const u32 nprocs = 64, per_proc = 30;
  FunnelParams fp = FunnelParams::for_procs(nprocs);
  FunnelCounter<SimPlatform> c(nprocs, fp, Cfg{true, true, 0}, 0);
  sim::Engine eng(nprocs, {}, 37);
  eng.run([&](ProcId) {
    for (u32 i = 0; i < per_proc; ++i) {
      if (SimPlatform::flip())
        c.fai();
      else
        c.bfad(0);
    }
  });
  // Central CAS traffic is part of total RMWs; combining+elimination must
  // keep it well below one RMW per operation on the central word. We can't
  // isolate the central word's RMWs directly, so use a weaker proxy: the
  // whole run's RMW count stays below what per-op central CAS retry loops
  // would produce, and the run completes with the invariant intact.
  EXPECT_GE(c.read(), 0);
}

TEST(FunnelCounter, AdaptionStaysWithinConfiguredRange) {
  // Indirect check: a long low-load run then a high-load run both complete
  // and maintain invariants (adaption must not escape [min,1] or the width
  // computation would break).
  FunnelParams fp = tight_params(2);
  FunnelCounter<SimPlatform> c(32, fp, Cfg{true, true, 0}, 0);
  sim::Engine eng(32, {}, 41);
  eng.run([&](ProcId id) {
    if (id == 0)
      for (u32 i = 0; i < 100; ++i) c.fai(); // solo-ish phase
  });
  eng.run([&](ProcId) {
    for (u32 i = 0; i < 20; ++i) c.fai(); // stampede phase
  });
  EXPECT_EQ(c.read(), 100 + 32 * 20);
}

// ---- Batched operations (fai_batch / bfad_batch): a record carries a
// whole ±k batch through the funnel; one central RMW applies the merged
// sum and the success count splits positionally on the way back.

TEST(FunnelCounter, SequentialFaiBatch) {
  FunnelParams fp = tight_params(1);
  fp.batch_limit = 8;
  FunnelCounter<SimPlatform> c(1, fp, Cfg{false, false, 0}, 0);
  sim::Engine eng(1);
  eng.run([&](ProcId) {
    EXPECT_EQ(c.fai_batch(5), 5u);
    EXPECT_EQ(c.fai_batch(1), 1u); // k=1 degenerates to fai
    EXPECT_EQ(c.fai_batch(3), 3u);
  });
  EXPECT_EQ(c.read(), 9);
}

TEST(FunnelCounter, SequentialBfadBatchClampsAtFloor) {
  FunnelParams fp = tight_params(1);
  fp.batch_limit = 8;
  FunnelCounter<SimPlatform> c(1, fp, Cfg{true, true, 0}, 5);
  sim::Engine eng(1);
  eng.run([&](ProcId) {
    EXPECT_EQ(c.bfad_batch(0, 3), 3u); // 5 -> 2
    EXPECT_EQ(c.bfad_batch(0, 4), 2u); // only 2 above the floor
    EXPECT_EQ(c.bfad_batch(0, 2), 0u); // pinned
  });
  EXPECT_EQ(c.read(), 0);
}

TEST(FunnelCounter, SequentialBfadBatchNonzeroFloor) {
  FunnelParams fp = tight_params(1);
  fp.batch_limit = 4;
  FunnelCounter<SimPlatform> c(1, fp, Cfg{true, true, 3}, 7);
  sim::Engine eng(1);
  eng.run([&](ProcId) {
    EXPECT_EQ(c.bfad_batch(3, 4), 4u); // 7 -> 3
    EXPECT_EQ(c.bfad_batch(3, 1), 0u);
  });
  EXPECT_EQ(c.read(), 3);
}

struct BatchMixCase {
  u32 nprocs;
  bool eliminate;
  u32 levels;
  u64 seed;
};

class FunnelBatchMixSweep : public ::testing::TestWithParam<BatchMixCase> {};

TEST_P(FunnelBatchMixSweep, MixedBatchSizesKeepExactAccounting) {
  // Arbitrary same-sign batch sums combine, opposite ones eliminate whole
  // or partially; whatever path each batch takes, the quiescent accounting
  // must stay exact: value == increments - effective decrements.
  const auto [nprocs, eliminate, levels, seed] = GetParam();
  FunnelParams fp = tight_params(levels);
  fp.batch_limit = 4;
  FunnelCounter<SimPlatform> c(nprocs, fp, Cfg{true, eliminate, 0}, 0);
  auto incs = std::make_unique<SimShared<u64>>(0);
  auto effective_decs = std::make_unique<SimShared<u64>>(0);
  sim::Engine eng(nprocs, {}, seed);
  eng.run([&](ProcId) {
    for (u32 i = 0; i < 20; ++i) {
      SimPlatform::delay(SimPlatform::rnd(64));
      const u64 k = 1 + SimPlatform::rnd(4);
      if (SimPlatform::flip()) {
        EXPECT_EQ(c.fai_batch(k), k);
        incs->fetch_add(k);
      } else {
        const u64 s = c.bfad_batch(0, k);
        ASSERT_LE(s, k) << "more successes than requested decrements";
        effective_decs->fetch_add(s);
      }
    }
  });
  EXPECT_GE(c.read(), 0);
  EXPECT_EQ(c.read(),
            static_cast<i64>(incs->load()) - static_cast<i64>(effective_decs->load()));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FunnelBatchMixSweep,
    ::testing::Values(BatchMixCase{2, true, 1, 1}, BatchMixCase{4, true, 2, 2},
                      BatchMixCase{8, true, 2, 3}, BatchMixCase{16, true, 2, 4},
                      BatchMixCase{32, true, 3, 5}, BatchMixCase{64, true, 3, 6},
                      BatchMixCase{8, false, 2, 7}, BatchMixCase{32, false, 3, 8},
                      BatchMixCase{128, true, 3, 9}));

TEST(FunnelCounter, BatchedDecsAgainstPinnedFloorNeverOverdraw) {
  // Batched analog of the floor-pin regression: initial value 5, every op
  // a batch of 2..4 decrements; exactly 5 may ever take effect.
  const i64 initial = 5;
  FunnelParams fp = tight_params(2);
  fp.batch_limit = 4;
  FunnelCounter<SimPlatform> c(16, fp, Cfg{true, true, 0}, initial);
  auto effective = std::make_unique<SimShared<u64>>(0);
  sim::Engine eng(16, {}, 23);
  eng.run([&](ProcId) {
    for (u32 i = 0; i < 15; ++i) {
      SimPlatform::delay(SimPlatform::rnd(64));
      effective->fetch_add(c.bfad_batch(0, 2 + SimPlatform::rnd(3)));
    }
  });
  EXPECT_EQ(effective->load(), static_cast<u64>(initial));
  EXPECT_EQ(c.read(), 0);
}

TEST(FunnelCounter, BfadOnWrongBoundAborts) {
  FunnelCounter<SimPlatform> c(1, tight_params(1), Cfg{true, true, 0}, 0);
  sim::Engine eng(1);
  EXPECT_DEATH(eng.run([&](ProcId) { c.bfad(5); }), "bound-specialized");
}

TEST(FunnelCounter, FaaOnBoundedAborts) {
  FunnelCounter<SimPlatform> c(1, tight_params(1), Cfg{true, true, 0}, 0);
  sim::Engine eng(1);
  EXPECT_DEATH(eng.run([&](ProcId) { c.faa(2); }), "bounded");
}

} // namespace
} // namespace fpq
