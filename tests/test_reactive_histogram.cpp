// Tests of the extension components: the Lim-Agarwal-style reactive
// counter (mode switching, drain protocol, invariants under load shifts)
// and the latency histogram used by the tail benches.
#include <gtest/gtest.h>

#include <memory>

#include "bench_support/histogram.hpp"
#include "bench_support/workload.hpp"
#include "container/reactive_counter.hpp"
#include "core/registry.hpp"
#include "platform/sim.hpp"

namespace fpq {
namespace {

FunnelParams small_funnel() {
  FunnelParams p;
  p.levels = 2;
  for (u32 d = 0; d < kMaxFunnelLevels; ++d) {
    p.width[d] = 2;
    p.spin[d] = 8;
  }
  return p;
}

TEST(ReactiveCounter, SequentialSemanticsInMcsMode) {
  ReactiveCounter<SimPlatform> c(1, small_funnel(), 0, 2);
  sim::Engine eng(1);
  eng.run([&](ProcId) {
    EXPECT_EQ(c.fai(), 2);
    EXPECT_EQ(c.bfad(0), 3);
    EXPECT_EQ(c.bfad(0), 2);
    EXPECT_EQ(c.bfad(0), 1);
    EXPECT_EQ(c.bfad(0), 0); // floor
    EXPECT_EQ(c.bfad(0), 0);
  });
  EXPECT_EQ(c.read(), 0);
  EXPECT_FALSE(c.using_funnel()); // no contention, never switched
  EXPECT_EQ(c.switches(), 0u);
}

TEST(ReactiveCounter, SwitchesUpUnderLoad) {
  const u32 nprocs = 64;
  ReactiveCounter<SimPlatform> c(nprocs, FunnelParams::for_procs(nprocs), 0, 0);
  sim::Engine eng(nprocs, {}, 21);
  eng.run([&](ProcId) {
    for (u32 i = 0; i < 40; ++i) {
      if (SimPlatform::flip())
        c.fai();
      else
        c.bfad(0);
    }
  });
  EXPECT_GE(c.switches(), 1u) << "64 hammering processors never triggered a switch";
}

struct ReactiveCase {
  u32 nprocs;
  u64 seed;
};

class ReactiveSweep : public ::testing::TestWithParam<ReactiveCase> {};

TEST_P(ReactiveSweep, InvariantsSurviveModeSwitches) {
  const auto [nprocs, seed] = GetParam();
  ReactiveCounter<SimPlatform> c(nprocs, FunnelParams::for_procs(nprocs), 0, 0);
  auto incs = std::make_unique<SimShared<u64>>(0);
  auto effective = std::make_unique<SimShared<u64>>(0);
  sim::Engine eng(nprocs, {}, seed);
  eng.run([&](ProcId) {
    for (u32 i = 0; i < 30; ++i) {
      SimPlatform::delay(SimPlatform::rnd(64));
      if (SimPlatform::flip()) {
        c.fai();
        incs->fetch_add(1);
      } else {
        const i64 before = c.bfad(0);
        ASSERT_GE(before, 0);
        if (before > 0) effective->fetch_add(1);
      }
    }
  });
  EXPECT_GE(c.read(), 0);
  EXPECT_EQ(c.read(),
            static_cast<i64>(incs->load()) - static_cast<i64>(effective->load()));
}

INSTANTIATE_TEST_SUITE_P(Sweep, ReactiveSweep,
                         ::testing::Values(ReactiveCase{2, 1}, ReactiveCase{8, 2},
                                           ReactiveCase{32, 3}, ReactiveCase{64, 4},
                                           ReactiveCase{128, 5}));

TEST(ReactiveCounter, AlternatingLoadPhasesSwitchBothWays) {
  const u32 nprocs = 64;
  ReactiveCounter<SimPlatform>::Tuning t;
  t.down_streak = 4; // switch back quickly for the test
  ReactiveCounter<SimPlatform> c(nprocs, FunnelParams::for_procs(nprocs), 0, 0, t);
  sim::Engine eng(nprocs, {}, 31);
  // Phase 1: stampede — should end in funnel mode.
  eng.run([&](ProcId) {
    for (u32 i = 0; i < 30; ++i) c.fai();
  });
  const u64 after_burst = c.switches();
  EXPECT_GE(after_burst, 1u);
  // Phase 2: one quiet processor — should come back down to MCS.
  eng.run([&](ProcId id) {
    if (id != 0) return;
    for (u32 i = 0; i < 30; ++i) {
      SimPlatform::delay(500);
      c.bfad(0);
    }
  });
  EXPECT_FALSE(c.using_funnel());
  EXPECT_GT(c.switches(), after_burst);
  EXPECT_GE(c.read(), 0);
}

// ---- LatencyHistogram.

TEST(LatencyHistogram, BucketEdges) {
  EXPECT_EQ(LatencyHistogram::bucket_of(0), 0u);
  EXPECT_EQ(LatencyHistogram::bucket_of(1), 0u);
  EXPECT_EQ(LatencyHistogram::bucket_of(2), 2u);
  EXPECT_EQ(LatencyHistogram::bucket_of(3), 3u);
  EXPECT_EQ(LatencyHistogram::bucket_of(4), 4u);
  EXPECT_EQ(LatencyHistogram::bucket_of(5), 4u);
  EXPECT_EQ(LatencyHistogram::bucket_of(6), 5u);
  EXPECT_EQ(LatencyHistogram::bucket_of(7), 5u);
  EXPECT_EQ(LatencyHistogram::bucket_of(8), 6u);
  EXPECT_EQ(LatencyHistogram::lower_edge(2), 2u);
  EXPECT_EQ(LatencyHistogram::lower_edge(3), 3u);
  EXPECT_EQ(LatencyHistogram::lower_edge(6), 8u);
  EXPECT_EQ(LatencyHistogram::lower_edge(7), 12u);
}

TEST(LatencyHistogram, BucketsAreMonotone) {
  u32 prev = 0;
  for (Cycles v = 1; v < 100000; v = v * 9 / 8 + 1) {
    const u32 b = LatencyHistogram::bucket_of(v);
    EXPECT_GE(b, prev);
    EXPECT_LE(LatencyHistogram::lower_edge(b), v);
    prev = b;
  }
}

TEST(LatencyHistogram, MeanCountMax) {
  LatencyHistogram h;
  for (Cycles v : {10ull, 20ull, 30ull, 40ull}) h.record(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.max(), 40u);
  EXPECT_DOUBLE_EQ(h.mean(), 25.0);
}

TEST(LatencyHistogram, PercentilesOrderedAndBracketed) {
  LatencyHistogram h;
  Xorshift rng(5);
  for (int i = 0; i < 10000; ++i) h.record(1 + rng.below(10000));
  const Cycles p50 = h.percentile(0.5);
  const Cycles p95 = h.percentile(0.95);
  const Cycles p99 = h.percentile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, h.max());
  // Uniform[1,10000]: p50 between 3.3k and 5k (lower-edge bias up to 33%).
  EXPECT_GE(p50, 3300u);
  EXPECT_LE(p50, 5100u);
}

TEST(LatencyHistogram, MergeIsSum) {
  LatencyHistogram a, b;
  a.record(10);
  a.record(1000);
  b.record(100000);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.max(), 100000u);
  EXPECT_GE(a.percentile(0.99), 65536u);
}

TEST(LatencyHistogram, EmptyIsSane) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(0.5), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(LatencyHistogram, SummaryFormats) {
  LatencyHistogram h;
  for (int i = 0; i < 100; ++i) h.record(1500);
  const std::string s = h.summary();
  EXPECT_NE(s.find("p50="), std::string::npos);
  EXPECT_NE(s.find("p99="), std::string::npos);
  EXPECT_NE(s.find("max=1500"), std::string::npos);
}

TEST(DetailedWorkload, HistogramsMatchOpCounts) {
  PqParams params{.npriorities = 8, .maxprocs = 8};
  auto pq = make_priority_queue<SimPlatform>(Algorithm::kFunnelTree, params);
  WorkloadParams w;
  w.nprocs = 8;
  w.ops_per_proc = 50;
  const DetailedStats s = run_pq_workload_detailed<SimPlatform>(*pq, w);
  EXPECT_EQ(s.all.count(), 8u * 50u);
  EXPECT_EQ(s.insert.count(), s.ops.inserts);
  EXPECT_EQ(s.del.count(), s.ops.deletes);
  EXPECT_GT(s.all.percentile(0.5), 0u);
  EXPECT_NEAR(s.all.mean(), s.ops.mean_all(), s.ops.mean_all() * 0.01 + 1);
}

} // namespace
} // namespace fpq
