// Concurrent integration tests: every queue algorithm, parameterized over
// processor counts and priority ranges, driven on the simulated machine.
// Checks: item conservation, quiescent-phase consistency (paper Appendix
// B), and empty-delete accounting.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <vector>

#include "core/registry.hpp"
#include "platform/sim.hpp"
#include "verify/quiescent.hpp"

namespace fpq {
namespace {

struct ConcCase {
  Algorithm algo;
  u32 nprocs;
  u32 npriorities;
  u64 seed;
};

void PrintTo(const ConcCase& c, std::ostream* os) {
  *os << to_string(c.algo) << "_P" << c.nprocs << "_N" << c.npriorities << "_s"
      << c.seed;
}

class ConcurrentQueue : public ::testing::TestWithParam<ConcCase> {};

TEST_P(ConcurrentQueue, ConservationUnderMixedLoad) {
  const auto [algo, nprocs, npriorities, seed] = GetParam();
  PqParams params{.npriorities = npriorities, .maxprocs = nprocs,
                  .bin_capacity = 1u << 13};
  params.seed = seed;
  auto pq = make_priority_queue<SimPlatform>(algo, params);

  std::vector<std::vector<Entry>> inserted(nprocs), deleted(nprocs);
  sim::Engine eng(nprocs, {}, seed);
  eng.run([&](ProcId id) {
    for (u32 i = 0; i < 40; ++i) {
      SimPlatform::delay(SimPlatform::rnd(128));
      if (SimPlatform::flip()) {
        const Entry e{static_cast<Prio>(SimPlatform::rnd(npriorities)),
                      (static_cast<u64>(id) << 24) | i};
        ASSERT_TRUE(pq->insert(e.prio, e.item));
        inserted[id].push_back(e);
      } else if (auto e = pq->delete_min()) {
        deleted[id].push_back(*e);
      }
    }
  });
  // Drain at quiescence.
  std::vector<Entry> drained;
  eng.run([&](ProcId id) {
    if (id != 0) return;
    while (auto e = pq->delete_min()) drained.push_back(*e);
  });

  std::vector<Entry> all_inserted, all_out(drained);
  for (const auto& v : inserted) all_inserted.insert(all_inserted.end(), v.begin(), v.end());
  for (const auto& v : deleted) all_out.insert(all_out.end(), v.begin(), v.end());
  EXPECT_TRUE(same_entries(all_inserted, all_out))
      << "inserted " << all_inserted.size() << " entries, got back "
      << all_out.size();
}

std::vector<ConcCase> concurrent_cases() {
  std::vector<ConcCase> cases;
  for (Algorithm a : all_algorithms()) {
    cases.push_back({a, 2, 16, 1});
    cases.push_back({a, 4, 16, 2});
    cases.push_back({a, 8, 16, 3});
    cases.push_back({a, 16, 16, 4});
    cases.push_back({a, 8, 1, 5});
    cases.push_back({a, 8, 2, 6});
    cases.push_back({a, 8, 100, 7});
    cases.push_back({a, 16, 16, 8});
  }
  // The scalable four also get a high-concurrency hammering.
  for (Algorithm a : scalable_algorithms()) {
    cases.push_back({a, 64, 16, 9});
    cases.push_back({a, 64, 128, 10});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ConcurrentQueue,
                         ::testing::ValuesIn(concurrent_cases()),
                         ::testing::PrintToStringParamName());

class QuiescentPhases : public ::testing::TestWithParam<Algorithm> {};

TEST_P(QuiescentPhases, EachPhaseSatisfiesAppendixB) {
  const Algorithm algo = GetParam();
  const u32 nprocs = 8, npriorities = 16;
  PqParams params{.npriorities = npriorities, .maxprocs = nprocs,
                  .bin_capacity = 1u << 12};
  auto pq = make_priority_queue<SimPlatform>(algo, params);
  sim::Engine eng(nprocs, {}, 77);

  std::vector<Entry> content; // queue content at the current quiescent point
  for (u32 phase = 0; phase < 6; ++phase) {
    std::vector<std::vector<Entry>> ins(nprocs), del(nprocs);
    eng.run([&](ProcId id) {
      for (u32 i = 0; i < 15; ++i) {
        SimPlatform::delay(SimPlatform::rnd(96));
        if (SimPlatform::rnd(100) < 60) {
          const Entry e{static_cast<Prio>(SimPlatform::rnd(npriorities)),
                        (static_cast<u64>(phase) << 32) |
                            (static_cast<u64>(id) << 16) | i};
          ASSERT_TRUE(pq->insert(e.prio, e.item));
          ins[id].push_back(e);
        } else if (auto e = pq->delete_min()) {
          del[id].push_back(*e);
        }
      }
    });
    std::vector<Entry> inserted, deleted;
    for (const auto& v : ins) inserted.insert(inserted.end(), v.begin(), v.end());
    for (const auto& v : del) deleted.insert(deleted.end(), v.begin(), v.end());

    if (algo != Algorithm::kSkipList && algo != Algorithm::kSharded) {
      // SkipList's stale delete bin can exceed the Appendix-B priority
      // bound by design (see skiplist_pq.hpp); conservation still holds.
      // Sharded relaxes delete-min by construction (c-of-k sampling plus
      // the concurrent stash/backend perturbation, sharded_pq.hpp) — its
      // quality is measured as rank error, not the Appendix-B bound.
      const auto r = check_quiescent_phase(content, inserted, deleted);
      EXPECT_TRUE(r.ok) << "phase " << phase << ": " << r.diagnostic;
    }

    // Maintain the content multiset for the next phase.
    std::map<std::pair<Prio, Item>, i64> ms;
    for (const Entry& e : content) ++ms[{e.prio, e.item}];
    for (const Entry& e : inserted) ++ms[{e.prio, e.item}];
    for (const Entry& e : deleted) {
      const i64 left = --ms[std::make_pair(e.prio, e.item)];
      ASSERT_GE(left, 0) << "phase " << phase << " lost item";
    }
    content.clear();
    for (const auto& [k, n] : ms)
      for (i64 j = 0; j < n; ++j) content.push_back({k.first, k.second});
  }

  // Final full drain must produce exactly the tracked content.
  std::vector<Entry> drained;
  eng.run([&](ProcId id) {
    if (id != 0) return;
    while (auto e = pq->delete_min()) drained.push_back(*e);
  });
  EXPECT_TRUE(same_entries(drained, content));
}

INSTANTIATE_TEST_SUITE_P(AllAlgos, QuiescentPhases,
                         ::testing::ValuesIn(all_algorithms()),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

class HeavyDeleters : public ::testing::TestWithParam<Algorithm> {};

TEST_P(HeavyDeleters, EmptyDeletesDontCorruptState) {
  // 80% deletes on a starved queue: empty results must be frequent and the
  // few items must all surface exactly once.
  const Algorithm algo = GetParam();
  const u32 nprocs = 16;
  PqParams params{.npriorities = 8, .maxprocs = nprocs};
  auto pq = make_priority_queue<SimPlatform>(algo, params);
  auto inserted_n = std::make_unique<SimShared<u64>>(0);
  auto deleted_n = std::make_unique<SimShared<u64>>(0);
  sim::Engine eng(nprocs, {}, 55);
  eng.run([&](ProcId) {
    for (u32 i = 0; i < 30; ++i) {
      if (SimPlatform::rnd(100) < 20) {
        ASSERT_TRUE(pq->insert(static_cast<Prio>(SimPlatform::rnd(8)), i));
        inserted_n->fetch_add(1);
      } else if (pq->delete_min()) {
        deleted_n->fetch_add(1);
      }
    }
  });
  u64 drained = 0;
  eng.run([&](ProcId id) {
    if (id != 0) return;
    while (pq->delete_min()) ++drained;
  });
  EXPECT_EQ(deleted_n->load() + drained, inserted_n->load());
}

INSTANTIATE_TEST_SUITE_P(AllAlgos, HeavyDeleters,
                         ::testing::ValuesIn(all_algorithms()),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(ConcurrentQueue, InterleavedPhasesKeepWorking) {
  // Alternate heavy-insert and heavy-delete phases; sizes must track.
  PqParams params{.npriorities = 16, .maxprocs = 8, .bin_capacity = 1u << 12};
  auto pq = make_priority_queue<SimPlatform>(Algorithm::kFunnelTree, params);
  sim::Engine eng(8, {}, 5);
  auto net = std::make_unique<SimShared<i64>>(0);
  for (int phase = 0; phase < 4; ++phase) {
    const bool inserting = (phase % 2 == 0);
    eng.run([&](ProcId) {
      for (u32 i = 0; i < 25; ++i) {
        if (inserting) {
          ASSERT_TRUE(pq->insert(static_cast<Prio>(SimPlatform::rnd(16)), i));
          net->fetch_add(1);
        } else if (pq->delete_min()) {
          net->fetch_add(-1);
        }
      }
    });
  }
  i64 remaining = 0;
  eng.run([&](ProcId id) {
    if (id != 0) return;
    while (pq->delete_min()) ++remaining;
  });
  EXPECT_EQ(remaining, net->load());
}

} // namespace
} // namespace fpq
