// Tier-1 smoke tests of the stress harness (src/verify/stress.hpp): spec
// serialization round-trips, clean algorithms pass every policy, and —
// the reason the harness exists — a queue with a deliberately dropped bin
// lock is caught with a minimized, replayable counterexample.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <vector>

#include "platform/sim.hpp"
#include "verify/stress.hpp"

namespace fpq {
namespace {

using verify::run_scenario;
using verify::run_scenario_with;
using verify::ScenarioChecks;
using verify::spec_from_line;
using verify::StressFailure;
using verify::StressSpec;
using verify::to_line;

TEST(StressSpec, LineRoundTripsEveryField) {
  StressSpec s;
  s.algo = Algorithm::kLinearFunnels;
  s.policy = sim::SchedulePolicy::kDelayLeader;
  s.seed = 9876543210ull;
  s.nprocs = 7;
  s.ops_per_proc = 19;
  s.npriorities = 5;
  s.insert_percent = 73;
  s.perturb_permille = 401;
  s.max_delay = 999;
  s.access_jitter = 17;
  s.batch = 6;
  s.elim = 3;
  s.funnel = FunnelProtocol::kAggregate;
  s.check_lin = true;
  const StressSpec r = spec_from_line(to_line(s));
  EXPECT_EQ(r.algo, s.algo);
  EXPECT_EQ(r.policy, s.policy);
  EXPECT_EQ(r.seed, s.seed);
  EXPECT_EQ(r.nprocs, s.nprocs);
  EXPECT_EQ(r.ops_per_proc, s.ops_per_proc);
  EXPECT_EQ(r.npriorities, s.npriorities);
  EXPECT_EQ(r.insert_percent, s.insert_percent);
  EXPECT_EQ(r.perturb_permille, s.perturb_permille);
  EXPECT_EQ(r.max_delay, s.max_delay);
  EXPECT_EQ(r.access_jitter, s.access_jitter);
  EXPECT_EQ(r.batch, s.batch);
  EXPECT_EQ(r.elim, s.elim);
  EXPECT_EQ(r.funnel, s.funnel);
  EXPECT_EQ(r.check_lin, s.check_lin);
}

TEST(StressSpec, RejectsMalformedLines) {
  EXPECT_THROW(spec_from_line("algo=NoSuchQueue"), std::invalid_argument);
  EXPECT_THROW(spec_from_line("policy=clock-of-doom"), std::invalid_argument);
  EXPECT_THROW(spec_from_line("frobnicate=1"), std::invalid_argument);
  EXPECT_THROW(spec_from_line("algo"), std::invalid_argument);
  EXPECT_THROW(spec_from_line("procs=0"), std::invalid_argument);
  EXPECT_THROW(spec_from_line("batch=0"), std::invalid_argument);
  EXPECT_THROW(spec_from_line("funnel=pairwise"), std::invalid_argument);
}

TEST(StressSpec, PolicyNamesParse) {
  EXPECT_EQ(verify::policy_from_string("smallest-clock"),
            sim::SchedulePolicy::kSmallestClock);
  EXPECT_EQ(verify::policy_from_string("random-preempt"),
            sim::SchedulePolicy::kRandomPreempt);
  EXPECT_EQ(verify::policy_from_string("delay-leader"),
            sim::SchedulePolicy::kDelayLeader);
  EXPECT_THROW(verify::policy_from_string("fifo"), std::invalid_argument);
}

TEST(StressScenario, CleanAlgorithmsPassEveryPolicy) {
  // A slice of the full `ctest -L stress` sweep, small enough for tier 1:
  // one lock-based and one funnel-based queue under all three policies.
  for (Algorithm algo : {Algorithm::kHuntEtAl, Algorithm::kFunnelTree}) {
    for (auto policy :
         {sim::SchedulePolicy::kSmallestClock, sim::SchedulePolicy::kRandomPreempt,
          sim::SchedulePolicy::kDelayLeader}) {
      for (u64 seed = 1; seed <= 2; ++seed) {
        StressSpec s;
        s.algo = algo;
        s.policy = policy;
        s.seed = seed;
        s.access_jitter = policy == sim::SchedulePolicy::kSmallestClock ? 0 : 64;
        const auto f = run_scenario(s);
        EXPECT_FALSE(f.has_value()) << verify::format_failure(*f);
      }
    }
  }
}

TEST(StressScenario, BatchedFunnelQueuesPassQuiescentChecks) {
  // Tier-1 slice of the `ctest -L batch` sweep: batch-sum merging and
  // partial elimination inside the funnels, under adversarial schedules,
  // against conservation + quiescent-rank + drain-order.
  for (Algorithm algo : {Algorithm::kLinearFunnels, Algorithm::kFunnelTree}) {
    for (auto policy :
         {sim::SchedulePolicy::kRandomPreempt, sim::SchedulePolicy::kDelayLeader}) {
      for (u32 batch : {3u, 5u}) {
        StressSpec s;
        s.algo = algo;
        s.policy = policy;
        s.seed = 2 + batch;
        s.batch = batch;
        s.access_jitter = 64;
        const auto f = run_scenario(s);
        EXPECT_FALSE(f.has_value()) << verify::format_failure(*f);
      }
    }
  }
}

TEST(StressScenario, BatchedSingleLockLinearizabilityGatePasses) {
  // Batched histories through the loop fallback must stay linearizable:
  // batch elements are recorded as mutually concurrent ops, so the
  // Wing-Gong checker also validates that widened-window bookkeeping.
  StressSpec s;
  s.algo = Algorithm::kSingleLock;
  s.policy = sim::SchedulePolicy::kDelayLeader;
  s.nprocs = 3;
  s.ops_per_proc = 4;
  s.batch = 2;
  s.access_jitter = 64;
  s.check_lin = true;
  for (u64 seed = 1; seed <= 4; ++seed) {
    s.seed = seed;
    const auto f = run_scenario(s);
    EXPECT_FALSE(f.has_value()) << verify::format_failure(*f);
  }
}

TEST(StressScenario, ElimLayerFunnelQueuesStayQuiescentlyConsistent) {
  // The PQ-level elimination array's hand-off legality (elim_layer.hpp) is
  // schedule-sensitive: a handed entry must still satisfy the quiescent
  // rank bound and conservation.
  for (Algorithm algo : {Algorithm::kLinearFunnels, Algorithm::kFunnelTree}) {
    for (u64 seed = 1; seed <= 3; ++seed) {
      StressSpec s;
      s.algo = algo;
      s.policy = sim::SchedulePolicy::kRandomPreempt;
      s.seed = seed;
      s.elim = 2;
      s.insert_percent = 50; // deleters must outpace inserts to park
      s.access_jitter = 64;
      const auto f = run_scenario(s);
      EXPECT_FALSE(f.has_value()) << verify::format_failure(*f);
    }
  }
}

TEST(StressScenario, SingleLockLinearizabilityGatePasses) {
  StressSpec s;
  s.algo = Algorithm::kSingleLock;
  s.policy = sim::SchedulePolicy::kDelayLeader;
  s.nprocs = 3;
  s.ops_per_proc = 4;
  s.access_jitter = 64;
  s.check_lin = true;
  for (u64 seed = 1; seed <= 4; ++seed) {
    s.seed = seed;
    const auto f = run_scenario(s);
    EXPECT_FALSE(f.has_value()) << verify::format_failure(*f);
  }
}

// ---- The injected bug the harness must catch (acceptance criterion):
// SimpleLinear's per-priority bin with the MCS lock dropped. The
// load-then-store of the size word is no longer atomic, so overlapping
// inserts can claim the same slot and lose an item.
class UnlockedBinQueue final : public IPriorityQueue<SimPlatform> {
 public:
  explicit UnlockedBinQueue(const PqParams& params)
      : npriorities_(params.npriorities), bins_(params.npriorities) {
    for (auto& b : bins_) b = std::make_unique<Bin>(params.bin_capacity);
  }

  bool insert(Prio prio, Item item) override {
    Bin& b = *bins_[prio];
    const u64 n = b.size.load(); // racy: no lock around load..store
    if (n >= b.elems.size()) return false;
    b.elems[n].store(item);
    b.size.store(n + 1);
    return true;
  }

  std::optional<Entry> delete_min() override {
    for (Prio p = 0; p < npriorities_; ++p) {
      Bin& b = *bins_[p];
      const u64 n = b.size.load();
      if (n == 0) continue;
      const Item e = b.elems[n - 1].load();
      b.size.store(n - 1);
      return Entry{p, e};
    }
    return std::nullopt;
  }

  u32 insert_batch(std::span<const Entry> entries) override {
    u32 accepted = 0;
    for (const Entry& e : entries)
      if (insert(e.prio, e.item)) ++accepted;
    return accepted;
  }

  u32 delete_min_batch(std::span<Entry> out) override {
    u32 got = 0;
    for (Entry& slot : out) {
      auto e = delete_min();
      if (!e) break;
      slot = *e;
      ++got;
    }
    return got;
  }

  PqStatus try_insert(Prio prio, Item item, const TryBudget&) override {
    return insert(prio, item) ? PqStatus::kOk : PqStatus::kTimeout;
  }
  PqStatus try_delete_min(Entry& out, const TryBudget&) override {
    auto e = delete_min();
    if (!e) return PqStatus::kEmpty;
    out = *e;
    return PqStatus::kOk;
  }
  u32 npriorities() const override { return npriorities_; }

 private:
  struct Bin {
    explicit Bin(u32 capacity) : elems(capacity) {}
    SimShared<u64> size{0};
    std::vector<SimShared<u64>> elems;
  };
  u32 npriorities_;
  std::vector<std::unique_ptr<Bin>> bins_;
};

verify::QueueFactory unlocked_factory() {
  return [](const PqParams& p) { return std::make_unique<UnlockedBinQueue>(p); };
}

std::optional<StressFailure> hunt_unlocked_bin_bug() {
  for (auto policy :
       {sim::SchedulePolicy::kRandomPreempt, sim::SchedulePolicy::kDelayLeader}) {
    for (u64 seed = 1; seed <= 32; ++seed) {
      StressSpec s;
      s.algo = Algorithm::kSimpleLinear; // label for the dump; factory overrides
      s.policy = policy;
      s.seed = seed;
      s.access_jitter = 64;
      if (auto f = run_scenario_with(unlocked_factory(), s, ScenarioChecks{})) return f;
    }
  }
  return std::nullopt;
}

TEST(StressHarness, CatchesDroppedBinLock) {
  const auto found = hunt_unlocked_bin_bug();
  ASSERT_TRUE(found.has_value())
      << "an unlocked bin survived 2 policies x 32 seeds — the harness lost "
         "its teeth";
  EXPECT_EQ(found->kind, "conservation");
  EXPECT_FALSE(found->trace.empty());
}

TEST(StressHarness, CounterexampleMinimizesAndReplays) {
  auto found = hunt_unlocked_bin_bug();
  ASSERT_TRUE(found.has_value());
  const StressFailure small =
      verify::minimize_with(unlocked_factory(), *found, ScenarioChecks{});
  EXPECT_LE(small.spec.nprocs, found->spec.nprocs);
  EXPECT_LE(small.spec.ops_per_proc, found->spec.ops_per_proc);

  // The dump's replay line must reproduce the failure from scratch.
  const StressSpec replayed = spec_from_line(to_line(small.spec));
  const auto again = run_scenario_with(unlocked_factory(), replayed, ScenarioChecks{});
  ASSERT_TRUE(again.has_value()) << "minimized counterexample did not replay";
  EXPECT_EQ(again->kind, small.kind);
  EXPECT_EQ(again->trace.size(), small.trace.size()); // deterministic replay

  const std::string dump = verify::format_failure(small);
  EXPECT_NE(dump.find("replay:"), std::string::npos);
  EXPECT_NE(dump.find("conservation"), std::string::npos);
}

} // namespace
} // namespace fpq
