// Tests of the combining-funnel (elimination) stack — the funnel "bin" of
// §3.2. Conservation, LIFO order at quiescence, emptiness cost, capacity
// refusal, elimination on/off sweeps.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "funnel/stack.hpp"
#include "platform/sim.hpp"

namespace fpq {
namespace {

FunnelParams tight_params(u32 levels) {
  FunnelParams p;
  p.levels = levels;
  for (u32 d = 0; d < kMaxFunnelLevels; ++d) {
    p.width[d] = 2;
    p.spin[d] = 8;
  }
  p.attempts = 3;
  return p;
}

TEST(FunnelStack, SequentialLifo) {
  FunnelStack<SimPlatform> st(1, tight_params(1), 64);
  sim::Engine eng(1);
  eng.run([&](ProcId) {
    EXPECT_TRUE(st.empty());
    for (u64 i = 0; i < 8; ++i) EXPECT_TRUE(st.push(i));
    EXPECT_EQ(st.size(), 8u);
    for (u64 i = 8; i-- > 0;) {
      auto v = st.pop();
      ASSERT_TRUE(v.has_value());
      EXPECT_EQ(*v, i);
    }
    EXPECT_TRUE(st.empty());
    EXPECT_FALSE(st.pop().has_value());
  });
}

TEST(FunnelStack, PopOnEmptyReturnsNullopt) {
  FunnelStack<SimPlatform> st(4, tight_params(1), 16);
  auto empties = std::make_unique<SimShared<u64>>(0);
  sim::Engine eng(4);
  eng.run([&](ProcId) {
    for (int i = 0; i < 10; ++i)
      if (!st.pop()) empties->fetch_add(1);
  });
  EXPECT_EQ(empties->load(), 40u);
}

TEST(FunnelStack, CapacityRefusalReportsFalse) {
  FunnelStack<SimPlatform> st(1, tight_params(1), 3);
  sim::Engine eng(1);
  eng.run([&](ProcId) {
    EXPECT_TRUE(st.push(1));
    EXPECT_TRUE(st.push(2));
    EXPECT_TRUE(st.push(3));
    EXPECT_FALSE(st.push(4));
    EXPECT_EQ(st.size(), 3u);
    st.pop();
    EXPECT_TRUE(st.push(5));
  });
}

TEST(FunnelStack, SentinelItemRejected) {
  FunnelStack<SimPlatform> st(1, tight_params(1), 4);
  sim::Engine eng(1);
  EXPECT_DEATH(eng.run([&](ProcId) { st.push(kNoEntry); }), "sentinel");
}

struct StackCase {
  u32 nprocs;
  u32 levels;
  bool eliminate;
  u64 seed;
};

class FunnelStackSweep : public ::testing::TestWithParam<StackCase> {};

TEST_P(FunnelStackSweep, ConcurrentConservation) {
  const auto [nprocs, levels, eliminate, seed] = GetParam();
  FunnelStack<SimPlatform> st(nprocs, tight_params(levels), 1u << 14, eliminate);
  std::vector<std::vector<u64>> popped(nprocs);
  std::vector<u64> pushed_count(nprocs, 0);
  sim::Engine eng(nprocs, {}, seed);
  eng.run([&](ProcId id) {
    for (u32 i = 0; i < 30; ++i) {
      SimPlatform::delay(SimPlatform::rnd(64));
      if (SimPlatform::flip()) {
        ASSERT_TRUE(st.push((static_cast<u64>(id) << 32) | i));
        ++pushed_count[id];
      } else if (auto v = st.pop()) {
        popped[id].push_back(*v);
      }
    }
  });
  // Drain at quiescence.
  eng.run([&](ProcId id) {
    if (id != 0) return;
    while (auto v = st.pop()) popped[0].push_back(*v);
  });
  u64 pushed_total = 0;
  for (u64 c : pushed_count) pushed_total += c;
  std::multiset<u64> all;
  for (const auto& v : popped) all.insert(v.begin(), v.end());
  EXPECT_EQ(all.size(), pushed_total) << "items lost or duplicated";
  std::set<u64> uniq(all.begin(), all.end());
  EXPECT_EQ(uniq.size(), all.size());
  EXPECT_TRUE(st.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FunnelStackSweep,
    ::testing::Values(StackCase{2, 1, true, 1}, StackCase{4, 2, true, 2},
                      StackCase{8, 2, true, 3}, StackCase{16, 2, true, 4},
                      StackCase{32, 3, true, 5}, StackCase{64, 3, true, 6},
                      StackCase{128, 3, true, 7}, StackCase{8, 2, false, 8},
                      StackCase{32, 3, false, 9}, StackCase{64, 4, false, 10},
                      StackCase{256, 3, true, 11}));

TEST(FunnelStack, EmptyIsSingleRead) {
  FunnelStack<SimPlatform> st(2, tight_params(1), 16);
  sim::Engine eng(2);
  eng.run([&](ProcId id) {
    if (id != 0) return;
    st.push(1);
    const u64 reads_before = SimPlatform::engine().mem_stats().reads;
    (void)st.empty();
    EXPECT_EQ(SimPlatform::engine().mem_stats().reads, reads_before + 1);
  });
}

TEST(FunnelStack, PopsSeeLatestPushAtQuiescence) {
  FunnelStack<SimPlatform> st(4, tight_params(2), 256);
  sim::Engine eng(4, {}, 21);
  eng.run([&](ProcId id) {
    st.push(100 + id);
  });
  eng.run([&](ProcId id) {
    if (id != 0) return;
    // All four pushed items must be there, values from the pushed set.
    std::set<u64> got;
    for (int i = 0; i < 4; ++i) {
      auto v = st.pop();
      ASSERT_TRUE(v.has_value());
      got.insert(*v);
    }
    EXPECT_EQ(got, (std::set<u64>{100, 101, 102, 103}));
  });
}

TEST(FunnelStack, HeavyPopPressureNeverFabricatesItems) {
  // Far more pops than pushes: every popped value must be a pushed value.
  const u32 nprocs = 32;
  FunnelStack<SimPlatform> st(nprocs, tight_params(3), 4096);
  auto bad = std::make_unique<SimShared<u64>>(0);
  auto popped_n = std::make_unique<SimShared<u64>>(0);
  auto pushed_n = std::make_unique<SimShared<u64>>(0);
  sim::Engine eng(nprocs, {}, 43);
  eng.run([&](ProcId id) {
    for (u32 i = 0; i < 40; ++i) {
      if (SimPlatform::rnd(100) < 20) {
        st.push(7777);
        pushed_n->fetch_add(1);
      } else if (auto v = st.pop()) {
        popped_n->fetch_add(1);
        if (*v != 7777) bad->fetch_add(1);
      }
      (void)id;
    }
  });
  EXPECT_EQ(bad->load(), 0u);
  EXPECT_LE(popped_n->load(), pushed_n->load());
}

} // namespace
} // namespace fpq
