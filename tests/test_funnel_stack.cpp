// Tests of the combining-funnel (elimination) stack — the funnel "bin" of
// §3.2. Conservation, LIFO order at quiescence, emptiness cost, capacity
// refusal, elimination on/off sweeps.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "funnel/stack.hpp"
#include "platform/sim.hpp"

namespace fpq {
namespace {

FunnelParams tight_params(u32 levels) {
  FunnelParams p;
  p.levels = levels;
  for (u32 d = 0; d < kMaxFunnelLevels; ++d) {
    p.width[d] = 2;
    p.spin[d] = 8;
  }
  p.attempts = 3;
  return p;
}

TEST(FunnelStack, SequentialLifo) {
  FunnelStack<SimPlatform> st(1, tight_params(1), 64);
  sim::Engine eng(1);
  eng.run([&](ProcId) {
    EXPECT_TRUE(st.empty());
    for (u64 i = 0; i < 8; ++i) EXPECT_TRUE(st.push(i));
    EXPECT_EQ(st.size(), 8u);
    for (u64 i = 8; i-- > 0;) {
      auto v = st.pop();
      ASSERT_TRUE(v.has_value());
      EXPECT_EQ(*v, i);
    }
    EXPECT_TRUE(st.empty());
    EXPECT_FALSE(st.pop().has_value());
  });
}

TEST(FunnelStack, PopOnEmptyReturnsNullopt) {
  FunnelStack<SimPlatform> st(4, tight_params(1), 16);
  auto empties = std::make_unique<SimShared<u64>>(0);
  sim::Engine eng(4);
  eng.run([&](ProcId) {
    for (int i = 0; i < 10; ++i)
      if (!st.pop()) empties->fetch_add(1);
  });
  EXPECT_EQ(empties->load(), 40u);
}

TEST(FunnelStack, CapacityRefusalReportsFalse) {
  FunnelStack<SimPlatform> st(1, tight_params(1), 3);
  sim::Engine eng(1);
  eng.run([&](ProcId) {
    EXPECT_TRUE(st.push(1));
    EXPECT_TRUE(st.push(2));
    EXPECT_TRUE(st.push(3));
    EXPECT_FALSE(st.push(4));
    EXPECT_EQ(st.size(), 3u);
    st.pop();
    EXPECT_TRUE(st.push(5));
  });
}

TEST(FunnelStack, SentinelItemRejected) {
  FunnelStack<SimPlatform> st(1, tight_params(1), 4);
  sim::Engine eng(1);
  EXPECT_DEATH(eng.run([&](ProcId) { st.push(kNoEntry); }), "sentinel");
}

struct StackCase {
  u32 nprocs;
  u32 levels;
  bool eliminate;
  u64 seed;
};

class FunnelStackSweep : public ::testing::TestWithParam<StackCase> {};

TEST_P(FunnelStackSweep, ConcurrentConservation) {
  const auto [nprocs, levels, eliminate, seed] = GetParam();
  FunnelStack<SimPlatform> st(nprocs, tight_params(levels), 1u << 14, eliminate);
  std::vector<std::vector<u64>> popped(nprocs);
  std::vector<u64> pushed_count(nprocs, 0);
  sim::Engine eng(nprocs, {}, seed);
  eng.run([&](ProcId id) {
    for (u32 i = 0; i < 30; ++i) {
      SimPlatform::delay(SimPlatform::rnd(64));
      if (SimPlatform::flip()) {
        ASSERT_TRUE(st.push((static_cast<u64>(id) << 32) | i));
        ++pushed_count[id];
      } else if (auto v = st.pop()) {
        popped[id].push_back(*v);
      }
    }
  });
  // Drain at quiescence.
  eng.run([&](ProcId id) {
    if (id != 0) return;
    while (auto v = st.pop()) popped[0].push_back(*v);
  });
  u64 pushed_total = 0;
  for (u64 c : pushed_count) pushed_total += c;
  std::multiset<u64> all;
  for (const auto& v : popped) all.insert(v.begin(), v.end());
  EXPECT_EQ(all.size(), pushed_total) << "items lost or duplicated";
  std::set<u64> uniq(all.begin(), all.end());
  EXPECT_EQ(uniq.size(), all.size());
  EXPECT_TRUE(st.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FunnelStackSweep,
    ::testing::Values(StackCase{2, 1, true, 1}, StackCase{4, 2, true, 2},
                      StackCase{8, 2, true, 3}, StackCase{16, 2, true, 4},
                      StackCase{32, 3, true, 5}, StackCase{64, 3, true, 6},
                      StackCase{128, 3, true, 7}, StackCase{8, 2, false, 8},
                      StackCase{32, 3, false, 9}, StackCase{64, 4, false, 10},
                      StackCase{256, 3, true, 11}));

// ---- Batched operations (push_batch / pop_batch): a record carries a
// whole batch; same-direction trees combine at any sizes, opposite trees
// eliminate whole batches or slices of the capturer's own batch.

FunnelParams batch_params(u32 levels, u32 batch_limit) {
  FunnelParams p = tight_params(levels);
  p.batch_limit = batch_limit;
  return p;
}

TEST(FunnelStack, SequentialPushPopBatch) {
  FunnelStack<SimPlatform> st(1, batch_params(1, 8), 64);
  sim::Engine eng(1);
  eng.run([&](ProcId) {
    const Item in[5] = {10, 11, 12, 13, 14};
    EXPECT_EQ(st.push_batch(in, 5), 5u);
    EXPECT_EQ(st.size(), 5u);
    Item out[8];
    // LIFO central store: a batched pop drains from the top.
    EXPECT_EQ(st.pop_batch(out, 3), 3u);
    EXPECT_EQ(out[0], 14u);
    EXPECT_EQ(out[1], 13u);
    EXPECT_EQ(out[2], 12u);
    // Short pop: only 2 remain of the 4 requested.
    EXPECT_EQ(st.pop_batch(out, 4), 2u);
    EXPECT_EQ(out[0], 11u);
    EXPECT_EQ(out[1], 10u);
    EXPECT_TRUE(st.empty());
    EXPECT_EQ(st.pop_batch(out, 2), 0u);
  });
}

TEST(FunnelStack, PushBatchRefusedWholeWhenStoreLacksRoom) {
  // The central store refuses a batch's whole remainder (all-or-nothing per
  // tree), so a too-large batch leaves the store untouched.
  FunnelStack<SimPlatform> st(1, batch_params(1, 8), 4);
  sim::Engine eng(1);
  eng.run([&](ProcId) {
    const Item in[6] = {1, 2, 3, 4, 5, 6};
    EXPECT_EQ(st.push_batch(in, 6), 0u);
    EXPECT_TRUE(st.empty());
    EXPECT_EQ(st.push_batch(in, 4), 4u);
    EXPECT_EQ(st.size(), 4u);
    EXPECT_EQ(st.push_batch(in + 4, 2), 0u); // full again
    EXPECT_EQ(st.size(), 4u);
  });
}

struct BatchStackCase {
  u32 nprocs;
  u32 levels;
  bool eliminate;
  u64 seed;
};

class FunnelStackBatchSweep : public ::testing::TestWithParam<BatchStackCase> {};

TEST_P(FunnelStackBatchSweep, MixedBatchSizesConserveItems) {
  const auto [nprocs, levels, eliminate, seed] = GetParam();
  FunnelStack<SimPlatform> st(nprocs, batch_params(levels, 4), 1u << 14, eliminate);
  std::vector<std::vector<u64>> popped(nprocs);
  std::vector<u64> pushed_count(nprocs, 0);
  sim::Engine eng(nprocs, {}, seed);
  eng.run([&](ProcId id) {
    Item buf[4];
    for (u32 i = 0; i < 20; ++i) {
      SimPlatform::delay(SimPlatform::rnd(64));
      const u32 k = 1 + static_cast<u32>(SimPlatform::rnd(4));
      if (SimPlatform::flip()) {
        for (u32 j = 0; j < k; ++j)
          buf[j] = (static_cast<u64>(id) << 32) | (i * 8 + j);
        ASSERT_EQ(st.push_batch(buf, k), k) << "capacity sized to never refuse";
        pushed_count[id] += k;
      } else {
        const u32 m = st.pop_batch(buf, k);
        ASSERT_LE(m, k);
        for (u32 j = 0; j < m; ++j) popped[id].push_back(buf[j]);
      }
    }
  });
  eng.run([&](ProcId id) {
    if (id != 0) return;
    Item buf[4];
    for (;;) {
      const u32 m = st.pop_batch(buf, 4);
      for (u32 j = 0; j < m; ++j) popped[0].push_back(buf[j]);
      if (m < 4) break;
    }
  });
  u64 pushed_total = 0;
  for (u64 c : pushed_count) pushed_total += c;
  std::multiset<u64> all;
  for (const auto& v : popped) all.insert(v.begin(), v.end());
  EXPECT_EQ(all.size(), pushed_total) << "items lost or duplicated";
  std::set<u64> uniq(all.begin(), all.end());
  EXPECT_EQ(uniq.size(), all.size());
  EXPECT_TRUE(st.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FunnelStackBatchSweep,
    ::testing::Values(BatchStackCase{2, 1, true, 1}, BatchStackCase{4, 2, true, 2},
                      BatchStackCase{8, 2, true, 3}, BatchStackCase{16, 2, true, 4},
                      BatchStackCase{32, 3, true, 5}, BatchStackCase{64, 3, true, 6},
                      BatchStackCase{8, 2, false, 7}, BatchStackCase{32, 3, false, 8},
                      BatchStackCase{128, 3, true, 9}));

TEST(FunnelStack, BatchAndPointOpsInterleaveSafely) {
  // Point ops are 1-batches; mixing them with wide batches exercises the
  // unequal-size combine and partial elimination paths.
  const u32 nprocs = 24;
  FunnelStack<SimPlatform> st(nprocs, batch_params(2, 4), 1u << 14);
  auto pushed_n = std::make_unique<SimShared<u64>>(0);
  auto popped_n = std::make_unique<SimShared<u64>>(0);
  sim::Engine eng(nprocs, {}, 31);
  eng.run([&](ProcId id) {
    Item buf[4];
    for (u32 i = 0; i < 24; ++i) {
      SimPlatform::delay(SimPlatform::rnd(32));
      switch (SimPlatform::rnd(4)) {
        case 0:
          ASSERT_TRUE(st.push((static_cast<u64>(id) << 32) | (i * 8)));
          pushed_n->fetch_add(1);
          break;
        case 1:
          if (st.pop()) popped_n->fetch_add(1);
          break;
        case 2: {
          for (u32 j = 0; j < 3; ++j)
            buf[j] = (static_cast<u64>(id) << 32) | (i * 8 + 1 + j);
          ASSERT_EQ(st.push_batch(buf, 3), 3u);
          pushed_n->fetch_add(3);
          break;
        }
        default:
          popped_n->fetch_add(st.pop_batch(buf, 3));
      }
    }
  });
  eng.run([&](ProcId id) {
    if (id != 0) return;
    while (st.pop()) popped_n->fetch_add(1);
  });
  EXPECT_EQ(pushed_n->load(), popped_n->load());
  EXPECT_TRUE(st.empty());
}

TEST(FunnelStack, EmptyIsSingleRead) {
  FunnelStack<SimPlatform> st(2, tight_params(1), 16);
  sim::Engine eng(2);
  eng.run([&](ProcId id) {
    if (id != 0) return;
    st.push(1);
    const u64 reads_before = SimPlatform::engine().mem_stats().reads;
    (void)st.empty();
    EXPECT_EQ(SimPlatform::engine().mem_stats().reads, reads_before + 1);
  });
}

TEST(FunnelStack, PopsSeeLatestPushAtQuiescence) {
  FunnelStack<SimPlatform> st(4, tight_params(2), 256);
  sim::Engine eng(4, {}, 21);
  eng.run([&](ProcId id) {
    st.push(100 + id);
  });
  eng.run([&](ProcId id) {
    if (id != 0) return;
    // All four pushed items must be there, values from the pushed set.
    std::set<u64> got;
    for (int i = 0; i < 4; ++i) {
      auto v = st.pop();
      ASSERT_TRUE(v.has_value());
      got.insert(*v);
    }
    EXPECT_EQ(got, (std::set<u64>{100, 101, 102, 103}));
  });
}

TEST(FunnelStack, HeavyPopPressureNeverFabricatesItems) {
  // Far more pops than pushes: every popped value must be a pushed value.
  const u32 nprocs = 32;
  FunnelStack<SimPlatform> st(nprocs, tight_params(3), 4096);
  auto bad = std::make_unique<SimShared<u64>>(0);
  auto popped_n = std::make_unique<SimShared<u64>>(0);
  auto pushed_n = std::make_unique<SimShared<u64>>(0);
  sim::Engine eng(nprocs, {}, 43);
  eng.run([&](ProcId id) {
    for (u32 i = 0; i < 40; ++i) {
      if (SimPlatform::rnd(100) < 20) {
        st.push(7777);
        pushed_n->fetch_add(1);
      } else if (auto v = st.pop()) {
        popped_n->fetch_add(1);
        if (*v != 7777) bad->fetch_add(1);
      }
      (void)id;
    }
  });
  EXPECT_EQ(bad->load(), 0u);
  EXPECT_LE(popped_n->load(), pushed_n->load());
}

} // namespace
} // namespace fpq
