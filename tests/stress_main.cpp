// fpq_stress: the standing correctness gate. Sweeps every queue algorithm
// across schedule policies x seeds under the Appendix-B checkers, printing
// a minimized, replayable counterexample on failure.
//
//   fpq_stress                                  # default bounded budget
//   fpq_stress --algos=FunnelTree --seeds=128   # focused, deeper sweep
//   fpq_stress --replay "algo=... policy=... seed=..."   # reproduce a dump
//
// Exit status: 0 clean, 1 counterexample found, 2 usage error. Registered
// with ctest under the `stress` label (one entry per algorithm).
#include <unistd.h>

#include <csignal>
#include <cstring>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "verify/liveness.hpp"
#include "verify/stress.hpp"

namespace {

// FPQ_ASSERT aborts the process; scenarios are deterministic, so knowing
// which spec was in flight is enough to replay the abort. Kept in a plain
// buffer and written with write(2) — both async-signal-safe.
char g_current_spec[512];

void on_abort(int) {
  if (g_current_spec[0] != '\0') {
    const char* head = "\nfpq_stress: aborted while running scenario; replay with:\n  --replay \"";
    (void)!write(STDERR_FILENO, head, std::strlen(head));
    (void)!write(STDERR_FILENO, g_current_spec, std::strlen(g_current_spec));
    (void)!write(STDERR_FILENO, "\"\n", 2);
  }
  std::signal(SIGABRT, SIG_DFL);
  std::raise(SIGABRT);
}

void remember_spec(const fpq::verify::StressSpec& spec) {
  const std::string line = fpq::verify::to_line(spec);
  std::strncpy(g_current_spec, line.c_str(), sizeof(g_current_spec) - 1);
  g_current_spec[sizeof(g_current_spec) - 1] = '\0';
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream is(s);
  std::string tok;
  while (std::getline(is, tok, ',')) {
    if (!tok.empty()) out.push_back(tok);
  }
  return out;
}

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "  --algos=A,B,...      algorithms (display names; default: all nine)\n"
      << "  --policies=p,...     smallest-clock | random-preempt | delay-leader |\n"
      << "                       exhaustive (DPOR model checking, DESIGN.md §15)\n"
      << "  --schedule=NAME      shorthand: append one policy (e.g. exhaustive)\n"
      << "  --preempt-bound=N    exhaustive only: max preemptions per execution\n"
      << "                       (0 = unbounded, full DPOR; default 0)\n"
      << "  --max-execs=N        exhaustive only: execution budget per scenario\n"
      << "                       (0 = unbounded; default 2^20)\n"
      << "  --seeds=N            seeds per (algorithm, policy) combination (default 32)\n"
      << "  --seed-base=N        first seed (default 1)\n"
      << "  --procs=N --ops=N --nprio=N --insert-pct=N --jitter=N   workload shape\n"
      << "  --batch=N            group ops into insert_batch/delete_min_batch calls\n"
      << "  --elim=N             PQ-level elimination slots for funnel queues (0=off)\n"
      << "  --reclaim=hp|ebr     memory-reclamation policy for reclaiming queues\n"
      << "  --funnel=exchange|aggregate   funnel collision protocol (DESIGN.md §13)\n"
      << "  --shards=K           sub-queue count for the Sharded composite (0=auto)\n"
      << "  --sample-c=N         delete-min sample width; 0 or >=K scans every shard\n"
      << "  --policy=direct|delegate|adaptive   Sharded access-mode policy\n"
      << "  --race-detect        attach the happens-before race detector and the\n"
      << "                       lock-order checker to every scenario (DESIGN.md §10)\n"
      << "  --faults=PLAN        inject a fault plan into every scenario, e.g.\n"
      << "                       crash@p1a500 or stall@p0a200n1000,casfail@p2a50n8\n"
      << "  --watchdog=N         per-processor heartbeat budget (accesses between op\n"
      << "                       boundaries) before a spinner is declared wedged\n"
      << "  --liveness           run the progress-guarantee battery instead of the\n"
      << "                       checker sweep: crash/stall plans against every\n"
      << "                       algorithm, declared-vs-observed table (DESIGN.md §12)\n"
      << "  --max-failures=N     stop after N minimized counterexamples (default 1)\n"
      << "  --no-minimize        report the first failure unshrunk\n"
      << "  --quiet              suppress per-combination progress\n"
      << "  --replay \"SPEC\"      rerun one scenario from a counterexample line\n";
  return 2;
}

} // namespace

int main(int argc, char** argv) {
  using namespace fpq::verify;

  std::signal(SIGABRT, on_abort);

  StressOptions opt;
  bool quiet = false;
  bool liveness = false;
  // The liveness battery has its own workload defaults (deeper runs so the
  // fault ordinals land mid-operation); only explicit flags override them.
  bool procs_set = false, ops_set = false;
  std::string replay_line;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto val = [&arg]() { return arg.substr(arg.find('=') + 1); };
    try {
      if (arg.rfind("--algos=", 0) == 0) {
        for (const std::string& name : split_csv(val()))
          opt.algorithms.push_back(fpq::algorithm_from_string(name));
      } else if (arg.rfind("--policies=", 0) == 0) {
        for (const std::string& name : split_csv(val()))
          opt.policies.push_back(policy_from_string(name));
      } else if (arg.rfind("--schedule=", 0) == 0) {
        opt.policies.push_back(policy_from_string(val()));
      } else if (arg.rfind("--preempt-bound=", 0) == 0) {
        opt.preempt_bound = static_cast<fpq::u32>(std::stoul(val()));
      } else if (arg.rfind("--max-execs=", 0) == 0) {
        opt.max_execs = std::stoull(val());
      } else if (arg.rfind("--seeds=", 0) == 0) {
        opt.seeds = static_cast<fpq::u32>(std::stoul(val()));
      } else if (arg.rfind("--seed-base=", 0) == 0) {
        opt.seed_base = std::stoull(val());
      } else if (arg.rfind("--procs=", 0) == 0) {
        opt.nprocs = static_cast<fpq::u32>(std::stoul(val()));
        procs_set = true;
      } else if (arg.rfind("--ops=", 0) == 0) {
        opt.ops_per_proc = static_cast<fpq::u32>(std::stoul(val()));
        ops_set = true;
      } else if (arg.rfind("--nprio=", 0) == 0) {
        opt.npriorities = static_cast<fpq::u32>(std::stoul(val()));
      } else if (arg.rfind("--insert-pct=", 0) == 0) {
        opt.insert_percent = static_cast<fpq::u32>(std::stoul(val()));
      } else if (arg.rfind("--jitter=", 0) == 0) {
        opt.access_jitter = std::stoull(val());
      } else if (arg.rfind("--batch=", 0) == 0) {
        opt.batch = static_cast<fpq::u32>(std::stoul(val()));
      } else if (arg.rfind("--elim=", 0) == 0) {
        opt.elim = static_cast<fpq::u32>(std::stoul(val()));
      } else if (arg.rfind("--reclaim=", 0) == 0) {
        opt.reclaim = fpq::reclaim::policy_from_string(val());
      } else if (arg.rfind("--funnel=", 0) == 0) {
        if (!fpq::funnel_protocol_from_string(val(), opt.funnel))
          throw std::invalid_argument("expected exchange or aggregate");
      } else if (arg.rfind("--shards=", 0) == 0) {
        opt.shards = static_cast<fpq::u32>(std::stoul(val()));
      } else if (arg.rfind("--sample-c=", 0) == 0) {
        opt.sample_c = static_cast<fpq::u32>(std::stoul(val()));
      } else if (arg.rfind("--policy=", 0) == 0) {
        if (!fpq::shard_policy_from_string(val(), opt.shard_mode))
          throw std::invalid_argument("expected direct, delegate or adaptive");
      } else if (arg.rfind("--max-failures=", 0) == 0) {
        opt.max_failures = static_cast<fpq::u32>(std::stoul(val()));
      } else if (arg.rfind("--faults=", 0) == 0) {
        opt.faults = fpq::sim::fault_plan_from_string(val());
      } else if (arg.rfind("--watchdog=", 0) == 0) {
        opt.watchdog = std::stoull(val());
      } else if (arg == "--liveness") {
        liveness = true;
      } else if (arg == "--race-detect") {
        opt.race_detect = true;
      } else if (arg == "--no-minimize") {
        opt.minimize_failures = false;
      } else if (arg == "--quiet") {
        quiet = true;
      } else if (arg == "--replay") {
        // Join everything that follows: a quoted spec arrives as one arg,
        // an unquoted paste as several.
        for (++i; i < argc; ++i) {
          if (!replay_line.empty()) replay_line += ' ';
          replay_line += argv[i];
        }
      } else {
        std::cerr << "unknown option: " << arg << "\n";
        return usage(argv[0]);
      }
    } catch (const std::exception& e) {
      std::cerr << "bad option " << arg << ": " << e.what() << "\n";
      return usage(argv[0]);
    }
  }

  if (opt.nprocs < 1 || opt.ops_per_proc < 1 || opt.npriorities < 1 ||
      opt.insert_percent > 100 || opt.seeds < 1 || opt.batch < 1) {
    std::cerr << "need --procs/--ops/--nprio/--seeds/--batch >= 1 and "
                 "--insert-pct <= 100\n";
    return usage(argv[0]);
  }

  if (liveness) {
    LivenessBatteryOptions lopt;
    lopt.algorithms = opt.algorithms;
    lopt.reclaim = opt.reclaim;
    lopt.seed = opt.seed_base;
    if (procs_set) lopt.nprocs = opt.nprocs;
    if (ops_set) lopt.ops_per_proc = opt.ops_per_proc;
    const std::vector<LivenessRow> rows =
        run_liveness_battery(lopt, quiet ? nullptr : &std::cout);
    std::cout << format_liveness_table(rows);
    for (const LivenessRow& r : rows)
      if (!r.ok) return 1;
    return 0;
  }

  if (!replay_line.empty()) {
    StressSpec spec;
    try {
      spec = spec_from_line(replay_line);
    } catch (const std::exception& e) {
      std::cerr << "bad replay spec: " << e.what() << "\n";
      return usage(argv[0]);
    }
    remember_spec(spec);
    std::cout << "replaying: " << to_line(spec) << "\n";
    if (spec.policy == fpq::sim::SchedulePolicy::kExhaustive) {
      // Re-exploring is the replay: the exploration order is deterministic,
      // so the failing execution (spec.trace) is reached the same way.
      // Coverage is printed either way so a clean result is qualified.
      ExhaustiveResult r = run_exhaustive(spec);
      std::cout << "coverage: " << fpq::sim::to_string(r.stats) << "\n";
      if (r.failure) {
        std::cout << format_failure(*r.failure);
        return 1;
      }
      std::cout << "scenario passed all checks (fixed already, or a different build?)\n";
      return 0;
    }
    if (auto f = run_scenario(spec)) {
      std::cout << format_failure(*f);
      return 1;
    }
    std::cout << "scenario passed all checks (fixed already, or a different build?)\n";
    return 0;
  }

  opt.on_scenario = remember_spec;
  std::vector<StressFailure> failures = run_sweep(opt, quiet ? nullptr : &std::cout);
  if (!failures.empty()) {
    for (const StressFailure& f : failures) std::cerr << format_failure(f);
    return 1;
  }
  if (!quiet) std::cout << "stress: all scenarios clean\n";
  return 0;
}
