// Linearizability checking of the algorithms the paper classifies as
// linearizable (SingleLock, HuntEtAl, SimpleLinear): record small
// concurrent histories on the simulator and verify a valid linearization
// exists; sweep seeds for interleaving coverage.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "core/registry.hpp"
#include "platform/sim.hpp"
#include "verify/history.hpp"
#include "verify/linearizability.hpp"

namespace fpq {
namespace {

History record_history(Algorithm algo, u32 nprocs, u32 ops_per_proc, u64 seed) {
  PqParams params{.npriorities = 8, .maxprocs = nprocs};
  auto pq = make_priority_queue<SimPlatform>(algo, params);
  HistoryRecorder rec(nprocs);
  sim::Engine eng(nprocs, {}, seed);
  eng.run([&](ProcId id) {
    for (u32 i = 0; i < ops_per_proc; ++i) {
      SimPlatform::delay(SimPlatform::rnd(64));
      if (SimPlatform::rnd(100) < 60) {
        const Entry e{static_cast<Prio>(SimPlatform::rnd(8)),
                      (static_cast<u64>(id) << 16) | i};
        const Cycles t0 = SimPlatform::now();
        pq->insert(e.prio, e.item);
        rec.record(OpRecord::insert_op(id, t0, SimPlatform::now(), e));
      } else {
        const Cycles t0 = SimPlatform::now();
        auto e = pq->delete_min();
        rec.record(OpRecord::delete_op(id, t0, SimPlatform::now(), e));
      }
    }
  });
  return rec.merged();
}

struct LinCase {
  Algorithm algo;
  u64 seed;
};

void PrintTo(const LinCase& c, std::ostream* os) {
  *os << to_string(c.algo) << "_s" << c.seed;
}

class Linearizable : public ::testing::TestWithParam<LinCase> {};

std::string dump(const History& h) {
  std::ostringstream os;
  for (const OpRecord& op : h) {
    os << "  p" << op.proc << " ";
    if (op.kind == OpRecord::Kind::kInsert)
      os << "ins(" << op.entry.prio << "," << op.entry.item << ")";
    else if (op.result_present)
      os << "del->(" << op.entry.prio << "," << op.entry.item << ")";
    else
      os << "del->empty";
    os << " [" << op.invoked << "," << op.responded << "]\n";
  }
  return os.str();
}

TEST_P(Linearizable, SingleLockAlwaysLinearizes) {
  // SingleLock holds one lock across whole operations: every history must
  // linearize, for every seed.
  const auto [algo, seed] = GetParam();
  const History h = record_history(algo, 3, 4, seed);
  ASSERT_LE(h.size(), 12u);
  const auto r = check_linearizable(h);
  EXPECT_TRUE(r.linearizable) << to_string(algo) << " produced a"
                              << " non-linearizable history (seed " << seed
                              << "):\n" << dump(h);
  if (r.linearizable) {
    EXPECT_EQ(r.order.size(), h.size());
  }
}

std::vector<LinCase> lin_cases() {
  std::vector<LinCase> cases;
  for (u64 s = 1; s <= 16; ++s) cases.push_back({Algorithm::kSingleLock, s});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, Linearizable, ::testing::ValuesIn(lin_cases()),
                         ::testing::PrintToStringParamName());

class MostlyLinearizable : public ::testing::TestWithParam<Algorithm> {};

TEST_P(MostlyLinearizable, HuntAndSimpleLinearAdmitRareViolations) {
  // Reproduction finding (EXPERIMENTS.md, "Consistency"): the paper
  // classifies HuntEtAl and SimpleLinear as linearizable, but our checker
  // exhibits counterexample traces —
  //   * SimpleLinear: a delete-min scan passes bin 0, an insert(0)
  //     completes behind the scan, and the delete returns a larger
  //     priority even though the prio-0 item was present for the entire
  //     remainder of the operation;
  //   * HuntEtAl: while one deleter's sift-down is in flight the root
  //     transiently holds a large item, and a second deleter returns it
  //     over a smaller settled item.
  // Both stay quiescently consistent (conservation and phase tests
  // elsewhere). Here we require histories to be *mostly* linearizable and
  // report the violation rate; a correctness bug (lost/duplicated items)
  // would fail every seed.
  const Algorithm algo = GetParam();
  u32 linearizable = 0, total = 0;
  for (u64 seed = 1; seed <= 16; ++seed) {
    const History h = record_history(algo, 3, 4, seed);
    if (h.size() > 16) continue;
    ++total;
    if (check_linearizable(h).linearizable) ++linearizable;
  }
  ASSERT_GT(total, 10u);
  EXPECT_GE(linearizable * 4, total * 3)
      << to_string(algo) << ": only " << linearizable << "/" << total
      << " histories linearized";
  ::testing::Test::RecordProperty("linearizable", static_cast<int>(linearizable));
  ::testing::Test::RecordProperty("total", static_cast<int>(total));
}

INSTANTIATE_TEST_SUITE_P(Sweep, MostlyLinearizable,
                         ::testing::Values(Algorithm::kHuntEtAl,
                                           Algorithm::kSimpleLinear),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(Linearizable, LargerHistoryOnSingleLock) {
  // SingleLock serializes everything; even a 20-op history must check out.
  const History h = record_history(Algorithm::kSingleLock, 4, 5, 42);
  ASSERT_LE(h.size(), 20u);
  EXPECT_TRUE(check_linearizable(h).linearizable);
}

TEST(HistoryRecorder, MergesSortedByInvocation) {
  HistoryRecorder rec(2);
  rec.record(OpRecord::insert_op(0, 10, 20, {1, 100}));
  rec.record(OpRecord::insert_op(0, 30, 40, {2, 200}));
  rec.record(OpRecord::insert_op(1, 5, 15, {3, 300}));
  rec.record(OpRecord::insert_op(1, 25, 35, {4, 400}));
  const History h = rec.merged();
  ASSERT_EQ(h.size(), 4u);
  EXPECT_EQ(h[0].entry.prio, 3u);
  EXPECT_EQ(h[1].entry.prio, 1u);
  EXPECT_EQ(h[2].entry.prio, 4u);
  EXPECT_EQ(h[3].entry.prio, 2u);
}

} // namespace
} // namespace fpq
