// Tests of the happens-before race detector and lock-order checker
// (sim/race_detector.hpp): vector-clock algebra, the FastTrack word-state
// transitions, the declared-order HB edges (release/acquire, seq_cst,
// run-boundary barrier), the lock acquisition-order graph, and the
// end-to-end wiring through SimPlatform and the stress harness.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <vector>

#include "platform/sim.hpp"
#include "sim/race_detector.hpp"
#include "sync/mcs_lock.hpp"
#include "sync/ttas_lock.hpp"
#include "verify/stress.hpp"

namespace fpq {
namespace {

using sim::AccessKind;
using sim::Epoch;
using sim::RaceDetector;
using sim::VectorClock;

// ---- Vector-clock algebra.

TEST(VectorClock, JoinTakesComponentwiseMax) {
  VectorClock a(3), b(3);
  a.set(0, 5);
  a.set(1, 1);
  b.set(1, 7);
  b.set(2, 2);
  a.join(b);
  EXPECT_EQ(a.get(0), 5u);
  EXPECT_EQ(a.get(1), 7u);
  EXPECT_EQ(a.get(2), 2u);
}

TEST(VectorClock, IncludesOrdersEpochs) {
  VectorClock c(2);
  c.set(0, 3);
  EXPECT_TRUE(c.includes(Epoch{0, 3}));
  EXPECT_TRUE(c.includes(Epoch{0, 2}));
  EXPECT_FALSE(c.includes(Epoch{0, 4}));
  EXPECT_FALSE(c.includes(Epoch{1, 1})); // other fiber's progress unknown
  EXPECT_TRUE(c.includes(Epoch{}));      // never-accessed sorts before all
}

TEST(VectorClock, EpochOfReflectsTicks) {
  VectorClock c(2);
  c.tick(1);
  c.tick(1);
  const Epoch e = c.epoch_of(1);
  EXPECT_EQ(e.fiber, 1u);
  EXPECT_EQ(e.clock, 2u);
}

// ---- Direct detector API: the declared-order HB edges.

TEST(RaceDetector, UnorderedRelaxedWritesRace) {
  RaceDetector det(2, 42);
  det.on_access(0, 7, AccessKind::Write, MemOrder::kRelaxed, true, 10);
  det.on_access(1, 7, AccessKind::Write, MemOrder::kRelaxed, true, 20);
  ASSERT_EQ(det.race_count(), 1u);
  const sim::RaceReport& r = det.races()[0];
  EXPECT_EQ(r.word, 7u);
  EXPECT_EQ(r.prev.fiber, 0u);
  EXPECT_EQ(r.cur.fiber, 1u);
  EXPECT_EQ(r.seed, 42u);
}

TEST(RaceDetector, ReleaseAcquireOrdersTheRelaxedWrite) {
  // The message-passing idiom: payload relaxed, flag release/acquire.
  RaceDetector det(2, 1);
  det.on_access(0, 1, AccessKind::Write, MemOrder::kRelaxed, true, 1); // payload
  det.on_access(0, 2, AccessKind::Write, MemOrder::kRelease, true, 2); // flag
  det.on_access(1, 2, AccessKind::Read, MemOrder::kAcquire, true, 3);  // sees flag
  det.on_access(1, 1, AccessKind::Write, MemOrder::kRelaxed, true, 4); // payload
  EXPECT_EQ(det.race_count(), 0u);
}

TEST(RaceDetector, RelaxedFlagReadDoesNotSynchronize) {
  // Same shape, but the reader probes the flag relaxed: the payload write
  // is not ordered behind the publisher's, so it must be reported.
  RaceDetector det(2, 1);
  det.on_access(0, 1, AccessKind::Write, MemOrder::kRelaxed, true, 1);
  det.on_access(0, 2, AccessKind::Write, MemOrder::kRelease, true, 2);
  det.on_access(1, 2, AccessKind::Read, MemOrder::kRelaxed, true, 3);
  det.on_access(1, 1, AccessKind::Write, MemOrder::kRelaxed, true, 4);
  EXPECT_EQ(det.race_count(), 1u);
}

TEST(RaceDetector, RelaxedReadOfReleasedWriteIsALegitimateProbe) {
  // A relaxed read racing a *released* write is the TTAS test-loop shape;
  // the write's observers synchronize elsewhere, so no report.
  RaceDetector det(2, 1);
  det.on_access(0, 3, AccessKind::Write, MemOrder::kRelease, true, 1);
  det.on_access(1, 3, AccessKind::Read, MemOrder::kRelaxed, true, 2);
  EXPECT_EQ(det.race_count(), 0u);
}

TEST(RaceDetector, SeqCstAccessesAreTotallyOrdered) {
  RaceDetector det(2, 1);
  det.on_access(0, 4, AccessKind::Write, MemOrder::kSeqCst, true, 1);
  det.on_access(1, 4, AccessKind::Write, MemOrder::kSeqCst, true, 2);
  // ... and the seq_cst edge also covers earlier relaxed writes.
  det.on_access(0, 5, AccessKind::Write, MemOrder::kRelaxed, true, 3);
  det.on_access(0, 4, AccessKind::Write, MemOrder::kSeqCst, true, 4);
  det.on_access(1, 4, AccessKind::Rmw, MemOrder::kSeqCst, true, 5);
  det.on_access(1, 5, AccessKind::Write, MemOrder::kRelaxed, true, 6);
  EXPECT_EQ(det.race_count(), 0u);
}

TEST(RaceDetector, FailedCasDoesNotPublish) {
  // Fiber 0 writes the payload relaxed, then *fails* a CAS on the flag
  // (acq_rel on success, relaxed on failure): nothing is released, so
  // fiber 1's acquire of the flag gets no edge to the payload write.
  RaceDetector det(2, 1);
  det.on_access(0, 1, AccessKind::Write, MemOrder::kRelaxed, true, 1);
  det.on_access(0, 2, AccessKind::Rmw, MemOrder::kRelaxed, false, 2); // failed CAS
  det.on_access(1, 2, AccessKind::Read, MemOrder::kAcquire, true, 3);
  det.on_access(1, 1, AccessKind::Write, MemOrder::kRelaxed, true, 4);
  EXPECT_EQ(det.race_count(), 1u);
}

TEST(RaceDetector, ConcurrentReadersInflateAndAreAllChecked) {
  // Two unordered acquire readers force the FastTrack epoch -> vector
  // inflation; a later unordered relaxed write must still see *both*.
  RaceDetector det(3, 1);
  det.on_access(0, 6, AccessKind::Write, MemOrder::kRelease, true, 1);
  det.on_access(1, 6, AccessKind::Read, MemOrder::kAcquire, true, 2);
  det.on_access(2, 6, AccessKind::Read, MemOrder::kAcquire, true, 3);
  EXPECT_EQ(det.race_count(), 0u);
  det.on_access(0, 6, AccessKind::Write, MemOrder::kRelaxed, true, 4);
  EXPECT_EQ(det.race_count(), 1u);
}

TEST(RaceDetector, BarrierOrdersEverythingBefore) {
  RaceDetector det(2, 1);
  det.on_access(0, 8, AccessKind::Write, MemOrder::kRelaxed, true, 1);
  det.on_barrier();
  det.on_access(1, 8, AccessKind::Write, MemOrder::kRelaxed, true, 2);
  EXPECT_EQ(det.race_count(), 0u);
}

TEST(RaceDetector, OneReportPerWordButAllCounted) {
  RaceDetector det(3, 1);
  det.on_access(0, 9, AccessKind::Write, MemOrder::kRelaxed, true, 1);
  det.on_access(1, 9, AccessKind::Write, MemOrder::kRelaxed, true, 2);
  det.on_access(2, 9, AccessKind::Write, MemOrder::kRelaxed, true, 3);
  EXPECT_GE(det.race_count(), 2u);
  EXPECT_EQ(det.races().size(), 1u); // deduplicated per word
}

// ---- Lock acquisition-order graph.

TEST(RaceDetector, OppositeNestingOrdersAreAnInversion) {
  RaceDetector det(2, 5);
  const int a = 0, b = 0; // distinct addresses
  det.on_lock_acquire(0, &a, false, 1);
  det.on_lock_acquire(0, &b, false, 2); // edge a -> b
  det.on_lock_release(0, &b);
  det.on_lock_release(0, &a);
  det.on_lock_acquire(1, &b, false, 3);
  det.on_lock_acquire(1, &a, false, 4); // edge b -> a: cycle
  ASSERT_EQ(det.inversion_count(), 1u);
  const sim::LockOrderReport& r = det.lock_inversions()[0];
  EXPECT_EQ(r.fiber, 1u);
  EXPECT_EQ(r.seed, 5u);
  ASSERT_GE(r.cycle.size(), 2u);
}

TEST(RaceDetector, ConsistentNestingIsClean) {
  RaceDetector det(2, 1);
  const int a = 0, b = 0, c = 0;
  for (ProcId t : {0u, 1u}) {
    det.on_lock_acquire(t, &a, false, 1);
    det.on_lock_acquire(t, &b, false, 2);
    det.on_lock_acquire(t, &c, false, 3);
    det.on_lock_release(t, &c);
    det.on_lock_release(t, &b);
    det.on_lock_release(t, &a);
  }
  EXPECT_EQ(det.inversion_count(), 0u);
}

TEST(RaceDetector, TrylockAddsNoEdges) {
  // A trylock cannot block, so acquiring out of order via trylock is not a
  // deadlock: SkipList's per-node try-only delete lock relies on this.
  RaceDetector det(2, 1);
  const int a = 0, b = 0;
  det.on_lock_acquire(0, &a, false, 1);
  det.on_lock_acquire(0, &b, false, 2); // a -> b
  det.on_lock_release(0, &b);
  det.on_lock_release(0, &a);
  det.on_lock_acquire(1, &b, false, 3);
  det.on_lock_acquire(1, &a, /*trylock=*/true, 4); // no b -> a edge
  EXPECT_EQ(det.inversion_count(), 0u);
}

// ---- End-to-end through SimPlatform (engine-attached detector).

sim::MachineParams race_params() {
  sim::MachineParams m;
  m.race_detect = true;
  return m;
}

TEST(SimRaceDetection, UnsynchronizedRelaxedCounterIsFlagged) {
  sim::Engine eng(4, race_params(), 7);
  SimShared<u64> counter{0};
  eng.run([&](ProcId) {
    for (int i = 0; i < 4; ++i) counter.store_relaxed(counter.load_relaxed() + 1);
  });
  ASSERT_NE(eng.race_detector(), nullptr);
  EXPECT_GT(eng.race_detector()->race_count(), 0u);
}

TEST(SimRaceDetection, McsGuardedRelaxedCounterIsClean) {
  // The detector's acceptance bar: lock-protected relaxed accesses are
  // race-free because the lock's release/acquire edges order them.
  sim::Engine eng(4, race_params(), 7);
  McsLock<SimPlatform> lock(4);
  SimShared<u64> counter{0};
  eng.run([&](ProcId) {
    for (int i = 0; i < 4; ++i) {
      McsGuard<SimPlatform> g(lock);
      counter.store_relaxed(counter.load_relaxed() + 1);
    }
  });
  ASSERT_NE(eng.race_detector(), nullptr);
  EXPECT_EQ(eng.race_detector()->race_count(), 0u)
      << to_string(eng.race_detector()->races()[0]);
  EXPECT_EQ(counter.load(), 16u);
}

TEST(SimRaceDetection, TtasGuardedRelaxedCounterIsClean) {
  sim::Engine eng(4, race_params(), 7);
  TtasLock<SimPlatform> lock;
  SimShared<u64> counter{0};
  eng.run([&](ProcId) {
    for (int i = 0; i < 4; ++i) {
      TtasGuard<SimPlatform> g(lock);
      counter.store_relaxed(counter.load_relaxed() + 1);
    }
  });
  ASSERT_NE(eng.race_detector(), nullptr);
  EXPECT_EQ(eng.race_detector()->race_count(), 0u)
      << to_string(eng.race_detector()->races()[0]);
}

TEST(SimRaceDetection, SecondRunIsOrderedBehindTheFirst) {
  // The Engine::run boundary is a real host-thread join; without the
  // barrier edge the drain phase would race every mixed-phase relaxed
  // write. One fiber writes relaxed in run 1, another in run 2.
  sim::Engine eng(2, race_params(), 3);
  SimShared<u64> w{0};
  eng.run([&](ProcId id) {
    if (id == 0) w.store_relaxed(1);
  });
  eng.run([&](ProcId id) {
    if (id == 1) w.store_relaxed(2);
  });
  EXPECT_EQ(eng.race_detector()->race_count(), 0u);
}

TEST(SimRaceDetection, OppositeLockOrdersAcrossFibersAreReported) {
  // Fiber 1 is delayed far past fiber 0's critical sections, so there is
  // no actual deadlock — the *potential* is what the graph records.
  sim::Engine eng(2, race_params(), 11);
  TtasLock<SimPlatform> a, b;
  eng.run([&](ProcId id) {
    if (id == 0) {
      TtasGuard<SimPlatform> ga(a);
      TtasGuard<SimPlatform> gb(b);
    } else {
      SimPlatform::delay(1u << 20);
      TtasGuard<SimPlatform> gb(b);
      TtasGuard<SimPlatform> ga(a);
    }
  });
  ASSERT_NE(eng.race_detector(), nullptr);
  EXPECT_EQ(eng.race_detector()->inversion_count(), 1u);
  EXPECT_EQ(eng.race_detector()->race_count(), 0u);
}

// ---- Harness integration (verify/stress.hpp).

TEST(StressRaceDetection, SpecRoundTripsRaceFlag) {
  verify::StressSpec s;
  s.race_detect = true;
  const verify::StressSpec r = verify::spec_from_line(verify::to_line(s));
  EXPECT_TRUE(r.race_detect);
}

TEST(StressRaceDetection, CleanQueuePassesWithDetectorAttached) {
  verify::StressSpec s;
  s.algo = Algorithm::kFunnelTree;
  s.policy = sim::SchedulePolicy::kRandomPreempt;
  s.access_jitter = 64;
  s.seed = 2;
  s.race_detect = true;
  const auto f = verify::run_scenario(s);
  EXPECT_FALSE(f.has_value()) << verify::format_failure(*f);
}

// A queue whose size word is maintained with bare relaxed accesses and no
// lock: semantically it may even pass conservation on a lucky schedule,
// but the detector must flag the undeclared ordering unconditionally.
class RelaxedBinQueue final : public IPriorityQueue<SimPlatform> {
 public:
  explicit RelaxedBinQueue(const PqParams& params)
      : npriorities_(params.npriorities), size_(0),
        elems_(std::make_unique<SimShared<u64>[]>(kCap)) {}

  bool insert(Prio prio, Item item) override {
    const u64 n = size_.load_relaxed();
    if (n >= kCap) return false;
    elems_[n].store_relaxed((static_cast<u64>(prio) << 48) | item);
    size_.store_relaxed(n + 1);
    return true;
  }

  std::optional<Entry> delete_min() override {
    const u64 n = size_.load_relaxed();
    if (n == 0) return std::nullopt;
    const u64 packed = elems_[n - 1].load_relaxed();
    size_.store_relaxed(n - 1);
    return Entry{static_cast<Prio>(packed >> 48), packed & ((1ull << 48) - 1)};
  }

  u32 insert_batch(std::span<const Entry> entries) override {
    u32 n = 0;
    for (const Entry& e : entries) n += insert(e.prio, e.item) ? 1 : 0;
    return n;
  }
  u32 delete_min_batch(std::span<Entry> out) override {
    u32 n = 0;
    for (Entry& e : out) {
      auto r = delete_min();
      if (!r) break;
      e = *r;
      ++n;
    }
    return n;
  }
  PqStatus try_insert(Prio prio, Item item, const TryBudget&) override {
    return insert(prio, item) ? PqStatus::kOk : PqStatus::kTimeout;
  }
  PqStatus try_delete_min(Entry& out, const TryBudget&) override {
    auto e = delete_min();
    if (!e) return PqStatus::kEmpty;
    out = *e;
    return PqStatus::kOk;
  }
  u32 npriorities() const override { return npriorities_; }

 private:
  static constexpr u64 kCap = 4096;
  u32 npriorities_;
  SimShared<u64> size_;
  std::unique_ptr<SimShared<u64>[]> elems_;
};

TEST(StressRaceDetection, UndeclaredOrderingQueueFailsWithRaceKind) {
  verify::StressSpec s;
  s.algo = Algorithm::kSimpleLinear; // factory overridden below
  s.policy = sim::SchedulePolicy::kRandomPreempt;
  s.access_jitter = 64;
  s.race_detect = true;
  verify::ScenarioChecks checks; // rank bound on, lin off
  const auto make = [](const PqParams& p) -> std::unique_ptr<IPriorityQueue<SimPlatform>> {
    return std::make_unique<RelaxedBinQueue>(p);
  };
  bool caught = false;
  for (u64 seed = 1; seed <= 4 && !caught; ++seed) {
    s.seed = seed;
    if (auto f = verify::run_scenario_with(make, s, checks)) {
      // Conservation may *also* be broken, but the detector outranks it.
      EXPECT_EQ(f->kind, "race") << verify::format_failure(*f);
      EXPECT_NE(f->diagnostic.find("race on word#"), std::string::npos);
      caught = true;
    }
  }
  EXPECT_TRUE(caught);
}

} // namespace
} // namespace fpq
