// Tests of the aggregating-funnel collision protocol (Roh et al. '24;
// DESIGN.md §13): the open/close/distribute handshake on FunnelCounter and
// FunnelStack, positional verdicts under the floor clamp, opposite-
// direction folding (the aggregation form of elimination), permutation and
// conservation sweeps with the race detector attached, and a detector
// negative control with the join CAS deliberately under-annotated.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "funnel/aggregate.hpp"
#include "funnel/counter.hpp"
#include "funnel/stack.hpp"
#include "platform/sim.hpp"
#include "sim/race_detector.hpp"

namespace fpq {
namespace {

using Cfg = FunnelCounter<SimPlatform>::Config;

/// One wide-enough layer, funnel forced (no adaptive fast-path bypass) so
/// every operation actually runs the aggregation protocol.
FunnelParams agg_params(u32 width = 2, u32 agg_wait = 64) {
  FunnelParams p;
  p.protocol = FunnelProtocol::kAggregate;
  p.levels = 1;
  p.width[0] = width;
  p.attempts = 2;
  p.adaptive = false;
  p.agg_wait = agg_wait;
  return p;
}

/// Single slot + a long open-window budget: with a short arrival stagger
/// the late operation deterministically joins the early representative.
/// The stagger must beat the adaptive close (agg_idle_limit caps the idle
/// threshold at 64 beats however large the budget), so litmus joiners
/// arrive within a few dozen beats — the counter litmuses assert
/// folded_joins() so a missed window fails loudly instead of silently
/// degrading into two independent central RMWs.
FunnelParams litmus_params() {
  FunnelParams p = agg_params(1, 4096);
  p.batch_limit = 4; // room for the litmus batches (stack buffers)
  return p;
}

/// The litmus joiner's arrival stagger (relax beats, ~4 cycles each): long
/// enough that the representative has won its slot AND opened its record
/// (a joiner landing between the claim CAS and open() reads kAggClosed,
/// help-clears the slot and serves itself), short enough to land inside
/// the adaptive idle threshold (64 beats for these budgets).
constexpr u32 kLitmusStagger = 48;

TEST(AggregateCounter, SequentialFai) {
  FunnelCounter<SimPlatform> c(1, agg_params(), Cfg{false, false, 0}, 0);
  sim::Engine eng(1);
  eng.run([&](ProcId) {
    for (i64 i = 0; i < 20; ++i) EXPECT_EQ(c.fai(), i);
  });
  EXPECT_EQ(c.read(), 20);
}

TEST(AggregateCounter, SequentialBfadStopsAtFloor) {
  FunnelCounter<SimPlatform> c(1, agg_params(), Cfg{true, true, 0}, 2);
  sim::Engine eng(1);
  eng.run([&](ProcId) {
    EXPECT_EQ(c.bfad(0), 2);
    EXPECT_EQ(c.bfad(0), 1);
    EXPECT_EQ(c.bfad(0), 0); // at floor: value returned, no decrement
    EXPECT_EQ(c.bfad(0), 0);
  });
  EXPECT_EQ(c.read(), 0);
}

TEST(AggregateStack, SequentialPushPop) {
  FunnelStack<SimPlatform> s(1, agg_params(), 64);
  sim::Engine eng(1);
  eng.run([&](ProcId) {
    for (u64 v = 1; v <= 10; ++v) EXPECT_TRUE(s.push(v));
    for (u64 v = 10; v >= 1; --v) EXPECT_EQ(s.pop(), v); // LIFO
    EXPECT_FALSE(s.pop().has_value());
  });
  EXPECT_TRUE(s.empty());
}

// ---- Litmus: the open/close/distribute handshake, made deterministic.
//
// Proc 0 (representative) opens an aggregate at central value 0 and holds
// the window; proc 1 arrives mid-window and joins. The aggregate's
// sequential order is <representative, joiners in close order>, so the
// fold is: +2 from 0 (rep's increments -> tickets 0,1), then -3 from 2
// under the floor clamp (joiner's decrements -> 2 succeed, 1 clamps).
// One central RMW moves 0 -> 0; both sides' verdicts are positional.
TEST(AggregateCounter, LitmusPositionalVerdictsUnderFloorClamp) {
  FunnelCounter<SimPlatform> c(2, litmus_params(), Cfg{true, true, 0}, 0);
  u64 inc_succ = 0, dec_succ = 0;
  sim::MachineParams m;
  m.race_detect = true;
  sim::Engine eng(2, m, /*seed=*/7);
  eng.run([&](ProcId me) {
    if (me == 0) {
      inc_succ = c.fai_batch(2);
    } else {
      for (u32 i = 0; i < kLitmusStagger; ++i) SimPlatform::relax(); // mid-window
      dec_succ = c.bfad_batch(0, 3);
    }
  });
  EXPECT_EQ(inc_succ, 2u);
  EXPECT_EQ(dec_succ, 2u); // third decrement found the floor
  EXPECT_EQ(c.read(), 0);
  EXPECT_GE(c.folded_joins(), 1u); // the joiner really was folded
  ASSERT_NE(eng.race_detector(), nullptr);
  EXPECT_EQ(eng.race_detector()->race_count(), 0u);
}

// The opposite-direction fold is aggregation's form of elimination: a
// decrementing aggregate opened off the floor absorbs an incrementing
// joiner's slice exactly (whole-vs-slice), still via one central RMW.
TEST(AggregateCounter, LitmusOppositeSlicesFoldExactly) {
  FunnelCounter<SimPlatform> c(2, litmus_params(), Cfg{true, true, 0}, 1);
  i64 dec_ticket = -1;
  u64 inc_succ = 0;
  sim::MachineParams m;
  m.race_detect = true;
  sim::Engine eng(2, m, /*seed=*/11);
  eng.run([&](ProcId me) {
    if (me == 0) {
      dec_ticket = c.bfad(0); // rep: 1 -> 0
    } else {
      for (u32 i = 0; i < kLitmusStagger; ++i) SimPlatform::relax();
      inc_succ = c.fai_batch(2); // joiner: 0 -> 2
    }
  });
  EXPECT_EQ(dec_ticket, 1);
  EXPECT_EQ(inc_succ, 2u);
  EXPECT_EQ(c.read(), 2);
  EXPECT_GE(c.folded_joins(), 1u); // the joiner really was folded
  ASSERT_NE(eng.race_detector(), nullptr);
  EXPECT_EQ(eng.race_detector()->race_count(), 0u);
}

// Stack handshake litmus: a pushing representative opens its aggregate, a
// popping joiner lands in the window, and the critical section serves
// <push 2, pop 3> in sequence — the popper drains the representative's
// fresh items LIFO, then one prefilled item.
TEST(AggregateStack, LitmusPushAggregateServesJoinedPop) {
  FunnelStack<SimPlatform> s(2, litmus_params(), 64);
  Item out[3] = {0, 0, 0};
  u32 pushed = 0, popped = 0;
  sim::MachineParams m;
  m.race_detect = true;
  sim::Engine eng(2, m, /*seed=*/13);
  eng.run([&](ProcId me) {
    if (me == 0) {
      for (u64 v = 101; v <= 105; ++v) ASSERT_TRUE(s.push(v)); // prefill
    }
  });
  eng.run([&](ProcId me) {
    if (me == 0) {
      const Item items[2] = {201, 202};
      pushed = s.push_batch(items, 2);
    } else {
      for (u32 i = 0; i < kLitmusStagger; ++i) SimPlatform::relax();
      popped = s.pop_batch(out, 3);
    }
  });
  EXPECT_EQ(pushed, 2u);
  ASSERT_EQ(popped, 3u);
  EXPECT_EQ(out[0], 202u); // LIFO: representative's batch first
  EXPECT_EQ(out[1], 201u);
  EXPECT_EQ(out[2], 105u); // then the prefill top
  EXPECT_EQ(s.size(), 4u);
  ASSERT_NE(eng.race_detector(), nullptr);
  EXPECT_EQ(eng.race_detector()->race_count(), 0u);
}

// A refused participant must not block later ones: the store is full, the
// representative's push batch is refused all-or-nothing, and the joined
// pop is still served (per-record verdicts, not per-aggregate).
TEST(AggregateStack, LitmusFullStoreRefusesPushButServesJoinedPop) {
  FunnelStack<SimPlatform> s(2, litmus_params(), /*capacity=*/4);
  Item out[2] = {0, 0};
  u32 pushed = 99, popped = 0;
  sim::MachineParams m;
  m.race_detect = true;
  sim::Engine eng(2, m, /*seed=*/17);
  eng.run([&](ProcId me) {
    if (me == 0) {
      for (u64 v = 101; v <= 104; ++v) ASSERT_TRUE(s.push(v)); // fill to cap
    }
  });
  eng.run([&](ProcId me) {
    if (me == 0) {
      const Item items[2] = {201, 202};
      pushed = s.push_batch(items, 2);
    } else {
      for (u32 i = 0; i < kLitmusStagger; ++i) SimPlatform::relax();
      popped = s.pop_batch(out, 2);
    }
  });
  EXPECT_EQ(pushed, 0u); // all-or-nothing refusal at the full store
  ASSERT_EQ(popped, 2u);
  EXPECT_EQ(out[0], 104u); // the refused batch left no trace
  EXPECT_EQ(out[1], 103u);
  EXPECT_EQ(s.size(), 2u);
  ASSERT_NE(eng.race_detector(), nullptr);
  EXPECT_EQ(eng.race_detector()->race_count(), 0u);
}

// ---- Adaptive window close (FunnelParams::agg_idle_limit): the open
// window is an *upper bound*. A solo representative closes after the idle
// threshold instead of burning the whole budget, so low-concurrency
// latency no longer scales with agg_wait; concurrent joiners keep
// resetting the idle clock, so the fold is preserved.

TEST(AggregateCounter, AdaptiveCloseBoundsSoloRepresentativeLatency) {
  auto solo_cycles = [](u32 agg_wait) {
    FunnelCounter<SimPlatform> c(1, agg_params(1, agg_wait), Cfg{false, false, 0}, 0);
    sim::Engine eng(1);
    eng.run([&](ProcId) { EXPECT_EQ(c.fai(), 0); });
    return eng.proc_stats()[0].clock;
  };
  const auto small_budget = solo_cycles(64);
  const auto huge_budget = solo_cycles(4096);
  // The 64x budget difference must not linearize into latency: both close
  // at their idle threshold (8 vs 64 beats — agg_idle_limit clamps), so
  // the gap is a few dozen relax beats, not ~4000. Slack covers the
  // threshold difference with a wide margin while staying an order of
  // magnitude below the budget gap.
  EXPECT_LT(huge_budget, small_budget + 1024);
}

TEST(AggregateCounter, AdaptiveCloseStillFoldsConcurrentJoiners) {
  // 8 processors hammering one slot with a huge window budget: arrivals
  // land within each other's idle threshold, so aggregates still fold
  // (the early close must not degrade a busy funnel into solo RMWs) and
  // the tickets stay a permutation.
  FunnelCounter<SimPlatform> c(8, agg_params(1, 4096), Cfg{false, false, 0}, 0);
  std::vector<std::vector<i64>> got(8);
  sim::Engine eng(8, {}, /*seed=*/29);
  eng.run([&](ProcId id) {
    for (u32 i = 0; i < 25; ++i) {
      SimPlatform::delay(SimPlatform::rnd(64));
      got[id].push_back(c.fai());
    }
  });
  std::set<i64> values;
  for (const auto& v : got) values.insert(v.begin(), v.end());
  EXPECT_EQ(values.size(), 200u);
  EXPECT_EQ(c.read(), 200);
  EXPECT_GE(c.folded_joins(), 1u);
}

// ---- Concurrent sweeps: same invariants as the exchange-protocol
// suites, with the detector attached so the join/close/verdict edges are
// checked on every schedule.

struct AggCase {
  u32 nprocs;
  u32 width;
  u64 seed;
};

class AggregateFaiSweep : public ::testing::TestWithParam<AggCase> {};

TEST_P(AggregateFaiSweep, PureIncrementsArePermutation) {
  const auto [nprocs, width, seed] = GetParam();
  FunnelCounter<SimPlatform> c(nprocs, agg_params(width), Cfg{true, true, 0}, 0);
  std::vector<std::vector<i64>> got(nprocs);
  sim::MachineParams m;
  m.race_detect = true;
  sim::Engine eng(nprocs, m, seed);
  const u32 per_proc = 25;
  eng.run([&](ProcId id) {
    for (u32 i = 0; i < per_proc; ++i) {
      SimPlatform::delay(SimPlatform::rnd(64));
      got[id].push_back(c.fai());
    }
  });
  std::set<i64> values;
  u64 total = 0;
  for (const auto& v : got) {
    values.insert(v.begin(), v.end());
    total += v.size();
  }
  EXPECT_EQ(values.size(), total); // distinct tickets
  EXPECT_EQ(*values.begin(), 0);
  EXPECT_EQ(*values.rbegin(), static_cast<i64>(total) - 1);
  EXPECT_EQ(c.read(), static_cast<i64>(total));
  ASSERT_NE(eng.race_detector(), nullptr);
  EXPECT_EQ(eng.race_detector()->race_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, AggregateFaiSweep,
                         ::testing::Values(AggCase{2, 1, 1}, AggCase{4, 1, 2},
                                           AggCase{8, 2, 3}, AggCase{16, 2, 4},
                                           AggCase{32, 4, 5}, AggCase{64, 8, 6}));

class AggregateMixSweep : public ::testing::TestWithParam<AggCase> {};

TEST_P(AggregateMixSweep, BoundedBatchConservation) {
  const auto [nprocs, width, seed] = GetParam();
  // Mixed-sign batches through one bounded counter: successes must
  // conserve against the final value, and the value may never sink below
  // the floor. Batch sizes vary per op so aggregates are heterogeneous.
  FunnelCounter<SimPlatform> c(nprocs, agg_params(width), Cfg{true, true, 0}, 0);
  auto incs = std::make_unique<SimShared<u64>>(0);
  auto decs = std::make_unique<SimShared<u64>>(0);
  sim::MachineParams m;
  m.race_detect = true;
  sim::Engine eng(nprocs, m, seed);
  eng.run([&](ProcId) {
    for (u32 i = 0; i < 20; ++i) {
      SimPlatform::delay(SimPlatform::rnd(48));
      const u64 k = 1 + SimPlatform::rnd(4);
      if (SimPlatform::rnd(100) < 55) {
        incs->fetch_add(c.fai_batch(k));
      } else {
        decs->fetch_add(c.bfad_batch(0, k));
      }
    }
  });
  const i64 final_v = c.read();
  EXPECT_GE(final_v, 0);
  EXPECT_EQ(final_v,
            static_cast<i64>(incs->load()) - static_cast<i64>(decs->load()));
  ASSERT_NE(eng.race_detector(), nullptr);
  EXPECT_EQ(eng.race_detector()->race_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, AggregateMixSweep,
                         ::testing::Values(AggCase{4, 1, 21}, AggCase{8, 2, 22},
                                           AggCase{16, 2, 23}, AggCase{32, 4, 24}));

class AggregateStackSweep : public ::testing::TestWithParam<AggCase> {};

TEST_P(AggregateStackSweep, MixedBatchesConserveItems) {
  const auto [nprocs, width, seed] = GetParam();
  FunnelParams p = agg_params(width);
  p.batch_limit = 4;
  FunnelStack<SimPlatform> s(nprocs, p, 1u << 12);
  auto pushed = std::make_unique<SimShared<u64>>(0);
  auto popped = std::make_unique<SimShared<u64>>(0);
  sim::MachineParams m;
  m.race_detect = true;
  sim::Engine eng(nprocs, m, seed);
  eng.run([&](ProcId id) {
    Item buf[4];
    for (u32 i = 0; i < 20; ++i) {
      SimPlatform::delay(SimPlatform::rnd(48));
      const u32 k = 1 + static_cast<u32>(SimPlatform::rnd(4));
      if (SimPlatform::rnd(100) < 55) {
        for (u32 j = 0; j < k; ++j) buf[j] = id * 1000 + i * 8 + j + 1;
        pushed->fetch_add(s.push_batch(buf, k));
      } else {
        popped->fetch_add(s.pop_batch(buf, k));
      }
    }
  });
  EXPECT_EQ(s.size(), pushed->load() - popped->load());
  ASSERT_NE(eng.race_detector(), nullptr);
  EXPECT_EQ(eng.race_detector()->race_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, AggregateStackSweep,
                         ::testing::Values(AggCase{4, 1, 31}, AggCase{8, 2, 32},
                                           AggCase{16, 2, 33}, AggCase{32, 4, 34}));

// ---- Detector negative control: the same join handshake with the join
// CAS deliberately under-annotated (relaxed instead of acq_rel). The
// joiner's relaxed payload write is then unordered against the closer's
// read — exactly the report the aggregation sweeps above prove absent.
TEST(AggregateRaceControl, UnderAnnotatedJoinIsFlagged) {
  sim::MachineParams m;
  m.race_detect = true;
  sim::Engine eng(2, m, /*seed=*/5);
  Padded<SimShared<u64>> head;    // 0 = open-empty, 1 = joiner present
  Padded<SimShared<u64>> payload; // the joiner's "request"
  eng.run([&](ProcId me) {
    if (me == 1) {
      // Joiner: payload relaxed is fine ONLY if the join CAS releases it.
      // This one doesn't — both orders relaxed — so nothing publishes it.
      payload.value.store_relaxed(42);
      u64 h = 0;
      head.value.compare_exchange(h, 1, MemOrder::kRelaxed, MemOrder::kRelaxed);
    } else {
      // Closer: correctly-annotated side (acquire exchange, as
      // AggregateEndpoint::close_into does), reading the joined payload.
      while (head.value.exchange(0, MemOrder::kAcqRel) == 0) SimPlatform::relax();
      (void)payload.value.load_relaxed();
    }
  });
  ASSERT_NE(eng.race_detector(), nullptr);
  EXPECT_GT(eng.race_detector()->race_count(), 0u);
}

} // namespace
} // namespace fpq
