// Tests of the discrete-event engine: scheduling order, determinism,
// fiber lifecycle, waiting/waking, exception propagation.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "platform/sim.hpp"
#include "sim/engine.hpp"

namespace fpq {
namespace {

TEST(SimEngine, RunsEveryProcessor) {
  sim::Engine eng(16);
  std::vector<int> ran(16, 0);
  eng.run([&](ProcId id) { ran[id] = 1; });
  for (int r : ran) EXPECT_EQ(r, 1);
}

TEST(SimEngine, DelayAdvancesOnlyTheCallersClock) {
  sim::Engine eng(2);
  Cycles t0 = 0, t1 = 0;
  eng.run([&](ProcId id) {
    if (id == 0) SimPlatform::delay(1000);
    (id == 0 ? t0 : t1) = SimPlatform::now();
  });
  EXPECT_GE(t0, 1000u);
  EXPECT_LT(t1, 1000u);
}

TEST(SimEngine, ProcessorsInterleaveInTimeOrder) {
  // Two processors appending to a log with distinct delays: entries must be
  // ordered by simulated time.
  sim::Engine eng(2);
  std::vector<std::pair<Cycles, ProcId>> log;
  eng.run([&](ProcId id) {
    for (int i = 0; i < 10; ++i) {
      SimPlatform::delay(id == 0 ? 10 : 17);
      log.emplace_back(SimPlatform::now(), id);
    }
  });
  for (std::size_t i = 1; i < log.size(); ++i) EXPECT_LE(log[i - 1].first, log[i].first);
}

TEST(SimEngine, DeterministicGivenSeedAndLayout) {
  // Identical engines over the same shared word produce identical traces.
  // (The word must be the *same allocation*: timing depends on the
  // address-hashed home module.)
  auto word = std::make_unique<SimShared<u64>>(0);
  auto trace = [&word](u64 seed) {
    word->store(0);
    sim::Engine eng(8, {}, seed);
    std::vector<u64> order;
    eng.run([&](ProcId id) {
      for (int i = 0; i < 20; ++i) {
        SimPlatform::delay(SimPlatform::rnd(100));
        word->fetch_add(id + 1);
        order.push_back(SimPlatform::now());
      }
    });
    return order;
  };
  EXPECT_EQ(trace(5), trace(5));
  EXPECT_NE(trace(5), trace(6));
}

TEST(SimEngine, PerProcessorRngStreamsDiffer) {
  sim::Engine eng(4);
  std::vector<u64> first(4);
  eng.run([&](ProcId id) { first[id] = SimPlatform::rnd(1u << 30); });
  EXPECT_FALSE(first[0] == first[1] && first[1] == first[2] && first[2] == first[3]);
}

TEST(SimEngine, SharedOpsOutsideFibersAreNoCostNoCrash) {
  SimShared<u64> w(5);
  EXPECT_EQ(w.load(), 5u);
  w.store(7);
  EXPECT_EQ(w.exchange(9), 7u);
  u64 e = 9;
  EXPECT_TRUE(w.compare_exchange(e, 11));
  EXPECT_EQ(w.fetch_add(1), 11u);
}

TEST(SimEngine, CompareExchangeFailureReloadsExpected) {
  SimShared<u64> w(42);
  u64 expected = 5;
  EXPECT_FALSE(w.compare_exchange(expected, 6));
  EXPECT_EQ(expected, 42u);
}

TEST(SimEngine, SpinUntilSeesValueWrittenLater) {
  auto flag = std::make_unique<SimShared<u64>>(0);
  Cycles waiter_done = 0;
  sim::Engine eng(2);
  eng.run([&](ProcId id) {
    if (id == 0) {
      SimPlatform::delay(5000);
      flag->store(1);
    } else {
      SimPlatform::spin_until(*flag, [](u64 v) { return v == 1; });
      waiter_done = SimPlatform::now();
    }
  });
  EXPECT_GE(waiter_done, 5000u);
}

TEST(SimEngine, SpinUntilImmediateWhenAlreadySatisfied) {
  auto flag = std::make_unique<SimShared<u64>>(3);
  sim::Engine eng(1);
  eng.run([&](ProcId) {
    const u64 v = SimPlatform::spin_until(*flag, [](u64 x) { return x == 3; });
    EXPECT_EQ(v, 3u);
  });
}

TEST(SimEngine, ManyWaitersAllWake) {
  auto flag = std::make_unique<SimShared<u64>>(0);
  auto woken = std::make_unique<SimShared<u64>>(0);
  sim::Engine eng(32);
  eng.run([&](ProcId id) {
    if (id == 0) {
      SimPlatform::delay(3000);
      flag->store(1);
    } else {
      SimPlatform::spin_until(*flag, [](u64 v) { return v == 1; });
      woken->fetch_add(1);
    }
  });
  EXPECT_EQ(woken->load(), 31u);
}

TEST(SimEngine, WaitRaceClosedByVersionCheck) {
  // The writer may fire between a waiter's read and its park; the version
  // protocol must not lose the wakeup. Stress with tight timing.
  for (u64 seed = 0; seed < 20; ++seed) {
    auto flag = std::make_unique<SimShared<u64>>(0);
    sim::Engine eng(4, {}, seed);
    eng.run([&](ProcId id) {
      if (id == 0) {
        SimPlatform::delay(1 + SimPlatform::rnd(50));
        flag->store(1);
      } else {
        SimPlatform::spin_until(*flag, [](u64 v) { return v == 1; });
      }
    });
  }
}

TEST(SimEngine, ExceptionInFiberPropagates) {
  sim::Engine eng(4);
  EXPECT_THROW(eng.run([&](ProcId id) {
    if (id == 2) throw std::runtime_error("boom");
  }),
               std::runtime_error);
}

TEST(SimEngine, SecondRunContinuesClocks) {
  sim::Engine eng(2);
  eng.run([&](ProcId) { SimPlatform::delay(100); });
  Cycles t = 0;
  eng.run([&](ProcId) { t = SimPlatform::now(); });
  EXPECT_GE(t, 100u);
}

TEST(SimEngine, FetchAddIsAtomicAcrossProcessors) {
  auto word = std::make_unique<SimShared<u64>>(0);
  sim::Engine eng(64);
  eng.run([&](ProcId) {
    for (int i = 0; i < 50; ++i) word->fetch_add(1);
  });
  EXPECT_EQ(word->load(), 64u * 50u);
}

TEST(SimEngine, ExchangeChainsAreLossless) {
  // Each processor exchanges its id into the word; values form a chain in
  // which every id appears exactly once as a predecessor.
  auto word = std::make_unique<SimShared<u64>>(~0ull);
  sim::Engine eng(16);
  std::vector<std::vector<u64>> seen(16);
  eng.run([&](ProcId id) {
    for (int i = 0; i < 10; ++i) {
      SimPlatform::delay(SimPlatform::rnd(40));
      seen[id].push_back(word->exchange(id));
    }
  });
  std::vector<int> count(16, 0);
  for (const auto& v : seen)
    for (u64 x : v)
      if (x != ~0ull) ++count[x];
  // Every exchanged-in id is read back out at most once more than it was
  // written (the final occupant is never read).
  int total = 0;
  for (int c : count) total += c;
  EXPECT_EQ(total, 16 * 10 - 1); // all but the initial sentinel... chain length
}

TEST(SimEngine, StatsCountAccesses) {
  auto word = std::make_unique<SimShared<u64>>(0);
  sim::Engine eng(4);
  eng.run([&](ProcId) {
    for (int i = 0; i < 25; ++i) word->fetch_add(1);
  });
  EXPECT_EQ(eng.mem_stats().rmws, 100u);
}

TEST(SimEngine, NowOutsideFibersIsZero) {
  sim::Engine eng(1);
  EXPECT_EQ(eng.now(), 0u);
}

// ---- Schedule-exploration policies (MachineParams::sched).

sim::MachineParams sched_params(sim::SchedulePolicy policy, Cycles jitter = 0) {
  sim::MachineParams m;
  m.sched.policy = policy;
  m.sched.access_jitter = jitter;
  return m;
}

// Ticket order over one contended word: a compact fingerprint of the
// interleaving. Entry i of the result is the ticket processor (i / ops)
// drew on its (i % ops)-th fetch_add. Callers comparing traces must pass
// the *same* word allocation: timing depends on the address-hashed home
// module (see DeterministicGivenSeedAndLayout).
std::vector<u64> ticket_trace(SimShared<u64>& word, const sim::MachineParams& m,
                              u64 seed) {
  word.store(0);
  const u32 nprocs = 8, ops = 20;
  std::vector<u64> tickets(nprocs * ops);
  sim::Engine eng(nprocs, m, seed);
  eng.run([&](ProcId id) {
    for (u32 i = 0; i < ops; ++i) {
      SimPlatform::delay(SimPlatform::rnd(40));
      tickets[id * ops + i] = word.fetch_add(1);
    }
  });
  return tickets;
}

TEST(SimSchedule, PerturbingPoliciesReachNewInterleavings) {
  auto word = std::make_unique<SimShared<u64>>(0);
  const auto baseline =
      ticket_trace(*word, sched_params(sim::SchedulePolicy::kSmallestClock), 7);
  EXPECT_NE(baseline,
            ticket_trace(*word, sched_params(sim::SchedulePolicy::kRandomPreempt), 7));
  EXPECT_NE(baseline,
            ticket_trace(*word, sched_params(sim::SchedulePolicy::kDelayLeader), 7));
  EXPECT_NE(ticket_trace(*word, sched_params(sim::SchedulePolicy::kRandomPreempt), 7),
            ticket_trace(*word, sched_params(sim::SchedulePolicy::kDelayLeader), 7));
}

TEST(SimSchedule, AccessJitterAloneReachesNewInterleavings) {
  // The jitter must exceed the convoy's inter-arrival gap (one module
  // service round, a couple hundred cycles at 8 procs) to reorder anything;
  // small jitter leaves a saturated RMW convoy in arrival order.
  auto word = std::make_unique<SimShared<u64>>(0);
  const auto baseline =
      ticket_trace(*word, sched_params(sim::SchedulePolicy::kSmallestClock), 7);
  const auto jittered =
      ticket_trace(*word, sched_params(sim::SchedulePolicy::kSmallestClock, 512), 7);
  EXPECT_NE(baseline, jittered);
}

TEST(SimSchedule, PerturbedRunsStayDeterministicPerSeed) {
  auto word = std::make_unique<SimShared<u64>>(0);
  for (auto policy : {sim::SchedulePolicy::kRandomPreempt, sim::SchedulePolicy::kDelayLeader}) {
    const sim::MachineParams m = sched_params(policy, 32);
    EXPECT_EQ(ticket_trace(*word, m, 11), ticket_trace(*word, m, 11));
    EXPECT_NE(ticket_trace(*word, m, 11), ticket_trace(*word, m, 12));
  }
}

TEST(SimSchedule, PerturbationPreservesRmwAtomicity) {
  // Whatever the schedule does, every ticket is drawn exactly once.
  auto word = std::make_unique<SimShared<u64>>(0);
  for (auto policy : {sim::SchedulePolicy::kRandomPreempt, sim::SchedulePolicy::kDelayLeader}) {
    auto tickets = ticket_trace(*word, sched_params(policy, 64), 3);
    std::sort(tickets.begin(), tickets.end());
    for (u64 i = 0; i < tickets.size(); ++i) EXPECT_EQ(tickets[i], i);
  }
}

TEST(SimSchedule, PerturbedPoliciesDontLoseWakeups) {
  // The ManyWaitersAllWake scenario under every perturbing configuration:
  // delayed leaders and jittered accesses must not defeat the wait/wake
  // version protocol (a lost wakeup shows up as a simulated deadlock).
  for (auto policy : {sim::SchedulePolicy::kRandomPreempt, sim::SchedulePolicy::kDelayLeader}) {
    for (u64 seed = 1; seed <= 3; ++seed) {
      auto flag = std::make_unique<SimShared<u64>>(0);
      auto woken = std::make_unique<SimShared<u64>>(0);
      sim::Engine eng(16, sched_params(policy, 48), seed);
      eng.run([&](ProcId id) {
        if (id == 0) {
          SimPlatform::delay(3000);
          flag->store(1);
        } else {
          SimPlatform::spin_until(*flag, [](u64 v) { return v == 1; });
          woken->fetch_add(1);
        }
      });
      EXPECT_EQ(woken->load(), 15u) << to_string(policy) << " seed " << seed;
    }
  }
}

TEST(SimSchedule, SaturatedPerturbProbabilityStillMakesProgress) {
  // perturb_permille >= 1000 is clamped below certainty; the run must
  // terminate rather than requeue forever.
  sim::MachineParams m = sched_params(sim::SchedulePolicy::kRandomPreempt);
  m.sched.perturb_permille = 1000000;
  auto word = std::make_unique<SimShared<u64>>(0);
  sim::Engine eng(4, m, 1);
  eng.run([&](ProcId) {
    for (u32 i = 0; i < 10; ++i) word->fetch_add(1);
  });
  EXPECT_EQ(word->load(), 40u);
}

} // namespace
} // namespace fpq
