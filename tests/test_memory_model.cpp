// Tests of the ccNUMA memory model: mesh geometry, MSI transitions, cost
// composition, module occupancy queueing (the hot-spot mechanism),
// invalidation accounting and the line version counters.
#include <gtest/gtest.h>

#include "sim/memory.hpp"

namespace fpq::sim {
namespace {

MachineParams flat_params() {
  MachineParams p;
  p.t_hit = 2;
  p.t_mem = 30;
  p.t_occ = 25;
  p.t_net_base = 4;
  p.t_hop = 1;
  p.t_dirty_fetch = 30;
  p.t_inv_base = 8;
  p.t_inv_per_sharer = 2;
  return p;
}

TEST(Mesh, SideCoversNodes) {
  EXPECT_EQ(Mesh(1).side, 1u);
  EXPECT_EQ(Mesh(2).side, 2u);
  EXPECT_EQ(Mesh(4).side, 2u);
  EXPECT_EQ(Mesh(5).side, 3u);
  EXPECT_EQ(Mesh(256).side, 16u);
  EXPECT_EQ(Mesh(257).side, 17u);
}

TEST(Mesh, ManhattanDistance) {
  Mesh m(16); // 4x4
  EXPECT_EQ(m.hops(0, 0), 0u);
  EXPECT_EQ(m.hops(0, 3), 3u);
  EXPECT_EQ(m.hops(0, 15), 6u); // (0,0) -> (3,3)
  EXPECT_EQ(m.hops(5, 6), 1u);
  EXPECT_EQ(m.hops(3, 12), 6u); // (3,0) -> (0,3)
  EXPECT_EQ(m.hops(9, 9), 0u);
}

TEST(Mesh, Symmetric) {
  Mesh m(64);
  for (u32 a = 0; a < 64; a += 7)
    for (u32 b = 0; b < 64; b += 5) EXPECT_EQ(m.hops(a, b), m.hops(b, a));
}

TEST(MemoryModel, FirstReadMissesThenHits) {
  MemoryModel mm(4, flat_params());
  u64 word = 0;
  auto r1 = mm.access(0, &word, AccessKind::Read, 0);
  EXPECT_FALSE(r1.hit);
  auto r2 = mm.access(0, &word, AccessKind::Read, r1.completion);
  EXPECT_TRUE(r2.hit);
  EXPECT_EQ(r2.completion, r1.completion + flat_params().t_hit);
}

TEST(MemoryModel, ReadMissEntersSharedState) {
  MemoryModel mm(4, flat_params());
  u64 word = 0;
  mm.access(1, &word, AccessKind::Read, 0);
  EXPECT_EQ(mm.state_of(&word), Line::State::SharedClean);
  EXPECT_EQ(mm.sharer_count(&word), 1u);
  mm.access(2, &word, AccessKind::Read, 0);
  EXPECT_EQ(mm.sharer_count(&word), 2u);
}

TEST(MemoryModel, WriteTakesModifiedOwnership) {
  MemoryModel mm(4, flat_params());
  u64 word = 0;
  mm.access(1, &word, AccessKind::Write, 0);
  EXPECT_EQ(mm.state_of(&word), Line::State::Modified);
  EXPECT_EQ(mm.owner_of(&word), 1u);
}

TEST(MemoryModel, WriteHitInOwnModifiedLineIsCheap) {
  MemoryModel mm(4, flat_params());
  u64 word = 0;
  auto w1 = mm.access(1, &word, AccessKind::Write, 0);
  auto w2 = mm.access(1, &word, AccessKind::Write, w1.completion);
  EXPECT_TRUE(w2.hit);
  EXPECT_EQ(w2.completion, w1.completion + flat_params().t_hit);
}

TEST(MemoryModel, WriteInvalidatesSharers) {
  MemoryModel mm(8, flat_params());
  u64 word = 0;
  for (ProcId p = 0; p < 5; ++p) mm.access(p, &word, AccessKind::Read, 0);
  const u64 inv_before = mm.stats().invalidations;
  mm.access(6, &word, AccessKind::Write, 0);
  EXPECT_EQ(mm.stats().invalidations - inv_before, 5u);
  EXPECT_EQ(mm.state_of(&word), Line::State::Modified);
  EXPECT_EQ(mm.sharer_count(&word), 1u); // only the writer
}

TEST(MemoryModel, MoreSharersCostMoreToInvalidate) {
  auto cost_with_sharers = [](u32 nsharers) {
    MemoryModel mm(32, flat_params());
    u64 word = 0;
    for (ProcId p = 0; p < nsharers; ++p) mm.access(p, &word, AccessKind::Read, 0);
    // Use a write from a non-sharer at a late time (no queueing interference).
    return mm.access(31, &word, AccessKind::Write, 100000).completion - 100000;
  };
  EXPECT_GT(cost_with_sharers(10), cost_with_sharers(2));
}

TEST(MemoryModel, DirtyRemoteFetchCostsMore) {
  MachineParams p = flat_params();
  MemoryModel mm(4, p);
  u64 a = 0, b = 0;
  mm.access(0, &a, AccessKind::Write, 0); // a dirty at proc 0
  const Cycles clean = mm.access(1, &b, AccessKind::Read, 100000).completion - 100000;
  const Cycles dirty = mm.access(1, &a, AccessKind::Read, 200000).completion - 200000;
  // Same topology distances are not guaranteed for different words, so
  // compare against the maximum possible network delta instead.
  Mesh mesh(4);
  const Cycles max_net_delta = 2 * p.t_hop * (2 * (mesh.side - 1)) + 1;
  EXPECT_GE(dirty + max_net_delta, clean + p.t_dirty_fetch);
}

TEST(MemoryModel, ReadOfDirtyLineDowngradesOwner) {
  MemoryModel mm(4, flat_params());
  u64 word = 0;
  mm.access(0, &word, AccessKind::Write, 0);
  mm.access(1, &word, AccessKind::Read, 1000);
  EXPECT_EQ(mm.state_of(&word), Line::State::SharedClean);
  EXPECT_EQ(mm.sharer_count(&word), 2u); // old owner + reader
}

TEST(MemoryModel, ModuleOccupancyQueuesConcurrentRequests) {
  // Two processors missing on the same word at the same instant: the second
  // request waits for the module.
  MachineParams p = flat_params();
  MemoryModel mm(4, p);
  u64 word = 0;
  const u64 wait0 = mm.stats().module_wait_cycles;
  mm.access(0, &word, AccessKind::Read, 0);
  mm.access(1, &word, AccessKind::Read, 0);
  mm.access(2, &word, AccessKind::Read, 0);
  EXPECT_GT(mm.stats().module_wait_cycles, wait0);
}

TEST(MemoryModel, HotWordQueueingGrowsLinearly) {
  // N simultaneous misses on one word: the last completion grows ~ N * t_occ.
  MachineParams p = flat_params();
  auto last_completion = [&](u32 n) {
    MemoryModel mm(64, p);
    u64 word = 0;
    Cycles last = 0;
    for (ProcId i = 0; i < n; ++i)
      last = std::max(last, mm.access(i, &word, AccessKind::Read, 0).completion);
    return last;
  };
  const Cycles c8 = last_completion(8);
  const Cycles c32 = last_completion(32);
  EXPECT_GE(c32 - c8, 20 * p.t_occ); // 24 extra requests, within slack
}

TEST(MemoryModel, IndependentWordsDoNotQueueBehindEachOther) {
  // Different words nearly always map to different modules; aggregate wait
  // should be much smaller than for one hot word.
  MachineParams p = flat_params();
  MemoryModel hot(64, p), spread(64, p);
  u64 word = 0;
  std::vector<u64> words(64, 0);
  for (ProcId i = 0; i < 64; ++i) hot.access(i, &word, AccessKind::Read, 0);
  for (ProcId i = 0; i < 64; ++i) spread.access(i, &words[i], AccessKind::Read, 0);
  EXPECT_GT(hot.stats().module_wait_cycles, 4 * spread.stats().module_wait_cycles);
}

TEST(MemoryModel, VersionBumpsOnWritesOnly) {
  MemoryModel mm(4, flat_params());
  u64 word = 0;
  const u64 v0 = mm.line_version(&word);
  mm.access(0, &word, AccessKind::Read, 0);
  EXPECT_EQ(mm.line_version(&word), v0);
  mm.access(0, &word, AccessKind::Write, 0);
  EXPECT_EQ(mm.line_version(&word), v0 + 1);
  mm.access(1, &word, AccessKind::Rmw, 0);
  EXPECT_EQ(mm.line_version(&word), v0 + 2);
}

TEST(MemoryModel, WakesWaitersOnWrite) {
  MemoryModel mm(4, flat_params());
  u64 word = 0;
  mm.add_waiter(&word, 2);
  mm.add_waiter(&word, 3);
  auto r = mm.access(0, &word, AccessKind::Write, 0);
  ASSERT_EQ(r.woken.size(), 2u);
  EXPECT_EQ(r.woken[0], 2u);
  EXPECT_EQ(r.woken[1], 3u);
  // Waiter list is consumed.
  auto r2 = mm.access(1, &word, AccessKind::Write, 100);
  EXPECT_TRUE(r2.woken.empty());
}

TEST(MemoryModel, ReadsDoNotWakeWaiters) {
  MemoryModel mm(4, flat_params());
  u64 word = 0;
  mm.add_waiter(&word, 2);
  auto r = mm.access(0, &word, AccessKind::Read, 0);
  EXPECT_TRUE(r.woken.empty());
}

TEST(MemoryModel, HomeModuleIsStablePerWord) {
  MemoryModel mm(16, flat_params());
  u64 words[8] = {};
  for (auto& w : words) {
    EXPECT_EQ(mm.home_of(&w), mm.home_of(&w));
    EXPECT_LT(mm.home_of(&w), 16u);
  }
}

TEST(MemoryModel, StatsTallyKinds) {
  MemoryModel mm(2, flat_params());
  u64 word = 0;
  mm.access(0, &word, AccessKind::Read, 0);
  mm.access(0, &word, AccessKind::Write, 0);
  mm.access(0, &word, AccessKind::Rmw, 0);
  EXPECT_EQ(mm.stats().reads, 1u);
  EXPECT_EQ(mm.stats().writes, 1u);
  EXPECT_EQ(mm.stats().rmws, 1u);
}

TEST(SharerSet, CountAndExclusion) {
  SharerSet s;
  EXPECT_EQ(s.count(), 0u);
  s.set(0);
  s.set(63);
  s.set(64);
  s.set(1000);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_TRUE(s.test(63));
  EXPECT_FALSE(s.test(62));
  EXPECT_EQ(s.count_excluding(64), 3u);
  EXPECT_EQ(s.count_excluding(5), 4u);
  s.reset(63);
  EXPECT_EQ(s.count(), 3u);
  s.clear();
  EXPECT_EQ(s.count(), 0u);
}

} // namespace
} // namespace fpq::sim
