// Targeted tests for LockfreeSkipListPq (pq/lockfree_skiplist_pq.hpp):
// the delete-min-racing-insert-at-the-same-key regression the ISSUE calls
// out, reclamation accounting under both policies, and restructure-heavy
// schedules driven through the verify harness's exhaustive linearizability
// checker on small histories.
//
// The same-key race is the spot where a marked-prefix design can go wrong:
// a delete_min claims the first live node with key k while an insert
// splices a *new* node with the same key k just in front of or behind it.
// If the claim CAS's expected word or the insert's search boundary is off
// by a tag bit, the pair either loses an entry (conservation) or returns
// the two k-entries in an order no sequential queue could produce
// (linearizability). Both checkers run here on purpose-built collision
// workloads: tiny priority ranges force every operation onto the same key.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "platform/sim.hpp"
#include "pq/lockfree_skiplist_pq.hpp"
#include "verify/stress.hpp"

namespace fpq {
namespace {

using reclaim::Policy;

struct SkiplistCase {
  Policy policy;
  u64 seed;
};

void PrintTo(const SkiplistCase& c, std::ostream* os) {
  *os << (c.policy == Policy::kHazardPointer ? "Hp" : "Ebr") << "_s" << c.seed;
}

class LockfreeSkipListSameKey : public ::testing::TestWithParam<SkiplistCase> {};

// The regression proper: single-key workload, exhaustive Wing-Gong check.
// Every insert and every delete_min collides on key 0, so each scenario is
// saturated with claim-vs-splice races at one skiplist position; any
// linearizability or conservation break is minimized and printed as a
// replayable spec.
TEST_P(LockfreeSkipListSameKey, DeleteMinRacingInsertLinearizes) {
  const auto [policy, seed] = GetParam();
  verify::StressSpec spec;
  spec.algo = Algorithm::kLockfreeSkipList;
  spec.policy = sim::SchedulePolicy::kRandomPreempt;
  spec.seed = seed;
  spec.nprocs = 3;
  spec.ops_per_proc = 4; // history (12 + drain) stays inside the checker
  spec.npriorities = 1;  // every operation targets the same key
  spec.insert_percent = 50;
  spec.access_jitter = 64;
  spec.check_lin = true;
  spec.reclaim = policy;
  if (auto f = verify::run_scenario(spec))
    FAIL() << verify::format_failure(verify::minimize(*f));
}

// Two keys, restructure-heavy (the sim bound is 4): the claimed-prefix
// boundary and tower unlinking run constantly while same-key pairs race.
TEST_P(LockfreeSkipListSameKey, TwoKeyRestructureChurnConserves) {
  const auto [policy, seed] = GetParam();
  verify::StressSpec spec;
  spec.algo = Algorithm::kLockfreeSkipList;
  spec.policy = sim::SchedulePolicy::kDelayLeader;
  spec.seed = seed;
  spec.nprocs = 6;
  spec.ops_per_proc = 24;
  spec.npriorities = 2;
  spec.insert_percent = 55;
  spec.access_jitter = 64;
  spec.reclaim = policy;
  if (auto f = verify::run_scenario(spec))
    FAIL() << verify::format_failure(verify::minimize(*f));
}

INSTANTIATE_TEST_SUITE_P(Sweep, LockfreeSkipListSameKey,
                         ::testing::Values(SkiplistCase{Policy::kHazardPointer, 1},
                                           SkiplistCase{Policy::kHazardPointer, 2},
                                           SkiplistCase{Policy::kHazardPointer, 3},
                                           SkiplistCase{Policy::kEpoch, 1},
                                           SkiplistCase{Policy::kEpoch, 2},
                                           SkiplistCase{Policy::kEpoch, 3}),
                         ::testing::PrintToStringParamName());

// Reclamation accounting: a mixed load past the restructure bound must
// actually retire and (after quiescent flush at destruction) reclaim;
// nothing may sit in limbo once the queue is gone. The DomainStats
// snapshot is taken at quiescence, before teardown.
class LockfreeSkipListReclaim : public ::testing::TestWithParam<SkiplistCase> {};

TEST_P(LockfreeSkipListReclaim, RetiresAndReclaimsUnderMixedLoad) {
  const auto [policy, seed] = GetParam();
  constexpr u32 kProcs = 8;
  constexpr u32 kPrios = 8;
  PqParams params{.npriorities = kPrios, .maxprocs = kProcs};
  params.seed = seed;
  params.reclaim_policy = policy;
  LockfreeSkipListPq<SimPlatform> pq(params);
  u64 inserted = 0, removed = 0;
  sim::Engine eng(kProcs, {}, seed);
  eng.run([&](ProcId id) {
    for (u32 i = 0; i < 48; ++i) {
      SimPlatform::delay(SimPlatform::rnd(64));
      if (SimPlatform::rnd(100) < 60) {
        ASSERT_TRUE(pq.insert(static_cast<Prio>(SimPlatform::rnd(kPrios)),
                              (static_cast<u64>(id) << 24) | i));
        ++inserted;
      } else if (pq.delete_min()) {
        ++removed;
      }
    }
  });
  eng.run([&](ProcId id) {
    if (id != 0) return;
    while (pq.delete_min()) ++removed;
  });
  EXPECT_EQ(inserted, removed);
  const reclaim::DomainStats s = pq.reclaim_stats();
  EXPECT_GT(s.retired, 0u) << "restructure never retired a node";
  EXPECT_EQ(s.retired, s.reclaimed + s.in_limbo);
}

INSTANTIATE_TEST_SUITE_P(Sweep, LockfreeSkipListReclaim,
                         ::testing::Values(SkiplistCase{Policy::kHazardPointer, 9},
                                           SkiplistCase{Policy::kEpoch, 9}),
                         ::testing::PrintToStringParamName());

} // namespace
} // namespace fpq
