// Reclamation torture battery for reclaim::Domain (DESIGN.md §11).
//
// Every node type here carries a canary that the retire deleter scribbles
// (0xDEAD...) before counting the free, so a use-after-reclaim shows up as
// a canary mismatch at the reader — not as silent memory reuse — and a
// double free trips the scribble check inside the deleter itself. A
// counting allocator balance (allocated == reclaimed, limbo empty) closes
// the leak side. Both policies run the same scenarios; the HP-specific
// protected-node and EBR-specific pinned-reader tests pin down the one
// guarantee each policy makes that the other states differently.
//
// The final suite is the race-detector negative control (ISSUE satellite):
// an under-annotated hazard handshake — relaxed publish/scan instead of the
// seq_cst contract argued in hazard.hpp — which the declared-ordering
// detector (DESIGN.md §10) must flag, while the correctly annotated
// handshake stays clean.
#include <gtest/gtest.h>

#include <vector>

#include "platform/sim.hpp"
#include "reclaim/reclaim.hpp"
#include "sim/race_detector.hpp"

namespace fpq {
namespace {

using reclaim::Domain;
using reclaim::DomainOptions;
using reclaim::DomainStats;
using reclaim::Guard;
using reclaim::Policy;

constexpr u64 kCanaryLive = 0xC0FFEE5A11ADull;
constexpr u64 kCanaryDead = 0xDEADDEADDEADDEADull;

struct CanaryNode {
  u64 canary = kCanaryLive;
  u64 payload = 0;
};

// Plain-memory accounting (no yields): mutated only by sim fibers, which
// the engine serializes onto one host thread.
struct Counting {
  u64 allocated = 0;
  u64 freed = 0;
  u64 double_frees = 0;
};
Counting* g_counting = nullptr;

CanaryNode* make_node(u64 payload) {
  ++g_counting->allocated;
  CanaryNode* n = new CanaryNode; // contract-lint tracked via scribble_free
  n->payload = payload;
  return n;
}

// The torture deleter: scribble first, then free, so any reader still
// holding the node sees kCanaryDead instead of stale-but-plausible data.
void scribble_free(void* p) {
  auto* n = static_cast<CanaryNode*>(p);
  if (n->canary == kCanaryDead) {
    ++g_counting->double_frees; // count, don't crash: the assert reads better
    return;
  }
  n->canary = kCanaryDead;
  n->payload = kCanaryDead;
  ++g_counting->freed;
  delete n;
}

DomainOptions options_for(Policy p, u32 scan_threshold = 4) {
  DomainOptions o;
  o.policy = p;
  o.slots_per_proc = 4;
  o.scan_threshold = scan_threshold;
  return o;
}

class ReclaimPolicy : public ::testing::TestWithParam<Policy> {
 protected:
  void SetUp() override { g_counting = &counting_; }
  void TearDown() override { g_counting = nullptr; }
  Counting counting_;
};

// ---- Basic lifecycle: everything retired is freed exactly once.

TEST_P(ReclaimPolicy, RetireFlushFreesEverythingOnce) {
  constexpr u32 kNodes = 37; // not a multiple of the scan threshold
  sim::Engine eng(2, {}, 11);
  Domain<SimPlatform> dom(2, options_for(GetParam()));
  eng.run([&](ProcId id) {
    for (u32 i = 0; i < kNodes; ++i) {
      Guard<SimPlatform> g(dom);
      g.retire(make_node(i), scribble_free);
    }
    (void)id;
  });
  dom.flush();
  const DomainStats s = dom.stats();
  EXPECT_EQ(s.retired, 2u * kNodes);
  EXPECT_EQ(s.reclaimed, 2u * kNodes);
  EXPECT_EQ(s.in_limbo, 0u);
  EXPECT_EQ(counting_.allocated, counting_.freed);
  EXPECT_EQ(counting_.double_frees, 0u);
}

// ---- Torture: readers chase pointers through shared cells while writers
// swap nodes out and retire them. Any premature free surfaces as a dead
// canary under a live guard; any leak as an allocation imbalance.

TEST_P(ReclaimPolicy, SwapAndChaseTortureKeepsCanariesLive) {
  constexpr u32 kProcs = 8;
  constexpr u32 kCells = 4;
  constexpr u32 kOps = 120;
  sim::Engine eng(kProcs, {}, 23);
  Domain<SimPlatform> dom(kProcs, options_for(GetParam()));
  std::vector<Padded<SimShared<u64>>> cells(kCells);
  eng.run([&](ProcId id) {
    if (id != 0) return;
    for (u32 c = 0; c < kCells; ++c)
      cells[c].value.store(reinterpret_cast<u64>(make_node(c)));
  });
  u64 canary_violations = 0;
  eng.run([&](ProcId id) {
    for (u32 i = 0; i < kOps; ++i) {
      const u32 c = static_cast<u32>(SimPlatform::rnd(kCells));
      Guard<SimPlatform> g(dom);
      const u64 w = g.protect(0, cells[c].value);
      auto* n = reinterpret_cast<CanaryNode*>(w);
      if (n->canary != kCanaryLive) ++canary_violations; // use-after-reclaim
      if (SimPlatform::flip()) {
        // Replace the cell's node and retire the one we displaced. The CAS
        // makes the displaced node unreachable-before-retire (the domain's
        // protocol contract); on failure someone else displaced it first
        // and its winner owns the retirement.
        CanaryNode* fresh = make_node((static_cast<u64>(id) << 32) | i);
        u64 expect = w;
        if (cells[c].value.compare_exchange(expect, reinterpret_cast<u64>(fresh))) {
          g.retire(n, scribble_free);
        } else {
          scribble_free(fresh); // never published: plain ownership free
        }
      }
    }
  });
  // Quiescent teardown: free the cells' final occupants, then drain limbo.
  eng.run([&](ProcId id) {
    if (id != 0) return;
    for (u32 c = 0; c < kCells; ++c)
      scribble_free(reinterpret_cast<CanaryNode*>(cells[c].value.load()));
  });
  dom.flush();
  EXPECT_EQ(canary_violations, 0u);
  EXPECT_EQ(dom.stats().in_limbo, 0u);
  EXPECT_EQ(counting_.allocated, counting_.freed);
  EXPECT_EQ(counting_.double_frees, 0u);
}

INSTANTIATE_TEST_SUITE_P(Policies, ReclaimPolicy,
                         ::testing::Values(Policy::kHazardPointer, Policy::kEpoch),
                         [](const ::testing::TestParamInfo<Policy>& i) {
                           return std::string(reclaim::to_string(i.param)) == "hp"
                                      ? "Hp"
                                      : "Ebr";
                         });

// ---- HP-specific: a published hazard defers the free across any number
// of scans, and releasing it makes the very next flush reclaim.

TEST(ReclaimHazard, ProtectedNodeSurvivesScansUntilCleared) {
  Counting counting;
  g_counting = &counting;
  sim::Engine eng(2, {}, 31);
  Domain<SimPlatform> dom(2, options_for(Policy::kHazardPointer, /*scan=*/1));
  Padded<SimShared<u64>> cell;
  Padded<SimShared<u32>> protected_flag;
  CanaryNode* victim = nullptr;
  eng.run([&](ProcId id) {
    if (id != 0) return;
    victim = make_node(7);
    cell.value.store(reinterpret_cast<u64>(victim));
  });
  eng.run([&](ProcId id) {
    if (id == 0) {
      Guard<SimPlatform> g(dom);
      const u64 w = g.protect(0, cell.value);
      auto* n = reinterpret_cast<CanaryNode*>(w);
      ASSERT_EQ(n, victim); // the writer waits on the flag, so no race here
      protected_flag.value.store(1);
      // The retirer runs scans while we hold the hazard.
      for (u32 i = 0; i < 32; ++i) {
        SimPlatform::delay(64);
        EXPECT_EQ(n->canary, kCanaryLive) << "freed under a published hazard";
      }
    } else {
      SimPlatform::spin_until(protected_flag.value, [](u32 v) { return v == 1; });
      cell.value.store(0); // unlink, then retire: every scan must skip it
      Guard<SimPlatform> g(dom);
      g.retire(victim, scribble_free);
      for (u32 i = 0; i < 8; ++i) {
        g.retire(make_node(100 + i), scribble_free); // threshold=1: scans run
        SimPlatform::delay(32);
      }
    }
  });
  EXPECT_EQ(victim->canary, kCanaryLive) << "reclaimed before quiescence";
  dom.flush(); // guards are gone: the hazard is clear, the free lands now
  EXPECT_EQ(dom.stats().in_limbo, 0u);
  EXPECT_EQ(counting.allocated, counting.freed);
  EXPECT_EQ(counting.double_frees, 0u);
  g_counting = nullptr;
}

// ---- EBR-specific: a pinned reader blocks the epoch from advancing far
// enough to free anything retired during its critical section.

TEST(ReclaimEpoch, PinnedReaderBlocksReclamation) {
  Counting counting;
  g_counting = &counting;
  sim::Engine eng(2, {}, 41);
  Domain<SimPlatform> dom(2, options_for(Policy::kEpoch, /*scan=*/1));
  Padded<SimShared<u64>> cell;
  Padded<SimShared<u32>> pinned_flag;
  eng.run([&](ProcId id) {
    if (id != 0) return;
    cell.value.store(reinterpret_cast<u64>(make_node(9)));
  });
  eng.run([&](ProcId id) {
    if (id == 0) {
      Guard<SimPlatform> g(dom); // pin
      auto* n = reinterpret_cast<CanaryNode*>(cell.value.load());
      ASSERT_NE(n, nullptr); // the writer waits on the flag, so no race here
      pinned_flag.value.store(1);
      for (u32 i = 0; i < 32; ++i) {
        SimPlatform::delay(64);
        EXPECT_EQ(n->canary, kCanaryLive) << "freed under a pinned reader";
      }
    } else {
      SimPlatform::spin_until(pinned_flag.value, [](u32 v) { return v == 1; });
      auto* old = reinterpret_cast<CanaryNode*>(cell.value.exchange(0));
      Guard<SimPlatform> g(dom);
      g.retire(old, scribble_free);
      for (u32 i = 0; i < 8; ++i) {
        g.retire(make_node(200 + i), scribble_free); // drives try_advance
        SimPlatform::delay(32);
      }
    }
  });
  dom.flush(); // unpinned: epochs advance freely, limbo drains
  EXPECT_EQ(dom.stats().in_limbo, 0u);
  EXPECT_EQ(counting.allocated, counting.freed);
  EXPECT_EQ(counting.double_frees, 0u);
  g_counting = nullptr;
}

// ---- Race-detector negative control (ISSUE satellite 3). The hazard
// handshake needs seq_cst on all four accesses (hazard.hpp); this fixture
// publishes and scans the hazard word with relaxed accesses. The detector
// rebuilds happens-before from the declarations alone, so the concurrent
// relaxed store (reader) and load (scanner) of the hazard word are
// unordered and must be reported.

sim::MachineParams race_params() {
  sim::MachineParams m;
  m.race_detect = true;
  return m;
}

TEST(ReclaimRaceDetection, UnderAnnotatedHazardHandshakeIsFlagged) {
  sim::Engine eng(2, race_params(), 53);
  Padded<SimShared<u64>> hazard_slot;
  Padded<SimShared<u64>> cell;
  cell.value.store_relaxed(0x1000); // pre-run: no readers yet
  eng.run([&](ProcId id) {
    if (id == 0) {
      for (u32 i = 0; i < 8; ++i) {
        // BROKEN protect: relaxed publish + relaxed validate.
        const u64 w = cell.value.load_relaxed();
        hazard_slot.value.store_relaxed(w);
        (void)cell.value.load_relaxed();
        SimPlatform::delay(8);
        hazard_slot.value.store_relaxed(0);
      }
    } else {
      for (u32 i = 0; i < 8; ++i) {
        // BROKEN scan: relaxed read of the hazard word.
        (void)hazard_slot.value.load_relaxed();
        SimPlatform::delay(8);
      }
    }
  });
  ASSERT_NE(eng.race_detector(), nullptr);
  EXPECT_GT(eng.race_detector()->race_count(), 0u)
      << "the under-annotated handshake must be reported";
}

TEST(ReclaimRaceDetection, SeqCstHazardHandshakeIsClean) {
  // The real protocol, end to end through Domain/Guard, under the detector:
  // the seq_cst contract declared in hazard.hpp must satisfy it.
  Counting counting;
  g_counting = &counting;
  sim::Engine eng(4, race_params(), 59);
  Domain<SimPlatform> dom(4, options_for(Policy::kHazardPointer, /*scan=*/2));
  std::vector<Padded<SimShared<u64>>> cells(2);
  eng.run([&](ProcId id) {
    if (id != 0) return;
    for (auto& c : cells) c.value.store(reinterpret_cast<u64>(make_node(1)));
  });
  eng.run([&](ProcId id) {
    for (u32 i = 0; i < 24; ++i) {
      const u32 c = static_cast<u32>(SimPlatform::rnd(cells.size()));
      Guard<SimPlatform> g(dom);
      const u64 w = g.protect(0, cells[c].value);
      auto* n = reinterpret_cast<CanaryNode*>(w);
      ASSERT_EQ(n->canary, kCanaryLive);
      if (SimPlatform::flip()) {
        CanaryNode* fresh = make_node((static_cast<u64>(id) << 32) | i);
        u64 expect = w;
        if (cells[c].value.compare_exchange(expect, reinterpret_cast<u64>(fresh)))
          g.retire(n, scribble_free);
        else
          scribble_free(fresh);
      }
    }
  });
  eng.run([&](ProcId id) {
    if (id != 0) return;
    for (auto& c : cells) scribble_free(reinterpret_cast<CanaryNode*>(c.value.load()));
  });
  dom.flush();
  ASSERT_NE(eng.race_detector(), nullptr);
  EXPECT_EQ(eng.race_detector()->race_count(), 0u)
      << to_string(eng.race_detector()->races()[0]);
  EXPECT_EQ(counting.allocated, counting.freed);
  g_counting = nullptr;
}

} // namespace
} // namespace fpq
