// Native reclamation tests: reclaim::Domain over std::atomic and real
// threads, with real frees — the suite the sanitizer builds (ASan for
// use-after-free/leaks, TSan for the seq_cst handshake) validate via
// `ctest -L reclaim-native`. The scenarios mirror tests/test_reclaim.cpp;
// the canary checks catch what a sanitizer-less build would miss, and the
// plain `delete` inside the counting deleter is what ASan instruments.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <vector>

#include "common/padded.hpp"
#include "platform/native.hpp"
#include "pq/lockfree_skiplist_pq.hpp"
#include "reclaim/reclaim.hpp"

namespace fpq {
namespace {

using reclaim::Domain;
using reclaim::DomainOptions;
using reclaim::Guard;
using reclaim::Policy;

constexpr u64 kCanaryLive = 0xC0FFEE5A11ADull;
constexpr u64 kCanaryDead = 0xDEADDEADDEADDEADull;

struct CanaryNode {
  u64 canary = kCanaryLive;
  u64 payload = 0;
};

std::atomic<u64> g_allocated{0};
std::atomic<u64> g_freed{0};

CanaryNode* make_node(u64 payload) {
  g_allocated.fetch_add(1, std::memory_order_relaxed);
  CanaryNode* n = new CanaryNode;
  n->payload = payload;
  return n;
}

void scribble_free(void* p) {
  auto* n = static_cast<CanaryNode*>(p);
  ASSERT_NE(n->canary, kCanaryDead) << "double free";
  n->canary = kCanaryDead;
  g_freed.fetch_add(1, std::memory_order_relaxed);
  delete n;
}

DomainOptions options_for(Policy p) {
  DomainOptions o;
  o.policy = p;
  o.slots_per_proc = 2;
  o.scan_threshold = 8;
  return o;
}

class NativeReclaim : public ::testing::TestWithParam<Policy> {
 protected:
  void SetUp() override {
    g_allocated.store(0);
    g_freed.store(0);
  }
};

TEST_P(NativeReclaim, SwapAndChaseTorture) {
  constexpr u32 kThreads = 4;
  constexpr u32 kCells = 4;
  constexpr u32 kOps = 4000;
  Domain<NativePlatform> dom(kThreads, options_for(GetParam()));
  std::vector<Padded<NativeShared<u64>>> cells(kCells);
  for (u32 c = 0; c < kCells; ++c)
    cells[c].value.store(reinterpret_cast<u64>(make_node(c)));
  std::atomic<u64> canary_violations{0};
  NativePlatform::run(kThreads, [&](ProcId id) {
    for (u32 i = 0; i < kOps; ++i) {
      const u32 c = static_cast<u32>(NativePlatform::rnd(kCells));
      Guard<NativePlatform> g(dom);
      const u64 w = g.protect(0, cells[c].value);
      auto* n = reinterpret_cast<CanaryNode*>(w);
      // ASan turns a stale pointer here into a hard use-after-free report;
      // without sanitizers the scribble check still catches it.
      if (n->canary != kCanaryLive)
        canary_violations.fetch_add(1, std::memory_order_relaxed);
      if ((i & 3) == 0) {
        CanaryNode* fresh = make_node((static_cast<u64>(id) << 32) | i);
        u64 expect = w;
        if (cells[c].value.compare_exchange(expect, reinterpret_cast<u64>(fresh)))
          g.retire(n, scribble_free);
        else
          scribble_free(fresh); // never published
      }
    }
  });
  for (u32 c = 0; c < kCells; ++c)
    scribble_free(reinterpret_cast<CanaryNode*>(cells[c].value.load()));
  dom.flush();
  EXPECT_EQ(canary_violations.load(), 0u);
  EXPECT_EQ(dom.stats().in_limbo, 0u);
  EXPECT_EQ(g_allocated.load(), g_freed.load());
}

INSTANTIATE_TEST_SUITE_P(Policies, NativeReclaim,
                         ::testing::Values(Policy::kHazardPointer, Policy::kEpoch),
                         [](const ::testing::TestParamInfo<Policy>& i) {
                           return std::string(reclaim::to_string(i.param)) == "hp"
                                      ? "Hp"
                                      : "Ebr";
                         });

// End-to-end: the lock-free skiplist reclaiming for real under threads.
// Conservation doubles as the use-after-free probe — a node freed while a
// traversal holds it corrupts keys/items, which breaks the multiset match.
class NativeSkiplistReclaim : public ::testing::TestWithParam<Policy> {};

TEST_P(NativeSkiplistReclaim, MixedLoadReclaimsAndConserves) {
  constexpr u32 kThreads = 4;
  constexpr u32 kPrios = 16;
  PqParams params{.npriorities = kPrios, .maxprocs = kThreads};
  params.reclaim_policy = GetParam();
  LockfreeSkipListPq<NativePlatform> pq(params);
  std::vector<std::vector<Entry>> ins(kThreads), del(kThreads);
  NativePlatform::run(kThreads, [&](ProcId id) {
    for (u32 i = 0; i < 3000; ++i) {
      if (NativePlatform::rnd(100) < 60) {
        const Entry e{static_cast<Prio>(NativePlatform::rnd(kPrios)),
                      (static_cast<u64>(id) << 32) | i};
        ASSERT_TRUE(pq.insert(e.prio, e.item));
        ins[id].push_back(e);
      } else if (auto e = pq.delete_min()) {
        del[id].push_back(*e);
      }
    }
  });
  std::vector<Entry> all_in, all_out;
  for (auto& v : ins) all_in.insert(all_in.end(), v.begin(), v.end());
  for (auto& v : del) all_out.insert(all_out.end(), v.begin(), v.end());
  // Quiescent drain; adopt a processor identity for the guard machinery.
  NativePlatform::adopt(0, kThreads, 99);
  while (auto e = pq.delete_min()) all_out.push_back(*e);
  NativePlatform::release();
  ASSERT_EQ(all_in.size(), all_out.size());
  auto key = [](const Entry& e) { return (static_cast<u64>(e.prio) << 48) | e.item; };
  std::vector<u64> a, b;
  for (const Entry& e : all_in) a.push_back(key(e));
  for (const Entry& e : all_out) b.push_back(key(e));
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
  // The mixed load crossed the restructure bound many times over: physical
  // reclamation must actually have happened, not just been deferred.
  const reclaim::DomainStats s = pq.reclaim_stats();
  EXPECT_GT(s.retired, 0u);
  EXPECT_GT(s.reclaimed, 0u);
}

INSTANTIATE_TEST_SUITE_P(Policies, NativeSkiplistReclaim,
                         ::testing::Values(Policy::kHazardPointer, Policy::kEpoch),
                         [](const ::testing::TestParamInfo<Policy>& i) {
                           return std::string(reclaim::to_string(i.param)) == "hp"
                                      ? "Hp"
                                      : "Ebr";
                         });

} // namespace
} // namespace fpq
