// The DPOR model checker (src/sim/explore.hpp) on the unmutated tree:
// the litmus configs shared with the seeded-bug corpus must explore to
// completion (no budget hit, no bound pruning) with zero oracle
// violations; exploration must be deterministic run-to-run; a seeded
// AB-BA deadlock must be caught; and the stress harness's exhaustive
// policy must round-trip replay specs without disturbing pre-existing
// lines.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <vector>

#include "dpor_litmus.hpp"
#include "pq/pq.hpp"
#include "verify/stress.hpp"

namespace fpq {
namespace {

using dpor_litmus::explore_funnel_counter;
using dpor_litmus::explore_funnel_stack;
using dpor_litmus::explore_hazard;
using dpor_litmus::explore_mcs;
using dpor_litmus::explore_reactive;
using verify::spec_from_line;
using verify::StressSpec;
using verify::to_line;

void expect_clean_and_complete(const sim::ExploreOutcome& out) {
  EXPECT_FALSE(out.violation) << "execution " << out.violating_exec << ": "
                              << out.diagnostic;
  EXPECT_TRUE(out.stats.complete()) << sim::to_string(out.stats);
  EXPECT_GT(out.stats.executions, 1u)
      << "a one-execution exploration means the litmus has no concurrency";
}

// ---- Acceptance configs: these exact scenarios are re-run, mutated, by
// test_dpor_corpus.cpp. Completion here is what makes corpus detection
// meaningful.

TEST(DporLitmus, FunnelCounterExchangeCompletesClean) {
  expect_clean_and_complete(explore_funnel_counter(FunnelProtocol::kExchange, 2, 1));
}

TEST(DporLitmus, FunnelCounterAggregateCompletesClean) {
  expect_clean_and_complete(explore_funnel_counter(FunnelProtocol::kAggregate, 2, 2));
}

TEST(DporLitmus, FunnelStackCompletesClean) {
  expect_clean_and_complete(explore_funnel_stack(2));
}

TEST(DporLitmus, McsHandoffThreeProcsCompletesClean) {
  expect_clean_and_complete(explore_mcs(3));
}

// The reactive and hazard litmuses are the corpus baselines for the other
// two mutations. Reactive's mode-switch drain contains a pause-spin, so
// its schedule space is the largest here; it must still be clean within
// the default budgets (and is expected to complete — see EXPERIMENTS.md).
TEST(DporLitmus, ReactiveCounterUnmutatedClean) {
  expect_clean_and_complete(explore_reactive(2, 1));
}

// A preemption bound must prune honestly: fewer executions than the full
// exploration, the skipped candidates counted, and the qualification flag
// raised so a clean result is never mistaken for a proof.
TEST(DporLitmus, PreemptionBoundPrunesHonestly) {
  const auto full = explore_reactive(2, 1);
  sim::ExploreParams ep;
  ep.preempt_bound = 3;
  const auto bounded = explore_reactive(2, 1, ep);
  EXPECT_FALSE(bounded.violation) << bounded.diagnostic;
  EXPECT_TRUE(bounded.stats.preempt_bound_hit) << sim::to_string(bounded.stats);
  EXPECT_FALSE(bounded.stats.complete());
  EXPECT_GT(bounded.stats.bound_skipped, 0u);
  EXPECT_LT(bounded.stats.executions, full.stats.executions)
      << "bounded: " << sim::to_string(bounded.stats)
      << " full: " << sim::to_string(full.stats);
}

TEST(DporLitmus, HazardHandshakeUnmutatedClean) {
  expect_clean_and_complete(explore_hazard());
}

// ---- Determinism: two back-to-back explorations of the same scenario
// must make identical scheduling decisions (same execution count, same
// pruning, same depth). This is what makes a replay spec's trace index
// meaningful.
TEST(DporLitmus, ExplorationIsDeterministic) {
  for (auto proto : {FunnelProtocol::kExchange, FunnelProtocol::kAggregate}) {
    const auto a = explore_funnel_counter(proto, 2, 2);
    const auto b = explore_funnel_counter(proto, 2, 2);
    EXPECT_EQ(sim::to_string(a.stats), sim::to_string(b.stats));
    EXPECT_EQ(a.violation, b.violation);
    EXPECT_EQ(a.violating_exec, b.violating_exec);
  }
}

// ---- Positive controls on a textbook AB-BA lock cycle. With the full
// oracle stack, the lock-order checker convicts the *first* execution —
// the inversion is visible in every schedule, deadlocking or not. With
// the detector oracle muted, the explorer must keep searching until it
// builds an actually-deadlocking schedule and report that instead of
// aborting the engine.

sim::ExploreOutcome explore_abba(bool consult_detector) {
  return sim::explore_all(
      2, dpor_litmus::litmus_machine(), /*seed=*/1, {},
      [&](sim::Engine& eng, std::string& diag) {
        McsLock<SimPlatform> a(2);
        McsLock<SimPlatform> b(2);
        eng.run([&](ProcId id) {
          if (id == 0) {
            McsGuard<SimPlatform> ga(a);
            McsGuard<SimPlatform> gb(b);
          } else {
            McsGuard<SimPlatform> gb(b);
            McsGuard<SimPlatform> ga(a);
          }
        });
        if (eng.explorer()->deadlocked()) return false;
        if (consult_detector) {
          diag = dpor_litmus::detector_findings(eng);
          return diag.empty();
        }
        return true;
      });
}

TEST(DporLitmus, LockOrderOracleConvictsAbbaFirst) {
  const auto out = explore_abba(/*consult_detector=*/true);
  ASSERT_TRUE(out.violation) << sim::to_string(out.stats);
  EXPECT_NE(out.diagnostic.find("lock-order"), std::string::npos) << out.diagnostic;
}

TEST(DporLitmus, CatchesAbbaDeadlock) {
  const auto out = explore_abba(/*consult_detector=*/false);
  ASSERT_TRUE(out.violation) << sim::to_string(out.stats);
  EXPECT_TRUE(out.stats.deadlock) << out.diagnostic;
  EXPECT_NE(out.diagnostic.find("deadlock"), std::string::npos) << out.diagnostic;
}

// ---- Harness integration: a full stress scenario (mixed phase, drain,
// conservation + linearizability oracles) explored exhaustively.

StressSpec tiny_exhaustive_spec() {
  StressSpec s;
  s.algo = Algorithm::kSingleLock;
  s.policy = sim::SchedulePolicy::kExhaustive;
  s.seed = 1;
  s.nprocs = 2;
  s.ops_per_proc = 1;
  s.npriorities = 2;
  s.check_lin = true;
  return s;
}

TEST(DporHarness, SingleLockScenarioExploresClean) {
  const auto r = verify::run_exhaustive(tiny_exhaustive_spec());
  EXPECT_FALSE(r.failure.has_value()) << verify::format_failure(*r.failure);
  EXPECT_TRUE(r.stats.complete()) << sim::to_string(r.stats);
  EXPECT_GT(r.stats.executions, 1u);
}

// ---- Replay-spec grammar: the exhaustive keys round-trip, `schedule=`
// is accepted as an alias for `policy=`, and non-exhaustive lines are
// byte-identical to the pre-existing grammar (no new keys leak in).

TEST(DporHarness, ExhaustiveSpecRoundTrips) {
  StressSpec s = tiny_exhaustive_spec();
  s.preempt_bound = 3;
  s.max_execs = 4096;
  s.trace = 17;
  const std::string line = to_line(s);
  EXPECT_NE(line.find("policy=exhaustive"), std::string::npos) << line;
  EXPECT_NE(line.find("preempt_bound=3"), std::string::npos) << line;
  EXPECT_NE(line.find("max_execs=4096"), std::string::npos) << line;
  EXPECT_NE(line.find("trace=17"), std::string::npos) << line;

  const StressSpec r = spec_from_line(line);
  EXPECT_EQ(to_line(r), line);
  EXPECT_EQ(r.preempt_bound, 3u);
  EXPECT_EQ(r.max_execs, 4096u);
  EXPECT_EQ(r.trace, 17u);

  // trace= is informational and omitted while zero.
  s.trace = 0;
  EXPECT_EQ(to_line(s).find("trace="), std::string::npos) << to_line(s);

  // `schedule=` parses as an alias for `policy=`.
  std::string aliased = line;
  aliased.replace(aliased.find("policy="), 7, "schedule=");
  EXPECT_EQ(to_line(spec_from_line(aliased)), line);
}

TEST(DporHarness, PreexistingReplayLinesStayByteIdentical) {
  StressSpec s; // default policy: kSmallestClock
  const std::string line = to_line(s);
  EXPECT_EQ(line.find("preempt_bound"), std::string::npos) << line;
  EXPECT_EQ(line.find("max_execs"), std::string::npos) << line;
  EXPECT_EQ(line.find("trace"), std::string::npos) << line;
  EXPECT_EQ(to_line(spec_from_line(line)), line);
}

// ---- The injected bug the exhaustive harness must catch: one bin of
// SimpleLinear with the lock dropped (the same seeded fault the random
// policies hunt in test_stress.cpp, here shrunk to a 2x1-op scenario so
// only systematic exploration is doing the finding). Minimization under
// kExhaustive re-explores per shrink probe and must be deterministic.

class UnlockedBinQueue final : public IPriorityQueue<SimPlatform> {
 public:
  explicit UnlockedBinQueue(const PqParams& params)
      : npriorities_(params.npriorities), bins_(params.npriorities) {
    for (auto& b : bins_) b = std::make_unique<Bin>(params.bin_capacity);
  }

  bool insert(Prio prio, Item item) override {
    Bin& b = *bins_[prio];
    const u64 n = b.size.load(); // racy: no lock around load..store
    if (n >= b.elems.size()) return false;
    b.elems[n].store(item);
    b.size.store(n + 1);
    return true;
  }

  std::optional<Entry> delete_min() override {
    for (Prio p = 0; p < npriorities_; ++p) {
      Bin& b = *bins_[p];
      const u64 n = b.size.load();
      if (n == 0) continue;
      const Item e = b.elems[n - 1].load();
      b.size.store(n - 1);
      return Entry{p, e};
    }
    return std::nullopt;
  }

  u32 insert_batch(std::span<const Entry> entries) override {
    u32 accepted = 0;
    for (const Entry& e : entries)
      if (insert(e.prio, e.item)) ++accepted;
    return accepted;
  }

  u32 delete_min_batch(std::span<Entry> out) override {
    u32 got = 0;
    for (Entry& slot : out) {
      auto e = delete_min();
      if (!e) break;
      slot = *e;
      ++got;
    }
    return got;
  }

  PqStatus try_insert(Prio prio, Item item, const TryBudget&) override {
    return insert(prio, item) ? PqStatus::kOk : PqStatus::kTimeout;
  }
  PqStatus try_delete_min(Entry& out, const TryBudget&) override {
    auto e = delete_min();
    if (!e) return PqStatus::kEmpty;
    out = *e;
    return PqStatus::kOk;
  }
  u32 npriorities() const override { return npriorities_; }

 private:
  struct Bin {
    explicit Bin(u32 capacity) : elems(capacity) {}
    SimShared<u64> size{0};
    std::vector<SimShared<u64>> elems;
  };
  u32 npriorities_;
  std::vector<std::unique_ptr<Bin>> bins_;
};

verify::QueueFactory unlocked_factory() {
  return [](const PqParams& p) { return std::make_unique<UnlockedBinQueue>(p); };
}

verify::ExhaustiveResult hunt_unlocked_bin_exhaustively() {
  StressSpec s;
  s.algo = Algorithm::kSimpleLinear; // label for the dump; factory overrides
  s.policy = sim::SchedulePolicy::kExhaustive;
  s.nprocs = 2;
  s.ops_per_proc = 1;
  s.npriorities = 1;
  s.insert_percent = 100; // both ops insert into the one racy bin
  for (u64 seed = 1; seed <= 4; ++seed) {
    s.seed = seed;
    auto r = verify::run_exhaustive_with(unlocked_factory(), s,
                                         verify::ScenarioChecks{});
    if (r.failure.has_value()) return r;
  }
  return {};
}

TEST(DporHarness, CatchesDroppedBinLockSystematically) {
  const auto r = hunt_unlocked_bin_exhaustively();
  ASSERT_TRUE(r.failure.has_value())
      << "two racing 1-op inserts survived exhaustive exploration: "
      << sim::to_string(r.stats);
  EXPECT_EQ(r.failure->kind, "conservation");
  EXPECT_EQ(r.failure->spec.trace, r.failing_exec);
  const std::string line = to_line(r.failure->spec);
  EXPECT_NE(line.find("trace="), std::string::npos) << line;
}

TEST(DporHarness, MinimizerIsDeterministicUnderExhaustive) {
  const auto found = hunt_unlocked_bin_exhaustively();
  ASSERT_TRUE(found.failure.has_value());
  const verify::StressFailure a =
      verify::minimize_with(unlocked_factory(), *found.failure, verify::ScenarioChecks{});
  const verify::StressFailure b =
      verify::minimize_with(unlocked_factory(), *found.failure, verify::ScenarioChecks{});
  EXPECT_EQ(to_line(a.spec), to_line(b.spec));
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.trace.size(), b.trace.size());

  // The minimized line replays to the same failure from scratch.
  const auto again = verify::run_exhaustive_with(
      unlocked_factory(), spec_from_line(to_line(a.spec)), verify::ScenarioChecks{});
  ASSERT_TRUE(again.failure.has_value()) << "minimized counterexample did not replay";
  EXPECT_EQ(again.failure->kind, a.kind);
}

} // namespace
} // namespace fpq
