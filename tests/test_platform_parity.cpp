// Differential testing across backends: the same single-processor
// operation sequence must produce identical results on SimPlatform and
// NativePlatform — the Platform policy must not leak into semantics.
#include <gtest/gtest.h>

#include <vector>

#include "core/registry.hpp"
#include "platform/native.hpp"
#include "platform/sim.hpp"

namespace fpq {
namespace {

struct Op {
  bool insert;
  Prio prio;
  Item item;
};

std::vector<Op> script(u32 npriorities, u64 seed, u32 n) {
  std::vector<Op> ops;
  Xorshift rng(seed);
  for (u32 i = 0; i < n; ++i)
    ops.push_back({rng.below(100) < 60, static_cast<Prio>(rng.below(npriorities)),
                   1000 + i});
  return ops;
}

struct Outcome {
  bool present;
  Entry entry;
  friend bool operator==(const Outcome&, const Outcome&) = default;
};

template <Platform P>
std::vector<Outcome> run_script(Algorithm algo, const std::vector<Op>& ops) {
  PqParams params{.npriorities = 32, .maxprocs = 1};
  params.seed = 7; // fixed so SkipList levels agree across backends
  auto pq = make_priority_queue<P>(algo, params);
  std::vector<Outcome> out;
  P::run(1, [&](ProcId) {
    for (const Op& op : ops) {
      if (op.insert) {
        ASSERT_TRUE(pq->insert(op.prio, op.item));
      } else {
        const auto e = pq->delete_min();
        out.push_back({e.has_value(), e.value_or(Entry{})});
      }
    }
    while (auto e = pq->delete_min()) out.push_back({true, *e});
  });
  return out;
}

class PlatformParity : public ::testing::TestWithParam<Algorithm> {};

TEST_P(PlatformParity, SequentialRunsAgreeAcrossBackends) {
  const Algorithm algo = GetParam();
  for (u64 seed : {1ull, 2ull, 3ull}) {
    const auto ops = script(32, seed, 300);
    const auto sim_out = run_script<SimPlatform>(algo, ops);
    const auto native_out = run_script<NativePlatform>(algo, ops);
    ASSERT_EQ(sim_out.size(), native_out.size()) << "seed " << seed;
    for (std::size_t i = 0; i < sim_out.size(); ++i) {
      EXPECT_EQ(sim_out[i], native_out[i])
          << to_string(algo) << " diverged at op " << i << " (seed " << seed << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllAlgos, PlatformParity, ::testing::ValuesIn(all_algorithms()),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

} // namespace
} // namespace fpq
