// Tests of the sharded relaxed "PQ of PQs" composite (pq/sharded_pq.hpp,
// pq/shard_policy.hpp) and its rank-error quality metric
// (verify/rank_error.hpp): metric unit tests (including overlap borrowing
// and conservation bugs), policy/config plumbing, the adaptive monitor's
// hysteresis, exactness where the design promises it (sequential c == K,
// same-key histories), bounded relaxation when c < K, and the stress
// harness's replay-spec round trip for the sharded knobs.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "platform/sim.hpp"
#include "pq/shard_policy.hpp"
#include "verify/history.hpp"
#include "verify/model_pq.hpp"
#include "verify/quiescent.hpp"
#include "verify/rank_error.hpp"
#include "verify/stress.hpp"

namespace fpq {
namespace {

// ---- Rank-error metric unit tests (synthetic histories).

OpRecord ins(Cycles t, Prio p, Item v) {
  return OpRecord::insert_op(0, t, t + 1, Entry{p, v});
}
OpRecord del(Cycles t, Prio p, Item v) {
  return OpRecord::delete_op(0, t, t + 1, Entry{p, v});
}
OpRecord del_empty(Cycles t) { return OpRecord::delete_op(0, t, t + 1, std::nullopt); }

TEST(RankError, ExactHistoryScoresAllZero) {
  const History h{ins(1, 5, 10), ins(2, 3, 11), del(3, 3, 11), del(4, 5, 10),
                  del_empty(5)};
  const auto r = compute_rank_error(h);
  EXPECT_EQ(r.deletes, 2u);
  EXPECT_EQ(r.empties, 1u);
  EXPECT_EQ(r.unmatched, 0u);
  EXPECT_EQ(r.nonzero, 0u);
  EXPECT_EQ(r.max, 0u);
  EXPECT_EQ(r.mean, 0.0);
  EXPECT_EQ(r.p99, 0.0);
  EXPECT_TRUE(r.exact());
}

TEST(RankError, SkippedMinimaAreCounted) {
  // Delete the worst of three while two strictly better entries sit in the
  // model: rank error 2 for that op, 0 for the exact tail.
  const History h{ins(1, 1, 1), ins(2, 2, 2), ins(3, 3, 3),
                  del(4, 3, 3), del(5, 1, 1), del(6, 2, 2)};
  const auto r = compute_rank_error(h);
  EXPECT_EQ(r.deletes, 3u);
  EXPECT_EQ(r.nonzero, 1u);
  EXPECT_EQ(r.max, 2u);
  EXPECT_DOUBLE_EQ(r.mean, 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(r.p99, 2.0); // n=3: p99 is the max
  EXPECT_FALSE(r.exact());
}

TEST(RankError, OverlappingDeleteBorrowsAgainstLaterInsert) {
  // The delete is *invoked* before the insert that produced its entry —
  // legal under concurrency (the ops overlapped). The replay borrows the
  // entry from the future insert instead of reporting a conservation bug.
  const History h{del(1, 4, 7), ins(2, 4, 7)};
  const auto r = compute_rank_error(h);
  EXPECT_EQ(r.deletes, 1u);
  EXPECT_EQ(r.unmatched, 0u);
  EXPECT_TRUE(r.exact());
}

TEST(RankError, NeverInsertedEntryIsUnmatched) {
  const History h{ins(1, 2, 1), del(2, 2, 1), del(3, 6, 99)};
  const auto r = compute_rank_error(h);
  EXPECT_EQ(r.unmatched, 1u);
  EXPECT_FALSE(r.exact());
}

// ---- Policy and placement plumbing.

TEST(ShardPolicy, NamesRoundTrip) {
  for (ShardPolicyKind k : {ShardPolicyKind::kDirect, ShardPolicyKind::kDelegate,
                            ShardPolicyKind::kAdaptive}) {
    ShardPolicyKind back = ShardPolicyKind::kAdaptive;
    ASSERT_TRUE(shard_policy_from_string(to_string(k), back)) << to_string(k);
    EXPECT_EQ(back, k);
  }
  ShardPolicyKind out = ShardPolicyKind::kDirect;
  EXPECT_FALSE(shard_policy_from_string("bogus", out));
  EXPECT_EQ(out, ShardPolicyKind::kDirect); // untouched on failure
}

TEST(ShardPolicy, EffectiveShardsAndSample) {
  ShardConfig auto_cfg; // shards=0, sample_c=0
  EXPECT_EQ(auto_cfg.effective_shards(1), 1u);
  EXPECT_EQ(auto_cfg.effective_shards(4), 2u);
  EXPECT_EQ(auto_cfg.effective_shards(16), 8u);
  EXPECT_EQ(auto_cfg.effective_shards(256), 8u); // auto clamps at 8
  ShardConfig fixed{.shards = 5, .sample_c = 2};
  EXPECT_EQ(fixed.effective_shards(64), 5u);
  EXPECT_EQ(fixed.effective_sample(5), 2u);
  EXPECT_EQ(auto_cfg.effective_sample(8), 8u);   // 0 = all
  ShardConfig wide{.shards = 4, .sample_c = 99}; // oversized = all
  EXPECT_EQ(wide.effective_sample(4), 4u);
}

TEST(ShardPolicy, HomeShardPartitionsContiguousBlocks) {
  const u32 maxprocs = 16, nshards = 4;
  u32 prev = 0;
  std::set<u32> seen;
  for (ProcId p = 0; p < maxprocs; ++p) {
    const u32 s = home_shard(p, maxprocs, nshards);
    ASSERT_LT(s, nshards);
    ASSERT_GE(s, prev) << "blocks must be contiguous in proc id";
    prev = s;
    seen.insert(s);
  }
  EXPECT_EQ(seen.size(), nshards); // every shard gets a home block
  // Block sizes are balanced: 16/4 = 4 procs each.
  EXPECT_EQ(home_shard(3, maxprocs, nshards), 0u);
  EXPECT_EQ(home_shard(4, maxprocs, nshards), 1u);
}

TEST(ShardMonitor, AdaptiveHysteresisSwitchesBothWays) {
  using Mon = ShardMonitor<SimPlatform>;
  sim::Engine eng(1);
  eng.run([&](ProcId) {
    Mon m;
    EXPECT_FALSE(m.delegated());
    m.note_size(8); // occupied: delegation is worth considering
    // Saturated CAS-failure windows push the contention EWMA over kHi.
    for (u32 w = 0; w < 8 && !m.delegated(); ++w) {
      for (u32 i = 0; i < Mon::kWindowOps; ++i) {
        m.note_cas_fail();
        m.note_op(ShardPolicyKind::kAdaptive);
      }
    }
    EXPECT_TRUE(m.delegated());
    // Calm windows decay it back under kLo: mode returns to direct.
    for (u32 w = 0; w < 16 && m.delegated(); ++w)
      for (u32 i = 0; i < Mon::kWindowOps; ++i)
        m.note_op(ShardPolicyKind::kAdaptive);
    EXPECT_FALSE(m.delegated());
  });
}

TEST(ShardMonitor, PinnedPoliciesNeverSwitch) {
  using Mon = ShardMonitor<SimPlatform>;
  sim::Engine eng(1);
  eng.run([&](ProcId) {
    Mon m;
    m.note_size(8);
    for (u32 w = 0; w < 8; ++w) {
      for (u32 i = 0; i < Mon::kWindowOps; ++i) {
        m.note_cas_fail();
        m.note_op(ShardPolicyKind::kDirect); // contention, but policy pinned
      }
    }
    EXPECT_FALSE(m.delegated());
  });
}

// ---- Composite behavior through the registry.

std::unique_ptr<IPriorityQueue<SimPlatform>> make_sharded(u32 npriorities,
                                                          u32 maxprocs, u32 shards,
                                                          u32 sample_c,
                                                          ShardPolicyKind policy,
                                                          u64 seed = 7) {
  PqParams params{.npriorities = npriorities, .maxprocs = maxprocs,
                  .bin_capacity = 1u << 12};
  params.seed = seed;
  params.shard = ShardConfig{shards, sample_c, policy};
  return make_priority_queue<SimPlatform>(Algorithm::kSharded, params);
}

TEST(ShardedPq, SequentialExactWhenSamplingEveryShard) {
  // c == K and one processor: the composite must match the reference model
  // operation-for-operation — relaxation only enters via sampling (c < K)
  // or concurrent stash/backend perturbation, neither present here.
  auto pq = make_sharded(32, 1, 4, 0, ShardPolicyKind::kDirect);
  ModelPq model;
  sim::Engine eng(1, {}, 7);
  eng.run([&](ProcId) {
    Xorshift rng(7);
    for (u32 step = 0; step < 400; ++step) {
      if (rng.below(100) < 55) {
        const Prio p = static_cast<Prio>(rng.below(32));
        ASSERT_TRUE(pq->insert(p, 1000 + step));
        model.insert(p, 1000 + step);
      } else {
        const auto got = pq->delete_min();
        ASSERT_EQ(got.has_value(), model.min_priority().has_value()) << step;
        if (got) {
          EXPECT_EQ(got->prio, *model.min_priority()) << step;
          ASSERT_TRUE(model.remove(got->prio, got->item)) << step;
        }
      }
    }
    std::vector<Entry> drained;
    while (auto e = pq->delete_min()) drained.push_back(*e);
    const auto r = check_drain_sorted(drained);
    EXPECT_TRUE(r.ok) << r.diagnostic;
    while (auto e = model.delete_min()) ASSERT_FALSE(drained.empty());
  });
}

/// Concurrent mixed phase + solo drain, recording the merged history.
History run_recorded(IPriorityQueue<SimPlatform>& pq, u32 nprocs, u32 npriorities,
                     u32 ops_per_proc, u64 seed) {
  HistoryRecorder rec(nprocs);
  sim::Engine eng(nprocs, {}, seed);
  eng.run([&](ProcId id) {
    for (u32 i = 0; i < ops_per_proc; ++i) {
      SimPlatform::delay(SimPlatform::rnd(64));
      if (SimPlatform::rnd(100) < 60) {
        const Entry e{static_cast<Prio>(SimPlatform::rnd(npriorities)),
                      (static_cast<u64>(id) << 16) | i};
        if (pq.insert(e.prio, e.item))
          rec.record(OpRecord::insert_op(id, SimPlatform::now(), SimPlatform::now(), e));
      } else {
        const Cycles t0 = SimPlatform::now();
        const auto e = pq.delete_min();
        rec.record(OpRecord::delete_op(id, t0, SimPlatform::now(), e));
      }
    }
  });
  eng.run([&](ProcId id) {
    if (id != 0) return;
    for (;;) {
      const Cycles t0 = SimPlatform::now();
      const auto e = pq.delete_min();
      if (!e) break;
      rec.record(OpRecord::delete_op(0, t0, SimPlatform::now(), e));
    }
  });
  return rec.merged();
}

TEST(ShardedPq, SameKeyHistoryIsExactWhenSamplingEveryShard) {
  // The dedicated npriorities == 1 sweep: every entry shares the key, so a
  // rank error would require fabricating a strictly smaller priority —
  // with c == K the metric must come back exactly zero, and conservation
  // must hold (unmatched == 0).
  auto pq = make_sharded(1, 4, 4, 0, ShardPolicyKind::kAdaptive, 11);
  const History h = run_recorded(*pq, 4, 1, 40, 11);
  const auto r = compute_rank_error(h);
  EXPECT_GT(r.deletes, 0u);
  EXPECT_EQ(r.unmatched, 0u);
  EXPECT_EQ(r.nonzero, 0u);
  EXPECT_TRUE(r.exact());
}

TEST(ShardedPq, NarrowSampleIsBoundedRelaxationNotLoss) {
  // c = 1 of 4 shards, four processors inserting to distinct home shards:
  // delete-min may legally skip better entries (nonzero rank error), but
  // every entry is still conserved (unmatched == 0) and the error is
  // bounded by the live population, never fabricated.
  auto pq = make_sharded(64, 4, 4, 1, ShardPolicyKind::kDirect, 13);
  const History h = run_recorded(*pq, 4, 64, 60, 13);
  u64 inserts = 0;
  for (const auto& op : h)
    if (op.kind == OpRecord::Kind::kInsert) ++inserts;
  const auto r = compute_rank_error(h);
  EXPECT_GT(r.deletes, 0u);
  EXPECT_EQ(r.unmatched, 0u);
  EXPECT_LE(r.max, inserts); // bounded by what was ever live
  EXPECT_LE(r.p99, static_cast<double>(r.max));
}

TEST(ShardedPq, DelegationModeDrainsEverything) {
  // Forced delegation: every op goes through the combining slots + server
  // lock; conservation and same-key exactness must be unaffected.
  auto pq = make_sharded(1, 8, 4, 0, ShardPolicyKind::kDelegate, 17);
  const History h = run_recorded(*pq, 8, 1, 25, 17);
  const auto r = compute_rank_error(h);
  EXPECT_GT(r.deletes, 0u);
  EXPECT_EQ(r.unmatched, 0u);
  EXPECT_TRUE(r.exact());
}

// ---- Replay-spec round trip for the sharded knobs.

TEST(ShardedSpec, ReplayLineRoundTripsByteIdentical) {
  verify::StressSpec s;
  s.algo = Algorithm::kSharded;
  s.seed = 42;
  s.nprocs = 8;
  s.shards = 8;
  s.sample_c = 2;
  s.shard_mode = ShardPolicyKind::kDelegate;
  const std::string line = to_line(s);
  EXPECT_NE(line.find("shards=8"), std::string::npos) << line;
  EXPECT_NE(line.find(" c=2"), std::string::npos) << line;
  EXPECT_NE(line.find("mode=delegate"), std::string::npos) << line;
  const verify::StressSpec back = verify::spec_from_line(line);
  EXPECT_EQ(to_line(back), line); // byte-identical round trip
  EXPECT_EQ(back.shards, 8u);
  EXPECT_EQ(back.sample_c, 2u);
  EXPECT_EQ(back.shard_mode, ShardPolicyKind::kDelegate);
}

TEST(ShardedSpec, NonShardedLinesOmitShardKeys) {
  verify::StressSpec s; // kSingleLock default
  const std::string line = to_line(s);
  EXPECT_EQ(line.find("shards="), std::string::npos) << line;
  EXPECT_EQ(line.find("mode="), std::string::npos) << line;
  EXPECT_EQ(to_line(verify::spec_from_line(line)), line);
}

} // namespace
} // namespace fpq
