// Tests of the lock substrate: MCS mutual exclusion and FIFO handoff,
// TTAS, try-acquire semantics, backoff bounds — on the simulated machine
// (deterministic interleavings, 2..64 processors).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "platform/sim.hpp"
#include "sync/backoff.hpp"
#include "sync/mcs_lock.hpp"
#include "sync/ttas_lock.hpp"

namespace fpq {
namespace {

/// Critical-section checker: increments a non-atomic counter pair under the
/// lock; any mutual-exclusion violation desynchronizes the pair.
template <class LockT>
void hammer_lock(LockT& lock, u32 nprocs, u32 rounds, u64 seed) {
  auto a = std::make_unique<SimShared<u64>>(0);
  auto b = std::make_unique<SimShared<u64>>(0);
  auto max_in_cs = std::make_unique<SimShared<u64>>(0);
  auto in_cs = std::make_unique<SimShared<u64>>(0);
  sim::Engine eng(nprocs, {}, seed);
  eng.run([&](ProcId) {
    for (u32 i = 0; i < rounds; ++i) {
      SimPlatform::delay(SimPlatform::rnd(64));
      lock.acquire();
      const u64 n = in_cs->fetch_add(1) + 1;
      if (n > max_in_cs->load()) max_in_cs->store(n);
      const u64 va = a->load();
      SimPlatform::delay(SimPlatform::rnd(16));
      a->store(va + 1);
      b->store(b->load() + 1);
      in_cs->fetch_add(static_cast<u64>(-1));
      lock.release();
    }
  });
  EXPECT_EQ(max_in_cs->load(), 1u) << "mutual exclusion violated";
  EXPECT_EQ(a->load(), static_cast<u64>(nprocs) * rounds);
  EXPECT_EQ(b->load(), a->load());
}

class McsLockProcs : public ::testing::TestWithParam<u32> {};

TEST_P(McsLockProcs, MutualExclusionAndLossNone) {
  const u32 nprocs = GetParam();
  McsLock<SimPlatform> lock(nprocs);
  hammer_lock(lock, nprocs, 20, 11);
}

INSTANTIATE_TEST_SUITE_P(Sweep, McsLockProcs, ::testing::Values(2u, 3u, 8u, 32u, 64u));

class TtasLockProcs : public ::testing::TestWithParam<u32> {};

TEST_P(TtasLockProcs, MutualExclusionAndLossNone) {
  const u32 nprocs = GetParam();
  TtasLock<SimPlatform> lock;
  hammer_lock(lock, nprocs, 20, 13);
}

INSTANTIATE_TEST_SUITE_P(Sweep, TtasLockProcs, ::testing::Values(2u, 3u, 8u, 32u, 64u));

TEST(McsLock, HandoffIsFifo) {
  // Processors enqueue in a known order (serialized by delays); the lock
  // must be granted in that same order.
  const u32 n = 8;
  McsLock<SimPlatform> lock(n);
  auto hold = std::make_unique<SimShared<u64>>(0);
  std::vector<ProcId> grant_order;
  sim::Engine eng(n);
  eng.run([&](ProcId id) {
    if (id == 0) {
      lock.acquire();
      SimPlatform::delay(100000); // everyone queues up behind us, in id order
      grant_order.push_back(id);
      lock.release();
    } else {
      SimPlatform::delay(100 * id); // distinct, increasing enqueue times
      lock.acquire();
      grant_order.push_back(id);
      lock.release();
    }
    (void)hold;
  });
  ASSERT_EQ(grant_order.size(), n);
  for (u32 i = 0; i < n; ++i) EXPECT_EQ(grant_order[i], i) << "MCS handoff not FIFO";
}

TEST(McsLock, TryAcquireFailsWhenHeldSucceedsWhenFree) {
  McsLock<SimPlatform> lock(2);
  sim::Engine eng(2);
  eng.run([&](ProcId id) {
    if (id == 0) {
      lock.acquire();
      SimPlatform::delay(10000);
      lock.release();
    } else {
      SimPlatform::delay(1000); // while held
      EXPECT_FALSE(lock.try_acquire());
      SimPlatform::delay(100000); // after release
      EXPECT_TRUE(lock.try_acquire());
      lock.release();
    }
  });
}

TEST(McsLock, UncontendedAcquireIsCheap) {
  McsLock<SimPlatform> lock(1);
  sim::Engine eng(1);
  Cycles cost = 0;
  eng.run([&](ProcId) {
    lock.acquire();
    lock.release(); // warm the lines
    const Cycles t0 = SimPlatform::now();
    lock.acquire();
    lock.release();
    cost = SimPlatform::now() - t0;
  });
  EXPECT_LT(cost, 200u);
}

TEST(TtasLock, TryAcquire) {
  TtasLock<SimPlatform> lock;
  sim::Engine eng(1);
  eng.run([&](ProcId) {
    EXPECT_TRUE(lock.try_acquire());
    EXPECT_FALSE(lock.try_acquire());
    lock.release();
    EXPECT_TRUE(lock.try_acquire());
    lock.release();
  });
}

TEST(McsGuard, ReleasesOnScopeExit) {
  McsLock<SimPlatform> lock(1);
  sim::Engine eng(1);
  eng.run([&](ProcId) {
    { McsGuard<SimPlatform> g(lock); }
    EXPECT_TRUE(lock.try_acquire());
    lock.release();
  });
}

TEST(Backoff, DelaysAreBoundedAndGrow) {
  sim::Engine eng(1);
  eng.run([&](ProcId) {
    Backoff<SimPlatform> b(8, 64);
    Cycles prev = SimPlatform::now();
    Cycles max_step = 0;
    for (int i = 0; i < 10; ++i) {
      b.spin();
      const Cycles step = SimPlatform::now() - prev;
      prev = SimPlatform::now();
      EXPECT_GE(step, 1u);
      EXPECT_LE(step, 64u + 1u);
      max_step = std::max(max_step, step);
    }
    b.reset();
    // After reset the window is small again.
    b.spin();
    EXPECT_LE(SimPlatform::now() - prev, 8u + 1u);
  });
}

TEST(Locks, ManyLocksIndependent) {
  // Operations under different locks must not exclude each other: total
  // time for two disjoint lock users ~ max, not sum.
  McsLock<SimPlatform> l1(2), l2(2);
  sim::Engine eng(2);
  std::vector<Cycles> done(2);
  eng.run([&](ProcId id) {
    McsLock<SimPlatform>& l = id == 0 ? l1 : l2;
    for (int i = 0; i < 10; ++i) {
      McsGuard<SimPlatform> g(l);
      SimPlatform::delay(500);
    }
    done[id] = SimPlatform::now();
  });
  EXPECT_LT(std::max(done[0], done[1]), 12000u); // ~5000 each + overheads
}

} // namespace
} // namespace fpq
