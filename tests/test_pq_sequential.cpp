// Sequential conformance: each queue, driven by one processor, must match
// the reference ModelPq operation-for-operation (except SkipList, whose
// delete-bin scheme deliberately relaxes per-operation minimality — for it
// we check conservation and priority agreement at drain).
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "core/registry.hpp"
#include "platform/sim.hpp"
#include "verify/model_pq.hpp"
#include "verify/quiescent.hpp"

namespace fpq {
namespace {

struct SeqCase {
  Algorithm algo;
  u32 npriorities;
  u64 seed;
};

void PrintTo(const SeqCase& c, std::ostream* os) {
  *os << to_string(c.algo) << "_N" << c.npriorities << "_s" << c.seed;
}

class SequentialConformance : public ::testing::TestWithParam<SeqCase> {};

TEST_P(SequentialConformance, MatchesModelExactly) {
  const auto [algo, npriorities, seed] = GetParam();
  PqParams params{.npriorities = npriorities, .maxprocs = 1, .bin_capacity = 4096};
  params.seed = seed;
  auto pq = make_priority_queue<SimPlatform>(algo, params);
  ModelPq model;
  Xorshift rng(seed);
  const bool exact = algo != Algorithm::kSkipList;

  sim::Engine eng(1, {}, seed);
  eng.run([&](ProcId) {
    u64 inserted = 0, deleted_q = 0, deleted_m = 0;
    for (u32 step = 0; step < 400; ++step) {
      if (rng.below(100) < 55) {
        const Prio p = static_cast<Prio>(rng.below(npriorities));
        const Item v = 1000 + step;
        ASSERT_TRUE(pq->insert(p, v));
        model.insert(p, v);
        ++inserted;
      } else {
        const auto got = pq->delete_min();
        if (exact) {
          // Exact minimality: the returned priority must be the model's
          // minimum; the tie order among equal priorities is unspecified
          // (Appendix B footnote), so items are checked by membership.
          ASSERT_EQ(got.has_value(), model.min_priority().has_value())
              << "at step " << step;
          if (got) {
            EXPECT_EQ(got->prio, *model.min_priority()) << "at step " << step;
            ASSERT_TRUE(model.remove(got->prio, got->item)) << "at step " << step;
          }
        } else if (got) {
          // SkipList: whatever it returns must exist in the model.
          ASSERT_TRUE(model.remove(got->prio, got->item))
              << "SkipList returned an item that was never inserted/was "
                 "already deleted";
        }
        if (got) ++deleted_q;
      }
    }
    // Drain both and compare remaining content as multisets.
    std::vector<Entry> left_q, left_m;
    while (auto e = pq->delete_min()) left_q.push_back(*e);
    while (auto e = model.delete_min()) left_m.push_back(*e);
    EXPECT_TRUE(same_entries(left_q, left_m));
    (void)inserted;
    (void)deleted_m;
  });
}

std::vector<SeqCase> sequential_cases() {
  std::vector<SeqCase> cases;
  for (Algorithm a : all_algorithms()) {
    for (u32 n : {1u, 2u, 16u, 100u}) {
      cases.push_back({a, n, 7});
    }
    cases.push_back({a, 16, 99});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllAlgos, SequentialConformance,
                         ::testing::ValuesIn(sequential_cases()),
                         ::testing::PrintToStringParamName());

class DrainOrder : public ::testing::TestWithParam<Algorithm> {};

TEST_P(DrainOrder, FreshQueueDrainsSorted) {
  const Algorithm algo = GetParam();
  PqParams params{.npriorities = 64, .maxprocs = 1, .bin_capacity = 4096};
  auto pq = make_priority_queue<SimPlatform>(algo, params);
  sim::Engine eng(1, {}, 3);
  eng.run([&](ProcId) {
    Xorshift rng(5);
    for (u32 i = 0; i < 200; ++i)
      ASSERT_TRUE(pq->insert(static_cast<Prio>(rng.below(64)), i));
    std::vector<Entry> drained;
    while (auto e = pq->delete_min()) drained.push_back(*e);
    ASSERT_EQ(drained.size(), 200u);
    const auto r = check_drain_sorted(drained);
    EXPECT_TRUE(r.ok) << r.diagnostic;
  });
}

INSTANTIATE_TEST_SUITE_P(AllAlgos, DrainOrder, ::testing::ValuesIn(all_algorithms()),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

class EmptyBehavior : public ::testing::TestWithParam<Algorithm> {};

TEST_P(EmptyBehavior, DeleteMinOnEmptyIsNullopt) {
  PqParams params{.npriorities = 8, .maxprocs = 1};
  auto pq = make_priority_queue<SimPlatform>(GetParam(), params);
  sim::Engine eng(1);
  eng.run([&](ProcId) {
    EXPECT_FALSE(pq->delete_min().has_value());
    pq->insert(3, 42);
    auto e = pq->delete_min();
    ASSERT_TRUE(e.has_value());
    EXPECT_EQ(e->prio, 3u);
    EXPECT_EQ(e->item, 42u);
    EXPECT_FALSE(pq->delete_min().has_value());
    // And again after cycling (regression: state left by a delete must not
    // wedge the next insert).
    pq->insert(7, 1);
    pq->insert(0, 2);
    EXPECT_EQ(pq->delete_min()->prio, 0u);
    EXPECT_EQ(pq->delete_min()->prio, 7u);
    EXPECT_FALSE(pq->delete_min().has_value());
  });
}

INSTANTIATE_TEST_SUITE_P(AllAlgos, EmptyBehavior, ::testing::ValuesIn(all_algorithms()),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

class SinglePriority : public ::testing::TestWithParam<Algorithm> {};

TEST_P(SinglePriority, DegeneratesToAPool) {
  PqParams params{.npriorities = 1, .maxprocs = 1, .bin_capacity = 64};
  auto pq = make_priority_queue<SimPlatform>(GetParam(), params);
  sim::Engine eng(1);
  eng.run([&](ProcId) {
    for (u64 i = 0; i < 10; ++i) ASSERT_TRUE(pq->insert(0, i));
    std::set<u64> got;
    for (u64 i = 0; i < 10; ++i) {
      auto e = pq->delete_min();
      ASSERT_TRUE(e.has_value());
      EXPECT_EQ(e->prio, 0u);
      got.insert(e->item);
    }
    EXPECT_EQ(got.size(), 10u);
    EXPECT_FALSE(pq->delete_min().has_value());
  });
}

INSTANTIATE_TEST_SUITE_P(AllAlgos, SinglePriority, ::testing::ValuesIn(all_algorithms()),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

// ---- Batched entry points: one processor, so every queue (native
// aggregation or loop fallback) must show exact sequential semantics.
class BatchSequential : public ::testing::TestWithParam<Algorithm> {};

TEST_P(BatchSequential, InsertBatchThenDeleteMinBatchDrainsInOrder) {
  const Algorithm algo = GetParam();
  PqParams params{.npriorities = 16, .maxprocs = 1, .bin_capacity = 4096};
  params.max_batch = 8;
  auto pq = make_priority_queue<SimPlatform>(algo, params);
  sim::Engine eng(1, {}, 11);
  eng.run([&](ProcId) {
    Xorshift rng(11);
    std::vector<Entry> all;
    for (u32 round = 0; round < 6; ++round) {
      std::vector<Entry> batch;
      for (u32 i = 0; i < 8; ++i)
        batch.push_back(Entry{static_cast<Prio>(rng.below(16)), round * 100 + i});
      ASSERT_EQ(pq->insert_batch(batch), batch.size());
      all.insert(all.end(), batch.begin(), batch.end());
    }
    // Drain with batched deletes of varying width: each chunk must be
    // internally nondecreasing AND continue the global nondecreasing order.
    std::vector<Entry> drained;
    for (u32 want : {5u, 1u, 8u, 8u, 8u, 8u, 8u, 8u}) {
      std::vector<Entry> out(want);
      const u32 got = pq->delete_min_batch(out);
      for (u32 i = 0; i < got; ++i) drained.push_back(out[i]);
      if (got < want) break;
    }
    ASSERT_EQ(drained.size(), all.size());
    const auto r = check_drain_sorted(drained);
    EXPECT_TRUE(r.ok) << r.diagnostic;
    EXPECT_TRUE(same_entries(all, drained));
    // Empty queue: a batched delete comes back empty, not wedged.
    std::vector<Entry> out(4);
    EXPECT_EQ(pq->delete_min_batch(out), 0u);
  });
}

INSTANTIATE_TEST_SUITE_P(AllAlgos, BatchSequential,
                         ::testing::ValuesIn(all_algorithms()),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(BatchSequential, MixedPrioritiesSplitAcrossFunnelTreeSubtrees) {
  // The FunnelTree descent splits one size-k root BFaD across subtrees by
  // the counter values it reads; a batch spanning both halves of the tree
  // must come back complete and sorted.
  PqParams params{.npriorities = 8, .maxprocs = 1, .bin_capacity = 256};
  params.max_batch = 6;
  auto pq = make_priority_queue<SimPlatform>(Algorithm::kFunnelTree, params);
  sim::Engine eng(1, {}, 5);
  eng.run([&](ProcId) {
    const std::vector<Entry> batch{{7, 1}, {0, 2}, {3, 3}, {0, 4}, {5, 5}, {2, 6}};
    ASSERT_EQ(pq->insert_batch(batch), batch.size());
    std::vector<Entry> out(6);
    ASSERT_EQ(pq->delete_min_batch(out), 6u);
    const Prio expect[] = {0, 0, 2, 3, 5, 7};
    for (u32 i = 0; i < 6; ++i) EXPECT_EQ(out[i].prio, expect[i]) << "at " << i;
    EXPECT_TRUE(same_entries(batch, out));
  });
}

TEST(PqParamsValidation, RejectsNonsense) {
  PqParams p;
  p.npriorities = 0;
  EXPECT_DEATH(p.validate(), "npriorities");
  p = PqParams{};
  p.maxprocs = 0;
  EXPECT_DEATH(p.validate(), "maxprocs");
  p = PqParams{};
  p.bin_capacity = 0;
  EXPECT_DEATH(p.validate(), "bin_capacity");
}

TEST(Registry, NamesRoundTrip) {
  for (Algorithm a : all_algorithms()) {
    EXPECT_EQ(algorithm_from_string(to_string(a)), a);
  }
  EXPECT_THROW(algorithm_from_string("NoSuchQueue"), std::invalid_argument);
  EXPECT_EQ(all_algorithms().size(), 9u);
  EXPECT_EQ(scalable_algorithms().size(), 4u);
}

TEST(Registry, OutOfRangePriorityAborts) {
  PqParams params{.npriorities = 4, .maxprocs = 1};
  auto pq = make_priority_queue<SimPlatform>(Algorithm::kSimpleLinear, params);
  sim::Engine eng(1);
  EXPECT_DEATH(eng.run([&](ProcId) { pq->insert(4, 1); }), "bounded range");
}

} // namespace
} // namespace fpq
