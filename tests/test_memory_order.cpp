// Litmus-style regression tests for the Platform::Shared memory-ordering
// contract (DESIGN.md §8) on the native backend. Each test encodes one
// ordering shape the codebase relies on and asserts the outcome the
// contract forbids never shows up. They run under the native-tier1 label,
// so the TSan gate (-DFPQ_SANITIZE=thread) checks the same shapes with
// real race detection: a release/acquire pair that is wrong here is a
// reported race there, not a silent flake.
//
// The machine running CI may have a single core, so these tests cannot
// *prove* weak-memory reorderings are handled — they are regression tests
// that the annotated API keeps its semantics (values, RMW atomicity,
// publication) plus TSan fodder, not hardware litmus campaigns.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <vector>

#include "container/reactive_counter.hpp"
#include "funnel/counter.hpp"
#include "platform/native.hpp"
#include "pq/skiplist_pq.hpp"

namespace fpq {
namespace {

using NP = NativePlatform;

// Message passing: data written relaxed, published by a release store of a
// flag, consumed after an acquire load observes the flag. This is the shape
// behind every funnel verdict (result_value relaxed / result_state release)
// and the MCS handoff (CS writes / locked store_release).
TEST(MemoryOrderLitmus, MessagePassing) {
  constexpr int kRounds = 2000;
  for (int r = 0; r < kRounds; ++r) {
    NP::Shared<u64> data{0};
    NP::Shared<u32> flag{0};
    u64 seen = 0;
    NP::run(2, [&](ProcId id) {
      if (id == 0) {
        data.store_relaxed(42);
        flag.store_release(1);
      } else {
        while (flag.load_acquire() == 0) NP::relax();
        seen = data.load_relaxed();
      }
    });
    ASSERT_EQ(seen, 42u) << "acquire observed the flag but not the payload";
  }
}

// Store buffering: with seq_cst (the unsuffixed default) both threads
// cannot read 0 — there is a total order over the four accesses. This is
// the shape that *requires* the default to stay seq_cst: release/acquire
// alone would allow r0 == r1 == 0.
TEST(MemoryOrderLitmus, StoreBufferSeqCst) {
  constexpr int kRounds = 2000;
  for (int r = 0; r < kRounds; ++r) {
    NP::Shared<u32> x{0};
    NP::Shared<u32> y{0};
    u32 r0 = 99, r1 = 99;
    NP::run(2, [&](ProcId id) {
      if (id == 0) {
        x.store(1);       // seq_cst
        r0 = y.load();    // seq_cst
      } else {
        y.store(1);       // seq_cst
        r1 = x.load();    // seq_cst
      }
    });
    ASSERT_FALSE(r0 == 0 && r1 == 0) << "seq_cst store-buffer outcome violated";
  }
}

// fetch_add / fetch_sub atomicity and return-value semantics under
// contention, including the acq_rel order used by every counter ticket.
TEST(MemoryOrderLitmus, FetchAddFetchSubTickets) {
  constexpr u32 kThreads = 4;
  constexpr u32 kPerThread = 5000;
  NP::Shared<u64> up{0};
  NP::Shared<u64> down{kThreads * kPerThread};
  std::vector<std::vector<u64>> tickets(kThreads);
  NP::run(kThreads, [&](ProcId id) {
    for (u32 i = 0; i < kPerThread; ++i) {
      tickets[id].push_back(up.fetch_add(1, MemOrder::kAcqRel));
      down.fetch_sub(1, MemOrder::kAcqRel);
    }
  });
  EXPECT_EQ(up.load(), kThreads * kPerThread);
  EXPECT_EQ(down.load(), 0u);
  std::set<u64> uniq;
  for (const auto& v : tickets) uniq.insert(v.begin(), v.end());
  EXPECT_EQ(uniq.size(), kThreads * kPerThread) << "fetch_add handed out a duplicate";
}

// CAS with split success/failure orders: exactly one thread wins each
// round, and the winner's prior relaxed write is visible to readers that
// acquire the published word — the funnel's location-capture shape.
TEST(MemoryOrderLitmus, CasCaptureHandshake) {
  constexpr int kRounds = 500;
  constexpr u32 kThreads = 4;
  for (int r = 0; r < kRounds; ++r) {
    NP::Shared<u64> payload{0};
    NP::Shared<u32> owner{0}; // 0 = free; else winner id+1
    std::atomic<u32> wins{0};
    NP::run(kThreads, [&](ProcId id) {
      payload.load_acquire(); // touch before racing (mirrors funnel setup)
      u32 expected = 0;
      if (owner.compare_exchange(expected, id + 1, MemOrder::kAcqRel,
                                 MemOrder::kRelaxed)) {
        wins.fetch_add(1);
        payload.store_relaxed(100 + id);
      }
    });
    ASSERT_EQ(wins.load(), 1u) << "CAS let two winners through";
    const u32 who = owner.load_acquire();
    ASSERT_NE(who, 0u);
    ASSERT_EQ(payload.load_relaxed(), 100u + (who - 1))
        << "winner's post-capture write went missing";
  }
}

// exchange(kAcqRel) as lock-acquire: the TtasLock shape. The exchanged
// word's acquire side must order the critical-section reads, its release
// side (on store_release(0)) the writes.
TEST(MemoryOrderLitmus, ExchangeLockHandoff) {
  constexpr u32 kThreads = 4;
  constexpr u32 kPerThread = 2000;
  NP::Shared<u32> lock{0};
  u64 counter = 0; // plain word: torn under a broken lock, caught by TSan too
  NP::run(kThreads, [&](ProcId) {
    for (u32 i = 0; i < kPerThread; ++i) {
      while (lock.exchange(1, MemOrder::kAcqRel) != 0) NP::pause();
      ++counter;
      lock.store_release(0);
    }
  });
  EXPECT_EQ(counter, u64{kThreads} * kPerThread);
}

// spin_until: the acquire-spin helper must observe a release publication
// and return the published value, escalating politely in between.
TEST(MemoryOrderLitmus, SpinUntilObservesRelease) {
  NP::Shared<u64> word{0};
  u64 got = 0;
  NP::run(2, [&](ProcId id) {
    if (id == 0) {
      for (volatile int i = 0; i < 10000; ++i) {} // let the waiter spin
      word.store_release(7);
    } else {
      got = NP::spin_until(word, [](u64 v) { return v != 0; });
    }
  });
  EXPECT_EQ(got, 7u);
}

// The relaxed-annotated funnel counter hammered natively: every fai ticket
// unique, bfad never below the floor, final value exact. This is the
// end-to-end check that the funnel's release/acquire protocol (location
// capture, verdict distribution) lost nothing to the relaxations.
TEST(MemoryOrderLitmus, RelaxedFunnelCounterHammer) {
  constexpr u32 kThreads = 4;
  constexpr u32 kPerThread = 1500;
  FunnelCounter<NP> c(kThreads, FunnelParams::for_procs(kThreads),
                      {true, true, 0}, 0);
  std::atomic<u64> incs{0}, effective{0};
  NP::run(kThreads, [&](ProcId id) {
    for (u32 i = 0; i < kPerThread; ++i) {
      if ((i + id) % 3 != 0) {
        c.fai();
        incs.fetch_add(1);
      } else {
        const i64 before = c.bfad(0);
        ASSERT_GE(before, 0);
        if (before > 0) effective.fetch_add(1);
      }
    }
  });
  EXPECT_EQ(c.read(),
            static_cast<i64>(incs.load()) - static_cast<i64>(effective.load()));
  EXPECT_GE(c.read(), 0);
}

// Regression for the reactive counter's announce/recheck vs. CAS/drain
// handshake — a store-buffering shape whose deciding accesses must be
// seq_cst (see the contract comment in reactive_counter.hpp). If either
// side were weakened back to acq_rel, an op could mutate the outgoing
// representation concurrently with the switcher's unlocked value transfer
// and the final value would drift; under TSan that shows as a data race
// on value_. Two tunings: one forces a deterministic MCS->funnel switch
// on the first contended op, one sits at a borderline threshold so mode
// ping-pongs while the hammer runs.
TEST(MemoryOrderLitmus, ReactiveCounterSwitchStormConserves) {
  constexpr u32 kThreads = 4;
  constexpr u32 kPerThread = 1500;
  const typename ReactiveCounter<NP>::Tuning tunings[] = {
      {0, 1, 1u << 30},  // every MCS op "contended": forced up-switch
      {3000, 1, 1},      // borderline 3us: switches both ways under load
  };
  for (const auto& tuning : tunings) {
    ReactiveCounter<NP> c(kThreads, FunnelParams::for_procs(kThreads), 0, 0,
                          tuning);
    std::atomic<u64> incs{0}, effective{0};
    NP::run(kThreads, [&](ProcId id) {
      for (u32 i = 0; i < kPerThread; ++i) {
        if ((i + id) % 3 != 0) {
          c.fai();
          incs.fetch_add(1);
        } else {
          const i64 before = c.bfad(0);
          ASSERT_GE(before, 0);
          if (before > 0) effective.fetch_add(1);
        }
      }
    });
    EXPECT_EQ(c.read(),
              static_cast<i64>(incs.load()) - static_cast<i64>(effective.load()))
        << "a mode switch raced an op and lost/duplicated updates";
    EXPECT_GE(c.read(), 0);
  }
}

// Regression for the skip-list insert-vs-rescue race: insert writes the
// bin then reads `threaded`, while delete_min's rescue writes `threaded`
// then probes the bin — store-buffering that is arbitrated by the bin's
// lock (empty_locked), not by fence strength. Two priorities keep the
// first link constantly unthreaded/re-threaded, so inserts land in bins
// that are mid-unthread; a lost arbitration permanently strands an item
// and the deleted count comes up short.
TEST(MemoryOrderLitmus, SkipListRescueNeverStrandsItems) {
  constexpr u32 kThreads = 4;
  constexpr u32 kProducers = kThreads / 2;
  constexpr u32 kPerProducer = 3000;
  PqParams params{.npriorities = 2, .maxprocs = kThreads};
  params.bin_capacity = kProducers * kPerProducer;
  SkipListPq<NP> pq(params);
  std::atomic<u32> producers_left{kProducers};
  std::vector<std::vector<u64>> got(kThreads);
  NP::run(kThreads, [&](ProcId id) {
    if (id < kProducers) {
      for (u32 i = 0; i < kPerProducer; ++i)
        ASSERT_TRUE(pq.insert(i % 2, u64{id} * kPerProducer + i + 1));
      producers_left.fetch_sub(1, std::memory_order_release);
    } else {
      for (;;) {
        if (auto e = pq.delete_min()) {
          got[id].push_back(e->item);
        } else if (producers_left.load(std::memory_order_acquire) == 0) {
          // Quiescent nullopt: producers are done and (modulo a peer's
          // in-flight rescue, which that peer will drain itself) the
          // queue is empty.
          break;
        } else {
          NP::pause();
        }
      }
    }
  });
  std::set<u64> uniq;
  u64 total = 0;
  for (const auto& v : got) {
    total += v.size();
    uniq.insert(v.begin(), v.end());
  }
  EXPECT_EQ(total, u64{kProducers} * kPerProducer)
      << "an item was stranded in an unthreaded bin (or delivered twice)";
  EXPECT_EQ(uniq.size(), u64{kProducers} * kPerProducer);
}

// Spin configuration knob: both escalation modes must make progress under
// oversubscription (more waiters than cores is the common CI case).
TEST(MemoryOrderLitmus, SpinConfigEscalationModes) {
  const NP::SpinConfig saved = NP::spin_config();
  for (NP::SpinEscalation esc :
       {NP::SpinEscalation::kYield, NP::SpinEscalation::kSleep}) {
    NP::SpinConfig cfg;
    cfg.relax_spins = 4; // force escalation quickly
    cfg.escalation = esc;
    cfg.sleep_ns = 1000;
    NP::set_spin_config(cfg);
    NP::Shared<u32> turn{0};
    constexpr u32 kThreads = 4;
    NP::run(kThreads, [&](ProcId id) {
      for (u32 round = 0; round < 50; ++round) {
        NP::spin_until(turn, [&](u32 v) { return v == round * kThreads + id; });
        turn.store_release(round * kThreads + id + 1);
      }
    });
    EXPECT_EQ(turn.load(), 50u * kThreads);
  }
  NP::set_spin_config(saved);
}

} // namespace
} // namespace fpq
