// SkipList-specific tests: threading state machine, first-link tracking,
// level distribution, and a regression hammer for the delete-bin item
// stranding race that the paper's pseudo-code loses (skiplist_pq.hpp
// rescues the outgoing bin at advance time).
#include <gtest/gtest.h>

#include <memory>

#include "platform/sim.hpp"
#include "pq/skiplist_pq.hpp"

namespace fpq {
namespace {

using Skip = SkipListPq<SimPlatform>;

TEST(SkipList, ThreadingFollowsContent) {
  PqParams params{.npriorities = 8, .maxprocs = 1};
  Skip pq(params);
  sim::Engine eng(1);
  eng.run([&](ProcId) {
    EXPECT_FALSE(pq.is_threaded(3));
    pq.insert(3, 100);
    EXPECT_TRUE(pq.is_threaded(3));
    EXPECT_EQ(pq.first_threaded(), 3u);
    pq.insert(1, 200);
    EXPECT_EQ(pq.first_threaded(), 1u);
    // Deleting unthreads the first link (its bin becomes the delete bin).
    auto e = pq.delete_min();
    ASSERT_TRUE(e.has_value());
    EXPECT_EQ(e->prio, 1u);
    EXPECT_FALSE(pq.is_threaded(1));
    EXPECT_EQ(pq.first_threaded(), 3u);
  });
}

TEST(SkipList, LevelsAreGeometricallyDistributed) {
  PqParams params{.npriorities = 512, .maxprocs = 1};
  params.seed = 1234;
  Skip pq(params);
  u32 level1 = 0, deep = 0;
  for (Prio p = 0; p < 512; ++p) {
    const u32 lv = pq.level_of(p);
    EXPECT_GE(lv, 1u);
    EXPECT_LE(lv, Skip::kMaxLevel);
    if (lv == 1) ++level1;
    if (lv >= 4) ++deep;
  }
  // Geometric p=1/2: ~50% at level 1, ~12.5% at level >= 4.
  EXPECT_GT(level1, 200u);
  EXPECT_LT(level1, 310u);
  EXPECT_GT(deep, 30u);
  EXPECT_LT(deep, 110u);
}

TEST(SkipList, ReinsertionRethreadsUnthreadedLink) {
  PqParams params{.npriorities = 4, .maxprocs = 1};
  Skip pq(params);
  sim::Engine eng(1);
  eng.run([&](ProcId) {
    pq.insert(2, 1);
    EXPECT_EQ(pq.delete_min()->item, 1u); // unthreads link 2, drains del bin
    EXPECT_FALSE(pq.is_threaded(2));
    pq.insert(2, 5);
    EXPECT_TRUE(pq.is_threaded(2));
    EXPECT_EQ(pq.delete_min()->item, 5u);
    EXPECT_FALSE(pq.delete_min().has_value());
  });
}

TEST(SkipList, RescueRaceHammer) {
  // The stranding scenario needs: link L is the delete bin, an insert to L
  // lands while a deleter advances past L. Two priorities and heavy mixed
  // traffic make this frequent; conservation must hold every time.
  for (u64 seed = 1; seed <= 10; ++seed) {
    PqParams params{.npriorities = 2, .maxprocs = 12, .bin_capacity = 2048};
    params.seed = seed;
    Skip pq(params);
    auto net = std::make_unique<SimShared<i64>>(0);
    sim::Engine eng(12, {}, seed);
    eng.run([&](ProcId) {
      for (u32 i = 0; i < 30; ++i) {
        if (SimPlatform::flip()) {
          ASSERT_TRUE(pq.insert(static_cast<Prio>(SimPlatform::rnd(2)), i + 1));
          net->fetch_add(1);
        } else if (pq.delete_min()) {
          net->fetch_add(-1);
        }
      }
    });
    i64 drained = 0;
    eng.run([&](ProcId id) {
      if (id != 0) return;
      while (pq.delete_min()) ++drained;
    });
    EXPECT_EQ(drained, net->load()) << "items stranded (seed " << seed << ")";
  }
}

TEST(SkipList, EmptyFirstThreadedIsSentinel) {
  PqParams params{.npriorities = 8, .maxprocs = 1};
  Skip pq(params);
  EXPECT_EQ(pq.first_threaded(), 8u); // tail key == npriorities
}

TEST(SkipList, ManyPrioritiesConcurrentSmoke) {
  PqParams params{.npriorities = 200, .maxprocs = 8};
  Skip pq(params);
  auto net = std::make_unique<SimShared<i64>>(0);
  sim::Engine eng(8, {}, 3);
  eng.run([&](ProcId) {
    for (u32 i = 0; i < 40; ++i) {
      if (SimPlatform::rnd(100) < 70) {
        ASSERT_TRUE(pq.insert(static_cast<Prio>(SimPlatform::rnd(200)), i));
        net->fetch_add(1);
      } else if (pq.delete_min()) {
        net->fetch_add(-1);
      }
    }
  });
  i64 drained = 0;
  eng.run([&](ProcId id) {
    if (id != 0) return;
    while (pq.delete_min()) ++drained;
  });
  EXPECT_EQ(drained, net->load());
}

} // namespace
} // namespace fpq
