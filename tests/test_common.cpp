// Unit tests for src/common (PRNG, entry packing, bit helpers, padding)
// and the repetition statistics in src/bench_support/stats.hpp.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "bench_support/stats.hpp"
#include "common/bits.hpp"
#include "common/entry.hpp"
#include "common/padded.hpp"
#include "common/rng.hpp"

namespace fpq {
namespace {

TEST(Xorshift, DeterministicForEqualSeeds) {
  Xorshift a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xorshift, DifferentSeedsDiverge) {
  Xorshift a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Xorshift, ConsecutiveSeedsAreUncorrelated) {
  // splitmix mixing: seeds 0..7 should not produce near-identical streams.
  std::set<u64> firsts;
  for (u64 s = 0; s < 8; ++s) firsts.insert(Xorshift(s).next());
  EXPECT_EQ(firsts.size(), 8u);
}

TEST(Xorshift, BelowStaysInRange) {
  Xorshift r(7);
  for (u64 bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(r.below(bound), bound);
  }
}

TEST(Xorshift, BelowOneIsAlwaysZero) {
  Xorshift r(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.below(1), 0u);
}

TEST(Xorshift, BelowCoversSmallRange) {
  Xorshift r(11);
  std::set<u64> seen;
  for (int i = 0; i < 400; ++i) seen.insert(r.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Xorshift, FlipIsRoughlyBalanced) {
  Xorshift r(13);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += r.flip() ? 1 : 0;
  EXPECT_GT(heads, 4600);
  EXPECT_LT(heads, 5400);
}

TEST(Entry, PackUnpackRoundTrip) {
  for (Prio p : {0u, 1u, 7u, 511u, 65534u}) {
    for (Item v : {0ull, 1ull, 42ull, (1ull << 48) - 1}) {
      const Entry e{p, v};
      EXPECT_EQ(unpack_entry(pack_entry(e)), e);
    }
  }
}

TEST(Entry, PackedComparisonOrdersByPriorityFirst) {
  EXPECT_LT(pack_entry({1, 999}), pack_entry({2, 0}));
  EXPECT_LT(pack_entry({3, 5}), pack_entry({3, 6}));
  EXPECT_GT(pack_entry({100, 0}), pack_entry({99, kMaxPackableItem}));
}

TEST(Entry, NoLegalEntryPacksToSentinel) {
  EXPECT_NE(pack_entry({kMaxPackablePrio - 1, kMaxPackableItem}), kNoEntry);
  EXPECT_NE(pack_entry({0, 0}), kNoEntry);
}

TEST(Entry, PackRejectsOutOfRange) {
  EXPECT_DEATH(pack_entry({kMaxPackablePrio, 0}), "priority");
  EXPECT_DEATH(pack_entry({0, kMaxPackableItem + 1}), "item");
}

TEST(Bits, RoundUpPow2) {
  EXPECT_EQ(round_up_pow2(0), 1u);
  EXPECT_EQ(round_up_pow2(1), 1u);
  EXPECT_EQ(round_up_pow2(2), 2u);
  EXPECT_EQ(round_up_pow2(3), 4u);
  EXPECT_EQ(round_up_pow2(4), 4u);
  EXPECT_EQ(round_up_pow2(5), 8u);
  EXPECT_EQ(round_up_pow2(513), 1024u);
}

TEST(Bits, FloorLog2) {
  EXPECT_EQ(floor_log2(1), 0u);
  EXPECT_EQ(floor_log2(2), 1u);
  EXPECT_EQ(floor_log2(3), 1u);
  EXPECT_EQ(floor_log2(4), 2u);
  EXPECT_EQ(floor_log2(255), 7u);
  EXPECT_EQ(floor_log2(256), 8u);
}

TEST(Padded, OccupiesFullCacheLines) {
  EXPECT_EQ(sizeof(Padded<u32>) % kCacheLineBytes, 0u);
  EXPECT_EQ(alignof(Padded<u32>), kCacheLineBytes);
  std::vector<Padded<u64>> v(4);
  const auto a = reinterpret_cast<std::uintptr_t>(&v[0]);
  const auto b = reinterpret_cast<std::uintptr_t>(&v[1]);
  EXPECT_GE(b - a, static_cast<std::uintptr_t>(kCacheLineBytes));
}

TEST(Stats, SummarizeSmallSample) {
  const Summary s = summarize({10.0, 12.0, 14.0});
  EXPECT_DOUBLE_EQ(s.mean, 12.0);
  EXPECT_EQ(s.n, 3u);
  EXPECT_LT(s.ci95_lo, s.mean);
  EXPECT_GT(s.ci95_hi, s.mean);
  EXPECT_NEAR(s.mean - s.ci95_lo, s.ci95_hi - s.mean, 1e-9); // symmetric
}

TEST(Stats, NonnegativeSummaryClampsLowBoundAtZero) {
  // High-variance tiny samples push the Student's t interval below zero
  // (t95(1) = 12.7): exactly the BENCH_native.json ci95_lo < 0 artifact.
  const std::vector<double> xs{1.0e6, 2.5e7};
  const Summary raw = summarize(xs);
  ASSERT_LT(raw.ci95_lo, 0.0) << "sample no longer triggers the clamp";
  const Summary s = summarize_nonnegative(xs);
  EXPECT_EQ(s.ci95_lo, 0.0);
  // Only the lower bound changes, and the mean stays inside the interval.
  EXPECT_DOUBLE_EQ(s.mean, raw.mean);
  EXPECT_DOUBLE_EQ(s.sd, raw.sd);
  EXPECT_DOUBLE_EQ(s.ci95_hi, raw.ci95_hi);
  EXPECT_LE(s.ci95_lo, s.mean);
  EXPECT_LE(s.mean, s.ci95_hi);
}

TEST(Stats, NonnegativeSummaryLeavesPositiveIntervalsAlone) {
  const std::vector<double> xs{9.0, 10.0, 11.0, 10.0};
  const Summary raw = summarize(xs);
  ASSERT_GT(raw.ci95_lo, 0.0);
  const Summary s = summarize_nonnegative(xs);
  EXPECT_DOUBLE_EQ(s.ci95_lo, raw.ci95_lo);
  EXPECT_DOUBLE_EQ(s.ci95_hi, raw.ci95_hi);
}

TEST(Stats, NonnegativeSummaryClampsBothBoundsForNegativeDeltas) {
  // Latency deltas from coarse timers can come out mostly negative; the
  // raw interval then sits entirely below zero. v1 clamped only ci95_lo,
  // so the table printed an inverted interval (hi < lo). Both bounds must
  // land in the metric's domain and stay ordered.
  const std::vector<double> xs{-5.0, -4.0, -6.0, -5.0};
  const Summary raw = summarize(xs);
  ASSERT_LT(raw.ci95_hi, 0.0) << "sample no longer exercises the hi clamp";
  const Summary s = summarize_nonnegative(xs);
  EXPECT_EQ(s.ci95_lo, 0.0);
  EXPECT_EQ(s.ci95_hi, 0.0);
  EXPECT_LE(s.ci95_lo, s.ci95_hi);
  // mean/sd still describe the sample, unclamped.
  EXPECT_DOUBLE_EQ(s.mean, raw.mean);
  EXPECT_DOUBLE_EQ(s.sd, raw.sd);
}

} // namespace
} // namespace fpq
