// Native-backend tests: the same algorithms under real std::atomic and
// std::thread. Thread counts stay small (the build machine may have one
// core); these validate that nothing in the algorithms depends on the
// simulator's cooperative scheduling.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <vector>

#include "container/bin.hpp"
#include "core/registry.hpp"
#include "funnel/counter.hpp"
#include "funnel/stack.hpp"
#include "platform/native.hpp"
#include "pq/elim_layer.hpp"
#include "sync/mcs_lock.hpp"
#include "verify/quiescent.hpp"

namespace fpq {
namespace {

constexpr u32 kThreads = 4;

TEST(NativePlatform, RunExecutesAllAndPropagatesException) {
  std::atomic<u32> ran{0};
  NativePlatform::run(kThreads, [&](ProcId) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), kThreads);
  EXPECT_THROW(NativePlatform::run(2,
                                   [&](ProcId id) {
                                     if (id == 1) throw std::logic_error("x");
                                   }),
               std::logic_error);
}

TEST(NativePlatform, SelfAndNprocsVisible) {
  std::atomic<u32> sum{0};
  NativePlatform::run(kThreads, [&](ProcId id) {
    EXPECT_EQ(NativePlatform::self(), id);
    EXPECT_EQ(NativePlatform::nprocs(), kThreads);
    sum.fetch_add(id);
  });
  EXPECT_EQ(sum.load(), 0u + 1 + 2 + 3);
}

TEST(NativePlatform, AdoptRelease) {
  NativePlatform::adopt(5, 8, 99);
  EXPECT_EQ(NativePlatform::self(), 5u);
  EXPECT_EQ(NativePlatform::nprocs(), 8u);
  EXPECT_LT(NativePlatform::rnd(10), 10u);
  NativePlatform::release();
}

TEST(NativeMcsLock, MutualExclusion) {
  McsLock<NativePlatform> lock(kThreads);
  u64 a = 0, b = 0; // plain: any violation shows as a desync under TSAN-less
  NativePlatform::run(kThreads, [&](ProcId) {
    for (int i = 0; i < 500; ++i) {
      McsGuard<NativePlatform> g(lock);
      ++a;
      ++b;
    }
  });
  EXPECT_EQ(a, kThreads * 500u);
  EXPECT_EQ(b, a);
}

TEST(NativeLockedBin, Conservation) {
  LockedBin<NativePlatform> bin(kThreads, 1 << 14);
  std::atomic<u64> removed{0};
  NativePlatform::run(kThreads, [&](ProcId id) {
    for (u32 i = 0; i < 300; ++i) {
      ASSERT_TRUE(bin.insert((static_cast<u64>(id) << 32) | i));
      if (NativePlatform::flip() && bin.remove()) removed.fetch_add(1);
    }
  });
  u64 drained = 0;
  NativePlatform::run(1, [&](ProcId) {
    while (bin.remove()) ++drained;
  });
  EXPECT_EQ(removed.load() + drained, kThreads * 300u);
}

TEST(NativeFunnelCounter, FaiPermutation) {
  FunnelCounter<NativePlatform> c(kThreads, FunnelParams::for_procs(kThreads),
                                  {true, true, 0}, 0);
  std::vector<std::vector<i64>> got(kThreads);
  NativePlatform::run(kThreads, [&](ProcId id) {
    for (u32 i = 0; i < 400; ++i) got[id].push_back(c.fai());
  });
  std::set<i64> uniq;
  for (const auto& v : got) uniq.insert(v.begin(), v.end());
  EXPECT_EQ(uniq.size(), kThreads * 400u);
  EXPECT_EQ(c.read(), static_cast<i64>(kThreads * 400u));
}

TEST(NativeFunnelCounter, BfadInvariant) {
  FunnelCounter<NativePlatform> c(kThreads, FunnelParams::for_procs(kThreads),
                                  {true, true, 0}, 0);
  std::atomic<u64> incs{0}, effective{0};
  NativePlatform::run(kThreads, [&](ProcId) {
    for (u32 i = 0; i < 400; ++i) {
      if (NativePlatform::flip()) {
        c.fai();
        incs.fetch_add(1);
      } else {
        const i64 before = c.bfad(0);
        ASSERT_GE(before, 0);
        if (before > 0) effective.fetch_add(1);
      }
    }
  });
  EXPECT_EQ(c.read(), static_cast<i64>(incs.load()) - static_cast<i64>(effective.load()));
  EXPECT_GE(c.read(), 0);
}

TEST(NativeFunnelStack, Conservation) {
  FunnelStack<NativePlatform> st(kThreads, FunnelParams::for_procs(kThreads), 1 << 14);
  std::atomic<u64> pushed{0}, popped{0};
  NativePlatform::run(kThreads, [&](ProcId id) {
    for (u32 i = 0; i < 300; ++i) {
      if (NativePlatform::flip()) {
        ASSERT_TRUE(st.push((static_cast<u64>(id) << 32) | i));
        pushed.fetch_add(1);
      } else if (st.pop()) {
        popped.fetch_add(1);
      }
    }
  });
  u64 drained = 0;
  NativePlatform::run(1, [&](ProcId) {
    while (st.pop()) ++drained;
  });
  EXPECT_EQ(popped.load() + drained, pushed.load());
}

// ---- Aggregation collision protocol (DESIGN.md §13) under real threads:
// the join CAS / close exchange / verdict release handshake is exactly
// what TSan must see as ordered here.

TEST(NativeAggregateCounter, FaiPermutation) {
  FunnelCounter<NativePlatform> c(
      kThreads, FunnelParams::for_procs(kThreads, FunnelProtocol::kAggregate),
      {true, true, 0}, 0);
  std::vector<std::vector<i64>> got(kThreads);
  NativePlatform::run(kThreads, [&](ProcId id) {
    for (u32 i = 0; i < 400; ++i) got[id].push_back(c.fai());
  });
  std::set<i64> uniq;
  for (const auto& v : got) uniq.insert(v.begin(), v.end());
  EXPECT_EQ(uniq.size(), kThreads * 400u);
  EXPECT_EQ(c.read(), static_cast<i64>(kThreads * 400u));
}

TEST(NativeAggregateStack, BatchedConservation) {
  FunnelParams fp = FunnelParams::for_procs(kThreads, FunnelProtocol::kAggregate);
  fp.batch_limit = 4;
  FunnelStack<NativePlatform> st(kThreads, fp, 1 << 14);
  std::atomic<u64> pushed{0}, popped{0};
  NativePlatform::run(kThreads, [&](ProcId id) {
    Item buf[4];
    for (u32 i = 0; i < 300; ++i) {
      const u32 k = 1 + static_cast<u32>(NativePlatform::rnd(4));
      if (NativePlatform::flip()) {
        for (u32 j = 0; j < k; ++j)
          buf[j] = (static_cast<u64>(id) << 32) | (i * 8 + j + 1);
        pushed.fetch_add(st.push_batch(buf, k));
      } else {
        popped.fetch_add(st.pop_batch(buf, k));
      }
    }
  });
  u64 drained = 0;
  NativePlatform::run(1, [&](ProcId) {
    while (st.pop()) ++drained;
  });
  EXPECT_EQ(popped.load() + drained, pushed.load());
}

TEST(NativeAggregateQueues, ConcurrentConservation) {
  for (Algorithm algo : {Algorithm::kLinearFunnels, Algorithm::kFunnelTree}) {
    PqParams params{.npriorities = 16, .maxprocs = kThreads, .bin_capacity = 1u << 13};
    FunnelOptions opts;
    opts.protocol = FunnelProtocol::kAggregate;
    auto pq = make_priority_queue<NativePlatform>(algo, params, opts);
    std::atomic<u64> inserted{0}, deleted{0};
    NativePlatform::run(kThreads, [&](ProcId id) {
      for (u32 i = 0; i < 250; ++i) {
        if (NativePlatform::flip()) {
          ASSERT_TRUE(pq->insert(static_cast<Prio>(NativePlatform::rnd(16)),
                                 (static_cast<u64>(id) << 24) | i));
          inserted.fetch_add(1);
        } else if (pq->delete_min()) {
          deleted.fetch_add(1);
        }
      }
    });
    u64 drained = 0;
    NativePlatform::run(1, [&](ProcId) {
      while (pq->delete_min()) ++drained;
    });
    EXPECT_EQ(deleted.load() + drained, inserted.load()) << to_string(algo);
  }
}

class NativeQueues : public ::testing::TestWithParam<Algorithm> {};

TEST_P(NativeQueues, ConcurrentConservation) {
  PqParams params{.npriorities = 16, .maxprocs = kThreads, .bin_capacity = 1u << 13};
  auto pq = make_priority_queue<NativePlatform>(GetParam(), params);
  std::atomic<u64> inserted{0}, deleted{0};
  NativePlatform::run(kThreads, [&](ProcId id) {
    for (u32 i = 0; i < 250; ++i) {
      if (NativePlatform::flip()) {
        ASSERT_TRUE(pq->insert(static_cast<Prio>(NativePlatform::rnd(16)),
                               (static_cast<u64>(id) << 24) | i));
        inserted.fetch_add(1);
      } else if (pq->delete_min()) {
        deleted.fetch_add(1);
      }
    }
  });
  u64 drained = 0;
  NativePlatform::run(1, [&](ProcId) {
    while (pq->delete_min()) ++drained;
  });
  EXPECT_EQ(deleted.load() + drained, inserted.load());
}

INSTANTIATE_TEST_SUITE_P(AllAlgos, NativeQueues, ::testing::ValuesIn(all_algorithms()),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

// ---- Batched entry points under real threads (the TSan gate for the
// DESIGN.md §9 batch pipeline): conservation per element, item
// uniqueness, and a sorted quiescent drain.
class NativeBatchedQueues : public ::testing::TestWithParam<Algorithm> {};

TEST_P(NativeBatchedQueues, ConcurrentBatchConservation) {
  constexpr u32 kBatch = 8;
  PqParams params{.npriorities = 16, .maxprocs = kThreads, .bin_capacity = 1u << 13};
  params.max_batch = kBatch;
  auto pq = make_priority_queue<NativePlatform>(GetParam(), params);
  std::atomic<u64> inserted{0}, deleted{0};
  NativePlatform::run(kThreads, [&](ProcId id) {
    for (u32 round = 0; round < 40; ++round) {
      if (NativePlatform::flip()) {
        std::vector<Entry> in(kBatch);
        for (u32 i = 0; i < kBatch; ++i)
          in[i] = Entry{static_cast<Prio>(NativePlatform::rnd(16)),
                        (static_cast<u64>(id) << 24) | (round * kBatch + i)};
        ASSERT_EQ(pq->insert_batch(in), kBatch);
        inserted.fetch_add(kBatch);
      } else {
        std::vector<Entry> out(kBatch);
        deleted.fetch_add(pq->delete_min_batch(out));
      }
    }
  });
  // Quiescent drain: batched deletes must come back sorted and account
  // for every remaining item exactly once.
  std::vector<Entry> drained;
  NativePlatform::run(1, [&](ProcId) {
    std::vector<Entry> out(kBatch);
    for (u32 got; (got = pq->delete_min_batch(out)) > 0;)
      drained.insert(drained.end(), out.begin(), out.begin() + got);
  });
  EXPECT_EQ(deleted.load() + drained.size(), inserted.load());
  const auto r = check_drain_sorted(drained);
  EXPECT_TRUE(r.ok) << r.diagnostic;
  std::set<u64> unique;
  for (const Entry& e : drained) EXPECT_TRUE(unique.insert(e.item).second);
}

INSTANTIATE_TEST_SUITE_P(FunnelsAndFallback, NativeBatchedQueues,
                         ::testing::Values(Algorithm::kLinearFunnels,
                                           Algorithm::kFunnelTree,
                                           Algorithm::kSingleLock),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(NativeBatchedQueues, ElimLayerConservesUnderRealThreads) {
  // PQ-level elimination array in front of the funnels: hand-offs race
  // real parked deleters, so TSan sees the seq_cst min_seen_ handshake.
  PqParams params{.npriorities = 16, .maxprocs = kThreads, .bin_capacity = 1u << 13};
  FunnelOptions opts;
  opts.pq_elimination = true;
  opts.elim_slots = 2;
  for (Algorithm algo : {Algorithm::kLinearFunnels, Algorithm::kFunnelTree}) {
    auto pq = make_priority_queue<NativePlatform>(algo, params, opts);
    std::atomic<u64> inserted{0}, deleted{0};
    NativePlatform::run(kThreads, [&](ProcId id) {
      for (u32 i = 0; i < 250; ++i) {
        if (NativePlatform::rnd(100) < 45) {
          ASSERT_TRUE(pq->insert(static_cast<Prio>(NativePlatform::rnd(16)),
                                 (static_cast<u64>(id) << 24) | i));
          inserted.fetch_add(1);
        } else if (pq->delete_min()) {
          deleted.fetch_add(1);
        }
      }
    });
    u64 drained = 0;
    NativePlatform::run(1, [&](ProcId) {
      while (pq->delete_min()) ++drained;
    });
    EXPECT_EQ(deleted.load() + drained, inserted.load()) << to_string(algo);
  }
}

TEST(NativeElimLayer, PartnerDisappearanceNeverTrapsOrFabricates) {
  // The fault battery's elimination property on real threads (the TSan
  // variant of ElimFaults in test_faults.cpp): inserters that stop
  // participating early — the native stand-in for a fail-stopped partner —
  // leave every remaining parked deleter to time out and withdraw in
  // bounded time, and the slot CAS protocol never fabricates an entry:
  // everything a deleter receives, some inserter delivered.
  ElimLayer<NativePlatform> elim(2);
  std::atomic<u64> delivered{0}, received{0};
  NativePlatform::run(kThreads, [&](ProcId id) {
    if (id % 2 == 1) {
      // Inserters quit after a short burst, deserting their partners.
      const u32 rounds = id == 1 ? 40 : 400;
      for (u32 i = 0; i < rounds; ++i) {
        if (elim.try_hand_off(0, i)) delivered.fetch_add(1);
      }
      return;
    }
    // Deleters keep parking well past the inserters' exit; the bounded
    // park spin means every call returns even with no partner left alive.
    for (u32 i = 0; i < 400; ++i) {
      if (elim.park(/*spin=*/50)) received.fetch_add(1);
    }
  });
  EXPECT_LE(received.load(), delivered.load());

  // And with no inserter at all: pure timeout/withdraw path.
  u64 got = 0;
  NativePlatform::run(1, [&](ProcId) {
    for (u32 i = 0; i < 100; ++i)
      if (elim.park(/*spin=*/10)) ++got;
  });
  EXPECT_EQ(got, 0u);
}

TEST(NativeQueues, SequentialSanityFunnelTree) {
  PqParams params{.npriorities = 32, .maxprocs = 1};
  auto pq = make_priority_queue<NativePlatform>(Algorithm::kFunnelTree, params);
  NativePlatform::run(1, [&](ProcId) {
    pq->insert(9, 1);
    pq->insert(4, 2);
    pq->insert(31, 3);
    EXPECT_EQ(pq->delete_min()->prio, 4u);
    EXPECT_EQ(pq->delete_min()->prio, 9u);
    EXPECT_EQ(pq->delete_min()->prio, 31u);
    EXPECT_FALSE(pq->delete_min().has_value());
  });
}

} // namespace
} // namespace fpq
