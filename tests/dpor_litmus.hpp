// Litmus scenarios for the DPOR model checker (ISSUE 10), shared between
// tests/test_dpor.cpp (unmutated builds must explore to completion with
// zero oracle violations) and tests/test_dpor_corpus.cpp (the same configs
// compiled with one FPQ_SEEDED_BUG_* mutation each must produce a
// counterexample). Keeping both sides on literally the same scenario
// functions is the point: a mutation is "found" only relative to a config
// that is provably clean without it.
//
// Every scenario runs with the race detector attached and folds the full
// component-level oracle stack into the explore_all callback: detector
// findings (races, lock-order cycles), conservation of the produced
// values, and mutual exclusion where a lock is involved. Deadlocks are
// reported by the driver itself.
#pragma once

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "container/reactive_counter.hpp"
#include "funnel/counter.hpp"
#include "funnel/stack.hpp"
#include "platform/sim.hpp"
#include "reclaim/hazard.hpp"
#include "sim/engine.hpp"
#include "sim/explore.hpp"
#include "sync/mcs_lock.hpp"

namespace fpq::dpor_litmus {

/// Machine for every litmus: default timing, exhaustive policy, detector
/// attached (the detector is an oracle here, never a pruning relation).
inline sim::MachineParams litmus_machine() {
  sim::MachineParams m;
  m.sched.policy = sim::SchedulePolicy::kExhaustive;
  m.race_detect = true;
  return m;
}

/// Smallest funnel that still runs the full collision protocol: one
/// single-slot layer, no adaptive fast path (it would bypass the funnel),
/// short capture spins to keep slice counts litmus-sized.
inline FunnelParams litmus_funnel(FunnelProtocol proto) {
  FunnelParams p;
  p.protocol = proto;
  p.levels = 1;
  p.width[0] = 1;
  p.attempts = 1;
  p.spin[0] = 2;
  p.adaptive = false;
  p.agg_wait = 64; // adaptive close: idle limit clamps to 8 beats
  return p;
}

/// Detector oracle shared by all scenarios; empty string = clean.
inline std::string detector_findings(sim::Engine& eng) {
  sim::RaceDetector* det = eng.race_detector();
  if (det == nullptr) return {};
  std::ostringstream os;
  if (det->race_count() > 0) {
    os << det->race_count() << " undeclared-ordering race(s); first: "
       << to_string(det->races().front());
    return os.str();
  }
  if (det->inversion_count() > 0) {
    os << det->inversion_count() << " lock-order inversion(s); first: "
       << to_string(det->lock_inversions().front());
    return os.str();
  }
  return {};
}

/// FunnelCounter fetch-and-increment: `nprocs` processors, `ops` fai each.
/// Oracles: every ticket 0..nprocs*ops-1 handed out exactly once, final
/// value conserved, detector clean.
inline sim::ExploreOutcome explore_funnel_counter(FunnelProtocol proto, u32 nprocs, u32 ops,
                                                  const sim::ExploreParams& ep = {}) {
  using Cfg = FunnelCounter<SimPlatform>::Config;
  return sim::explore_all(
      nprocs, litmus_machine(), /*seed=*/1, ep,
      [&](sim::Engine& eng, std::string& diag) {
        FunnelCounter<SimPlatform> c(nprocs, litmus_funnel(proto), Cfg{false, false, 0}, 0);
        std::vector<std::vector<i64>> tickets(nprocs);
        eng.run([&](ProcId id) {
          for (u32 i = 0; i < ops; ++i) tickets[id].push_back(c.fai());
        });
        if (eng.explorer()->deadlocked()) return false;
        diag = detector_findings(eng);
        if (!diag.empty()) return false;
        std::set<i64> seen;
        for (const auto& v : tickets)
          for (i64 t : v) {
            if (t < 0 || t >= i64{nprocs} * ops || !seen.insert(t).second) {
              diag = "fai ticket " + std::to_string(t) + " out of range or duplicated";
              return false;
            }
          }
        if (c.read() != i64{nprocs} * ops) {
          diag = "final value " + std::to_string(c.read()) + " != " +
                 std::to_string(i64{nprocs} * ops);
          return false;
        }
        return true;
      });
}

/// FunnelStack: each processor pushes one distinct value then pops once;
/// processor 0 drains in a second (quiescent) run. Oracles: conservation
/// as multisets, detector clean.
inline sim::ExploreOutcome explore_funnel_stack(u32 nprocs, const sim::ExploreParams& ep = {}) {
  return sim::explore_all(
      nprocs, litmus_machine(), /*seed=*/1, ep,
      [&](sim::Engine& eng, std::string& diag) {
        FunnelStack<SimPlatform> st(nprocs, litmus_funnel(FunnelProtocol::kExchange), 64);
        std::vector<std::vector<u64>> popped(nprocs);
        eng.run([&](ProcId id) {
          (void)st.push(id + 1);
          if (auto v = st.pop()) popped[id].push_back(*v);
        });
        if (eng.explorer()->deadlocked()) return false;
        std::vector<u64> drained;
        eng.run([&](ProcId id) {
          if (id != 0) return;
          while (auto v = st.pop()) drained.push_back(*v);
        });
        if (eng.explorer()->deadlocked()) return false;
        diag = detector_findings(eng);
        if (!diag.empty()) return false;
        std::vector<u64> out = drained;
        for (const auto& v : popped) out.insert(out.end(), v.begin(), v.end());
        std::vector<u64> want;
        for (u32 i = 0; i < nprocs; ++i) want.push_back(i + 1);
        std::sort(out.begin(), out.end());
        if (out != want) {
          diag = "conservation violated: " + std::to_string(out.size()) + " values came back";
          return false;
        }
        return true;
      });
}

/// MCS lock handoff: `nprocs` processors each take the lock once and
/// increment a relaxed counter under it. Oracles: mutual exclusion (an
/// overlap flag raised inside the critical section), lost updates, and the
/// detector (the relaxed counter is ordered only by the lock's handoff
/// edges, so any handoff under-annotation would surface here).
inline sim::ExploreOutcome explore_mcs(u32 nprocs, const sim::ExploreParams& ep = {}) {
  return sim::explore_all(
      nprocs, litmus_machine(), /*seed=*/1, ep,
      [&](sim::Engine& eng, std::string& diag) {
        McsLock<SimPlatform> lock(nprocs);
        SimShared<u64> counter{0};
        SimShared<u64> in_cs{0};
        bool overlap = false;
        eng.run([&](ProcId) {
          McsGuard<SimPlatform> g(lock);
          if (in_cs.fetch_add(1) != 0) overlap = true;
          counter.store_relaxed(counter.load_relaxed() + 1);
          in_cs.fetch_sub(1);
        });
        if (eng.explorer()->deadlocked()) return false;
        if (overlap) {
          diag = "mutual exclusion violated: two fibers inside the critical section";
          return false;
        }
        diag = detector_findings(eng);
        if (!diag.empty()) return false;
        if (counter.load_relaxed() != nprocs) {
          diag = "lost update: counter " + std::to_string(counter.load_relaxed()) +
                 " != " + std::to_string(nprocs);
          return false;
        }
        return true;
      });
}

/// ReactiveCounter mode-switch handshake: high_wait=0 and up_streak=1
/// force the first completed MCS op to switch representations, so a
/// 2-processor fai pair drives the announce/recheck vs CAS/probe protocol
/// concurrently with an op in flight — the exact shape of the PR 3
/// store-buffering race (FPQ_SEEDED_BUG_REACTIVE_SB). Oracles: detector
/// clean, value conserved.
inline sim::ExploreOutcome explore_reactive(u32 nprocs, u32 ops,
                                            const sim::ExploreParams& ep = {}) {
  using Tuning = ReactiveCounter<SimPlatform>::Tuning;
  return sim::explore_all(
      nprocs, litmus_machine(), /*seed=*/1, ep,
      [&](sim::Engine& eng, std::string& diag) {
        ReactiveCounter<SimPlatform> c(nprocs, litmus_funnel(FunnelProtocol::kExchange),
                                       /*floor=*/-1000, /*initial=*/0,
                                       Tuning{/*high_wait=*/0, /*up_streak=*/1,
                                              /*down_streak=*/1000});
        eng.run([&](ProcId) {
          for (u32 i = 0; i < ops; ++i) (void)c.fai();
        });
        if (eng.explorer()->deadlocked()) return false;
        diag = detector_findings(eng);
        if (!diag.empty()) return false;
        if (c.read() != i64{nprocs} * ops) {
          diag = "final value " + std::to_string(c.read()) + " != " +
                 std::to_string(i64{nprocs} * ops);
          return false;
        }
        return true;
      });
}

/// Hazard-pointer protect/scan handshake, on the domain directly: p0
/// protects a stable source word while p1 retires enough to force scans
/// (threshold 1). The protect publish/validate vs scan read is the
/// store-buffering pair FPQ_SEEDED_BUG_HP_RELAXED under-annotates.
/// Oracles: detector clean (nothing else is observable — the retired
/// pointer is synthetic and its deleter a no-op).
inline sim::ExploreOutcome explore_hazard(const sim::ExploreParams& ep = {}) {
  return sim::explore_all(
      2, litmus_machine(), /*seed=*/1, ep, [&](sim::Engine& eng, std::string& diag) {
        reclaim::HazardDomain<SimPlatform> dom(/*maxprocs=*/2, /*slots_per_proc=*/1,
                                               /*scan_threshold=*/1, /*tag_mask=*/0);
        SimShared<u64> src{0x1000};
        alignas(8) static char dummy[8]; // address payload only; never freed
        eng.run([&](ProcId id) {
          if (id == 0) {
            (void)dom.protect(0, 0, src);
            dom.clear(0, 0);
          } else {
            dom.retire(1, static_cast<void*>(dummy), [](void*) {});
          }
        });
        if (eng.explorer()->deadlocked()) return false;
        diag = detector_findings(eng);
        return diag.empty();
      });
}

} // namespace fpq::dpor_litmus
