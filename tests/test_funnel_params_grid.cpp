// Property grid over funnel geometries: the funnel invariants must hold
// for every combination of layer count, width, attempts, adaption setting
// and elimination — not just the tuned defaults. This is the sweep that
// catches protocol bugs that only appear at degenerate geometries (single
// slot, zero spin budget, depth > log2(procs), ...).
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <sstream>

#include "funnel/counter.hpp"
#include "funnel/stack.hpp"
#include "platform/sim.hpp"

namespace fpq {
namespace {

struct GridCase {
  u32 nprocs;
  u32 levels;
  u32 width;
  u32 attempts;
  u32 spin;
  bool adaptive;
  bool eliminate;
  u64 seed;
};

void PrintTo(const GridCase& c, std::ostream* os) {
  *os << "P" << c.nprocs << "_L" << c.levels << "_W" << c.width << "_A"
      << c.attempts << "_S" << c.spin << (c.adaptive ? "_ad" : "_fix")
      << (c.eliminate ? "_elim" : "_noelim") << "_s" << c.seed;
}

FunnelParams params_of(const GridCase& c) {
  FunnelParams p;
  p.levels = c.levels;
  p.attempts = c.attempts;
  p.adaptive = c.adaptive;
  for (u32 d = 0; d < kMaxFunnelLevels; ++d) {
    p.width[d] = c.width;
    p.spin[d] = c.spin;
  }
  return p;
}

std::vector<GridCase> grid() {
  std::vector<GridCase> cases;
  u64 seed = 100;
  for (u32 nprocs : {3u, 16u, 48u}) {
    for (u32 levels : {1u, 3u, 6u}) {
      for (u32 width : {1u, 8u}) {
        for (bool adaptive : {true, false}) {
          for (bool eliminate : {true, false}) {
            cases.push_back({nprocs, levels, width, /*attempts=*/2, /*spin=*/4,
                             adaptive, eliminate, ++seed});
          }
        }
      }
    }
  }
  // Degenerate spins/attempts.
  cases.push_back({16, 2, 2, 1, 0, true, true, ++seed});
  cases.push_back({16, 2, 2, 8, 64, false, true, ++seed});
  return cases;
}

class CounterGrid : public ::testing::TestWithParam<GridCase> {};

TEST_P(CounterGrid, BoundedInvariants) {
  const GridCase& c = GetParam();
  FunnelCounter<SimPlatform> ctr(
      c.nprocs, params_of(c),
      {/*bounded=*/true, c.eliminate, /*floor=*/0, FunnelCounter<SimPlatform>::kNoCeiling},
      0);
  auto incs = std::make_unique<SimShared<u64>>(0);
  auto effective = std::make_unique<SimShared<u64>>(0);
  sim::Engine eng(c.nprocs, {}, c.seed);
  eng.run([&](ProcId) {
    for (u32 i = 0; i < 20; ++i) {
      if (SimPlatform::flip()) {
        ctr.fai();
        incs->fetch_add(1);
      } else {
        const i64 before = ctr.bfad(0);
        ASSERT_GE(before, 0);
        if (before > 0) effective->fetch_add(1);
      }
    }
  });
  EXPECT_EQ(ctr.read(),
            static_cast<i64>(incs->load()) - static_cast<i64>(effective->load()));
  EXPECT_GE(ctr.read(), 0);
}

INSTANTIATE_TEST_SUITE_P(Grid, CounterGrid, ::testing::ValuesIn(grid()),
                         ::testing::PrintToStringParamName());

class StackGrid : public ::testing::TestWithParam<GridCase> {};

TEST_P(StackGrid, Conservation) {
  const GridCase& c = GetParam();
  FunnelStack<SimPlatform> st(c.nprocs, params_of(c), 1u << 12, c.eliminate);
  std::vector<std::vector<u64>> popped(c.nprocs);
  std::vector<u64> pushed(c.nprocs, 0);
  sim::Engine eng(c.nprocs, {}, c.seed);
  eng.run([&](ProcId id) {
    for (u32 i = 0; i < 20; ++i) {
      if (SimPlatform::flip()) {
        ASSERT_TRUE(st.push((static_cast<u64>(id) << 32) | i));
        ++pushed[id];
      } else if (auto v = st.pop()) {
        popped[id].push_back(*v);
      }
    }
  });
  eng.run([&](ProcId id) {
    if (id != 0) return;
    while (auto v = st.pop()) popped[0].push_back(*v);
  });
  u64 total_pushed = 0, total_popped = 0;
  std::set<u64> uniq;
  for (u64 n : pushed) total_pushed += n;
  for (const auto& v : popped) {
    total_popped += v.size();
    uniq.insert(v.begin(), v.end());
  }
  EXPECT_EQ(total_popped, total_pushed);
  EXPECT_EQ(uniq.size(), total_popped);
}

INSTANTIATE_TEST_SUITE_P(Grid, StackGrid, ::testing::ValuesIn(grid()),
                         ::testing::PrintToStringParamName());

} // namespace
} // namespace fpq
