// Self-tests of the consistency checkers: hand-built histories with known
// verdicts (a checker that never rejects is worthless).
#include <gtest/gtest.h>

#include "verify/history.hpp"
#include "verify/linearizability.hpp"
#include "verify/model_pq.hpp"
#include "verify/quiescent.hpp"

namespace fpq {
namespace {

OpRecord ins(ProcId p, Cycles t0, Cycles t1, Prio prio, Item item) {
  return OpRecord::insert_op(p, t0, t1, {prio, item});
}
OpRecord del(ProcId p, Cycles t0, Cycles t1, Prio prio, Item item) {
  return OpRecord::delete_op(p, t0, t1, Entry{prio, item});
}
OpRecord del_empty(ProcId p, Cycles t0, Cycles t1) {
  return OpRecord::delete_op(p, t0, t1, std::nullopt);
}

TEST(LinearizabilityChecker, AcceptsSequentialHistory) {
  History h{ins(0, 0, 1, 5, 50), ins(0, 2, 3, 3, 30), del(0, 4, 5, 3, 30),
            del(0, 6, 7, 5, 50), del_empty(0, 8, 9)};
  const auto r = check_linearizable(h);
  EXPECT_TRUE(r.linearizable);
  ASSERT_EQ(r.order.size(), 5u);
}

TEST(LinearizabilityChecker, RejectsWrongMinimum) {
  // Both inserts strictly precede the delete, so returning priority 5 while
  // 3 is present is not linearizable.
  History h{ins(0, 0, 1, 5, 50), ins(0, 2, 3, 3, 30), del(1, 10, 11, 5, 50)};
  EXPECT_FALSE(check_linearizable(h).linearizable);
}

TEST(LinearizabilityChecker, AcceptsOverlapChoosingEitherOrder) {
  // Two overlapping inserts; a delete after both may return either one...
  History a{ins(0, 0, 10, 5, 50), ins(1, 0, 10, 3, 30), del(0, 20, 21, 3, 30)};
  EXPECT_TRUE(check_linearizable(a).linearizable);
  // ...but only the minimum of whatever is present: returning 5 while 3 is
  // definitely inside is wrong.
  History b{ins(0, 0, 10, 5, 50), ins(1, 0, 10, 3, 30), del(0, 20, 21, 5, 50)};
  EXPECT_FALSE(check_linearizable(b).linearizable);
}

TEST(LinearizabilityChecker, DeleteOverlappingInsertMayClaimIt) {
  // delete overlaps the insert of (1,10): legal to linearize insert first.
  History h{ins(0, 0, 100, 1, 10), del(1, 50, 60, 1, 10)};
  EXPECT_TRUE(check_linearizable(h).linearizable);
}

TEST(LinearizabilityChecker, RejectsDeleteBeforeAnyInsert) {
  // The delete completes before the insert begins: nothing to return.
  History h{del(1, 0, 5, 1, 10), ins(0, 10, 20, 1, 10)};
  EXPECT_FALSE(check_linearizable(h).linearizable);
}

TEST(LinearizabilityChecker, RejectsDoubleDelete) {
  History h{ins(0, 0, 1, 2, 20), del(0, 2, 3, 2, 20), del(1, 2, 4, 2, 20)};
  EXPECT_FALSE(check_linearizable(h).linearizable);
}

TEST(LinearizabilityChecker, EmptyResultRequiresEmptyQueue) {
  // insert finished before the delete started, nothing removed it: an
  // empty result is impossible.
  History h{ins(0, 0, 1, 2, 20), del_empty(1, 5, 6)};
  EXPECT_FALSE(check_linearizable(h).linearizable);
  // But if they overlap, empty is fine (delete first).
  History h2{ins(0, 0, 10, 2, 20), del_empty(1, 5, 6)};
  EXPECT_TRUE(check_linearizable(h2).linearizable);
}

TEST(LinearizabilityChecker, RealTimeOrderBetweenDeletes) {
  // insert 3 then insert 5 (sequential); two sequential deletes must
  // return 3 first. Returning 5 then 3 is a real-time violation.
  History good{ins(0, 0, 1, 3, 30), ins(0, 2, 3, 5, 50), del(0, 4, 5, 3, 30),
               del(0, 6, 7, 5, 50)};
  EXPECT_TRUE(check_linearizable(good).linearizable);
  History bad{ins(0, 0, 1, 3, 30), ins(0, 2, 3, 5, 50), del(0, 4, 5, 5, 50),
              del(0, 6, 7, 3, 30)};
  EXPECT_FALSE(check_linearizable(bad).linearizable);
}

TEST(LinearizabilityChecker, TieOrderAmongEqualPrioritiesIsFree) {
  History h{ins(0, 0, 1, 4, 1), ins(0, 2, 3, 4, 2), del(0, 4, 5, 4, 1),
            del(0, 6, 7, 4, 2)};
  EXPECT_TRUE(check_linearizable(h).linearizable);
}

TEST(LinearizabilityChecker, RejectsDeleteOfNeverInsertedItem) {
  // The returned entry appears in no insert at all — a fabricated item.
  History h{ins(0, 0, 1, 2, 20), del(1, 2, 3, 2, 99)};
  EXPECT_FALSE(check_linearizable(h).linearizable);
}

TEST(LinearizabilityChecker, RejectsItemReturnedUnderWrongPriority) {
  // Item 20 was inserted at priority 2; a delete claiming it at priority 7
  // matches no insert.
  History h{ins(0, 0, 1, 2, 20), del(1, 2, 3, 7, 20)};
  EXPECT_FALSE(check_linearizable(h).linearizable);
}

TEST(QuiescentChecker, AcceptsExactMinimum) {
  const std::vector<Entry> E{{1, 10}, {5, 50}, {9, 90}};
  const auto r = check_quiescent_phase(E, {}, {{1, 10}});
  EXPECT_TRUE(r.ok) << r.diagnostic;
}

TEST(QuiescentChecker, RejectsNonMinimumWithoutInserts) {
  const std::vector<Entry> E{{1, 10}, {5, 50}, {9, 90}};
  const auto r = check_quiescent_phase(E, {}, {{9, 90}});
  EXPECT_FALSE(r.ok);
}

TEST(QuiescentChecker, InsertSlackPermitsReordering) {
  // One overlapping insert pair lets a delete return the larger of the two.
  const std::vector<Entry> E{};
  const std::vector<Entry> I{{0, 1}, {5, 2}};
  const auto r = check_quiescent_phase(E, I, {{5, 2}});
  EXPECT_TRUE(r.ok) << r.diagnostic;
}

TEST(QuiescentChecker, RejectsForeignItems) {
  const std::vector<Entry> E{{1, 10}};
  const auto r = check_quiescent_phase(E, {}, {{1, 11}});
  EXPECT_FALSE(r.ok);
}

TEST(QuiescentChecker, RejectsDuplicatedDeletion) {
  const std::vector<Entry> E{{1, 10}};
  const auto r = check_quiescent_phase(E, {}, {{1, 10}, {1, 10}});
  EXPECT_FALSE(r.ok);
}

TEST(QuiescentChecker, RejectsMoreDeletesThanItems) {
  const auto r = check_quiescent_phase({{1, 10}}, {}, {{1, 10}, {2, 20}});
  EXPECT_FALSE(r.ok);
}

TEST(QuiescentChecker, EmptyPhaseIsFine) {
  EXPECT_TRUE(check_quiescent_phase({}, {}, {}).ok);
}

TEST(QuiescentChecker, RankBoundIsTightWithPendingInserts) {
  // One pending insert buys exactly one rank of slack: with E = {0,1,2}
  // and I = {{9,.}}, a delete may return the 2nd-smallest of E u I but
  // never the 3rd.
  const std::vector<Entry> E{{0, 1}, {1, 2}, {2, 3}};
  const std::vector<Entry> I{{9, 4}};
  EXPECT_TRUE(check_quiescent_phase(E, I, {{1, 2}}).ok);
  EXPECT_FALSE(check_quiescent_phase(E, I, {{2, 3}}).ok);
  EXPECT_FALSE(check_quiescent_phase(E, I, {{9, 4}}).ok);
}

TEST(QuiescentChecker, RejectsPhaseConservationViolation) {
  // More copies deleted than exist anywhere in E u I — the signature of a
  // lost update duplicating an item (the dropped-bin-lock failure mode).
  const std::vector<Entry> E{{1, 10}};
  const std::vector<Entry> I{{1, 10}};
  EXPECT_TRUE(check_quiescent_phase(E, I, {{1, 10}, {1, 10}}).ok);
  EXPECT_FALSE(check_quiescent_phase(E, I, {{1, 10}, {1, 10}, {1, 10}}).ok);
}

TEST(DrainChecker, DetectsDisorder) {
  EXPECT_TRUE(check_drain_sorted({{1, 1}, {1, 2}, {3, 3}}).ok);
  EXPECT_FALSE(check_drain_sorted({{1, 1}, {3, 3}, {2, 2}}).ok);
  EXPECT_TRUE(check_drain_sorted({}).ok);
}

TEST(SameEntries, MultisetSemantics) {
  EXPECT_TRUE(same_entries({{1, 1}, {1, 1}, {2, 2}}, {{2, 2}, {1, 1}, {1, 1}}));
  EXPECT_FALSE(same_entries({{1, 1}, {1, 1}}, {{1, 1}}));
  EXPECT_FALSE(same_entries({{1, 1}}, {{1, 2}}));
  EXPECT_TRUE(same_entries({}, {}));
}

TEST(ModelPq, BasicSemantics) {
  ModelPq m;
  EXPECT_TRUE(m.empty());
  EXPECT_FALSE(m.delete_min().has_value());
  m.insert(5, 50);
  m.insert(3, 30);
  m.insert(5, 51);
  EXPECT_EQ(m.size(), 3u);
  EXPECT_EQ(*m.min_priority(), 3u);
  EXPECT_TRUE(m.contains(5, 50));
  EXPECT_FALSE(m.contains(5, 52));
  auto e = m.delete_min();
  EXPECT_EQ(e->prio, 3u);
  // LIFO within a priority.
  EXPECT_EQ(m.delete_min()->item, 51u);
  EXPECT_EQ(m.delete_min()->item, 50u);
  EXPECT_TRUE(m.empty());
}

TEST(ModelPq, RemoveSpecific) {
  ModelPq m;
  m.insert(2, 20);
  m.insert(2, 21);
  EXPECT_TRUE(m.remove(2, 20));
  EXPECT_FALSE(m.remove(2, 20));
  EXPECT_TRUE(m.remove(2, 21));
  EXPECT_TRUE(m.empty());
  EXPECT_FALSE(m.remove(7, 1));
}

TEST(ModelPq, EntriesAscending) {
  ModelPq m;
  m.insert(9, 1);
  m.insert(0, 2);
  m.insert(4, 3);
  const auto es = m.entries();
  ASSERT_EQ(es.size(), 3u);
  EXPECT_EQ(es[0].prio, 0u);
  EXPECT_EQ(es[1].prio, 4u);
  EXPECT_EQ(es[2].prio, 9u);
}

} // namespace
} // namespace fpq
