// Tests of the benchmark support layer: the paper's §4 workload generator,
// stats accounting, formatting and the table printer.
#include <gtest/gtest.h>

#include <sstream>

#include "bench_support/measure.hpp"
#include "bench_support/stats.hpp"
#include "bench_support/table.hpp"
#include "bench_support/workload.hpp"
#include "core/registry.hpp"
#include "platform/sim.hpp"

namespace fpq {
namespace {

TEST(OpStats, MergingAndMeans) {
  OpStats a{.inserts = 10, .deletes = 5, .empty_deletes = 1, .insert_cycles = 1000,
            .delete_cycles = 2500};
  OpStats b{.inserts = 0, .deletes = 5, .empty_deletes = 0, .insert_cycles = 0,
            .delete_cycles = 500};
  a += b;
  EXPECT_EQ(a.ops(), 20u);
  EXPECT_EQ(a.cycles(), 4000u);
  EXPECT_DOUBLE_EQ(a.mean_all(), 200.0);
  EXPECT_DOUBLE_EQ(a.mean_insert(), 100.0);
  EXPECT_DOUBLE_EQ(a.mean_delete(), 300.0);
}

TEST(OpStats, EmptyMeansAreZero) {
  OpStats s;
  EXPECT_DOUBLE_EQ(s.mean_all(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean_insert(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean_delete(), 0.0);
}

TEST(Formatting, KCyclesAndCycles) {
  EXPECT_EQ(fmt_kcycles(12700.0), "12.7");
  EXPECT_EQ(fmt_kcycles(400.0), "0.4");
  EXPECT_EQ(fmt_cycles(1234.56), "1235");
}

TEST(Workload, OpCountsAndMixRespected) {
  PqParams params{.npriorities = 8, .maxprocs = 4};
  auto pq = make_priority_queue<SimPlatform>(Algorithm::kSimpleLinear, params);
  WorkloadParams w;
  w.nprocs = 4;
  w.ops_per_proc = 100;
  w.insert_pct = 100; // all inserts
  const OpStats s = run_pq_workload<SimPlatform>(*pq, w);
  EXPECT_EQ(s.inserts, 400u);
  EXPECT_EQ(s.deletes, 0u);
  EXPECT_GT(s.insert_cycles, 0u);
}

TEST(Workload, CoinFlipMixIsRoughlyBalanced) {
  PqParams params{.npriorities = 8, .maxprocs = 8, .bin_capacity = 1u << 12};
  auto pq = make_priority_queue<SimPlatform>(Algorithm::kSimpleLinear, params);
  WorkloadParams w;
  w.nprocs = 8;
  w.ops_per_proc = 200;
  w.insert_pct = 50;
  const OpStats s = run_pq_workload<SimPlatform>(*pq, w);
  EXPECT_EQ(s.ops(), 1600u);
  EXPECT_GT(s.inserts, 650u);
  EXPECT_LT(s.inserts, 950u);
  // Queue starts empty, so some deletes hit nothing.
  EXPECT_GT(s.empty_deletes, 0u);
  EXPECT_LE(s.empty_deletes, s.deletes);
}

TEST(Workload, DeterministicForFixedSeedWithinProcess) {
  PqParams params{.npriorities = 8, .maxprocs = 4};
  auto pq1 = make_priority_queue<SimPlatform>(Algorithm::kSimpleTree, params);
  auto pq2 = make_priority_queue<SimPlatform>(Algorithm::kSimpleTree, params);
  WorkloadParams w;
  w.nprocs = 4;
  w.ops_per_proc = 50;
  const OpStats a = run_pq_workload<SimPlatform>(*pq1, w);
  const OpStats b = run_pq_workload<SimPlatform>(*pq2, w);
  // Same seed, same op mix — counts must agree exactly (latency depends on
  // host addresses, which differ between the two queue instances).
  EXPECT_EQ(a.inserts, b.inserts);
  EXPECT_EQ(a.deletes, b.deletes);
}

TEST(MeasureSim, ProducesPlausibleLatencies) {
  MeasureConfig cfg;
  cfg.algo = Algorithm::kFunnelTree;
  cfg.nprocs = 8;
  cfg.ops_per_proc = 50;
  const OpStats s = measure_sim(cfg);
  EXPECT_EQ(s.ops(), 8u * 50u);
  EXPECT_GT(s.mean_all(), 10.0);    // more than a cache hit
  EXPECT_LT(s.mean_all(), 100000.0); // far below pathological
}

TEST(MeasureSim, MachineParamsMatter) {
  MeasureConfig slow;
  slow.algo = Algorithm::kSimpleTree;
  slow.nprocs = 16;
  slow.ops_per_proc = 50;
  MeasureConfig fast = slow;
  slow.machine.t_occ = 100;
  fast.machine.t_occ = 1;
  EXPECT_GT(measure_sim(slow).mean_all(), measure_sim(fast).mean_all());
}

TEST(BenchArgs, QuickAndOpsParsing) {
  const char* a1[] = {"prog"};
  EXPECT_EQ(bench_ops_per_proc(1, const_cast<char**>(a1), 200), 200u);
  const char* a2[] = {"prog", "--quick"};
  EXPECT_EQ(bench_ops_per_proc(2, const_cast<char**>(a2), 200), 50u);
  const char* a3[] = {"prog", "--ops=33"};
  EXPECT_EQ(bench_ops_per_proc(2, const_cast<char**>(a3), 200), 33u);
}

TEST(Table, AlignsColumnsAndPrintsAllRows) {
  std::ostringstream os;
  print_table(os, "T", "x", {"1", "20"},
              {{"alpha", {"10", "2000"}}, {"b", {"7", "8"}}});
  const std::string out = os.str();
  EXPECT_NE(out.find("== T =="), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("2000"), std::string::npos);
  EXPECT_NE(out.find("20"), std::string::npos);
  // Two header lines + two rows at least.
  int lines = 0;
  for (char c : out)
    if (c == '\n') ++lines;
  EXPECT_GE(lines, 4);
}

} // namespace
} // namespace fpq
