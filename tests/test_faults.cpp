// Fault-injection battery (`ctest -L fault`, DESIGN.md §12): the sim fault
// engine driven through the public surfaces that depend on it —
//
//   * plan / spec serialization round-trips (fault counterexamples must
//     replay through the same one-line specs as everything else);
//   * empirical progress classification: the lock-free skiplist keeps
//     completing operations with a processor fail-stopped mid-operation
//     (both reclamation policies), while every lock-based queue is
//     *detected* — parked or watchdog-wedged — rather than hanging ctest;
//   * the bounded-wait API: try_delete_min returns kTimeout behind a
//     stalled-forever lock holder instead of blocking past its budget;
//   * allocation-failure injection: refused inserts are clean no-ops, no
//     leak and no double-free across the queue's whole lifetime (counting
//     allocator), try_insert reports kNoMemory;
//   * spurious CAS failure and finite stalls: transient faults that every
//     queue must absorb with no checker-visible effect;
//   * elimination-layer partner crashes: a parked deleter whose inserter
//     died withdraws in bounded time, a dead deleter's slot never traps an
//     inserter.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "platform/sim.hpp"
#include "pq/elim_layer.hpp"
#include "pq/lockfree_skiplist_pq.hpp"
#include "pq/linear_funnels_pq.hpp"
#include "sim/engine.hpp"
#include "sim/faults.hpp"
#include "verify/liveness.hpp"
#include "verify/stress.hpp"

namespace fpq {
namespace {

using reclaim::Policy;
using sim::FaultKind;
using sim::FaultPlan;
using sim::ProcOutcome;

// ---------------------------------------------------------------- replay --

TEST(FaultPlan, RoundTripsThroughString) {
  const char* lines[] = {
      "none",
      "crash@p1a120",
      "stall@p2a50n400",
      "stall@p0a7",
      "casfail@p3a40n8",
      "allocfail@p0a2n6",
      "crash@p1a120,stall@p2a50n400,casfail@p0a9n2,allocfail@p2a1n3",
  };
  for (const char* line : lines) {
    const FaultPlan plan = sim::fault_plan_from_string(line);
    EXPECT_EQ(sim::to_string(plan), line);
    // And the parse of the print parses identically.
    const FaultPlan again = sim::fault_plan_from_string(sim::to_string(plan));
    EXPECT_EQ(sim::to_string(again), line);
  }
  EXPECT_TRUE(sim::fault_plan_from_string("none").empty());
  EXPECT_TRUE(sim::fault_plan_from_string("").empty()); // "" == none
  for (const char* bad : {"crash", "crash@x1a2", "crash@p1", "frob@p1a2",
                          "crash@p1a2,", "crash@p1a2n"}) {
    EXPECT_THROW((void)sim::fault_plan_from_string(bad), std::invalid_argument)
        << "accepted malformed plan: '" << bad << "'";
  }
}

TEST(FaultPlan, StressSpecCarriesFaultKeys) {
  verify::StressSpec s;
  s.algo = Algorithm::kLockfreeSkipList;
  s.faults = sim::fault_plan_from_string("crash@p1a120,allocfail@p0a2n6");
  s.watchdog = 20000;
  const verify::StressSpec r = verify::spec_from_line(verify::to_line(s));
  EXPECT_EQ(verify::to_line(r), verify::to_line(s));
  EXPECT_EQ(sim::to_string(r.faults), "crash@p1a120,allocfail@p0a2n6");
  EXPECT_EQ(r.watchdog, 20000u);
  EXPECT_TRUE(r.faulted());

  // Fault-free specs serialize with no fault keys at all: the lines stay
  // byte-identical to what pre-fault-engine builds emitted and replay there.
  verify::StressSpec plain;
  const std::string line = verify::to_line(plain);
  EXPECT_EQ(line.find("faults="), std::string::npos);
  EXPECT_EQ(line.find("watchdog="), std::string::npos);
  EXPECT_FALSE(verify::spec_from_line(line).faulted());
}

TEST(FaultPlan, LivenessSpecRoundTrips) {
  verify::LivenessSpec s;
  s.algo = Algorithm::kFunnelTree;
  s.reclaim = Policy::kEpoch;
  s.seed = 7;
  s.nprocs = 3;
  s.ops_per_proc = 9;
  s.faults = sim::fault_plan_from_string("stall@p1a250");
  s.watchdog = 4096;
  const verify::LivenessSpec r = verify::liveness_spec_from_line(verify::to_line(s));
  EXPECT_EQ(verify::to_line(r), verify::to_line(s));
  EXPECT_EQ(r.algo, Algorithm::kFunnelTree);
  EXPECT_EQ(r.watchdog, 4096u);
}

// --------------------------------------------- progress classification --

struct FaultPolicyCase {
  Policy policy;
};
void PrintTo(const FaultPolicyCase& c, std::ostream* os) {
  *os << (c.policy == Policy::kHazardPointer ? "Hp" : "Ebr");
}

class LockfreeSurvivesCrash : public ::testing::TestWithParam<FaultPolicyCase> {};

// The acceptance centerpiece: fail-stop one processor at several depths —
// including mid-insert and mid-restructure — and every survivor still
// completes its full quota of operations, under both reclamation policies.
// The post-run orphan adoption inside run_liveness also exercises teardown:
// the crashed processor's stale hazard slots / epoch pin and limbo are
// adopted by a survivor, and the domain destructor's empty-limbo assert
// holds.
TEST_P(LockfreeSurvivesCrash, SurvivorsCompleteUnderEveryPlan) {
  for (const char* plan : {"crash@p1a100", "crash@p1a121", "crash@p1a200",
                           "crash@p1a350", "crash@p1a500", "crash@p1a1500",
                           "stall@p1a250", "stall@p1a900"}) {
    verify::LivenessSpec spec;
    spec.algo = Algorithm::kLockfreeSkipList;
    spec.reclaim = GetParam().policy;
    spec.faults = sim::fault_plan_from_string(plan);
    const verify::LivenessResult r = verify::run_liveness(spec);
    EXPECT_EQ(r.survivors, spec.nprocs - 1) << plan;
    EXPECT_EQ(r.survivors_completed, r.survivors)
        << "survivor failed to complete under " << plan;
    EXPECT_EQ(r.survivors_blocked, 0u) << plan;
    EXPECT_EQ(r.observed, ProgressGuarantee::kLockFree) << plan;
    for (ProcId p = 0; p < spec.nprocs; ++p) {
      if (p == 1) continue;
      EXPECT_EQ(r.completed[p], spec.ops_per_proc)
          << "p" << p << " quota under " << plan;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, LockfreeSurvivesCrash,
                         ::testing::Values(FaultPolicyCase{Policy::kHazardPointer},
                                           FaultPolicyCase{Policy::kEpoch}),
                         ::testing::PrintToStringParamName());

// The whole registry through the battery: every declared-lock-free queue
// survives every plan; every declared-blocking (lock-based) queue is
// *observed* blocking under at least one plan — a survivor parked on the
// victim's dead lock or wedged by the watchdog — and the battery itself
// terminating is the no-hang guarantee (the watchdog parks wedged
// spinners, so the run queue always drains).
TEST(LivenessBattery, DeclaredMatchesObservedForAllQueues) {
  const std::vector<verify::LivenessRow> rows =
      verify::run_liveness_battery(verify::LivenessBatteryOptions{});
  ASSERT_EQ(rows.size(), all_algorithms().size());
  for (const verify::LivenessRow& row : rows) {
    EXPECT_TRUE(row.ok) << verify::format_liveness_table(rows);
    if (row.declared == ProgressGuarantee::kLockFree) {
      EXPECT_TRUE(row.all_survivors_completed)
          << to_string(row.algo) << " is declared lock-free but a survivor "
          << "of a crash plan failed to complete";
      EXPECT_FALSE(row.observed_blocking) << to_string(row.algo);
    } else {
      // The plan list is chosen so every lock-based queue's critical
      // section is hit somewhere (liveness.cpp); detection — not survival
      // — is their contract.
      EXPECT_TRUE(row.observed_blocking)
          << to_string(row.algo) << " is lock-based but no plan in the "
          << "battery caught a survivor blocked on the victim's lock";
    }
  }
}

// ------------------------------------------------------- bounded waiting --

// try_delete_min behind a stalled-forever lock holder: the victim stalls
// mid-operation somewhere in the funnel-stack critical section; the
// survivor's bounded deletes must all return within budget — kTimeout when
// the dead lock is in the way — and the survivor must finish its loop (no
// watchdog wedge, no park). The stall ordinal sweep guarantees at least
// one plan lands inside the lock window without hand-tuning.
TEST(BoundedWait, TryDeleteMinTimesOutBehindDeadLockHolder) {
  u32 timeouts_somewhere = 0;
  for (u64 at : {100, 121, 200, 212, 303, 350, 436, 520}) {
    constexpr u32 kProcs = 2;
    PqParams params{.npriorities = 2, .maxprocs = kProcs};
    LinearFunnelsPq<SimPlatform> pq(params, FunnelOptions{});

    sim::Engine eng(kProcs, {}, /*seed=*/1);
    FaultPlan plan;
    plan.events.push_back({FaultKind::kStall, 1, at, 0}); // forever
    plan.watchdog_budget = 200000; // backstop only: must never fire for p0
    eng.set_fault_plan(std::move(plan));

    u32 timeouts = 0, oks = 0, done = 0;
    eng.run([&](ProcId id) {
      if (id == 1) {
        // The victim: blocking inserts until the stall takes it down
        // holding whatever lock access `at` was under.
        for (u32 i = 0; i < 64; ++i) {
          SimPlatform::heartbeat();
          pq.insert(static_cast<Prio>(i % 2), i);
        }
        return;
      }
      // The survivor: wait out the victim's stall point, then issue
      // bounded deletes. Every call must come back; kTimeout is the
      // expected answer whenever the dead lock blocks the scan.
      SimPlatform::delay(1u << 20);
      for (u32 i = 0; i < 16; ++i) {
        SimPlatform::heartbeat();
        Entry out;
        const PqStatus st = pq.try_delete_min(out, TryBudget{.attempts = 64});
        if (st == PqStatus::kTimeout) ++timeouts;
        if (st == PqStatus::kOk) ++oks;
      }
      ++done;
    });
    EXPECT_EQ(done, 1u) << "survivor did not finish under stall@p1a" << at;
    EXPECT_EQ(eng.fault_report().outcomes[0], ProcOutcome::kCompleted)
        << "survivor wedged/blocked under stall@p1a" << at;
    timeouts_somewhere += timeouts;
    (void)oks;
  }
  // The sweep must include at least one plan that actually pinned the lock.
  EXPECT_GT(timeouts_somewhere, 0u)
      << "no stall ordinal produced a bounded timeout: the sweep never "
      << "caught the victim inside a lock";
}

// ------------------------------------------------- allocation failures --

class AllocFaults : public ::testing::TestWithParam<FaultPolicyCase> {};

// Allocation-failure injection across a full queue lifetime: refused
// inserts are recorded no-ops, try_insert reports kNoMemory, and the
// counting allocator balances exactly — no leak, no double-free — once
// the queue is destroyed.
TEST_P(AllocFaults, SkiplistUnwindsCleanlyWithZeroLeaks) {
  auto& counters = SimPlatform::alloc_counters();
  const u64 outstanding0 = counters.outstanding();
  const u64 double_frees0 = counters.double_frees;
  const u64 failed0 = counters.failed;
  u64 refused = 0, inserted = 0, removed = 0;
  {
    constexpr u32 kProcs = 4;
    PqParams params{.npriorities = 4, .maxprocs = kProcs};
    params.reclaim_policy = GetParam().policy;
    LockfreeSkipListPq<SimPlatform> pq(params);

    sim::Engine eng(kProcs, {}, /*seed=*/3);
    FaultPlan plan;
    // Scattered windows on every processor, hitting first allocations and
    // mid-run ones (node allocation is one try_alloc per insert attempt).
    plan.events.push_back({FaultKind::kAllocFail, 0, 0, 3});
    plan.events.push_back({FaultKind::kAllocFail, 1, 2, 4});
    plan.events.push_back({FaultKind::kAllocFail, 2, 5, 2});
    plan.events.push_back({FaultKind::kAllocFail, 3, 1, 6});
    eng.set_fault_plan(std::move(plan));

    eng.run([&](ProcId id) {
      for (u32 i = 0; i < 40; ++i) {
        SimPlatform::heartbeat();
        SimPlatform::delay(SimPlatform::rnd(64));
        if (SimPlatform::rnd(100) < 60) {
          if (pq.insert(static_cast<Prio>(SimPlatform::rnd(4)),
                        (static_cast<u64>(id) << 24) | i))
            ++inserted;
          else
            ++refused; // injected failure: clean no-op by contract
        } else if (pq.delete_min()) {
          ++removed;
        }
      }
    });
    eng.run([&](ProcId id) {
      if (id != 0) return;
      while (pq.delete_min()) ++removed;
    });
    EXPECT_EQ(inserted, removed) << "conservation across refused inserts";
    const reclaim::DomainStats s = pq.reclaim_stats();
    EXPECT_EQ(s.retired, s.reclaimed + s.in_limbo);
  }
  EXPECT_GT(refused, 0u) << "no injected allocation failure ever fired";
  EXPECT_GT(counters.failed, failed0);
  EXPECT_EQ(counters.outstanding(), outstanding0)
      << "allocation-failure unwind leaked nodes";
  EXPECT_EQ(counters.double_frees, double_frees0);
}

TEST_P(AllocFaults, TryInsertReportsNoMemory) {
  PqParams params{.npriorities = 2, .maxprocs = 1};
  params.reclaim_policy = GetParam().policy;
  LockfreeSkipListPq<SimPlatform> pq(params);
  sim::Engine eng(1, {}, /*seed=*/1);
  FaultPlan plan;
  plan.events.push_back({FaultKind::kAllocFail, 0, 0, 1}); // first node alloc
  eng.set_fault_plan(std::move(plan));
  eng.run([&](ProcId) {
    EXPECT_EQ(pq.try_insert(0, 7, TryBudget{}), PqStatus::kNoMemory);
    EXPECT_EQ(pq.try_insert(0, 7, TryBudget{}), PqStatus::kOk); // window past
    Entry out;
    EXPECT_EQ(pq.try_delete_min(out, TryBudget{}), PqStatus::kOk);
    EXPECT_EQ(out.item, 7u);
    EXPECT_EQ(pq.try_delete_min(out, TryBudget{}), PqStatus::kEmpty);
  });
}

INSTANTIATE_TEST_SUITE_P(Sweep, AllocFaults,
                         ::testing::Values(FaultPolicyCase{Policy::kHazardPointer},
                                           FaultPolicyCase{Policy::kEpoch}),
                         ::testing::PrintToStringParamName());

// -------------------------------------------------- transient injection --

// Spurious CAS failures and finite stalls are transient: every queue must
// absorb them with no checker-visible effect. Driven through the stress
// harness so the full faulted-run checks (no-fabrication, drain order)
// apply; the specs replay through fpq_stress --replay like any other.
TEST(TransientFaults, CasFailAndFiniteStallsPassStressChecks) {
  for (Algorithm algo : {Algorithm::kLockfreeSkipList, Algorithm::kLinearFunnels,
                         Algorithm::kSingleLock}) {
    for (const char* faults : {"casfail@p1a40n8", "stall@p1a200n5000",
                               "casfail@p0a25n4,stall@p2a300n2000"}) {
      verify::StressSpec spec;
      spec.algo = algo;
      spec.seed = 5;
      spec.nprocs = 4;
      spec.ops_per_proc = 16;
      spec.faults = sim::fault_plan_from_string(faults);
      spec.watchdog = 50000;
      const auto failure = verify::run_scenario(spec);
      EXPECT_FALSE(failure.has_value())
          << verify::format_failure(*failure) << "\nunder " << faults;
    }
  }
}

// ------------------------------------------- elimination partner crash --

// A parked deleter whose hand-off partner fail-stops must withdraw in
// bounded time (its park spin is finite and the withdraw CAS cannot
// block), and an inserter facing a dead deleter's still-waiting slot may
// deliver into it — the entry is then owned by the crashed processor's
// in-flight delete_min, a legal half-applied op under fail-stop. Directly
// on ElimLayer: sweep the crash over the inserter's first accesses so it
// dies before, inside, and after the hand-off CAS.
TEST(ElimFaults, ParkedDeleterSurvivesPartnerCrash) {
  for (u64 at = 0; at < 40; at += 3) {
    constexpr u32 kProcs = 2;
    sim::Engine eng(kProcs, {}, /*seed=*/2);
    FaultPlan plan;
    plan.events.push_back({FaultKind::kCrash, 1, at, 0});
    plan.watchdog_budget = 100000;
    eng.set_fault_plan(std::move(plan));

    ElimLayer<SimPlatform> elim(2);
    u32 delivered = 0, received = 0, parks_done = 0;
    eng.run([&](ProcId id) {
      if (id == 1) {
        for (u32 i = 0; i < 32; ++i) {
          SimPlatform::heartbeat();
          if (elim.try_hand_off(0, i)) ++delivered;
          SimPlatform::delay(SimPlatform::rnd(16));
        }
        return;
      }
      for (u32 i = 0; i < 32; ++i) {
        SimPlatform::heartbeat();
        if (elim.park(/*spin=*/40)) ++received;
        ++parks_done;
      }
    });
    // The deleter always finishes all parks, crash or no crash...
    EXPECT_EQ(parks_done, 32u) << "deleter hung under crash@p1a" << at;
    EXPECT_EQ(eng.fault_report().outcomes[0], ProcOutcome::kCompleted)
        << "crash@p1a" << at;
    // ...and no entry is fabricated: everything received was delivered.
    EXPECT_LE(received, delivered) << "crash@p1a" << at;
  }
}

// The same property through the full queues: funnel queues with the
// PQ-level elimination array in front, one processor crashed at the
// ordinals that land around hand-offs. The faulted stress checks gate the
// result (no fabrication, sorted drain, bounded run).
TEST(ElimFaults, FunnelQueuesWithElimLayerAbsorbPartnerCrash) {
  for (Algorithm algo : {Algorithm::kLinearFunnels, Algorithm::kFunnelTree}) {
    for (const char* faults : {"crash@p1a121", "crash@p1a212", "crash@p2a303"}) {
      verify::StressSpec spec;
      spec.algo = algo;
      spec.seed = 2;
      spec.nprocs = 4;
      spec.ops_per_proc = 16;
      spec.insert_percent = 50; // deleters must park for hand-offs to occur
      spec.elim = 2;
      spec.faults = sim::fault_plan_from_string(faults);
      spec.watchdog = 50000;
      const auto failure = verify::run_scenario(spec);
      EXPECT_FALSE(failure.has_value())
          << verify::format_failure(*failure) << "\nunder " << faults;
    }
  }
}

} // namespace
} // namespace fpq
