// Tests of the paper's extension features implemented beyond the headline
// algorithms: the §3.2 FIFO fairness hybrid bins and the §3.3 symmetric
// bounded fetch-and-increment.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "core/registry.hpp"
#include "funnel/counter.hpp"
#include "funnel/stack.hpp"
#include "platform/sim.hpp"

namespace fpq {
namespace {

FunnelParams tight_params(u32 levels) {
  FunnelParams p;
  p.levels = levels;
  for (u32 d = 0; d < kMaxFunnelLevels; ++d) {
    p.width[d] = 2;
    p.spin[d] = 8;
  }
  return p;
}

TEST(FifoBin, SequentialFifoOrder) {
  FunnelStack<SimPlatform> q(1, tight_params(1), 64, /*eliminate=*/true,
                             BinOrder::kFifo);
  sim::Engine eng(1);
  eng.run([&](ProcId) {
    for (u64 i = 0; i < 8; ++i) ASSERT_TRUE(q.push(i));
    for (u64 i = 0; i < 8; ++i) {
      auto v = q.pop();
      ASSERT_TRUE(v.has_value());
      EXPECT_EQ(*v, i) << "not FIFO";
    }
    EXPECT_FALSE(q.pop().has_value());
  });
}

TEST(FifoBin, RingWrapsAroundCapacity) {
  FunnelStack<SimPlatform> q(1, tight_params(1), 4, true, BinOrder::kFifo);
  sim::Engine eng(1);
  eng.run([&](ProcId) {
    // Cycle more items than the capacity; order must survive wrap-around.
    for (u64 round = 0; round < 5; ++round) {
      for (u64 i = 0; i < 3; ++i) ASSERT_TRUE(q.push(round * 10 + i));
      for (u64 i = 0; i < 3; ++i) EXPECT_EQ(*q.pop(), round * 10 + i);
    }
    EXPECT_TRUE(q.empty());
  });
}

TEST(FifoBin, CapacityRefusal) {
  FunnelStack<SimPlatform> q(1, tight_params(1), 2, true, BinOrder::kFifo);
  sim::Engine eng(1);
  eng.run([&](ProcId) {
    EXPECT_TRUE(q.push(1));
    EXPECT_TRUE(q.push(2));
    EXPECT_FALSE(q.push(3));
    EXPECT_EQ(*q.pop(), 1u);
    EXPECT_TRUE(q.push(3));
    EXPECT_EQ(*q.pop(), 2u);
    EXPECT_EQ(*q.pop(), 3u);
  });
}

class FifoBinProcs : public ::testing::TestWithParam<u32> {};

TEST_P(FifoBinProcs, ConcurrentConservation) {
  const u32 nprocs = GetParam();
  FunnelStack<SimPlatform> q(nprocs, tight_params(2), 1u << 13, true,
                             BinOrder::kFifo);
  std::vector<std::vector<u64>> popped(nprocs);
  std::vector<u64> pushed(nprocs, 0);
  sim::Engine eng(nprocs, {}, 7);
  eng.run([&](ProcId id) {
    for (u32 i = 0; i < 30; ++i) {
      if (SimPlatform::flip()) {
        ASSERT_TRUE(q.push((static_cast<u64>(id) << 32) | i));
        ++pushed[id];
      } else if (auto v = q.pop()) {
        popped[id].push_back(*v);
      }
    }
  });
  eng.run([&](ProcId id) {
    if (id != 0) return;
    while (auto v = q.pop()) popped[0].push_back(*v);
  });
  u64 total_pushed = 0;
  for (u64 c : pushed) total_pushed += c;
  std::set<u64> uniq;
  u64 total_popped = 0;
  for (const auto& v : popped) {
    uniq.insert(v.begin(), v.end());
    total_popped += v.size();
  }
  EXPECT_EQ(total_popped, total_pushed);
  EXPECT_EQ(uniq.size(), total_popped);
}

INSTANTIATE_TEST_SUITE_P(Sweep, FifoBinProcs, ::testing::Values(2u, 8u, 32u, 64u));

TEST(FifoBin, PerProducerOrderPreservedThroughCentralStore) {
  // FIFO hybrid guarantee at the central store: among one producer's items
  // that were NOT eliminated, consumption order matches production order
  // when drained at quiescence.
  FunnelStack<SimPlatform> q(4, tight_params(1), 1024, /*eliminate=*/false,
                             BinOrder::kFifo);
  sim::Engine eng(4, {}, 9);
  eng.run([&](ProcId id) {
    for (u64 i = 0; i < 20; ++i) {
      SimPlatform::delay(SimPlatform::rnd(64));
      ASSERT_TRUE(q.push((static_cast<u64>(id) << 32) | i));
    }
  });
  std::vector<u64> last_seen(4, 0);
  eng.run([&](ProcId id) {
    if (id != 0) return;
    while (auto v = q.pop()) {
      const u64 producer = *v >> 32;
      const u64 seq = *v & 0xffffffffu;
      EXPECT_GE(seq + 1, last_seen[producer]) << "per-producer order broken";
      last_seen[producer] = seq + 1;
    }
  });
}

TEST(LinearFunnelsFifo, EqualPriorityItemsComeOutInArrivalOrder) {
  PqParams params{.npriorities = 4, .maxprocs = 1};
  FunnelOptions opts;
  opts.bin_order = BinOrder::kFifo;
  auto fifo = make_priority_queue<SimPlatform>(Algorithm::kLinearFunnels, params, opts);
  auto lifo = make_priority_queue<SimPlatform>(Algorithm::kLinearFunnels, params);
  sim::Engine eng(1);
  eng.run([&](ProcId) {
    for (u64 i = 1; i <= 4; ++i) {
      fifo->insert(2, i);
      lifo->insert(2, i);
    }
    EXPECT_EQ(fifo->delete_min()->item, 1u); // oldest first — no starvation
    EXPECT_EQ(lifo->delete_min()->item, 4u); // newest first — the §3.2 concern
  });
}

class FifoQueues : public ::testing::TestWithParam<Algorithm> {};

TEST_P(FifoQueues, ConservationWithFifoBins) {
  PqParams params{.npriorities = 16, .maxprocs = 16, .bin_capacity = 1u << 12};
  FunnelOptions opts;
  opts.bin_order = BinOrder::kFifo;
  auto pq = make_priority_queue<SimPlatform>(GetParam(), params, opts);
  auto net = std::make_unique<SimShared<i64>>(0);
  sim::Engine eng(16, {}, 13);
  eng.run([&](ProcId) {
    for (u32 i = 0; i < 30; ++i) {
      if (SimPlatform::flip()) {
        ASSERT_TRUE(pq->insert(static_cast<Prio>(SimPlatform::rnd(16)), i + 1));
        net->fetch_add(1);
      } else if (pq->delete_min()) {
        net->fetch_add(-1);
      }
    }
  });
  i64 drained = 0;
  eng.run([&](ProcId id) {
    if (id != 0) return;
    while (pq->delete_min()) ++drained;
  });
  EXPECT_EQ(drained, net->load());
}

INSTANTIATE_TEST_SUITE_P(FunnelQueues, FifoQueues,
                         ::testing::Values(Algorithm::kLinearFunnels,
                                           Algorithm::kFunnelTree),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

// ---- Bounded fetch-and-increment (ceiling).

using Cfg = FunnelCounter<SimPlatform>::Config;

TEST(Bfai, SequentialStopsAtCeiling) {
  FunnelCounter<SimPlatform> c(1, tight_params(1), Cfg{true, true, 0, 3}, 1);
  sim::Engine eng(1);
  eng.run([&](ProcId) {
    EXPECT_EQ(c.bfai(3), 1);
    EXPECT_EQ(c.bfai(3), 2);
    EXPECT_EQ(c.bfai(3), 3); // at ceiling: value returned, no increment
    EXPECT_EQ(c.bfai(3), 3);
  });
  EXPECT_EQ(c.read(), 3);
}

class BfaiSweep : public ::testing::TestWithParam<u32> {};

TEST_P(BfaiSweep, NeverAboveCeilingAndAccountingExact) {
  const u32 nprocs = GetParam();
  const i64 kCeil = 10;
  FunnelCounter<SimPlatform> c(nprocs, tight_params(2), Cfg{true, true, 0, kCeil}, 0);
  auto effective_incs = std::make_unique<SimShared<u64>>(0);
  auto effective_decs = std::make_unique<SimShared<u64>>(0);
  sim::Engine eng(nprocs, {}, 15);
  eng.run([&](ProcId) {
    for (u32 i = 0; i < 30; ++i) {
      SimPlatform::delay(SimPlatform::rnd(64));
      if (SimPlatform::flip()) {
        const i64 before = c.bfai(kCeil);
        ASSERT_LE(before, kCeil);
        ASSERT_GE(before, 0);
        if (before < kCeil) effective_incs->fetch_add(1);
      } else {
        const i64 before = c.bfad(0);
        ASSERT_GE(before, 0);
        ASSERT_LE(before, kCeil);
        if (before > 0) effective_decs->fetch_add(1);
      }
    }
  });
  EXPECT_GE(c.read(), 0);
  EXPECT_LE(c.read(), kCeil);
  EXPECT_EQ(c.read(), static_cast<i64>(effective_incs->load()) -
                          static_cast<i64>(effective_decs->load()));
}

INSTANTIATE_TEST_SUITE_P(Sweep, BfaiSweep, ::testing::Values(2u, 8u, 32u, 64u));

TEST(Bfai, FaiOnCeilingBoundedCounterAborts) {
  FunnelCounter<SimPlatform> c(1, tight_params(1), Cfg{true, true, 0, 5}, 0);
  sim::Engine eng(1);
  EXPECT_DEATH(eng.run([&](ProcId) { c.fai(); }), "ceiling");
}

TEST(Bfai, EliminationAtTheCeilingStaysInBounds) {
  // Counter pinned at the ceiling: eliminated inc/dec pairs must produce
  // returns in [0, ceiling] and never move the counter above the ceiling.
  const i64 kCeil = 2;
  FunnelCounter<SimPlatform> c(16, tight_params(2), Cfg{true, true, 0, kCeil}, kCeil);
  sim::Engine eng(16, {}, 17);
  eng.run([&](ProcId) {
    for (u32 i = 0; i < 20; ++i) {
      if (SimPlatform::flip()) {
        const i64 v = c.bfai(kCeil);
        ASSERT_GE(v, 0);
        ASSERT_LE(v, kCeil);
      } else {
        const i64 v = c.bfad(0);
        ASSERT_GE(v, 0);
        ASSERT_LE(v, kCeil);
      }
    }
  });
  EXPECT_GE(c.read(), 0);
  EXPECT_LE(c.read(), kCeil);
}

} // namespace
} // namespace fpq
