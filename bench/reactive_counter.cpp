// Extension study: the paper's footnote-4 alternative. A Lim-Agarwal-style
// reactive counter (MCS under low load, funnel under high load, switched
// with centralized coordination) against the always-funnel bounded counter
// and the plain MCS counter, across the concurrency range.
//
// Expected: the reactive scheme tracks MCS at the bottom and the funnel at
// the top, but pays its announce/retire RMWs everywhere — the "strong
// coordination" cost the paper's design avoids by adapting locally inside
// the funnel.
#include <cstdio>
#include <iostream>

#include "bench_support/stats.hpp"
#include "bench_support/table.hpp"
#include "bench_support/workload.hpp"
#include "container/counters.hpp"
#include "container/reactive_counter.hpp"
#include "funnel/counter.hpp"
#include "platform/sim.hpp"
#include "sim/engine.hpp"

using namespace fpq;

namespace {

template <class Op>
double measure(u32 nprocs, u32 ops, Op&& op) {
  sim::Engine eng(nprocs, {}, 11);
  OpStats total;
  std::vector<Padded<OpStats>> per_proc(nprocs);
  eng.run([&](ProcId id) {
    OpStats& r = *per_proc[id];
    for (u32 i = 0; i < ops; ++i) {
      SimPlatform::delay(200);
      const bool inc = SimPlatform::flip();
      const Cycles t0 = SimPlatform::now();
      op(inc);
      r.insert_cycles += SimPlatform::now() - t0;
      ++r.inserts;
    }
  });
  for (const auto& s : per_proc) total += *s;
  return total.mean_insert();
}

} // namespace

int main(int argc, char** argv) {
  u32 ops = 200;
  for (int i = 1; i < argc; ++i) {
    const std::string_view a = argv[i];
    if (a == "--quick") ops = 50;
    if (a.rfind("--ops=", 0) == 0) ops = static_cast<u32>(std::stoul(std::string(a.substr(6))));
  }
  const std::vector<u32> procs = {2, 8, 32, 64, 128, 256};
  std::vector<std::string> xs;
  for (u32 p : procs) xs.push_back(std::to_string(p));
  std::vector<Series> series;

  {
    Series s{"McsCounter", {}};
    for (u32 p : procs) {
      McsCounter<SimPlatform> c(p, 0);
      s.values.push_back(fmt_cycles(
          measure(p, ops, [&](bool inc) { inc ? c.fai() : c.bfad(0); })));
    }
    series.push_back(std::move(s));
  }
  {
    Series s{"FunnelCounter", {}};
    for (u32 p : procs) {
      FunnelCounter<SimPlatform> c(p, FunnelParams::for_procs(p), {true, true, 0}, 0);
      s.values.push_back(fmt_cycles(
          measure(p, ops, [&](bool inc) { inc ? c.fai() : c.bfad(0); })));
    }
    series.push_back(std::move(s));
  }
  {
    Series s{"Reactive", {}};
    for (u32 p : procs) {
      ReactiveCounter<SimPlatform> c(p, FunnelParams::for_procs(p), 0, 0);
      s.values.push_back(fmt_cycles(
          measure(p, ops, [&](bool inc) { inc ? c.fai() : c.bfad(0); })));
    }
    series.push_back(std::move(s));
  }
  print_table(std::cout,
              "Extension: reactive (Lim-Agarwal style) vs always-funnel counters",
              "procs", xs, series);
  return 0;
}
