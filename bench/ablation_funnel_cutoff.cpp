// Ablation of FunnelTree's funnel/MCS cut-off depth (§3.2): the paper uses
// funnel counters only in the top four tree levels and MCS-locked counters
// below, reporting that funnels everywhere would have cost about 5%
// (adaptive funnels shrink where traffic is light). This bench sweeps the
// cut-off from 0 (all MCS) to the full tree depth (all funnels).
//
// A second table toggles elimination off, quantifying §3.3's claim that
// elimination is what makes the bounded counters (and hence FunnelTree)
// profitable under balanced insert/delete traffic.
//
// A third table crosses the cut-off sweep with the collision protocol
// (exchange vs aggregation, DESIGN.md §13): aggregation applies one
// central RMW per aggregate, so deep funnel layers buy less — the
// cut-off sensitivity under aggregation is expected to flatten.
#include <iostream>

#include "bench_support/measure.hpp"
#include "bench_support/table.hpp"

using namespace fpq;

int main(int argc, char** argv) {
  const u32 ops = bench_ops_per_proc(argc, argv, 150);
  const std::vector<u32> procs = {16, 64, 256};
  const u32 npriorities = 256; // 8 tree levels
  std::vector<std::string> xs;
  for (u32 p : procs) xs.push_back(std::to_string(p));

  {
    std::vector<Series> series;
    for (u32 cutoff : {0u, 2u, 4u, 8u}) {
      Series s{"cutoff=" + std::to_string(cutoff), {}};
      for (u32 p : procs) {
        MeasureConfig cfg;
        cfg.algo = Algorithm::kFunnelTree;
        cfg.nprocs = p;
        cfg.npriorities = npriorities;
        cfg.ops_per_proc = ops;
        cfg.bin_capacity = 1u << 11;
        cfg.funnel.tree_cutoff = cutoff;
        s.values.push_back(fmt_cycles(measure_sim(cfg).mean_all()));
      }
      series.push_back(std::move(s));
    }
    print_table(std::cout,
                "Ablation: FunnelTree funnel/MCS cut-off depth (256 priorities)",
                "procs", xs, series);
  }
  {
    std::vector<Series> series;
    for (bool elim : {true, false}) {
      Series s{elim ? "elimination on" : "elimination off", {}};
      for (u32 p : procs) {
        MeasureConfig cfg;
        cfg.algo = Algorithm::kFunnelTree;
        cfg.nprocs = p;
        cfg.npriorities = 16;
        cfg.ops_per_proc = ops;
        cfg.funnel.eliminate = elim;
        s.values.push_back(fmt_cycles(measure_sim(cfg).mean_all()));
      }
      series.push_back(std::move(s));
    }
    print_table(std::cout, "Ablation: FunnelTree elimination (16 priorities)",
                "procs", xs, series);
  }
  {
    std::vector<Series> series;
    for (FunnelProtocol proto : {FunnelProtocol::kExchange, FunnelProtocol::kAggregate}) {
      for (u32 cutoff : {2u, 8u}) {
        Series s{std::string(to_string(proto)) + " cutoff=" + std::to_string(cutoff), {}};
        for (u32 p : procs) {
          MeasureConfig cfg;
          cfg.algo = Algorithm::kFunnelTree;
          cfg.nprocs = p;
          cfg.npriorities = npriorities;
          cfg.ops_per_proc = ops;
          cfg.bin_capacity = 1u << 11;
          cfg.funnel.tree_cutoff = cutoff;
          cfg.funnel.protocol = proto;
          s.values.push_back(fmt_cycles(measure_sim(cfg).mean_all()));
        }
        series.push_back(std::move(s));
      }
    }
    print_table(std::cout,
                "Ablation: collision protocol x cut-off (256 priorities)",
                "procs", xs, series);
  }
  return 0;
}
