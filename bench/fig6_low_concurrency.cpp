// Figure 6: latency of all eight priority-queue implementations (the
// paper's seven plus the beyond-the-paper lock-free skip list) with 16
// priorities at low concurrency (1..16 processors). The paper's right-hand
// close-up is the four low-latency columns of the same data.
//
// Expected shape: SingleLock and HuntEtAl grow linearly and are worst;
// SkipList somewhat better; SimpleLinear lowest; LinearFunnels ~1.5-3x
// SimpleLinear; FunnelTree close to SimpleTree. LockfreeSkiplist sits in
// the SkipList band: no lock convoys, but delete-min still contends on
// the list head.
#include <iostream>

#include "bench_support/measure.hpp"
#include "bench_support/table.hpp"

using namespace fpq;

int main(int argc, char** argv) {
  const u32 ops = bench_ops_per_proc(argc, argv, 200);
  const std::vector<u32> procs = {1, 2, 4, 6, 8, 10, 12, 14, 16};

  std::vector<std::string> xs;
  for (u32 p : procs) xs.push_back(std::to_string(p));

  std::vector<Series> series;
  for (Algorithm a : all_algorithms()) {
    Series s{std::string(to_string(a)), {}};
    for (u32 p : procs) {
      MeasureConfig cfg;
      cfg.algo = a;
      cfg.nprocs = p;
      cfg.npriorities = 16;
      cfg.ops_per_proc = ops;
      s.values.push_back(fmt_cycles(measure_sim(cfg).mean_all()));
    }
    series.push_back(std::move(s));
  }
  print_table(std::cout,
              "Figure 6: latency (cycles/op), 16 priorities, low concurrency",
              "procs", xs, series);
  return 0;
}
