// Figure 8 (the paper's table): latency broken down into insert and
// delete-min for the four scalable implementations, over
// N (priorities) ∈ {16, 128} × P (processors) ∈ {16, 64, 256}.
// Values are thousands of cycles, printed in the paper's row layout.
//
// Expected shape: inserts cheaper than delete-mins for the tree methods
// (insertions update half as many counters on average); funnel methods far
// less sensitive to contention as N and P grow; SimpleTree's delete-min
// dominated by the root at P=256.
#include <cstdio>

#include "bench_support/measure.hpp"

using namespace fpq;

int main(int argc, char** argv) {
  const u32 ops = bench_ops_per_proc(argc, argv, 150);
  struct Row {
    u32 nprocs;
    u32 npriorities;
  };
  const Row rows[] = {{16, 16}, {16, 128}, {64, 16}, {64, 128}, {256, 16}, {256, 128}};

  std::printf("\n== Figure 8: insert / delete-min / all latency (thousands of cycles) ==\n");
  std::printf("%4s %4s |", "P", "N");
  for (Algorithm a : scalable_algorithms())
    std::printf(" %-22s|", std::string(to_string(a)).c_str());
  std::printf("\n%4s %4s |", "", "");
  for (std::size_t i = 0; i < scalable_algorithms().size(); ++i)
    std::printf("  %5s  %5s  %5s  |", "Ins.", "Del.", "All");
  std::printf("\n");

  for (const Row& r : rows) {
    std::printf("%4u %4u |", r.nprocs, r.npriorities);
    for (Algorithm a : scalable_algorithms()) {
      MeasureConfig cfg;
      cfg.algo = a;
      cfg.nprocs = r.nprocs;
      cfg.npriorities = r.npriorities;
      cfg.ops_per_proc = ops;
      cfg.bin_capacity = r.npriorities >= 128 ? (1u << 12) : (1u << 14);
      const OpStats s = measure_sim(cfg);
      std::printf("  %5s  %5s  %5s  |", fmt_kcycles(s.mean_insert()).c_str(),
                  fmt_kcycles(s.mean_delete()).c_str(), fmt_kcycles(s.mean_all()).c_str());
    }
    std::printf("\n");
  }
  std::fflush(stdout);
  return 0;
}
