// Batched-operation sweep on the NATIVE backend: the two funnel queues
// (whose insert_batch/delete_min_batch aggregate natively — one structure
// traversal per batch) swept over batch sizes {1, 4, 16, 64} crossed with
// the thread-count list. Batch 1 goes through the same batch entry points,
// so the comparison isolates aggregation itself, not call overhead.
//
// Each repetition builds a fresh queue with PqParams::max_batch sized to
// the cell's batch, pre-fills it halfway, then has every thread run
// insert_batch(b) + delete_min_batch(b) rounds until it has issued
// ops_per_thread operations (each batched element counts as one
// operation). Each funnel queue appears twice: under its plain name with
// the exchange collision protocol and as `<name>/agg` with the aggregation
// protocol (one central RMW per aggregate), so the JSON carries the
// exchange-vs-aggregation ablation directly. The sharded relaxed composite
// rides the same sweep as `Sharded[K]` cells; it has no native batch
// aggregation (the adapter loops per entry), so its rows baseline what
// sharding alone buys a batched caller. Output: human table on stdout
// and the `fpq.native-bench.v3` JSON (BENCH_native_batched.json by
// default) with per-result "batch" fields — see
// bench_support/native_bench.hpp for the schema, including the
// config.oversubscribed flag that marks runs whose thread counts exceed
// the machine's cores.
//
//   native_batched --threads=1,2,4,8 --reps=5 --ops=100000
//                  [--algos=FunnelTree,LinearFunnels]
//                  [--out=BENCH_native_batched.json] [--pin] [--quick]
#include <span>
#include <vector>

#include "bench_support/native_bench.hpp"
#include "core/registry.hpp"
#include "platform/native.hpp"

using namespace fpq;

namespace {

constexpr u32 kPrios = 16;
constexpr u32 kBatches[] = {1, 4, 16, 64};

RepMeasurement run_rep(Algorithm algo, FunnelProtocol proto, u32 batch, u32 nthreads,
                       u64 ops_per_thread, const ShardConfig& shard = {}) {
  PqParams params;
  params.npriorities = kPrios;
  params.maxprocs = nthreads;
  params.bin_capacity = 1u << 16;
  params.max_batch = batch;
  params.shard = shard;
  FunnelOptions opts;
  opts.protocol = proto;
  auto pq = make_priority_queue<NativePlatform>(algo, params, opts);
  // Half-full steady state so delete_min rarely sees an empty queue.
  NativePlatform::run(1, [&](ProcId) {
    for (u32 i = 0; i < 256; ++i)
      pq->insert(static_cast<Prio>(NativePlatform::rnd(kPrios)), i);
  });
  const u64 rounds = std::max<u64>(ops_per_thread / (2 * batch), 1);
  const double secs = timed_parallel(nthreads, [&](ProcId) {
    std::vector<Entry> in(batch), out(batch);
    for (u64 r = 0; r < rounds; ++r) {
      for (u32 i = 0; i < batch; ++i)
        in[i] = Entry{static_cast<Prio>(NativePlatform::rnd(kPrios)), 7};
      pq->insert_batch(std::span<const Entry>(in));
      pq->delete_min_batch(std::span<Entry>(out));
    }
  });
  RepMeasurement m;
  m.seconds = secs;
  m.ops = u64{nthreads} * rounds * 2 * batch;
  if (algo == Algorithm::kSharded) m.shards = shard.effective_shards(nthreads);
  return m;
}

} // namespace

int main(int argc, char** argv) {
  NativeBenchOptions opt;
  opt.out = "BENCH_native_batched.json";
  if (!opt.parse(argc, argv)) return 2;
  NativeBenchSuite suite("native_batched", opt);
  for (Algorithm algo : {Algorithm::kLinearFunnels, Algorithm::kFunnelTree}) {
    const std::string name{to_string(algo)};
    if (!suite.selected(name)) continue;
    for (FunnelProtocol proto : {FunnelProtocol::kExchange, FunnelProtocol::kAggregate}) {
      const std::string row =
          proto == FunnelProtocol::kAggregate ? name + "/agg" : name;
      for (u32 batch : kBatches) {
        suite.run_batched_case("PqBatched", row, batch, [algo, proto, batch](u32 nt, u64 ops) {
          return run_rep(algo, proto, batch, nt, ops);
        });
      }
    }
  }
  // The sharded composite under the same batched caller: no native batch
  // aggregation (adapter-looped entries), so these rows isolate what the
  // shard fan-out alone contributes when the workload arrives in batches.
  {
    const ShardConfig cfg{8, 2, ShardPolicyKind::kAdaptive};
    const std::string name = "Sharded[8]";
    if (suite.selected(name)) {
      for (u32 batch : kBatches) {
        suite.run_batched_case("PqBatched", name, batch, [cfg, batch](u32 nt, u64 ops) {
          return run_rep(Algorithm::kSharded, FunnelProtocol::kExchange, batch, nt, ops,
                         cfg);
        });
      }
    }
  }
  return suite.finish();
}
