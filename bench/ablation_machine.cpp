// Machine ablation: how much of the paper's story is the *hot-spot
// mechanism*? Sweeping the memory-module occupancy (the serialization that
// queues concurrent requests to one module, Pfister & Norton '85) shows
// SimpleTree's collapse is contention at its root counter, while
// FunnelTree's combining keeps it nearly flat — i.e., the paper's result
// is about traffic shaping, not raw memory speed.
//
// A second table compares the default LIFO bins against the §3.2 FIFO
// fairness hybrid: fairness costs a little (no elimination shortcut at the
// central store ordering), but the funnel still absorbs the contention.
#include <iostream>

#include "bench_support/measure.hpp"
#include "bench_support/table.hpp"

using namespace fpq;

int main(int argc, char** argv) {
  const u32 ops = bench_ops_per_proc(argc, argv, 150);
  {
    const std::vector<u64> occupancies = {1, 10, 25, 50};
    std::vector<std::string> xs;
    for (u64 o : occupancies) xs.push_back(std::to_string(o));
    std::vector<Series> series;
    for (Algorithm a : {Algorithm::kSimpleTree, Algorithm::kFunnelTree}) {
      for (u32 p : {64u, 256u}) {
        Series s{std::string(to_string(a)) + " P=" + std::to_string(p), {}};
        for (u64 occ : occupancies) {
          MeasureConfig cfg;
          cfg.algo = a;
          cfg.nprocs = p;
          cfg.npriorities = 16;
          cfg.ops_per_proc = ops;
          cfg.machine.t_occ = occ;
          s.values.push_back(fmt_cycles(measure_sim(cfg).mean_all()));
        }
        series.push_back(std::move(s));
      }
    }
    print_table(std::cout,
                "Ablation: module occupancy t_occ (hot-spot strength) vs latency",
                "t_occ", xs, series);
  }
  {
    const std::vector<u32> procs = {16, 64, 256};
    std::vector<std::string> xs;
    for (u32 p : procs) xs.push_back(std::to_string(p));
    std::vector<Series> series;
    for (BinOrder order : {BinOrder::kLifo, BinOrder::kFifo}) {
      Series s{order == BinOrder::kLifo ? "LIFO bins" : "FIFO hybrid bins", {}};
      for (u32 p : procs) {
        MeasureConfig cfg;
        cfg.algo = Algorithm::kFunnelTree;
        cfg.nprocs = p;
        cfg.npriorities = 16;
        cfg.ops_per_proc = ops;
        cfg.funnel.bin_order = order;
        s.values.push_back(fmt_cycles(measure_sim(cfg).mean_all()));
      }
      series.push_back(std::move(s));
    }
    print_table(std::cout,
                "Ablation: FunnelTree with LIFO vs FIFO-hybrid bins (§3.2)",
                "procs", xs, series);
  }
  return 0;
}
