// Extension study (beyond the paper, which reports means only): latency
// *distributions* of the four scalable queues. The argument for combining
// funnels is really a tail argument — the hot-spot convoys that destroy
// SimpleTree show up as multi-hundred-k p99s long before they dominate the
// mean — so this table is the paper's Fig. 7 story told in percentiles.
#include <cstdio>

#include "bench_support/workload.hpp"
#include "core/registry.hpp"
#include "platform/sim.hpp"
#include "sim/engine.hpp"

using namespace fpq;

namespace {

DetailedStats measure_detailed(Algorithm algo, u32 nprocs, u32 ops) {
  PqParams params;
  params.npriorities = 16;
  params.maxprocs = nprocs;
  params.bin_capacity = 1u << 14;
  auto pq = make_priority_queue<SimPlatform>(algo, params);
  WorkloadParams w;
  w.nprocs = nprocs;
  w.ops_per_proc = ops;
  // run_pq_workload_detailed goes through P::run, which builds a fresh
  // default-parameter engine — exactly the calibrated machine.
  return run_pq_workload_detailed<SimPlatform>(*pq, w);
}

} // namespace

int main(int argc, char** argv) {
  u32 ops = 150;
  for (int i = 1; i < argc; ++i) {
    const std::string_view a = argv[i];
    if (a == "--quick") ops = 40;
    if (a.rfind("--ops=", 0) == 0) ops = static_cast<u32>(std::stoul(std::string(a.substr(6))));
  }
  std::printf("\n== Latency tails (cycles), 16 priorities — extension of Fig. 7 ==\n");
  for (u32 nprocs : {64u, 256u}) {
    std::printf("\nP=%u\n%-14s %10s  %s\n", nprocs, "algorithm", "mean",
                "distribution");
    for (Algorithm a : scalable_algorithms()) {
      const DetailedStats s = measure_detailed(a, nprocs, ops);
      std::printf("%-14s %10.0f  %s\n", std::string(to_string(a)).c_str(),
                  s.all.mean(), s.all.summary().c_str());
    }
  }
  std::fflush(stdout);
  return 0;
}
