// Figure 7: latency of the four scalable implementations with 16
// priorities from 2 to 256 processors.
//
// Expected shape: SimpleLinear fastest until ~32 processors; SimpleTree
// collapses at high concurrency (root hot spot); FunnelTree overtakes
// around 64 processors and at 256 is several times faster than
// SimpleLinear and roughly an order of magnitude faster than SimpleTree;
// LinearFunnels pays off from ~128 processors.
#include <iostream>

#include "bench_support/measure.hpp"
#include "bench_support/table.hpp"

using namespace fpq;

int main(int argc, char** argv) {
  const u32 ops = bench_ops_per_proc(argc, argv, 150);
  const std::vector<u32> procs = {2, 4, 8, 16, 32, 64, 128, 256};

  std::vector<std::string> xs;
  for (u32 p : procs) xs.push_back(std::to_string(p));

  std::vector<Series> series;
  for (Algorithm a : scalable_algorithms()) {
    Series s{std::string(to_string(a)), {}};
    for (u32 p : procs) {
      MeasureConfig cfg;
      cfg.algo = a;
      cfg.nprocs = p;
      cfg.npriorities = 16;
      cfg.ops_per_proc = ops;
      s.values.push_back(fmt_cycles(measure_sim(cfg).mean_all()));
    }
    series.push_back(std::move(s));
  }
  print_table(std::cout,
              "Figure 7: latency (cycles/op), 16 priorities, high concurrency",
              "procs", xs, series);
  return 0;
}
