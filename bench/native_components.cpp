// google-benchmark microbenchmarks of the synchronization substrate on the
// NATIVE backend (std::atomic + real threads). These complement the
// simulator figures: the simulator shows 256-way trends; these show that
// the same code is a sane real-hardware implementation. Thread counts are
// modest because the machine may have few cores.
//
// Shared fixtures are function-local statics (thread-safe magic statics)
// that live for the whole process: every operation pair is balanced, so
// state carried across thread counts is benign.
#include <benchmark/benchmark.h>

#include "container/bin.hpp"
#include "container/counters.hpp"
#include "funnel/counter.hpp"
#include "funnel/stack.hpp"
#include "platform/native.hpp"
#include "sync/mcs_lock.hpp"
#include "sync/ttas_lock.hpp"

using namespace fpq;

namespace {

constexpr u32 kMaxThreads = 8;

void adopt(benchmark::State& state) {
  NativePlatform::adopt(static_cast<ProcId>(state.thread_index()),
                        static_cast<u32>(state.threads()));
}

void BM_McsLock(benchmark::State& state) {
  static McsLock<NativePlatform> lock(kMaxThreads);
  adopt(state);
  u64 sink = 0;
  for (auto _ : state) {
    McsGuard<NativePlatform> g(lock);
    benchmark::DoNotOptimize(++sink);
  }
  NativePlatform::release();
}
BENCHMARK(BM_McsLock)->ThreadRange(1, 4)->UseRealTime()->MinTime(0.05);

void BM_TtasLock(benchmark::State& state) {
  static TtasLock<NativePlatform> lock;
  adopt(state);
  u64 sink = 0;
  for (auto _ : state) {
    TtasGuard<NativePlatform> g(lock);
    benchmark::DoNotOptimize(++sink);
  }
  NativePlatform::release();
}
BENCHMARK(BM_TtasLock)->ThreadRange(1, 4)->UseRealTime()->MinTime(0.05);

void BM_CasCounterBfad(benchmark::State& state) {
  static CasCounter<NativePlatform> ctr(1 << 20);
  adopt(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctr.bfad(0));
    benchmark::DoNotOptimize(ctr.fai());
  }
  NativePlatform::release();
}
BENCHMARK(BM_CasCounterBfad)->ThreadRange(1, 4)->UseRealTime()->MinTime(0.05);

void BM_McsCounterBfad(benchmark::State& state) {
  static McsCounter<NativePlatform> ctr(kMaxThreads, 1 << 20);
  adopt(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctr.bfad(0));
    benchmark::DoNotOptimize(ctr.fai());
  }
  NativePlatform::release();
}
BENCHMARK(BM_McsCounterBfad)->ThreadRange(1, 4)->UseRealTime()->MinTime(0.05);

void BM_FunnelCounterBfad(benchmark::State& state) {
  static FunnelCounter<NativePlatform> ctr(
      kMaxThreads, FunnelParams::for_procs(kMaxThreads),
      {/*bounded=*/true, /*eliminate=*/true, /*floor=*/0}, 1 << 20);
  adopt(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctr.bfad(0));
    benchmark::DoNotOptimize(ctr.fai());
  }
  NativePlatform::release();
}
BENCHMARK(BM_FunnelCounterBfad)->ThreadRange(1, 4)->UseRealTime()->MinTime(0.05);

void BM_LockedBin(benchmark::State& state) {
  static LockedBin<NativePlatform> bin(kMaxThreads, 1 << 16);
  adopt(state);
  for (auto _ : state) {
    bin.insert(42);
    benchmark::DoNotOptimize(bin.remove());
  }
  NativePlatform::release();
}
BENCHMARK(BM_LockedBin)->ThreadRange(1, 4)->UseRealTime()->MinTime(0.05);

void BM_FunnelStack(benchmark::State& state) {
  static FunnelStack<NativePlatform> st(kMaxThreads,
                                        FunnelParams::for_procs(kMaxThreads), 1 << 16);
  adopt(state);
  for (auto _ : state) {
    st.push(42);
    benchmark::DoNotOptimize(st.pop());
  }
  NativePlatform::release();
}
BENCHMARK(BM_FunnelStack)->ThreadRange(1, 4)->UseRealTime()->MinTime(0.05);

} // namespace

BENCHMARK_MAIN();
