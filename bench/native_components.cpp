// The synchronization substrate on the NATIVE backend, swept across an
// explicit thread-count list: locks, the counter family (CAS / MCS /
// combining-funnel / reactive) and the two lock-related containers. Each
// repetition builds a fresh fixture; every loop iteration is a balanced
// op pair so fixtures never drift. Output matches bench/native_pq:
// human table plus `fpq.native-bench.v1` JSON (see README).
//
//   native_components --threads=1,2,4,8 --reps=5 --ops=200000
//                     [--algos=McsLock,FunnelCounter,...]
//                     [--out=BENCH_native.json] [--pin] [--quick]
#include <functional>

#include "bench_support/native_bench.hpp"
#include "container/bin.hpp"
#include "container/counters.hpp"
#include "container/reactive_counter.hpp"
#include "funnel/counter.hpp"
#include "funnel/stack.hpp"
#include "platform/native.hpp"
#include "sync/mcs_lock.hpp"
#include "sync/ttas_lock.hpp"

using namespace fpq;

namespace {

// Each component's rep: build the fixture, time ops_per_thread balanced
// pairs per thread, report 2 ops per pair (op counting matches native_pq).
template <class MakeFixture, class Op>
RepMeasurement component_rep(u32 nthreads, u64 ops_per_thread, MakeFixture make,
                             Op op) {
  auto fixture = make(nthreads);
  const double secs = timed_parallel(nthreads, [&](ProcId) {
    for (u64 i = 0; i < ops_per_thread; ++i) op(*fixture);
  });
  RepMeasurement m;
  m.seconds = secs;
  m.ops = u64{nthreads} * ops_per_thread * 2;
  return m;
}

} // namespace

int main(int argc, char** argv) {
  NativeBenchOptions opt;
  opt.ops = 200000; // component ops are cheaper than whole-queue ops
  if (!opt.parse(argc, argv)) return 2;
  NativeBenchSuite suite("native_components", opt);

  using Case = std::pair<const char*,
                         std::function<RepMeasurement(u32, u64)>>;
  const Case cases[] = {
      {"McsLock",
       [](u32 nt, u64 ops) {
         return component_rep(
             nt, ops, [](u32 n) { return std::make_unique<McsLock<NativePlatform>>(n); },
             [](McsLock<NativePlatform>& l) {
               McsGuard<NativePlatform> g(l); // acquire+release = 2 ops
             });
       }},
      {"TtasLock",
       [](u32 nt, u64 ops) {
         return component_rep(
             nt, ops, [](u32) { return std::make_unique<TtasLock<NativePlatform>>(); },
             [](TtasLock<NativePlatform>& l) { TtasGuard<NativePlatform> g(l); });
       }},
      {"CasCounter",
       [](u32 nt, u64 ops) {
         return component_rep(
             nt, ops,
             [](u32) { return std::make_unique<CasCounter<NativePlatform>>(1 << 20); },
             [](CasCounter<NativePlatform>& c) {
               c.fai();
               c.bfad(0);
             });
       }},
      {"McsCounter",
       [](u32 nt, u64 ops) {
         return component_rep(
             nt, ops,
             [](u32 n) {
               return std::make_unique<McsCounter<NativePlatform>>(n, 1 << 20);
             },
             [](McsCounter<NativePlatform>& c) {
               c.fai();
               c.bfad(0);
             });
       }},
      {"FunnelCounter",
       [](u32 nt, u64 ops) {
         return component_rep(
             nt, ops,
             [](u32 n) {
               return std::make_unique<FunnelCounter<NativePlatform>>(
                   n, FunnelParams::for_procs(n),
                   typename FunnelCounter<NativePlatform>::Config{true, true, 0},
                   1 << 20);
             },
             [](FunnelCounter<NativePlatform>& c) {
               c.fai();
               c.bfad(0);
             });
       }},
      {"ReactiveCounter",
       [](u32 nt, u64 ops) {
         return component_rep(
             nt, ops,
             [](u32 n) {
               return std::make_unique<ReactiveCounter<NativePlatform>>(
                   n, FunnelParams::for_procs(n), /*floor=*/0, /*initial=*/1 << 20);
             },
             [](ReactiveCounter<NativePlatform>& c) {
               c.fai();
               c.bfad(0);
             });
       }},
      {"LockedBin",
       [](u32 nt, u64 ops) {
         return component_rep(
             nt, ops,
             [](u32 n) {
               return std::make_unique<LockedBin<NativePlatform>>(n, 1u << 16);
             },
             [](LockedBin<NativePlatform>& b) {
               b.insert(42);
               b.remove();
             });
       }},
      {"FunnelStack",
       [](u32 nt, u64 ops) {
         return component_rep(
             nt, ops,
             [](u32 n) {
               return std::make_unique<FunnelStack<NativePlatform>>(
                   n, FunnelParams::for_procs(n), 1u << 16);
             },
             [](FunnelStack<NativePlatform>& s) {
               s.push(42);
               s.pop();
             });
       }},
  };

  for (const auto& [name, rep] : cases) {
    if (!suite.selected(name)) continue;
    suite.run_case("Component", name, rep);
  }
  return suite.finish();
}
