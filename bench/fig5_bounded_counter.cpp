// Figure 5: combining-funnel counters — plain fetch-and-add vs the bounded
// fetch-and-decrement with elimination (§3.3), plus the elimination-off
// ablation.
//
// Left graph: equal mix of increments and decrements, 4..256 processors.
// Right graph: 256 processors, share of decrements swept 0..100%.
//
// Expected shape: with a balanced mix, elimination makes the bounded
// counter substantially faster than plain fetch-and-add despite the bounds
// checking (the paper quotes gains up to 250%); as the mix skews,
// eliminations become rare and plain fetch-and-add wins on overhead.
#include <iostream>
#include <memory>

#include "bench_support/measure.hpp"
#include "bench_support/table.hpp"
#include "funnel/counter.hpp"

using namespace fpq;

namespace {

struct CounterKind {
  const char* name;
  bool bounded;
  bool eliminate;
};

const CounterKind kKinds[] = {
    {"Fetch-and-add", false, false},
    {"BFaD+elim", true, true},
    {"BFaD no-elim", true, false},
};

double measure_counter(const CounterKind& kind, u32 nprocs, u32 inc_pct, u32 ops) {
  sim::Engine engine(nprocs, {}, /*seed=*/7);
  FunnelCounter<SimPlatform>::Config cfg{kind.bounded, kind.eliminate, /*floor=*/0};
  FunnelCounter<SimPlatform> counter(nprocs, FunnelParams::for_procs(nprocs), cfg, 0);

  std::vector<Padded<OpStats>> per_proc(nprocs);
  engine.run([&](ProcId id) {
    OpStats& r = *per_proc[id];
    for (u32 i = 0; i < ops; ++i) {
      SimPlatform::delay(200);
      const bool inc = SimPlatform::rnd(100) < inc_pct;
      const Cycles t0 = SimPlatform::now();
      if (kind.bounded) {
        if (inc)
          counter.fai();
        else
          counter.bfad(0);
      } else {
        counter.faa(inc ? 1 : -1);
      }
      const Cycles dt = SimPlatform::now() - t0;
      if (inc) {
        ++r.inserts;
        r.insert_cycles += dt;
      } else {
        ++r.deletes;
        r.delete_cycles += dt;
      }
    }
  });
  OpStats total;
  for (const auto& s : per_proc) total += *s;
  return total.mean_all();
}

} // namespace

int main(int argc, char** argv) {
  const u32 ops = bench_ops_per_proc(argc, argv, 200);

  {
    const std::vector<u32> procs = {4, 8, 16, 32, 64, 128, 256};
    std::vector<std::string> xs;
    for (u32 p : procs) xs.push_back(std::to_string(p));
    std::vector<Series> series;
    for (const CounterKind& k : kKinds) {
      Series s{k.name, {}};
      for (u32 p : procs)
        s.values.push_back(fmt_cycles(measure_counter(k, p, /*inc_pct=*/50, ops)));
      series.push_back(std::move(s));
    }
    print_table(std::cout,
                "Figure 5 (left): counter latency (cycles/op), 50/50 inc/dec",
                "procs", xs, series);
  }
  {
    const std::vector<u32> dec_pcts = {0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100};
    std::vector<std::string> xs;
    for (u32 d : dec_pcts) xs.push_back(std::to_string(d));
    std::vector<Series> series;
    for (const CounterKind& k : kKinds) {
      Series s{k.name, {}};
      for (u32 d : dec_pcts)
        s.values.push_back(
            fmt_cycles(measure_counter(k, 256, /*inc_pct=*/100 - d, ops / 2)));
      series.push_back(std::move(s));
    }
    print_table(std::cout,
                "Figure 5 (right): counter latency at 256 procs vs %% decrements",
                "dec%", xs, series);
  }
  return 0;
}
