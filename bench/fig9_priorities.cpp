// Figure 9: latency as the priority range grows from 2 to 512, at 64
// processors (left graph) and 256 processors (right graph).
//
// Expected shape: SimpleLinear traces a "u" (more scan work vs. less
// contention); LinearFunnels grows roughly linearly with N (one more
// funnel per priority); SimpleTree is near-flat at 64 (root-bound) and off
// the chart at 256 (the paper omits it there; we print it anyway);
// FunnelTree grows sub-logarithmically and is best almost everywhere at
// high concurrency.
#include <iostream>

#include "bench_support/measure.hpp"
#include "bench_support/table.hpp"

using namespace fpq;

namespace {

void sweep(u32 nprocs, u32 ops) {
  const std::vector<u32> prios = {2, 4, 8, 16, 32, 64, 128, 256, 512};
  std::vector<std::string> xs;
  for (u32 n : prios) xs.push_back(std::to_string(n));
  std::vector<Series> series;
  for (Algorithm a : scalable_algorithms()) {
    Series s{std::string(to_string(a)), {}};
    for (u32 n : prios) {
      MeasureConfig cfg;
      cfg.algo = a;
      cfg.nprocs = nprocs;
      cfg.npriorities = n;
      cfg.ops_per_proc = ops;
      cfg.bin_capacity = n >= 128 ? (1u << 11) : (1u << 14);
      s.values.push_back(fmt_cycles(measure_sim(cfg).mean_all()));
    }
    series.push_back(std::move(s));
  }
  print_table(std::cout,
              "Figure 9: latency (cycles/op) vs priorities, " +
                  std::to_string(nprocs) + " processors",
              "prios", xs, series);
}

} // namespace

int main(int argc, char** argv) {
  const u32 ops = bench_ops_per_proc(argc, argv, 100);
  sweep(64, ops);
  sweep(256, ops);
  return 0;
}
