// The registry's queues on the NATIVE backend (std::atomic + real
// threads), swept across an explicit thread-count list. Complements the
// simulator figures with real-hardware numbers; oversubscribed counts are
// allowed (and interesting — they exercise the spin-escalation paths).
//
// Each repetition builds a fresh queue, pre-fills it halfway, then runs a
// mixed workload: every thread performs ops_per_thread insert+delete-min
// pairs (both count as operations). The two funnel queues additionally
// appear as `<name>/agg` rows running the aggregation collision protocol
// (one central RMW per aggregate) for an exchange-vs-aggregation ablation.
// The sharded relaxed composite appears as explicit `Sharded[K]` cells
// (K shards, c-of-k sampling) rather than through the generic loop — its
// shape IS the experiment — and each cell carries a "rank_error" quality
// annotation from a separate untimed probe pass (verify/rank_error.hpp),
// so the JSON holds the throughput-vs-precision tradeoff in one row.
// Output: human table on stdout and the `fpq.native-bench.v3` JSON
// (BENCH_native.json by default) — see bench_support/native_bench.hpp for
// the schema and README for how to read / diff the file.
//
//   native_pq --threads=1,2,4,8 --reps=5 --ops=100000 [--algos=FunnelTree,...]
//             [--out=BENCH_native.json] [--pin] [--quick]
#include "bench_support/native_bench.hpp"
#include "core/registry.hpp"
#include "platform/native.hpp"
#include "verify/rank_error.hpp"

using namespace fpq;

namespace {

constexpr u32 kPrios = 16;

RepMeasurement run_rep(Algorithm algo, FunnelProtocol proto, u32 nthreads,
                       u64 ops_per_thread) {
  PqParams params;
  params.npriorities = kPrios;
  params.maxprocs = nthreads;
  params.bin_capacity = 1u << 16;
  FunnelOptions opts;
  opts.protocol = proto;
  auto pq = make_priority_queue<NativePlatform>(algo, params, opts);
  // Half-full steady state so delete_min rarely sees an empty queue.
  NativePlatform::run(1, [&](ProcId) {
    for (u32 i = 0; i < 256; ++i)
      pq->insert(static_cast<Prio>(NativePlatform::rnd(kPrios)), i);
  });
  const double secs = timed_parallel(nthreads, [&](ProcId) {
    for (u64 i = 0; i < ops_per_thread; ++i) {
      pq->insert(static_cast<Prio>(NativePlatform::rnd(kPrios)), 7);
      pq->delete_min();
    }
  });
  RepMeasurement m;
  m.seconds = secs;
  m.ops = u64{nthreads} * ops_per_thread * 2;
  return m;
}

PqParams sharded_params(const ShardConfig& cfg, u32 nthreads) {
  PqParams params;
  params.npriorities = kPrios;
  params.maxprocs = nthreads;
  params.bin_capacity = 1u << 16;
  params.shard = cfg;
  return params;
}

// Untimed quality probe for one sharded cell: a fresh queue, the same
// insert+delete-min pair workload with recorded operations (history
// recording is processor-local and unsynchronized, so it does not change
// the contention being sampled), then a quiescent drain, scored with
// verify/rank_error. Much shorter than a measured repetition — the
// distribution stabilizes within a few thousand deletes per thread.
RankErrorAnnotation probe_rank_error(const ShardConfig& cfg, u32 nthreads) {
  constexpr u64 kProbePairs = 2048;
  auto pq = make_priority_queue<NativePlatform>(Algorithm::kSharded,
                                                sharded_params(cfg, nthreads));
  HistoryRecorder rec(nthreads);
  NativePlatform::run(nthreads, [&](ProcId id) {
    for (u64 i = 0; i < kProbePairs; ++i) {
      const Entry e{static_cast<Prio>(NativePlatform::rnd(kPrios)),
                    (static_cast<u64>(id) << 32) | i};
      const Cycles t0 = NativePlatform::now();
      pq->insert(e.prio, e.item);
      rec.record(OpRecord::insert_op(id, t0, NativePlatform::now(), e));
      const Cycles t2 = NativePlatform::now();
      const auto got = pq->delete_min();
      rec.record(OpRecord::delete_op(id, t2, NativePlatform::now(), got));
    }
  });
  NativePlatform::run(1, [&](ProcId id) {
    for (;;) {
      const Cycles t0 = NativePlatform::now();
      const auto got = pq->delete_min();
      rec.record(OpRecord::delete_op(id, t0, NativePlatform::now(), got));
      if (!got) break;
    }
  });
  const RankErrorReport rep = compute_rank_error(rec.merged());
  return {true, rep.mean, rep.p99, rep.max};
}

RepMeasurement run_sharded_rep(const ShardConfig& cfg, u32 nthreads,
                               u64 ops_per_thread) {
  auto pq = make_priority_queue<NativePlatform>(Algorithm::kSharded,
                                                sharded_params(cfg, nthreads));
  NativePlatform::run(1, [&](ProcId) {
    for (u32 i = 0; i < 256; ++i)
      pq->insert(static_cast<Prio>(NativePlatform::rnd(kPrios)), i);
  });
  const double secs = timed_parallel(nthreads, [&](ProcId) {
    for (u64 i = 0; i < ops_per_thread; ++i) {
      pq->insert(static_cast<Prio>(NativePlatform::rnd(kPrios)), 7);
      pq->delete_min();
    }
  });
  RepMeasurement m;
  m.seconds = secs;
  m.ops = u64{nthreads} * ops_per_thread * 2;
  m.shards = cfg.effective_shards(nthreads);
  m.rank_error = probe_rank_error(cfg, nthreads);
  return m;
}

} // namespace

int main(int argc, char** argv) {
  NativeBenchOptions opt;
  if (!opt.parse(argc, argv)) return 2;
  NativeBenchSuite suite("native_pq", opt);
  for (Algorithm algo : all_algorithms()) {
    if (algo == Algorithm::kSharded) continue; // explicit Sharded[K] cells below
    const std::string name{to_string(algo)};
    if (!suite.selected(name)) continue;
    suite.run_case("PqMixed", name, [algo](u32 nt, u64 ops) {
      return run_rep(algo, FunnelProtocol::kExchange, nt, ops);
    });
    // Funnel queues get a second row under the aggregation protocol
    // (ISSUE 8 ablation): same workload, collisions fold into one
    // central RMW instead of pairwise exchanges.
    if (algo != Algorithm::kLinearFunnels && algo != Algorithm::kFunnelTree)
      continue;
    suite.run_case("PqMixed", name + "/agg", [algo](u32 nt, u64 ops) {
      return run_rep(algo, FunnelProtocol::kAggregate, nt, ops);
    });
  }
  // The sharded relaxed composite: fixed-shape cells (the auto heuristic
  // would vary K with the thread count and blur the sweep). c = 2 is the
  // classic power-of-two-choices sample; both cells run the adaptive
  // access-mode policy. Each row carries the rank-error annotation.
  for (const u32 k : {4u, 8u}) {
    const std::string name = "Sharded[" + std::to_string(k) + "]";
    if (!suite.selected(name)) continue;
    const ShardConfig cfg{k, 2, ShardPolicyKind::kAdaptive};
    suite.run_case("PqMixed", name, [cfg](u32 nt, u64 ops) {
      return run_sharded_rep(cfg, nt, ops);
    });
  }
  return suite.finish();
}
