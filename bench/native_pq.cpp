// The seven queues on the NATIVE backend (std::atomic + real threads),
// swept across an explicit thread-count list. Complements the simulator
// figures with real-hardware numbers; oversubscribed counts are allowed
// (and interesting — they exercise the spin-escalation paths).
//
// Each repetition builds a fresh queue, pre-fills it halfway, then runs a
// mixed workload: every thread performs ops_per_thread insert+delete-min
// pairs (both count as operations). The two funnel queues additionally
// appear as `<name>/agg` rows running the aggregation collision protocol
// (one central RMW per aggregate) for an exchange-vs-aggregation ablation.
// Output: human table on stdout and the `fpq.native-bench.v2` JSON
// (BENCH_native.json by default) — see bench_support/native_bench.hpp for
// the schema and README for how to read / diff the file.
//
//   native_pq --threads=1,2,4,8 --reps=5 --ops=100000 [--algos=FunnelTree,...]
//             [--out=BENCH_native.json] [--pin] [--quick]
#include "bench_support/native_bench.hpp"
#include "core/registry.hpp"
#include "platform/native.hpp"

using namespace fpq;

namespace {

constexpr u32 kPrios = 16;

RepMeasurement run_rep(Algorithm algo, FunnelProtocol proto, u32 nthreads,
                       u64 ops_per_thread) {
  PqParams params;
  params.npriorities = kPrios;
  params.maxprocs = nthreads;
  params.bin_capacity = 1u << 16;
  FunnelOptions opts;
  opts.protocol = proto;
  auto pq = make_priority_queue<NativePlatform>(algo, params, opts);
  // Half-full steady state so delete_min rarely sees an empty queue.
  NativePlatform::run(1, [&](ProcId) {
    for (u32 i = 0; i < 256; ++i)
      pq->insert(static_cast<Prio>(NativePlatform::rnd(kPrios)), i);
  });
  const double secs = timed_parallel(nthreads, [&](ProcId) {
    for (u64 i = 0; i < ops_per_thread; ++i) {
      pq->insert(static_cast<Prio>(NativePlatform::rnd(kPrios)), 7);
      pq->delete_min();
    }
  });
  return {secs, u64{nthreads} * ops_per_thread * 2};
}

} // namespace

int main(int argc, char** argv) {
  NativeBenchOptions opt;
  if (!opt.parse(argc, argv)) return 2;
  NativeBenchSuite suite("native_pq", opt);
  for (Algorithm algo : all_algorithms()) {
    const std::string name{to_string(algo)};
    if (!suite.selected(name)) continue;
    suite.run_case("PqMixed", name, [algo](u32 nt, u64 ops) {
      return run_rep(algo, FunnelProtocol::kExchange, nt, ops);
    });
    // Funnel queues get a second row under the aggregation protocol
    // (ISSUE 8 ablation): same workload, collisions fold into one
    // central RMW instead of pairwise exchanges.
    if (algo != Algorithm::kLinearFunnels && algo != Algorithm::kFunnelTree)
      continue;
    suite.run_case("PqMixed", name + "/agg", [algo](u32 nt, u64 ops) {
      return run_rep(algo, FunnelProtocol::kAggregate, nt, ops);
    });
  }
  return suite.finish();
}
