// google-benchmark: the seven queues on the NATIVE backend, one
// insert+delete-min pair per iteration, 1..4 threads. Complements the
// simulator figures with real-hardware numbers at laptop-scale
// concurrency. Queues are created once per algorithm and persist (each
// iteration is balanced, so carried-over state is a few in-flight items).
#include <array>
#include <memory>
#include <mutex>

#include <benchmark/benchmark.h>

#include "core/registry.hpp"
#include "platform/native.hpp"

using namespace fpq;

namespace {

constexpr u32 kMaxThreads = 8;

IPriorityQueue<NativePlatform>& queue_for(Algorithm algo) {
  static std::array<std::unique_ptr<IPriorityQueue<NativePlatform>>, 7> queues;
  static std::mutex mu;
  std::lock_guard<std::mutex> lk(mu);
  auto& slot = queues[static_cast<std::size_t>(algo)];
  if (!slot) {
    PqParams params;
    params.npriorities = 16;
    params.maxprocs = kMaxThreads;
    params.bin_capacity = 1u << 16;
    slot = make_priority_queue<NativePlatform>(algo, params);
  }
  return *slot;
}

void BM_PqMixed(benchmark::State& state) {
  const Algorithm algo = static_cast<Algorithm>(state.range(0));
  IPriorityQueue<NativePlatform>& pq = queue_for(algo);
  NativePlatform::adopt(static_cast<ProcId>(state.thread_index()),
                        static_cast<u32>(state.threads()));
  for (auto _ : state) {
    pq.insert(static_cast<Prio>(NativePlatform::rnd(16)), 7);
    benchmark::DoNotOptimize(pq.delete_min());
  }
  NativePlatform::release();
  state.SetLabel(std::string(to_string(algo)));
}

} // namespace

BENCHMARK(BM_PqMixed)->DenseRange(0, 6, 1)->ThreadRange(1, 4)->UseRealTime()->MinTime(0.05);

BENCHMARK_MAIN();
